#!/bin/sh
# Build and run the benchmark suite, capturing machine-readable results
# in BENCH_results.json (name -> ns/run) at the repository root.
set -e
cd "$(dirname "$0")/.."
dune build @bench
exec dune exec bench/main.exe -- --json "$@"
