#!/bin/sh
# Build and run the benchmark suite, capturing machine-readable results
# in BENCH_results.json at the repository root.  The JSON carries a
# meta block (git sha, domain count, parallelism, units) so numbers are
# attributable to a tree state; results hold name -> ns/run.
set -e
cd "$(dirname "$0")/.."
sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
dune build @bench
exec dune exec bench/main.exe -- --json --sha "$sha" "$@"
