(** Benchmark harness (Bechamel).

    The paper has no performance evaluation — its implementability claim
    is qualitative ("straightforward to implement", Section 7).  These
    benchmarks provide the quantitative characterisation a downstream
    implementor needs (DESIGN.md §6):

    - parser and matcher throughput (substrate costs);
    - legacy vs revised SET and DELETE (the price of atomicity:
      two-phase evaluation with conflict checking);
    - all five proposed MERGE semantics plus legacy MERGE on the paper's
      Example 5 import workload, scaled up (the price of the quotient);
    - the collapsibility quotient in isolation;
    - the paper-figure workloads (E6, E8–E10) as micro-benchmarks;
    - an end-to-end marketplace session.

    Run:  dune exec bench/main.exe
*)

open Bechamel
open Toolkit
open Cypher_graph
open Cypher_ast.Ast
open Cypher_core
open Cypher_paper

let parse_q src =
  match Api.parse ~dialect:Cypher_ast.Validate.Permissive src with
  | Ok q -> q
  | Error e -> failwith (Errors.to_string e)

(* The baseline entries are pinned to the serial path — and to disabled
   counter collection — so their numbers stay comparable across runs
   regardless of CYPHER_PARALLELISM and across the introduction of the
   observability layer (the pinned BENCH_results.json predates it); the
   parallel read-phase and stats=on variants are recorded side by side
   under .../par=N and .../stats=on names. *)
let pin c = Config.with_stats false (Config.with_parallelism 0 c)
let cfg_cypher9 = pin Config.cypher9
let cfg_revised = pin Config.revised
let cfg_permissive = pin Config.permissive

(* enabled-collection variant: quantifies what the counters cost when
   they are actually recorded *)
let cfg_revised_stats = Config.with_stats true cfg_revised

(* fan-out width of the par=N variants: CYPHER_PARALLELISM when it asks
   for actual parallelism, 4 otherwise *)
let par_level =
  match Config.parallelism_of_string (Sys.getenv_opt "CYPHER_PARALLELISM") with
  | n when n >= 2 -> n
  | _ -> 4

(* what the host actually offers.  On a single-domain machine the
   par=N entries would time the fan-out machinery running serially and
   record it under a name that claims parallelism, so they are skipped
   (and listed as such in the JSON meta) rather than reported. *)
let effective_domains = Cypher_util.Pool.recommended ()
let par_meaningful = effective_domains >= 2

let cfg_revised_par =
  Config.with_stats false (Config.with_parallelism par_level Config.revised)

(* compact-backend variant: same queries, CSR adjacency instead of the
   persistent maps on the read path *)
let cfg_compact = Config.with_backend `Compact cfg_revised

(* slot-compiled array rows instead of per-row persistent maps on the
   materialising read path, alone and stacked on the compact backend *)
let cfg_revised_slots = Config.with_rows `Slots cfg_revised
let cfg_compact_slots = Config.with_rows `Slots cfg_compact

let run_q config g q =
  match Api.run_query ~config g q with
  | Ok o -> o
  | Error e -> failwith (Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* Fixtures shared by the benches                                     *)
(* ------------------------------------------------------------------ *)

let market100 =
  Fixtures.marketplace_graph ~vendors:5 ~products:30 ~users:65 ~orders_per_user:3

let market1000 =
  Fixtures.marketplace_graph ~vendors:20 ~products:300 ~users:680 ~orders_per_user:3

let orders100 = Fixtures.orders_table 100
let orders1000 = Fixtures.orders_table 1000

let q_read = parse_q Fixtures.query1
let q_2hop =
  parse_q
    "MATCH (u:User)-[:ORDERED]->(p:Product)<-[:OFFERS]-(v:Vendor) RETURN \
     count(*) AS n"
let q_1hop = parse_q "MATCH (u:User)-[:ORDERED]->(p:Product) RETURN count(*) AS n"

(* the same 2-hop shape, but count(p) instead of the bare count-star:
   the star form is fused into a counting walk that never materialises
   rows, so this variant is the one that actually exercises the row
   pipeline — every embedding becomes a driving-table row *)
let q_2hop_rows =
  parse_q
    "MATCH (u:User)-[:ORDERED]->(p:Product)<-[:OFFERS]-(v:Vendor) RETURN \
     count(p) AS n"

(* an unbounded undirected BFS between the first and last user of the
   tier-5 fixture (User ids are 100000+k): the whole graph is explored
   before the search concludes, so this times frontier expansion *)
let q_sp =
  parse_q
    "MATCH (a:User {id: 100000}), (b:User {id: 167999}) RETURN \
     length(shortestPath((a)-[*]-(b))) AS l"

(* point lookup: one user out of 680, by property equality *)
let q_point = parse_q "MATCH (u:User {id: 100042}) RETURN u.name AS name"
let market1000_indexed = Graph.add_prop_index ~label:"User" ~key:"id" market1000

(* prepared statements and the session plan cache --------------------- *)

module Smap = Cypher_util.Maps.Smap

(* the point lookup again, parameterized: the hot shape of an OLTP
   workload — one statement text, many bindings *)
let param_src = "MATCH (u:User {id: $uid}) RETURN u.name AS name"
let uid_params = Smap.add "uid" (Value.Int 100042) Smap.empty

(* a parse-heavy but execution-trivial statement (no :A nodes exist):
   the hit/miss pair isolates what the statement cache saves in lexing,
   parsing, validation and planning *)
let parse_heavy_src =
  "MATCH (a:A)-[r:T*1..3]->(b) WHERE a.x > $k AND b.name STARTS WITH 'p' \
   WITH a, count(*) AS n ORDER BY n DESC LIMIT 10 RETURN a, n"

let bench_session ~capacity g params =
  let config =
    Config.with_plan_cache_capacity capacity (Config.with_params params cfg_revised)
  in
  Session.create ~config g

let warm session src =
  (match Session.run session src with
  | Ok _ -> ()
  | Error e -> failwith (Errors.to_string e));
  session

let parse_session_warm =
  warm
    (bench_session ~capacity:128 Graph.empty
       (Smap.add "k" (Value.Int 1) Smap.empty))
    parse_heavy_src

let parse_session_nocache =
  bench_session ~capacity:0 Graph.empty (Smap.add "k" (Value.Int 1) Smap.empty)

let point_session_warm =
  warm (bench_session ~capacity:128 market1000_indexed uid_params) param_src

let point_session_nocache =
  bench_session ~capacity:0 market1000_indexed uid_params

let prepared_point =
  match Api.prepare ~config:cfg_revised param_src with
  | Ok p -> p
  | Error e -> failwith (Errors.to_string e)

(* two real user ids, alternated so every execution rebinds *)
let rebind_flip = ref false

let merge_src = Fixtures.example5_merge

let merge_graph mode table () =
  Sys.opaque_identity
    (fst (Runner.run_merge_mode cfg_permissive ~mode merge_src (Graph.empty, table)))

let legacy_merge table () =
  Sys.opaque_identity
    (fst
       (Runner.run_merge_mode cfg_cypher9 ~mode:Merge_legacy merge_src
          (Graph.empty, table)))

(* SET workload: 100 products, bump every id — legacy vs atomic *)
let set_graph =
  Fixtures.marketplace_graph ~vendors:2 ~products:100 ~users:2 ~orders_per_user:1
let q_set = parse_q "MATCH (p:Product) SET p.id = p.id + 1"

(* DELETE workload *)
let q_delete = parse_q "MATCH (u:User) DETACH DELETE u"

(* statements for the parser bench *)
let src_read = Fixtures.query1
let src_update =
  "MATCH (u:User {id: 89}) CREATE (u)-[:ORDERED]->(p:Product {id: 1, name: \
   'x'}) SET p.seen = true"
let src_mixed =
  "MATCH (a:A)-[r:T*1..3]->(b) WHERE a.x > 1 AND b.name STARTS WITH 'p' WITH \
   a, count(*) AS n ORDER BY n DESC LIMIT 10 MERGE ALL (a)-[:SEEN]->(:Log \
   {n: n}) RETURN a, n"

(* quotient in isolation: a pre-built graph of k collapsible nodes *)
let quotient_input k =
  let g, new_nodes =
    List.fold_left
      (fun (g, acc) i ->
        let id, g =
          Graph.create_node ~labels:[ "N" ]
            ~props:(Props.of_list [ ("v", Value.Int (i mod 10)) ])
            g
        in
        (g, (id, (0, 0)) :: acc))
      (Graph.empty, [])
      (List.init k (fun i -> i))
  in
  (g, new_nodes)

let quotient_300 = quotient_input 300

let session_src =
  "MATCH (u:User)-[:ORDERED]->(p:Product) WHERE u.id % 7 = 0 SET p.hot = \
   true WITH u, count(*) AS n MERGE ALL (u)-[:SCORED]->(:Score {v: n}) \
   RETURN count(*) AS total"

let q_session = parse_q session_src

(* projection/filter workload for the parallel row-mapping path: no
   graph access at all, pure per-row expression work *)
let q_project =
  parse_q
    "UNWIND range(1, 5000) AS x WITH x, x * x AS y WHERE y % 3 = 0 RETURN \
     count(*) AS n"

(* durability fixtures: a statement journal of 50 CREATEs captured
   through a real journaling session (so the recorded counter checksums
   are exact), plus a snapshot image of the 100-node marketplace *)
module Wal = Cypher_storage.Wal
module Snapshot = Cypher_storage.Snapshot
module Recovery = Cypher_storage.Recovery

let wal_record =
  {
    Wal.src = "MATCH (u:User {id: 100007}) SET u.seen = true";
    stats = { Stats.empty with Stats.props_set = 1 };
    mode = Config.Atomic;
    order = Config.Forward;
    match_mode = Config.Isomorphic;
    params = Cypher_util.Maps.Smap.empty;
    kind = `Statement;
  }

let wal_bytes_50 =
  let buf = Buffer.create 4096 in
  let session = Session.create ~config:Config.revised Graph.empty in
  Session.set_journal session
    (Some
       (List.iter (fun e ->
            Buffer.add_string buf (Wal.encode (Wal.record_of_entry e)))));
  for i = 1 to 50 do
    match
      Session.run session
        (Printf.sprintf "CREATE (:A {v: %d})-[:T]->(:B {v: %d})" i (i * 2))
    with
    | Ok _ -> ()
    | Error e -> failwith (Errors.to_string e)
  done;
  Buffer.contents buf

let snapshot_100 = Snapshot.to_string market100

let bench_tmp suffix =
  let path = Filename.temp_file "cypher_bench" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* an open journal writer per durability regime; the file grows over
   the bench run, but appends are O(record), not O(file) *)
let wal_writer_buffered =
  Wal.open_writer ~durability:Config.Buffered (bench_tmp ".wal")

let wal_writer_fsync =
  Wal.open_writer ~durability:Config.Fsync (bench_tmp ".wal")

let snapshot_path = bench_tmp ".cy"

(* ------------------------------------------------------------------ *)
(* Test registry                                                      *)
(* ------------------------------------------------------------------ *)

let t name f = Test.make ~name (Staged.stage f)

(* the par=N variants, kept apart so a single-domain host can skip
   them honestly (see [par_meaningful]): the same queries with per-row
   expansion fanned out over par_level domains (results byte-identical
   to the serial entries) *)
let par_tests =
  [
    t (Printf.sprintf "match/1hop/n=1000/par=%d" par_level) (fun () ->
        Sys.opaque_identity (run_q cfg_revised_par market1000 q_1hop));
    t (Printf.sprintf "match/2hop/n=1000/par=%d" par_level) (fun () ->
        Sys.opaque_identity (run_q cfg_revised_par market1000 q_2hop));
    t (Printf.sprintf "match/2hop/n=1000/planner-off/par=%d" par_level)
      (fun () ->
        Sys.opaque_identity
          (run_q (Config.with_planner Config.Off cfg_revised_par) market1000
             q_2hop));
    t (Printf.sprintf "project/unwind-filter/n=5000/par=%d" par_level)
      (fun () ->
        Sys.opaque_identity (run_q cfg_revised_par Graph.empty q_project));
  ]

let base_tests =
  [
    (* parse/* *)
    t "parse/read" (fun () -> Sys.opaque_identity (parse_q src_read));
    t "parse/update" (fun () -> Sys.opaque_identity (parse_q src_update));
    t "parse/mixed" (fun () -> Sys.opaque_identity (parse_q src_mixed));
    (* match/* *)
    t "match/1hop/n=100" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market100 q_1hop));
    t "match/1hop/n=1000" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market1000 q_1hop));
    t "match/2hop/n=100" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market100 q_2hop));
    t "match/2hop/n=1000" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market1000 q_2hop));
    (* ablation: same workload with cost-guided planning disabled —
       naive left-to-right anchoring on the 680-user label bucket *)
    t "match/2hop/n=1000/planner-off" (fun () ->
        Sys.opaque_identity
          (run_q (Config.with_planner Config.Off cfg_revised) market1000
             q_2hop));
    (* point lookup: label scan vs registered property index *)
    t "match/point/label-scan" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market1000 q_point));
    t "match/point/prop-index" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market1000_indexed q_point));
    (* prepared statements and the session plan cache: a warm session
       serves repeat statements from the LRU (no lexing, parsing,
       validation or planning); capacity 0 recompiles every time *)
    t "parse/prepared-hit" (fun () ->
        Sys.opaque_identity (Session.run parse_session_warm parse_heavy_src));
    t "parse/prepared-miss" (fun () ->
        Sys.opaque_identity (Session.run parse_session_nocache parse_heavy_src));
    t "plan-cache/hit" (fun () ->
        Sys.opaque_identity (Session.run point_session_warm param_src));
    t "plan-cache/miss" (fun () ->
        Sys.opaque_identity (Session.run point_session_nocache param_src));
    (* the prepared API itself: rebinding a fresh parameter map per
       execution vs re-running the statement text from scratch *)
    t "execute/param-rebind" (fun () ->
        rebind_flip := not !rebind_flip;
        let uid = if !rebind_flip then 100042 else 100043 in
        Sys.opaque_identity
          (Api.execute prepared_point
             (Smap.add "uid" (Value.Int uid) Smap.empty)
             market1000_indexed));
    t "execute/run-string" (fun () ->
        rebind_flip := not !rebind_flip;
        let uid = if !rebind_flip then 100042 else 100043 in
        Sys.opaque_identity
          (Api.run_string_full
             ~config:
               (Config.with_params
                  (Smap.add "uid" (Value.Int uid) Smap.empty)
                  cfg_revised)
             market1000_indexed param_src));
    t "match/figure1-query1" (fun () ->
        Sys.opaque_identity (run_q cfg_revised Fixtures.figure1_graph q_read));
    (* ablation: homomorphic matching drops the used-relationship
       bookkeeping but enumerates more embeddings *)
    t "match/homo/2hop/n=100" (fun () ->
        Sys.opaque_identity
          (run_q
             (Config.with_match_mode Config.Homomorphic cfg_revised)
             market100 q_2hop));
    (* create/* *)
    t "create/100-paths" (fun () ->
        Sys.opaque_identity
          (run_q cfg_revised Graph.empty
             (parse_q "UNWIND range(1, 100) AS x CREATE (:A {v: x})-[:T]->(:B)")));
    (* set/* : the price of atomicity *)
    t "set/legacy/100" (fun () ->
        Sys.opaque_identity (run_q cfg_cypher9 set_graph q_set));
    t "set/atomic/100" (fun () ->
        Sys.opaque_identity (run_q cfg_revised set_graph q_set));
    (* delete/* *)
    t "delete/legacy/detach" (fun () ->
        Sys.opaque_identity (run_q cfg_cypher9 market100 q_delete));
    t "delete/atomic/detach" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market100 q_delete));
    (* stats/* : the same update workloads with counter collection
       enabled — the marginal cost of recording and finalizing *)
    t "set/atomic/100/stats=on" (fun () ->
        Sys.opaque_identity (run_q cfg_revised_stats set_graph q_set));
    t "create/100-paths/stats=on" (fun () ->
        Sys.opaque_identity
          (run_q cfg_revised_stats Graph.empty
             (parse_q "UNWIND range(1, 100) AS x CREATE (:A {v: x})-[:T]->(:B)")));
    t "delete/atomic/detach/stats=on" (fun () ->
        Sys.opaque_identity (run_q cfg_revised_stats market100 q_delete));
    (* merge/<variant> on the Example-5 import workload *)
    t "merge/legacy/100" (legacy_merge orders100);
    t "merge/all/100" (merge_graph Merge_all orders100);
    t "merge/grouping/100" (merge_graph Merge_grouping orders100);
    t "merge/weak/100" (merge_graph Merge_weak_collapse orders100);
    t "merge/collapse/100" (merge_graph Merge_collapse orders100);
    t "merge/same/100" (merge_graph Merge_same orders100);
    t "merge/all/1000" (merge_graph Merge_all orders1000);
    t "merge/same/1000" (merge_graph Merge_same orders1000);
    (* quotient/* *)
    t "quotient/300-nodes" (fun () ->
        let g, new_nodes = quotient_300 in
        Sys.opaque_identity
          (Quotient.apply g ~new_nodes ~new_rels:[] ~node_pos_matters:false
             ~rel_pos_matters:false));
    (* project/* : UNWIND + WITH...WHERE row mapping (the fanned par=N
       variant lives in par_tests) *)
    t "project/unwind-filter/n=5000" (fun () ->
        Sys.opaque_identity (run_q cfg_revised Graph.empty q_project));
    (* endtoend/* *)
    t "endtoend/session/n=100" (fun () ->
        Sys.opaque_identity (run_q cfg_revised market100 q_session));
    (* io/* : dump and reload the 100-node marketplace *)
    t "io/dump/n=100" (fun () ->
        Sys.opaque_identity (Dump.to_cypher market100));
    t "io/load/n=100"
      (let script = Dump.to_cypher market100 in
       fun () ->
         Sys.opaque_identity
           (Api.run_program ~config:cfg_revised Graph.empty script));
    (* io/* durability: journal append under both regimes, atomic
       snapshot write (tmp + fsync + rename), and full crash recovery
       (journal scan + checked replay, in memory) *)
    t "io/wal-append/buffered" (fun () ->
        Sys.opaque_identity (Wal.append wal_writer_buffered [ wal_record ]));
    t "io/wal-append/fsync" (fun () ->
        Sys.opaque_identity (Wal.append wal_writer_fsync [ wal_record ]));
    t "io/snapshot-write/n=100" (fun () ->
        Sys.opaque_identity (Snapshot.write snapshot_path market100));
    t "io/recover/journal-50" (fun () ->
        Sys.opaque_identity (Recovery.recover_strings ~wal:wal_bytes_50 ()));
    t "io/recover/snapshot+journal" (fun () ->
        Sys.opaque_identity
          (Recovery.recover_strings ~snapshot:snapshot_100 ~wal:wal_bytes_50 ()));
    (* figures/* : the paper's exact workloads *)
    t "figures/E6-legacy-merge" (fun () ->
        Sys.opaque_identity
          (Runner.run_merge_mode cfg_cypher9 ~mode:Merge_legacy
             Fixtures.example3_merge
             (Fixtures.example3_graph, Fixtures.example3_table)));
    t "figures/E8-merge-same" (fun () ->
        Sys.opaque_identity
          (Runner.run_merge_mode cfg_permissive ~mode:Merge_same
             Fixtures.example5_merge
             (Graph.empty, Fixtures.example5_table)));
    t "figures/E9-merge-collapse" (fun () ->
        Sys.opaque_identity
          (Runner.run_merge_mode cfg_permissive ~mode:Merge_collapse
             Fixtures.example6_merge
             (Graph.empty, Fixtures.example6_table)));
    t "figures/E10-merge-same" (fun () ->
        Sys.opaque_identity
          (Runner.run_merge_mode cfg_permissive ~mode:Merge_same
             Fixtures.example7_merge
             (Fixtures.example7_graph, Fixtures.example7_table)));
  ]

let tests = base_tests @ (if par_meaningful then par_tests else [])
let skipped_par = if par_meaningful then [] else List.map Test.name par_tests

(* ------------------------------------------------------------------ *)
(* Tier 5: n = 10^5 nodes, persistent vs compact                       *)
(* ------------------------------------------------------------------ *)

(** [live_words ()] is the major-heap live set after a full collection
    — an actual footprint, not a cumulative allocation counter. *)
let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let pretty_time ns =
  if ns >= 1e9 then Printf.sprintf "%10.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%10.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%10.2f us" (ns /. 1e3)
  else Printf.sprintf "%10.2f ns" ns

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Median wall-clock seconds of [reps] runs of [f], each preceded by a
    heap compaction so every run starts from the same GC state.  Used
    for the large tiers instead of Bechamel: a 0.2–3 s run yields only
    one or two OLS samples, and by that point in the suite the
    accumulated heap makes any single sample hostage to a major
    collection — the median of a few controlled one-shots is the
    honest estimate at this scale. *)
let median_time ?(reps = 5) f =
  let samples =
    List.init reps (fun _ ->
        Gc.compact ();
        snd (timed f))
  in
  List.nth (List.sort compare samples) (reps / 2)

(** Times the 10^5-node tier (100k nodes, 234k rels): 1-hop and 2-hop
    MATCH under each backend, one-shot medians (see {!median_time}),
    measured here — before the Bechamel loop grows the heap.  Run on
    demand — after argument parsing — so [--check-overhead] never pays
    for it.  Returns ready-made result entries plus meta facts (fixture
    size, heap footprint of the persistent maps, CSR arena footprint). *)
let tier5 () =
  let w0 = live_words () in
  let g =
    Fixtures.marketplace_graph ~vendors:2000 ~products:30000 ~users:68000
      ~orders_per_user:3
  in
  let graph_words = live_words () - w0 in
  (* warm the CSR once so the compact entries time steady-state reads;
     the snapshot is reused across runs (and across the 1hop/2hop
     entries) because the graph's content never changes here *)
  ignore (run_q cfg_compact g q_1hop);
  let csr_words =
    match Graph.csr_view (Graph.with_backend `Compact g) with
    | Some c -> Graph.Csr.footprint_words c
    | None -> 0
  in
  let entries =
    List.map
      (fun (name, config, q) ->
        let s =
          median_time (fun () -> Sys.opaque_identity (run_q config g q))
        in
        Printf.printf "%-32s %13s   (median of 5)\n%!" name
          (pretty_time (s *. 1e9));
        (name, Some (s *. 1e9)))
      [
        ("match/1hop/n=1e5", cfg_revised, q_1hop);
        ("match/1hop/n=1e5/compact", cfg_compact, q_1hop);
        ("match/2hop/n=1e5", cfg_revised, q_2hop);
        ("match/2hop/n=1e5/compact", cfg_compact, q_2hop);
        (* the materialising variant (count(p) defeats the counting
           fusion), record rows vs slot-compiled array rows *)
        ("match/2hop-rows/n=1e5", cfg_revised, q_2hop_rows);
        ("match/2hop-rows/n=1e5/slots", cfg_revised_slots, q_2hop_rows);
        ("match/2hop-rows/n=1e5/compact", cfg_compact, q_2hop_rows);
        ("match/2hop-rows/n=1e5/compact/slots", cfg_compact_slots, q_2hop_rows);
        (* whole-graph BFS: persistent hash-table visited set vs the
           CSR dense-array frontier *)
        ("shortestpath/n=1e5", cfg_revised, q_sp);
        ("shortestpath/n=1e5/compact", cfg_compact, q_sp);
      ]
  in
  let meta =
    [
      ("tier5_nodes", string_of_int (Graph.node_count g));
      ("tier5_rels", string_of_int (Graph.rel_count g));
      ("tier5_graph_live_words", string_of_int graph_words);
      ("tier5_csr_words", string_of_int csr_words);
    ]
  in
  (entries, meta)

(* ------------------------------------------------------------------ *)
(* Tier 6 (--large): n = 10^6, bulk load + one-shot MATCH             *)
(* ------------------------------------------------------------------ *)

module Bulk = Cypher_storage.Bulk

(** Synthesises the 10^6-node marketplace as two CSV strings: exactly
    1e6 node rows (20k vendors, 280k products, 700k users) and 1e6 rel
    rows (280k OFFERS + 720k ORDERED), the same 2-hop shape as the
    small fixtures. *)
let large_csvs () =
  let vendors = 20_000 and products = 280_000 and users = 700_000 in
  let nodes = Buffer.create (1 lsl 24) in
  Buffer.add_string nodes "id,labels,name\n";
  for k = 0 to vendors - 1 do
    Buffer.add_string nodes (Printf.sprintf "v%d,Vendor,vendor%d\n" k k)
  done;
  for k = 0 to products - 1 do
    Buffer.add_string nodes (Printf.sprintf "p%d,Product,product%d\n" k k)
  done;
  for k = 0 to users - 1 do
    Buffer.add_string nodes (Printf.sprintf "u%d,User,user%d\n" k k)
  done;
  let rels = Buffer.create (1 lsl 24) in
  Buffer.add_string rels "src,tgt,type\n";
  for k = 0 to products - 1 do
    Buffer.add_string rels (Printf.sprintf "v%d,p%d,OFFERS\n" (k mod vendors) k)
  done;
  let ordered = 1_000_000 - products in
  for k = 0 to ordered - 1 do
    Buffer.add_string rels
      (Printf.sprintf "u%d,p%d,ORDERED\n" (k mod users) (k mod products))
  done;
  (Buffer.contents nodes, Buffer.contents rels)

(** One-shot timings at n = 10^6: bulk load through the batching
    loader (in-memory session — journal throughput has its own io/*
    entries), then the 2-hop count on the loaded graph under each
    backend.  Single runs, wall clock: at this scale a run takes
    seconds, which Bechamel's quota would multiply needlessly.  Returns
    meta pairs for the JSON block. *)
let run_large () =
  Printf.printf "\n-- tier 6 (--large): n=1e6 one-shot timings --\n%!";
  let (nodes, rels), gen_s = timed large_csvs in
  let session = Session.create ~config:cfg_revised Graph.empty in
  let w0 = live_words () in
  let report, load_s =
    timed (fun () ->
        match Bulk.load_strings session ~nodes ~rels with
        | Ok r -> r
        | Error e -> failwith (Errors.to_string e))
  in
  let graph_words = live_words () - w0 in
  let g = Session.graph session in
  Printf.printf "bulk-load/n=1e6: %d nodes + %d rels in %.2f s (%d batches, csv gen %.2f s)\n%!"
    report.Bulk.nodes_created report.Bulk.rels_created load_s
    report.Bulk.batches gen_s;
  Printf.printf "graph footprint: %d live words (%.1f MB)\n%!" graph_words
    (float_of_int (graph_words * 8) /. 1e6);
  let _, persistent_s = timed (fun () -> run_q cfg_revised g q_2hop) in
  Printf.printf "match/2hop/n=1e6: %.3f s\n%!" persistent_s;
  (* first compact run pays the CSR build; the second times the read *)
  let _, build_s = timed (fun () -> run_q cfg_compact g q_2hop) in
  let _, compact_s = timed (fun () -> run_q cfg_compact g q_2hop) in
  let csr_words =
    match Graph.csr_view (Graph.with_backend `Compact g) with
    | Some c -> Graph.Csr.footprint_words c
    | None -> 0
  in
  Printf.printf
    "match/2hop/n=1e6/compact: %.3f s (CSR build+first run %.3f s, arena %d words = %.1f MB)\n%!"
    compact_s build_s csr_words
    (float_of_int (csr_words * 8) /. 1e6);
  [
    ("large_nodes", string_of_int report.Bulk.nodes_created);
    ("large_rels", string_of_int report.Bulk.rels_created);
    ("large_bulk_load_s", Printf.sprintf "%.3f" load_s);
    ("large_graph_live_words", string_of_int graph_words);
    ("large_csr_words", string_of_int csr_words);
    ("large_2hop_persistent_s", Printf.sprintf "%.3f" persistent_s);
    ("large_2hop_compact_s", Printf.sprintf "%.3f" compact_s);
    ("large_2hop_compact_first_s", Printf.sprintf "%.3f" build_s);
  ]

(* ------------------------------------------------------------------ *)
(* Server tier: group-commit throughput and snapshot-read latency     *)
(* ------------------------------------------------------------------ *)

module Shared = Cypher_server.Shared
module Service = Cypher_server.Service

(** Commit throughput under 16 concurrent writer connections, against a
    real [Fsync] WAL writer — once with group commit off (every commit
    pays its own fsync: the baseline) and once with it on (concurrent
    commits share one append + one fsync).  One-shot wall clock over
    the whole workload; the interesting number is the ratio. *)
let server_throughput ~batching dir name =
  let writers = 16 and per_writer = 100 in
  let commits = writers * per_writer in
  let run k =
    let wal = Filename.concat dir (Printf.sprintf "%s-%d.wal" name k) in
    let w = Wal.open_writer wal in
    let sink entries = Wal.append w (List.map Wal.record_of_entry entries) in
    let shared = Shared.create ~batching ~sink Graph.empty in
    let _, dt =
      timed (fun () ->
          let threads =
            List.init writers (fun i ->
                Thread.create
                  (fun () ->
                    let svc = Service.create ~config:cfg_revised shared in
                    (* constant statement text: the hot path of a writer
                       is a repeated (prepared) statement, so the session
                       plan cache hits and the committer's serial work is
                       the graph update plus the flush, not re-parsing *)
                    let stmt = Printf.sprintf "CREATE (:B {w: %d})" i in
                    for _ = 1 to per_writer do
                      ignore (Service.handle svc stmt : string list)
                    done)
                  ())
          in
          List.iter Thread.join threads)
    in
    let ws = Wal.writer_stats w in
    Wal.close_writer w;
    let s = Shared.stats shared in
    if s.Shared.commits <> commits then
      failwith
        (Printf.sprintf "%s: %d of %d commits lost" name s.Shared.commits
           commits);
    (dt *. 1e9 /. float_of_int commits, ws, s)
  in
  (* best of 3: the host timeshares its single core, so any run can eat
     a contention spike — the fastest run is the committer's capability *)
  let runs = List.init 3 run in
  let ((per_commit_ns, ws, s) as best) =
    List.fold_left
      (fun ((b, _, _) as acc) ((c, _, _) as r) -> if c < b then r else acc)
      (List.hd runs) (List.tl runs)
  in
  Printf.printf "%-32s %13s   (%d commits, %d fsyncs, max batch %d)\n%!"
    ("server/throughput/" ^ name)
    (pretty_time per_commit_ns)
    commits ws.Wal.fsyncs s.Shared.max_batch;
  best

(** p99 latency of a read statement on a connection, while 4 writer
    connections keep committing: reads pin the head and never enter the
    committer, so the tail must stay flat. *)
let server_read_p99 () =
  let run () =
    let shared = Shared.create Graph.empty in
    let seed = Service.create ~config:cfg_revised shared in
    ignore
      (Service.handle seed "UNWIND range(1, 500) AS i CREATE (:R {k: i})"
        : string list);
    let stop = Atomic.make false in
    let writers =
      List.init 4 (fun i ->
          Thread.create
            (fun () ->
              let svc = Service.create ~config:cfg_revised shared in
              let j = ref 0 in
              while not (Atomic.get stop) do
                incr j;
                ignore
                  (Service.handle svc
                     (Printf.sprintf "CREATE (:W {w: %d, j: %d})" i !j)
                    : string list)
              done)
            ())
    in
    let reader = Service.create ~config:cfg_revised shared in
    let reads = 400 in
    let samples =
      List.init reads (fun _ ->
          snd
            (timed (fun () ->
                 Service.handle reader "MATCH (n:R) RETURN count(n) AS c")))
    in
    Atomic.set stop true;
    List.iter Thread.join writers;
    let sorted = List.sort compare samples in
    (List.nth sorted (reads * 99 / 100) *. 1e9, reads)
  in
  (* best of 3, like the throughput entries: a co-tenant's CPU burst
     lands square in a 400-read tail *)
  let runs = List.init 3 (fun _ -> run ()) in
  let p99, reads =
    List.fold_left
      (fun ((b, _) as acc) ((p, _) as r) -> if p < b then r else acc)
      (List.hd runs) (List.tl runs)
  in
  Printf.printf "%-32s %13s   (%d reads vs 4 writers)\n%!" "server/read-p99"
    (pretty_time p99) reads;
  p99

let server_tier () =
  Printf.printf "\n-- server tier: 16 writers vs one WAL --\n%!";
  let dir = Filename.temp_file "cypher_bench_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (* mirror the server binary's GC profile (bin/cypher_server.ml): a
     8M-word minor heap keeps minor collections out of the committer's
     serial section.  Restored afterwards so the other tiers measure
     under the default runtime. *)
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Fun.protect
    ~finally:(fun () ->
      Gc.set gc0;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
      let fsync_ns, _, _ = server_throughput ~batching:false dir "fsync" in
      let group_ns, gw, gs =
        server_throughput ~batching:true dir "group-commit"
      in
      let p99 = server_read_p99 () in
      let speedup = fsync_ns /. group_ns in
      let amortization =
        float_of_int gw.Wal.records /. float_of_int (max 1 gw.Wal.fsyncs)
      in
      Printf.printf
        "group commit: %.1fx the per-commit-fsync throughput (%.1f records/fsync, max batch %d)\n%!"
        speedup amortization gs.Shared.max_batch;
      let entries =
        [
          ("server/throughput/fsync", Some fsync_ns);
          ("server/throughput/group-commit", Some group_ns);
          ("server/read-p99", Some p99);
        ]
      in
      let meta =
        [
          ("server_group_commit_speedup", Printf.sprintf "%.1f" speedup);
          ("server_records_per_fsync", Printf.sprintf "%.1f" amortization);
          ("server_max_batch", string_of_int gs.Shared.max_batch);
        ]
      in
      (entries, meta))

(* ------------------------------------------------------------------ *)
(* Runner and report                                                  *)
(* ------------------------------------------------------------------ *)

let benchmark test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  Analyze.all ols Instance.monotonic_clock raw

(** Runs one test, returning (name, ns/run); [None] estimate when the
    OLS fit failed. *)
let run_test test : (string * float option) list =
  let results = benchmark test in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Some est
        | _ -> None
      in
      (name, est) :: acc)
    results []

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Writes the results as a JSON object with a provenance block:

    {v
    { "meta": { "git_sha": ..., "domains": ..., "parallelism": ...,
                "units": "ns" },
      "results": { "<bench name>": <ns/run>, ... } }
    v}

    machine-readable so the perf trajectory is trackable across changes
    (EXPERIMENTS.md).  [effective_domains] is what the machine offers,
    [parallelism] the fan-out width the par=N entries use {e when they
    run}; on a single-domain host they are skipped and listed under
    [skipped] so the file cannot claim parallel numbers the hardware
    never delivered.  [extra] carries tier-specific facts (fixture
    sizes, heap footprints, one-shot large-scale timings). *)
let write_json ~sha ~extra path results =
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc "  \"meta\": {\n";
  Printf.fprintf oc "    \"git_sha\": \"%s\",\n" (json_escape sha);
  Printf.fprintf oc "    \"effective_domains\": %d,\n" effective_domains;
  Printf.fprintf oc "    \"parallelism\": %d,\n" par_level;
  Printf.fprintf oc "    \"skipped\": [%s],\n"
    (String.concat ", "
       (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) skipped_par));
  List.iter
    (fun (k, v) -> Printf.fprintf oc "    \"%s\": %s,\n" (json_escape k) v)
    extra;
  Printf.fprintf oc "    \"units\": \"ns\"\n";
  Printf.fprintf oc "  },\n";
  output_string oc "  \"results\": {\n";
  let kept = List.filter (fun (_, est) -> est <> None) results in
  List.iteri
    (fun i (name, est) ->
      let ns = match est with Some ns -> ns | None -> assert false in
      Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape name) ns
        (if i = List.length kept - 1 then "" else ","))
    kept;
  output_string oc "  }\n";
  output_string oc "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* --check-overhead: disabled-stats regression gate                    *)
(* ------------------------------------------------------------------ *)

(** Reads the ["results"] section of a pinned BENCH_results.json.
    Hand-rolled line scan — the file is written by {!write_json}, one
    ["name": number] pair per line. *)
let load_pinned path =
  let ic = open_in path in
  let tbl = Hashtbl.create 64 in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '"' with
       | None -> ()
       | Some i -> (
           match String.index_from_opt line (i + 1) '"' with
           | None -> ()
           | Some j -> (
               let name = String.sub line (i + 1) (j - i - 1) in
               let rest =
                 String.sub line (j + 1) (String.length line - j - 1)
               in
               try Scanf.sscanf rest ": %f" (fun v -> Hashtbl.replace tbl name v)
               with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()))
     done
   with End_of_file -> ());
  close_in ic;
  tbl

(* the update-path entries: every one runs through the stats-threaded
   code with collection disabled, so their ratio against the pinned
   pre-observability numbers is the disabled-collector overhead.  The
   two read-path entries at the end gate the `Records default through
   the dual-representation Record: every accessor now dispatches on the
   representation, and these hold that dispatch to the same budget *)
let overhead_subset =
  [
    "set/legacy/100";
    "set/atomic/100";
    "delete/legacy/detach";
    "delete/atomic/detach";
    "create/100-paths";
    "merge/all/100";
    "endtoend/session/n=100";
    "match/2hop/n=1000";
    "project/unwind-filter/n=5000";
  ]

(** Re-times the update benches (stats collection disabled, as the
    baseline entries always are) and compares against the pinned
    numbers.  Passes when the geometric-mean slowdown is under
    [threshold]; individual entries are reported but not gated (single
    benches wobble more than the mean).

    Each entry is re-timed three times and the *fastest* run compared:
    the minimum is the noise-robust location statistic for
    microbenchmarks — a real regression in the timed code shifts the
    minimum, while host scheduling phases (this container wanders
    ±30% on a scale of tens of seconds) only inflate individual runs. *)
let check_overhead ~threshold pinned_path =
  let pinned = load_pinned pinned_path in
  Printf.printf "disabled-stats overhead vs %s (gate: geomean < %+.1f%%)\n\n"
    pinned_path ((threshold -. 1.) *. 100.);
  Printf.printf "%-28s %13s %13s %8s\n" "benchmark" "pinned" "now" "ratio";
  Printf.printf "%s\n" (String.make 66 '-');
  let ratios =
    List.filter_map
      (fun name ->
        let test =
          List.find_opt (fun test -> Test.name test = name) tests
        in
        match (test, Hashtbl.find_opt pinned name) with
        | None, _ | _, None ->
            Printf.printf "%-28s %13s\n" name "(no baseline)";
            None
        | Some test, Some base -> (
            let estimates =
              List.concat_map
                (fun _ ->
                  match run_test test with
                  | [ (_, Some now) ] -> [ now ]
                  | _ -> [])
                [ 1; 2; 3 ]
            in
            match estimates with
            | [] ->
                Printf.printf "%-28s %13s\n" name "(no estimate)";
                None
            | e :: es ->
                let now = List.fold_left min e es in
                let r = now /. base in
                Printf.printf "%-28s %13s %13s %7.3fx\n%!" name
                  (pretty_time base) (pretty_time now) r;
                Some r))
      overhead_subset
  in
  if ratios = [] then (
    Printf.printf "\nno comparable entries; cannot gate\n";
    exit 1);
  let geomean =
    exp
      (List.fold_left (fun acc r -> acc +. log r) 0. ratios
      /. float_of_int (List.length ratios))
  in
  Printf.printf "\ngeomean ratio: %.3fx (%+.1f%%)\n" geomean
    ((geomean -. 1.) *. 100.);
  if geomean < threshold then (
    Printf.printf "OK: disabled stats collection within the %.0f%% budget\n"
      ((threshold -. 1.) *. 100.);
    exit 0)
  else (
    Printf.printf "FAIL: disabled stats collection exceeds the %.0f%% budget\n"
      ((threshold -. 1.) *. 100.);
    exit 1)

let () =
  let json_path = ref None and sha = ref "unknown" in
  let overhead = ref None and large = ref false in
  let server_only = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: path :: rest when String.length path >= 2
                                    && String.sub path 0 2 <> "--" ->
        json_path := Some path;
        parse_args rest
    | "--json" :: rest ->
        json_path := Some "BENCH_results.json";
        parse_args rest
    | "--sha" :: v :: rest ->
        sha := v;
        parse_args rest
    | "--check-overhead" :: path :: rest when String.length path >= 2
                                              && String.sub path 0 2 <> "--" ->
        overhead := Some path;
        parse_args rest
    | "--check-overhead" :: rest ->
        overhead := Some "BENCH_results.json";
        parse_args rest
    | "--large" :: rest ->
        large := true;
        parse_args rest
    | "--server" :: rest ->
        server_only := true;
        parse_args rest
    | _ :: rest -> parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (match !overhead with
  | Some path -> check_overhead ~threshold:1.02 path
  | None -> ());
  (* --server: just the server tier, for iterating on the committer
     without paying for the full suite *)
  if !server_only then begin
    ignore (server_tier () : (string * float option) list * (string * string) list);
    exit 0
  end;
  if not par_meaningful then
    Printf.printf
      "note: host offers %d domain(s); the par=%d entries are skipped \
       (recorded under meta.skipped)\n\n"
      effective_domains par_level;
  let json_path = !json_path in
  Printf.printf "%-32s %13s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 46 '-');
  (* the 1e5 tier is timed first, before the Bechamel loop has grown
     the heap (see median_time) *)
  let tier5_entries, tier5_meta = tier5 () in
  let server_entries, server_meta = server_tier () in
  let results =
    List.concat_map
      (fun test ->
        let rs = run_test test in
        List.iter
          (fun (name, est) ->
            let time =
              match est with Some ns -> pretty_time ns | None -> "n/a"
            in
            Printf.printf "%-32s %13s\n%!" name time)
          rs;
        rs)
      tests
    @ tier5_entries @ server_entries
  in
  let extra =
    tier5_meta @ server_meta @ (if !large then run_large () else [])
  in
  match json_path with
  | None -> ()
  | Some path ->
      write_json ~sha:!sha ~extra path results;
      Printf.printf "\nwrote %s\n" path
