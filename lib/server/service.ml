(** Per-connection protocol logic, independent of sockets.

    One [Service.t] holds everything a connected client is: a
    {!Cypher_core.Session} (plan cache + working graph), the pinned
    base snapshot of its open transaction, and the explicit stack of
    recorded update statements — the transaction state the tentpole
    lifts out of the mutable session record, so the committer can
    replay a transaction against whatever head its batch lands on.

    Protocol (newline-delimited, shell-compatible): one request per
    line — either a [:]-command ([:begin] [:commit] [:rollback]
    [:ping] [:stats] [:quit]) or a Cypher statement.  Every request is
    answered with zero or more payload lines followed by one
    terminator line, [OK rows=<n> version=<v>] or [ERR <message>].
    Payload lines that happen to start with ["OK"] or ["ERR"] are
    escaped with one leading space, so a client can always detect the
    terminator by prefix.

    Isolation: a transaction pins the committed head at [:begin] and
    runs every statement against that snapshot plus its own writes —
    concurrent commits are invisible until [:commit] (snapshot
    isolation for reads).  At commit, if the head moved, every
    buffered update statement is re-executed against the new head in
    order (statement-level skip-on-error), so the final graph always
    equals a serial execution of the committed transactions' update
    statements in commit order.  Reads outside a transaction run on
    the latest committed head; read statements execute on the domain
    pool so concurrent clients' queries run on separate cores instead
    of serializing on the runtime lock of the connection threads'
    domain. *)

open Cypher_graph
open Cypher_table
open Cypher_core
module Parser = Cypher_parser.Parser
module Ast = Cypher_ast.Ast
module Pool = Cypher_util.Pool

(* One update statement recorded inside an open transaction: its source
   and the counters its first execution (against the pinned snapshot)
   produced.  The counters serve the commit fast path; the conflict
   path re-derives them by re-execution. *)
type recorded = { rs_src : string; rs_stats : Stats.t }

type t = {
  shared : Shared.t;
  session : Session.t;
  readers : int;
      (** pool width read statements are submitted under; [<= 1] runs
          them inline on the connection thread *)
  mutable pinned : (int * Graph.t) option;
      (** base snapshot of the open transaction, [None] outside one *)
  mutable frames : recorded list list;
      (** recorded update statements, one frame per open transaction
          level, innermost first, each newest-first *)
  mutable closed : bool;  (** [:quit] seen *)
}

let create ?(readers = 1) ?(config = Config.revised) shared =
  let _, head = Shared.current shared in
  (* counters decide what the committer journals, so collection is
     forced on for the connection's whole lifetime *)
  let session = Session.create ~config:(Config.with_stats true config) head in
  {
    shared;
    session;
    readers;
    pinned = None;
    frames = [];
    closed = false;
  }

let closed t = t.closed
let in_tx t = t.pinned <> None
let session t = t.session

(* ------------------------------------------------------------------ *)
(* Classification                                                     *)
(* ------------------------------------------------------------------ *)

(* Classification compiles through the session's plan cache: a
   connection's hot path is a repeated statement, and re-parsing every
   request just to dispatch it would dominate the committer's serial
   work.  The compiled statement is cached, so the execution that
   follows hits too. *)
let classify t src =
  match Session.prepare t.session src with
  | Error e -> Error (Errors.to_string e)
  | Ok p -> Ok ((if Api.prepared_updates p then `Update else `Read), p)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let sanitize m =
  String.map (function '\n' | '\r' -> ' ' | c -> c) (String.trim m)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* payload lines must never look like a terminator *)
let guard line =
  if has_prefix "OK" line || has_prefix "ERR" line then " " ^ line else line

let ok_line ~rows ~version =
  Printf.sprintf "OK rows=%d version=%d" rows version

let err_line m = "ERR " ^ sanitize m

let split_lines s =
  match String.trim s with
  | "" -> []
  | s -> List.map guard (String.split_on_char '\n' s)

let render (r : Api.result) ~version =
  let plan =
    match r.Api.r_plan with None -> [] | Some p -> split_lines p
  in
  (* the unit table (no columns) renders as empty rows of pipes —
     update-only statements answer with just the counter footer *)
  let unit_table = Table.columns r.Api.r_table = [] in
  let table =
    if unit_table then [] else split_lines (Table.to_string r.Api.r_table)
  in
  let footer =
    if Stats.contains_updates r.Api.r_stats then
      split_lines (Stats.footer r.Api.r_stats)
    else []
  in
  let rows = if unit_table then 0 else Table.row_count r.Api.r_table in
  plan @ table @ footer @ [ ok_line ~rows ~version ]

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let entry_of ~config src stats =
  {
    Session.je_src = src;
    je_stats = stats;
    je_config = config;
    je_kind = `Statement;
  }

(* read statements run on the domain pool: connection threads are
   systhreads sharing one domain's runtime lock, so CPU-bound query
   work must move to worker domains to overlap across clients *)
let on_pool t f = Pool.await (Pool.submit ~parallelism:t.readers f)

let exec_read t p =
  let version, graph =
    match t.pinned with
    | Some (v, _) -> (v, Session.graph t.session)
    | None -> Shared.current t.shared
  in
  match on_pool t (fun () -> Session.run_prepared_on t.session graph p) with
  | Ok r -> render r ~version
  | Error e -> [ err_line (Errors.to_string e) ]

(* an update inside a transaction executes against the session's
   working graph (pinned base + own writes) and is recorded — whatever
   its outcome — for replay at commit: a statement that was a no-op or
   an error on this snapshot may do real work against the head the
   commit lands on, and serial-order equivalence needs it re-run *)
let exec_tx_update t src =
  let version = match t.pinned with Some (v, _) -> v | None -> 0 in
  let outcome = on_pool t (fun () -> Session.run t.session src) in
  let stats =
    match outcome with Ok r -> r.Api.r_stats | Error _ -> Stats.empty
  in
  (match t.frames with
  | f :: rest -> t.frames <- ({ rs_src = src; rs_stats = stats } :: f) :: rest
  | [] -> ());
  match outcome with
  | Ok r -> render r ~version
  | Error e -> [ err_line (Errors.to_string e) ]

(* an auto-commit update is executed entirely by the committer, against
   whatever head its batch stacks it on; the statement was compiled at
   classification, so the committer's serial section pays no cache
   lookup *)
let exec_auto_update t src p =
  let config = Session.config t.session in
  let payload = ref None in
  let exec head =
    match Session.run_prepared_on t.session head p with
    | Ok r ->
        payload := Some r;
        let entries =
          if Stats.contains_updates r.Api.r_stats then
            [ entry_of ~config src r.Api.r_stats ]
          else []
        in
        Ok (r.Api.r_graph, entries)
    | Error e -> Error (Errors.to_string e)
  in
  match (Shared.commit t.shared exec, !payload) with
  | Ok v, Some r -> render r ~version:v
  | Ok v, None -> [ ok_line ~rows:0 ~version:v ]
  | Error m, _ -> [ err_line m ]

(* ------------------------------------------------------------------ *)
(* Transactions                                                       *)
(* ------------------------------------------------------------------ *)

let begin_tx t =
  if in_tx t then begin
    Session.begin_tx t.session;
    t.frames <- [] :: t.frames
  end
  else begin
    let v, head = Shared.current t.shared in
    (match Session.set_graph t.session head with Ok () -> () | Error _ -> ());
    Session.begin_tx t.session;
    t.pinned <- Some (v, head);
    t.frames <- [ [] ]
  end

let rollback_tx t =
  match t.frames with
  | [] -> Error "no transaction in progress"
  | [ _ ] ->
      ignore (Session.rollback t.session : (unit, string) result);
      t.pinned <- None;
      t.frames <- [];
      Ok ()
  | _ :: rest ->
      ignore (Session.rollback t.session : (unit, string) result);
      t.frames <- rest;
      Ok ()

let commit_tx t =
  match (t.pinned, t.frames) with
  | None, _ | _, [] -> Error "no transaction in progress"
  | Some _, frame :: (outer :: _ as rest) ->
      (* nested commit: fold the recorded statements into the enclosing
         level; only the outermost commit reaches the committer *)
      (match Session.commit t.session with
      | Ok () -> ()
      | Error _ -> ());
      t.frames <- (frame @ outer) :: List.tl rest;
      Ok 0
  | Some (_, base), [ frame ] -> (
      let stmts = List.rev frame in
      let working = Session.graph t.session in
      let config = Session.config t.session in
      let final = ref working in
      let exec head =
        if head == base then begin
          (* fast path: the head never moved under this transaction —
             its working graph is already the serial outcome *)
          final := working;
          Ok
            ( working,
              List.filter_map
                (fun r ->
                  if Stats.contains_updates r.rs_stats then
                    Some (entry_of ~config r.rs_src r.rs_stats)
                  else None)
                stmts )
        end
        else begin
          (* conflict path: replay every recorded update statement, in
             order, against the new head; statement-level atomicity
             holds at replay exactly as it did live (a failing
             statement leaves the graph unchanged and is skipped) *)
          let g = ref head in
          let entries =
            List.filter_map
              (fun r ->
                match Session.run_on t.session !g r.rs_src with
                | Ok res ->
                    g := res.Api.r_graph;
                    if Stats.contains_updates res.Api.r_stats then
                      Some (entry_of ~config r.rs_src res.Api.r_stats)
                    else None
                | Error _ -> None)
              stmts
          in
          final := !g;
          Ok (!g, entries)
        end
      in
      let outcome = Shared.commit t.shared exec in
      (* the transaction is over either way: pop the session frame back
         to the pinned base, then reposition on the commit's result
         (success) or stay on the base (abort) *)
      ignore (Session.rollback t.session : (unit, string) result);
      t.pinned <- None;
      t.frames <- [];
      match outcome with
      | Ok v ->
          (match Session.set_graph t.session !final with
          | Ok () -> ()
          | Error _ -> ());
          Ok v
      | Error m -> Error m)

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

let current_version t =
  match t.pinned with
  | Some (v, _) -> v
  | None -> fst (Shared.current t.shared)

let command t line =
  match line with
  | ":ping" -> [ ok_line ~rows:0 ~version:(current_version t) ]
  | ":quit" ->
      t.closed <- true;
      [ ok_line ~rows:0 ~version:(current_version t) ]
  | ":begin" ->
      begin_tx t;
      [ ok_line ~rows:0 ~version:(current_version t) ]
  | ":commit" -> (
      match commit_tx t with
      | Ok v ->
          [ ok_line ~rows:0 ~version:(if v = 0 then current_version t else v) ]
      | Error m -> [ err_line m ])
  | ":rollback" -> (
      match rollback_tx t with
      | Ok () -> [ ok_line ~rows:0 ~version:(current_version t) ]
      | Error m -> [ err_line m ])
  | ":stats" ->
      let s = Shared.stats t.shared in
      let payload =
        [
          Printf.sprintf "commits=%d flushes=%d max_batch=%d flush_failures=%d"
            s.Shared.commits s.Shared.flushes s.Shared.max_batch
            s.Shared.flush_failures;
          Printf.sprintf "depth=%d" (List.length t.frames);
        ]
      in
      List.map guard payload
      @ [ ok_line ~rows:(List.length payload) ~version:(current_version t) ]
  | _ -> [ err_line ("unknown command " ^ line) ]

(** [handle t line] answers one request with the full response: payload
    lines (already terminator-escaped) followed by the [OK]/[ERR]
    terminator.  Empty input lines produce no response. *)
let handle t line : string list =
  let line = String.trim line in
  if line = "" then []
  else if line.[0] = ':' then command t line
  else
    match classify t line with
    | Error m -> [ err_line m ]
    | Ok (`Read, p) -> exec_read t p
    | Ok (`Update, _) when in_tx t -> exec_tx_update t line
    | Ok (`Update, p) -> exec_auto_update t line p
