(** Shared server state: the committed head and the group committer.

    One value of this type is the database every connection sees.  It
    holds the latest committed graph (the {e head}) and a monotonically
    increasing version number; readers pin [(version, head)] in O(1)
    (the store is immutable) and never take another lock afterwards —
    readers never block writers and vice versa.

    Writes go through {!commit}, the single serialized committer with
    {b group commit}.  A committing connection enqueues a request
    carrying an {e unexecuted} closure and blocks; the first waiter to
    find no flush in flight becomes the {e leader}, drains the whole
    queue, executes the batch's closures serially against a working
    graph stacked on the head, writes every resulting journal entry to
    the sink as {e one} append (one [write] + one fsync, whatever the
    batch size), publishes the new head, and signals each waiter with
    its own outcome.

    Failure isolation: a member whose closure fails is dropped from the
    batch (its waiter gets that error; the others are unaffected); a
    batch whose {e flush} fails rolls back exactly its members — the
    head never moved, and nothing was journaled for them (rollback
    journals nothing).  Requests arriving while a flush is in flight
    stay unexecuted in the queue, so a failed flush can never cascade
    into them: they simply execute against the unchanged head under the
    next leader. *)

open Cypher_graph
open Cypher_core

type stats = {
  commits : int;  (** transactions committed (batch members published) *)
  flushes : int;  (** leader drains (batches executed and flushed) *)
  max_batch : int;  (** largest number of transactions one flush carried *)
  flush_failures : int;  (** batches rolled back by a failing sink *)
}

(* A commit request: the closure receives the head its batch is stacked
   on and returns the transaction's resulting graph plus the journal
   entries to write for it.  [rq_result] is written exactly once, under
   the lock, by the leader that resolved it. *)
type request = {
  rq_exec : Graph.t -> (Graph.t * Session.journal_entry list, string) result;
  mutable rq_result : (int, string) result option;
}

type t = {
  lock : Mutex.t;
  resolved : Condition.t;  (** broadcast whenever a batch resolves *)
  queue : request Queue.t;
  sink : (Session.journal_entry list -> unit) option;
      (** durability hook (e.g. [Store.append_entries]); [None] runs the
          server purely in memory *)
  mutable head : Graph.t;
  mutable version : int;
  mutable flushing : bool;  (** a leader is executing / flushing a batch *)
  mutable batching : bool;
      (** group commit on/off; off makes every leader take exactly one
          request — the per-commit-fsync baseline the bench compares
          against *)
  mutable commits : int;
  mutable flushes : int;
  mutable max_batch : int;
  mutable flush_failures : int;
  mutable last_batch : int;
      (** size of the most recent batch — the commit-delay heuristic:
          when the previous flush carried siblings, the writers it
          resolved are mid-turnaround and worth waiting a tick for,
          even though the queue looks empty right now *)
}

let create ?(batching = true) ?sink graph =
  {
    lock = Mutex.create ();
    resolved = Condition.create ();
    queue = Queue.create ();
    sink;
    head = graph;
    version = 0;
    flushing = false;
    batching;
    commits = 0;
    flushes = 0;
    max_batch = 0;
    flush_failures = 0;
    last_batch = 0;
  }

(** [current t] pins the latest committed state: [(version, head)].
    O(1); the returned graph is immutable and stays valid forever. *)
let current t =
  Mutex.lock t.lock;
  let r = (t.version, t.head) in
  Mutex.unlock t.lock;
  r

let stats t =
  Mutex.lock t.lock;
  let r =
    {
      commits = t.commits;
      flushes = t.flushes;
      max_batch = t.max_batch;
      flush_failures = t.flush_failures;
    }
  in
  Mutex.unlock t.lock;
  r

let set_batching t b =
  Mutex.lock t.lock;
  t.batching <- b;
  Mutex.unlock t.lock

(* must hold the lock; takes the batch the leader will execute *)
let drain t =
  if t.batching then begin
    let xs = ref [] in
    while not (Queue.is_empty t.queue) do
      xs := Queue.pop t.queue :: !xs
    done;
    List.rev !xs
  end
  else [ Queue.pop t.queue ]

(** [commit t exec] runs one transaction through the committer and
    blocks until its batch resolves.  [exec head] is called on the
    committer's thread with the graph the transaction ends up stacked
    on (the head at batch execution time, extended by earlier batch
    members); it returns the transaction's resulting graph and journal
    entries, or an error to abort just this member.  Returns the new
    version on success. *)
let commit t exec : (int, string) result =
  let rq = { rq_exec = exec; rq_result = None } in
  Mutex.lock t.lock;
  Queue.add rq t.queue;
  let rec wait_or_lead () =
    match rq.rq_result with
    | Some r -> r
    | None ->
        if t.flushing || Queue.is_empty t.queue then begin
          Condition.wait t.resolved t.lock;
          wait_or_lead ()
        end
        else begin
          (* leader: take a batch and run it outside the lock, so
             readers pinning the head never wait behind an fsync *)
          t.flushing <- true;
          let working = ref t.head in
          let applied_rev = ref [] and failed_rev = ref [] in
          let taken = ref 0 in
          (* drains whatever is queued and executes it immediately —
             called under the lock, executes outside it.  Members are
             executed as they arrive, so execution rides inside the
             commit-delay window instead of extending the round after
             it. *)
          let take_and_exec () =
            let batch = drain t in
            taken := !taken + List.length batch;
            Mutex.unlock t.lock;
            List.iter
              (fun r ->
                match r.rq_exec !working with
                | Ok (g, entries) ->
                    working := g;
                    applied_rev := (r, g, entries) :: !applied_rev
                | Error m -> failed_rev := (r, m) :: !failed_rev
                | exception e ->
                    failed_rev := (r, Printexc.to_string e) :: !failed_rev)
              batch;
            Mutex.lock t.lock
          in
          (* commit delay: when other committers are queued (siblings)
             or the previous batch carried some — in which case the
             writers it resolved are mid-turnaround right now — hold
             the flush for a tick while requests keep arriving, so the
             batch carries them too.  Without the look-behind the
             committer alternates full and singleton flushes: after a
             full batch resolves, the first re-submitter finds an
             empty queue and fsyncs alone.  The sleep is a real
             blocking sleep (a plain yield does not reliably hand the
             core to the resolving connections); a lone committer
             (no siblings, last batch of one) never pays it. *)
          let target =
            if t.batching then max (Queue.length t.queue) t.last_batch
            else 1
          in
          take_and_exec ();
          if t.batching && target > 1 then begin
            let rec settle tries =
              if tries > 0 && !taken < target then begin
                Mutex.unlock t.lock;
                (* the kernel rounds any nanosleep up to ~80us here;
                   ask for the minimum — one tick is enough for every
                   runnable connection to answer its client and
                   re-enqueue *)
                Thread.delay 1e-6;
                Mutex.lock t.lock;
                if not (Queue.is_empty t.queue) then begin
                  take_and_exec ();
                  settle (tries - 1)
                end
                (* no arrivals in a whole tick: flush what we have *)
              end
            in
            settle 8
          end;
          Mutex.unlock t.lock;
          let applied = List.rev !applied_rev in
          let failed = !failed_rev in
          let entries = List.concat_map (fun (_, _, es) -> es) applied in
          let flushed =
            match t.sink with
            | Some sink when entries <> [] -> (
                try
                  sink entries;
                  Ok ()
                with
                | Errors.Error e -> Error (Errors.to_string e)
                | e -> Error (Printexc.to_string e))
            | _ -> Ok ()
          in
          Mutex.lock t.lock;
          t.flushes <- t.flushes + 1;
          let n = !taken in
          if n > t.max_batch then t.max_batch <- n;
          t.last_batch <- n;
          List.iter (fun (r, m) -> r.rq_result <- Some (Error m)) failed;
          (match flushed with
          | Ok () ->
              List.iter
                (fun (r, g, _) ->
                  t.version <- t.version + 1;
                  t.head <- g;
                  t.commits <- t.commits + 1;
                  r.rq_result <- Some (Ok t.version))
                applied
          | Error m ->
              (* the whole batch rolls back: the head never moved and
                 nothing durable was written for it.  Members-only by
                 construction — later requests are still unexecuted. *)
              t.flush_failures <- t.flush_failures + 1;
              List.iter
                (fun (r, _, _) ->
                  r.rq_result <- Some (Error ("journal flush failed: " ^ m)))
                applied);
          t.flushing <- false;
          Condition.broadcast t.resolved;
          wait_or_lead ()
        end
  in
  let r = wait_or_lead () in
  Mutex.unlock t.lock;
  r
