(** The TCP front end: a listener plus one thread and one {!Service.t}
    per accepted connection.  Protocol is newline-delimited text (see
    {!Service}) — usable straight from a shell via [nc]. *)

type t

(** [start ?host ?port ~make_service ()] binds, listens and accepts on
    a dedicated thread; [make_service] is called once per connection.
    [port] defaults to 0 (ephemeral — read the bound port back with
    {!port}); [host] defaults to ["127.0.0.1"]. *)
val start :
  ?host:string ->
  ?port:int ->
  make_service:(unit -> Service.t) ->
  unit ->
  (t, string) result

(** The actually bound port. *)
val port : t -> int

(** [stop t] closes the listener and every open connection, then joins
    the accept thread. *)
val stop : t -> unit

(** [wait t] blocks until the accept loop ends. *)
val wait : t -> unit
