(** Per-connection protocol logic, independent of sockets — the unit
    the TCP front end, the tests and fuzz oracle 10 all drive.

    Protocol: one request per line — a [:]-command ([:begin] [:commit]
    [:rollback] [:ping] [:stats] [:quit]) or a Cypher statement.  Each
    request is answered by zero or more payload lines followed by one
    terminator, [OK rows=<n> version=<v>] or [ERR <message>]; payload
    lines that would start like a terminator are escaped with one
    leading space.

    Isolation: [:begin] pins the committed head; statements inside the
    transaction see that snapshot plus the transaction's own writes
    (snapshot isolation).  [:commit] goes through the shared group
    committer; if the head moved, the recorded update statements are
    replayed against it in order, so the final graph always equals a
    serial execution of committed transactions in commit order.  Read
    statements execute on the domain pool (width [readers]), so
    concurrent clients' queries overlap on separate cores. *)

open Cypher_core

type t

(** [create ?readers ?config shared] makes the per-connection state:
    a fresh session (plan cache, update-counter collection forced on)
    positioned on the current head.  [readers] (default 1 = inline) is
    the pool width read statements are submitted under. *)
val create : ?readers:int -> ?config:Config.t -> Shared.t -> t

(** [handle t line] answers one request with its full response lines
    (payload then terminator).  Empty input produces no response. *)
val handle : t -> string -> string list

(** Whether [:quit] has been received (the connection should close). *)
val closed : t -> bool

val in_tx : t -> bool

(** The connection's session (tests reach through for its graph). *)
val session : t -> Session.t
