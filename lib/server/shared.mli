(** Shared server state: the latest committed graph (the {e head}) with
    a version counter, and the single serialized group committer.

    Readers pin [(version, head)] via {!current} — an O(1) snapshot of
    the immutable store — and never block writers.  Writers enqueue an
    unexecuted closure via {!commit}; the first waiter that finds no
    flush in flight becomes the leader, drains the queue, executes the
    batch serially against a working graph stacked on the head, writes
    all resulting journal entries as {e one} sink call (one WAL append
    + one fsync), publishes the new head, and signals every waiter with
    its own outcome.

    Failure isolation: a member whose closure errors is dropped from
    its batch alone; a batch whose flush fails rolls back exactly its
    members (the head never moved, nothing was journaled).  Requests
    arriving during a flush stay unexecuted and are untouched by its
    failure. *)

open Cypher_graph
open Cypher_core

type t

(** Committer counters. *)
type stats = {
  commits : int;  (** transactions committed *)
  flushes : int;  (** batches executed and flushed *)
  max_batch : int;  (** largest number of transactions one flush carried *)
  flush_failures : int;  (** batches rolled back by a failing sink *)
}

(** [create ?batching ?sink graph] makes a shared state whose initial
    head is [graph] at version 0.  [sink] (e.g. [Store.append_entries])
    is the durability hook — one call per batch; omitted, the server
    runs purely in memory.  [batching] (default true) enables group
    commit; with it off every batch carries exactly one transaction —
    the per-commit-fsync baseline. *)
val create :
  ?batching:bool ->
  ?sink:(Session.journal_entry list -> unit) ->
  Graph.t ->
  t

(** [current t] is the latest committed [(version, head)].  O(1). *)
val current : t -> int * Graph.t

val stats : t -> stats
val set_batching : t -> bool -> unit

(** [commit t exec] runs one transaction through the committer,
    blocking until its batch resolves.  [exec head] runs on the
    committer's thread against the graph the transaction is stacked on
    and returns its resulting graph plus the journal entries to write,
    or an error aborting just this member.  Returns the new version. *)
val commit :
  t ->
  (Graph.t -> (Graph.t * Session.journal_entry list, string) result) ->
  (int, string) result
