(** The TCP front end: accept loop and connection threads.

    Each accepted connection gets its own systhread and its own
    {!Service.t}.  Connection threads only do blocking socket IO and
    protocol bookkeeping; query execution moves to the domain pool
    (reads) or the group committer (writes), so the threads' shared
    runtime lock is never the bottleneck.

    The protocol is newline-delimited text (see {!Service}), usable
    straight from a shell: [printf 'CREATE (:A)\n:quit\n' | nc host
    port]. *)

type t = {
  listener : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
}

let port t = t.port

let register t fd =
  Mutex.lock t.lock;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.lock

let unregister t fd =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.lock

let serve_conn t (service : Service.t) fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
           List.iter
             (fun l ->
               output_string oc l;
               output_char oc '\n')
             (Service.handle service line);
           flush oc;
           if not (Service.closed service) then loop ()
     in
     loop ()
   with _ -> (* client went away mid-request: drop the connection *) ());
  unregister t fd;
  try Unix.close fd with _ -> ()

let accept_loop t make_service =
  let rec loop () =
    match Unix.accept t.listener with
    | exception _ -> () (* listener closed: stop accepting *)
    | fd, _ ->
        register t fd;
        ignore
          (Thread.create (fun () -> serve_conn t (make_service ()) fd) ()
            : Thread.t);
        if t.running then loop ()
  in
  loop ()

(** [start ?host ?port ~make_service ()] binds and listens (port 0
    picks an ephemeral port — read it back with {!port}), then accepts
    connections on a dedicated thread, one new service and one new
    thread per connection. *)
let start ?(host = "127.0.0.1") ?(port = 0) ~make_service () :
    (t, string) result =
  (* a client closing mid-response must surface as EPIPE on the write,
     not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  match
    let addr = Unix.inet_addr_of_string host in
    let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    Unix.bind listener (Unix.ADDR_INET (addr, port));
    Unix.listen listener 64;
    let port =
      match Unix.getsockname listener with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (listener, port)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | exception e -> Error (Printexc.to_string e)
  | listener, port ->
      let t =
        {
          listener;
          port;
          lock = Mutex.create ();
          conns = [];
          running = true;
          accept_thread = None;
        }
      in
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t make_service) ());
      Ok t

(** [stop t] closes the listener (ending the accept loop) and every
    open connection, then joins the accept thread. *)
let stop t =
  Mutex.lock t.lock;
  t.running <- false;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  (* shutdown before close: closing a listening socket does not wake a
     thread blocked in [accept] on Linux — shutdown does *)
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with _ -> ());
  (try Unix.close t.listener with _ -> ());
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) conns;
  match t.accept_thread with None -> () | Some th -> Thread.join th

(** [wait t] blocks until the accept loop ends (the foreground mode of
    [bin/cypher_server]). *)
let wait t =
  match t.accept_thread with None -> () | Some th -> Thread.join th
