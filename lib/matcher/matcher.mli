(** Pattern matching: the relation (p, G, u) ⊨ π of Section 8.1.

    Matching extends a record (the assignment u) with bindings for the
    pattern's variables, producing every extension that embeds the
    pattern into the graph.

    Property predicates in patterns use ternary equality, so a [null]
    property value in a pattern never matches (Example 5's discipline). *)

open Cypher_table
open Cypher_ast.Ast

(** Which embeddings count as matches.  [Iso] is Cypher's relationship
    isomorphism: distinct relationship patterns bind distinct
    relationships (Section 2).  [Homo] allows a relationship to be bound
    by several pattern positions — the homomorphism-based regime the
    paper plans for later Cypher versions (Section 6, Example 7).
    Variable-length steps keep their walks edge-distinct under both
    regimes ("suitable restrictions to guarantee finite outputs"). *)
type mode = Iso | Homo

(** [match_patterns ?mode ?planner ?plans ctx patterns] computes all
    extensions of the context row that embed every pattern; under the
    default [Iso] mode relationship isomorphism is enforced across the
    whole pattern tuple.  [planner] (default off) enables cost-guided
    anchor selection and hop orientation (see {!Plan}); the result rows
    are the same either way, possibly in a different order.

    [plans] optionally supplies one precomputed plan per pattern
    (hoisted out of the per-row loop by the engine — plan choice depends
    only on variable boundness and graph statistics, both uniform across
    one driving table); [Some None] entries run naive enumeration, and
    missing entries fall back to per-row planning. *)
val match_patterns :
  ?mode:mode ->
  ?planner:bool ->
  ?plans:Plan.t option list ->
  Cypher_eval.Ctx.t ->
  pattern list ->
  Record.t list

(** [match_patterns_rev] is {!match_patterns} with the result rows in
    reverse traversal order — the accumulation order of the underlying
    fold.  The engine's single-row MATCH expansion consumes this
    directly and restores row order in the same pass that builds the
    result table ({!Cypher_table.Table.make_rev}), saving a full
    traversal of what may be a 10⁵-row list. *)
val match_patterns_rev :
  ?mode:mode ->
  ?planner:bool ->
  ?plans:Plan.t option list ->
  Cypher_eval.Ctx.t ->
  pattern list ->
  Record.t list

(** [match_patterns_natural ?mode ?planner ?plans ctx patterns] is the
    fully-inverted enumeration: a single planned pattern run in
    reversed traversal order with prepend accumulation, returning rows
    already in natural (forward) order — one list spine for the whole
    match, no final reversal.  The rows are complete slot rows over the
    invocation layout, so the engine may adopt them without a
    consistency projection ({!Cypher_table.Table.of_consistent}).
    [None] when the shape doesn't qualify (several patterns, no plan,
    map rows, property predicates, persistent backend); callers fall
    back to {!match_patterns_rev}. *)
val match_patterns_natural :
  ?mode:mode ->
  ?planner:bool ->
  ?plans:Plan.t option list ->
  Cypher_eval.Ctx.t ->
  pattern list ->
  Record.t list option

(** [count_patterns ?mode ?planner ?plans ctx patterns] is
    [List.length (match_patterns ...)] without materialising any row:
    embeddings are folded over and counted in place, in the same
    traversal order.  Used by the engine to fuse
    [MATCH ... RETURN count( * )] projections. *)
val count_patterns :
  ?mode:mode ->
  ?planner:bool ->
  ?plans:Plan.t option list ->
  Cypher_eval.Ctx.t ->
  pattern list ->
  int

(** [matches ?mode ?planner ctx patterns] decides (p, G, u) ⊨ π: is
    there at least one embedding?  Used by MERGE to split the driving
    table. *)
val matches :
  ?mode:mode -> ?planner:bool -> Cypher_eval.Ctx.t -> pattern list -> bool

(** [shortest_paths ctx ~all pattern] evaluates
    [shortestPath((a)-[:T*]->(b))] (and [allShortestPaths]): a BFS over
    relationships satisfying the single variable-length step, between
    two *bound* endpoints.  Returns a {!Cypher_graph.Value.Path} — or a
    list of paths under [~all:true]; null (or the empty list) when no
    path exists. *)
val shortest_paths :
  Cypher_eval.Ctx.t -> all:bool -> pattern -> Cypher_graph.Value.t
