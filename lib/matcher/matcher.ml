(** Pattern matching: the relation (p, G, u) ⊨ π of Section 8.1.

    Matching extends a record (the assignment u) with bindings for the
    pattern's variables, producing every extension that embeds the
    pattern into the graph.  Cypher's *relationship isomorphism* is
    enforced: distinct relationship patterns within one MATCH (across all
    its comma-separated patterns) must bind distinct relationships —
    including every edge traversed by a variable-length step (Section 2).

    Property predicates in patterns use ternary equality, so a [null]
    property value in a pattern never matches (Example 5's discipline). *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

(** Which embeddings count as matches.  [Iso] is Cypher's relationship
    isomorphism: distinct relationship patterns bind distinct
    relationships.  [Homo] allows a relationship to be bound by several
    pattern positions — the homomorphism-based regime the paper plans
    for later Cypher versions (Section 6, Example 7).  Variable-length
    steps keep their walks edge-distinct under both regimes, which is
    the "suitable restriction to guarantee finite outputs". *)
type mode = Iso | Homo

(** Matching state: current bindings plus relationships already used by
    this MATCH clause (only consulted under [Iso]). *)
type state = { row : Record.t; used : Iset.t; mode : mode }

let use_rel st id =
  match st.mode with
  | Iso -> { st with used = Iset.add id st.used }
  | Homo -> st

let rel_available st id =
  match st.mode with Iso -> not (Iset.mem id st.used) | Homo -> true

let eval_in ctx row e = Eval.eval (Ctx.with_row ctx row) e

(** [node_check ctx np] compiles the label and property requirements of
    [np] into a [row -> id -> bool] test, evaluated once per pattern
    invocation rather than once per candidate node.  On the compact
    backend the label and property-key symbols are resolved here — the
    per-node test is then pure int-array work against the CSR arenas
    (plus property-expression evaluation, which is row-dependent and
    stays inside); a label that was never interned anywhere cannot be
    carried by any node, so the whole check constant-folds to false.
    Missing nodes never match. *)
let node_check (ctx : Ctx.t) (np : node_pat) :
    Record.t -> Value.node_id -> bool =
  match Graph.csr_view ctx.graph with
  | Some c ->
      let lab_syms = List.map Symtab.find np.np_labels in
      if List.exists Option.is_none lab_syms then fun _ _ -> false
      else
        let lab_syms = List.filter_map Fun.id lab_syms in
        let props = List.map (fun (k, e) -> (Symtab.find k, e)) np.np_props in
        fun row id ->
          let i = Graph.Csr.node_idx c id in
          i >= 0
          && List.for_all (fun sym -> Graph.Csr.has_label_sym c i sym) lab_syms
          && List.for_all
               (fun (sym, e) ->
                 let want = eval_in ctx row e in
                 let have =
                   match sym with
                   | Some sym -> Graph.Csr.node_prop_sym c i sym
                   | None -> Value.Null
                 in
                 Value.equal_tri have want = Tri.True)
               props
  | None -> (
      fun row id ->
        match Graph.node ctx.graph id with
        | None -> false
        | Some n ->
            List.for_all (fun l -> Sset.mem l n.Graph.labels) np.np_labels
            && List.for_all
                 (fun (k, e) ->
                   let want = eval_in ctx row e in
                   Value.equal_tri (Props.get n.Graph.n_props k) want = Tri.True)
                 np.np_props)


let rel_props_satisfy (ctx : Ctx.t) row (rp : rel_pat) (r : Graph.rel) =
  List.for_all
    (fun (k, e) ->
      let want = eval_in ctx row e in
      Value.equal_tri (Props.get r.Graph.r_props k) want = Tri.True)
    rp.rp_props

let rel_satisfies (ctx : Ctx.t) row (rp : rel_pat) (r : Graph.rel) =
  (match rp.rp_types with
  | [] -> true
  | types -> List.mem r.Graph.r_type types)
  && rel_props_satisfy ctx row rp r

(** [compile_rel_check ctx csr rp] is the per-relationship predicate of
    [rp] minus whatever the adjacency enumeration already guarantees:
    the CSR fold filters by interned type symbol (for any arity of type
    list), so under it only property predicates remain — and a
    property-free pattern needs no per-relationship check at all.  The
    persistent path's typed adjacency only covers the single-type case,
    so it keeps the full {!rel_satisfies}. *)
let compile_rel_check (ctx : Ctx.t) ~csr (rp : rel_pat) :
    Record.t -> Graph.rel -> bool =
  if csr then
    match rp.rp_props with
    | [] -> fun _ _ -> true
    | _ -> fun row r -> rel_props_satisfy ctx row rp r
  else fun row r -> rel_satisfies ctx row rp r

(** Would {!bind_var} succeed?  The conflicting-rebinding test alone,
    without committing the binding — for leaf positions whose extended
    state nothing will ever read (see {!count_pattern_planned}). *)
let bind_check st var v =
  match var with
  | None -> true
  | Some name -> (
      match Record.find_opt st.row name with
      | None -> true
      | Some existing -> Value.equal_strict existing v)

(** Binds [var] to [v] in [row], failing (None) on conflicting
    rebinding — the row-level core shared by {!bind_var} and the
    precompiled binding sites. *)
let row_bind_var row var v =
  match var with
  | None -> Some row
  | Some name -> (
      match Record.find_opt row name with
      | None -> Some (Record.bind row name v)
      | Some existing ->
          if Value.equal_strict existing v then Some row else None)

(** Binds [var] to [v] in [st], failing (None) on conflicting rebinding. *)
let bind_var st var v =
  match row_bind_var st.row var v with
  | None -> None
  | Some row -> Some (if row == st.row then st else { st with row })

(** [compile_row_binder row0 var] compiles a conflict-checked binding
    site against the layout of [row0] — the row every row of this
    pattern invocation descends from.  On a slot row the variable's slot
    index is resolved here, once per invocation, so each per-embedding
    bind is an array probe plus a copying store ({!Record.slot_bind}),
    with no name resolution.  Sound because in-layout binds preserve the
    slot table and out-of-layout binds only append to it, so an index
    resolved against [row0] addresses the same variable in every
    descendant row.  Map rows (and variables outside the layout) keep
    the generic name-resolving path. *)
let compile_row_binder row0 (var : string option) :
    Record.t -> Value.t -> Record.t option =
  match var with
  | None -> fun row _ -> Some row
  | Some name -> (
      match Record.slots_view row0 with
      | Some (tab, _) ->
          let i = Slots.index tab name in
          if i < 0 then fun row v -> row_bind_var row var v
          else fun row v -> Record.slot_bind row i v
      | None -> fun row v -> row_bind_var row var v)

(** Candidate nodes for a node pattern: the binding if the variable is
    already bound, otherwise all graph nodes. *)
let node_candidates st (np : node_pat) : Value.node_id list option =
  match np.np_var with
  | Some name -> (
      match Record.find_opt st.row name with
      | Some (Value.Node id) -> Some [ id ]
      | Some Value.Null -> Some [] (* null binding never matches *)
      | Some _ -> Some []
      | None -> None)
  | None -> None

let match_node (ctx : Ctx.t) st (np : node_pat) : (state * Value.node_id) list =
  let candidates =
    match node_candidates st np with
    | Some ids -> ids
    | None -> (
        (* anchor the scan on a label when the pattern carries one: the
           store's label index avoids a full node sweep *)
        match np.np_labels with
        | [] -> Graph.node_ids ctx.graph
        | label :: _ -> Graph.nodes_with_label ctx.graph label)
  in
  let check = node_check ctx np in
  List.filter_map
    (fun id ->
      if check st.row id then
        Option.map
          (fun st -> (st, id))
          (bind_var st np.np_var (Value.Node id))
      else None)
    candidates

let flip = function Out -> In | In -> Out | Undirected -> Undirected

(* [fold_adjacent g src_id rp ~reversed f acc] (below) folds [f] over
   the relationships at [src_id] compatible with the direction of [rp]
   (flipped under [~reversed], for hops traversed right-to-left),
   pairing each with the node at the far end, in relationship-id order.
   A single-type pattern is served from the typed adjacency index —
   same id order as filtering the full neighbour list, but without
   touching non-matching types.  Folding (rather than materialising a
   neighbour list) keeps the per-hop allocation at zero; hop
   enumeration is the innermost loop of every MATCH and MERGE.

   Compact-backend fast path: the per-node CSR slices are
   relationship-id-sorted copies of the persistent adjacency sets, so
   filtering them by interned type symbol yields exactly the persistent
   path's enumeration, without set unions or per-rel map lookups.  The
   index-level core passes [f] the dense relationship index and the far
   node id, both plain ints — the relationship *record* is never
   touched, so a caller that only needs ints (the counting leaf, the
   BFS frontier) stays record-free.  Ordering the undirected merge
   compares dense indices directly: the builder assigns them in id
   order, so index order is id order. *)

(** [compile_tymatch rp] resolves the pattern's type names to interned
    symbols, once — the per-relationship test is then an int comparison.
    Interning is append-only and the graph is immutable during a match,
    so resolving at compile time and at enumeration time agree. *)
let compile_tymatch (rp : rel_pat) : int -> bool =
  match rp.rp_types with
  | [] -> fun _ -> true
  | [ ty ] -> (
      match Symtab.find ty with
      | Some sym -> fun t -> t = sym
      | None -> fun _ -> false)
  | types ->
      let syms = List.filter_map Symtab.find types in
      fun t -> List.mem t syms

(** The direction-and-type-resolved core of CSR hop enumeration; the
    public entry points resolve [tymatch]/[dir] per call, the compiled
    hot paths ({!compile_adjacent}, the shortest-path BFS) hoist that
    resolution out of their loops. *)
let fold_adjacent_csr_tyd (c : Graph.Csr.t) ~tymatch ~dir src_id
    (f : int -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  let open Graph.Csr in
  let i = node_idx c src_id in
  if i < 0 then acc
  else
    match dir with
    | Out ->
        let hi = c.out_off.(i + 1) in
        let rec go k acc =
          if k >= hi then acc
          else
            go (k + 1)
              (if tymatch c.out_ty.(k) then f c.out_ridx.(k) c.out_far.(k) acc
               else acc)
        in
        go c.out_off.(i) acc
    | In ->
        let hi = c.in_off.(i + 1) in
        let rec go k acc =
          if k >= hi then acc
          else
            go (k + 1)
              (if tymatch c.in_ty.(k) then f c.in_ridx.(k) c.in_far.(k) acc
               else acc)
        in
        go c.in_off.(i) acc
    | Undirected ->
        (* merge the id-sorted out and in slices; a self-loop sits in
           both at the same id and is taken once, from the out side *)
        let ohi = c.out_off.(i + 1) and ihi = c.in_off.(i + 1) in
        let rec merge ko ki acc =
          if ko >= ohi && ki >= ihi then acc
          else if ki >= ihi || (ko < ohi && c.out_ridx.(ko) <= c.in_ridx.(ki))
          then
            let ki =
              if ki < ihi && c.in_ridx.(ki) = c.out_ridx.(ko) then ki + 1
              else ki
            in
            let acc =
              if tymatch c.out_ty.(ko) then f c.out_ridx.(ko) c.out_far.(ko) acc
              else acc
            in
            merge (ko + 1) ki acc
          else
            let acc =
              if tymatch c.in_ty.(ki) then f c.in_ridx.(ki) c.in_far.(ki) acc
              else acc
            in
            merge ko (ki + 1) acc
        in
        merge c.out_off.(i) c.in_off.(i) acc

(** [fold_adjacent_csr_tyd_rev] is {!fold_adjacent_csr_tyd} in exactly
    reversed enumeration order (descending relationship id).  The
    undirected case mirrors the forward merge: descending ids, a
    self-loop — present in both slices at the same id — taken once,
    from the out side. *)
let fold_adjacent_csr_tyd_rev (c : Graph.Csr.t) ~tymatch ~dir src_id
    (f : int -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  let open Graph.Csr in
  let i = node_idx c src_id in
  if i < 0 then acc
  else
    match dir with
    | Out ->
        let lo = c.out_off.(i) in
        let rec go k acc =
          if k < lo then acc
          else
            go (k - 1)
              (if tymatch c.out_ty.(k) then f c.out_ridx.(k) c.out_far.(k) acc
               else acc)
        in
        go (c.out_off.(i + 1) - 1) acc
    | In ->
        let lo = c.in_off.(i) in
        let rec go k acc =
          if k < lo then acc
          else
            go (k - 1)
              (if tymatch c.in_ty.(k) then f c.in_ridx.(k) c.in_far.(k) acc
               else acc)
        in
        go (c.in_off.(i + 1) - 1) acc
    | Undirected ->
        let olo = c.out_off.(i) and ilo = c.in_off.(i) in
        let rec merge ko ki acc =
          if ko < olo && ki < ilo then acc
          else if ki < ilo || (ko >= olo && c.out_ridx.(ko) >= c.in_ridx.(ki))
          then
            let ki =
              if ki >= ilo && c.in_ridx.(ki) = c.out_ridx.(ko) then ki - 1
              else ki
            in
            let acc =
              if tymatch c.out_ty.(ko) then f c.out_ridx.(ko) c.out_far.(ko) acc
              else acc
            in
            merge (ko - 1) ki acc
          else
            let acc =
              if tymatch c.in_ty.(ki) then f c.in_ridx.(ki) c.in_far.(ki) acc
              else acc
            in
            merge ko (ki - 1) acc
        in
        merge (c.out_off.(i + 1) - 1) (c.in_off.(i + 1) - 1) acc

let fold_adjacent_csr_idx (c : Graph.Csr.t) src_id (rp : rel_pat) ~reversed
    (f : int -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  let tymatch = compile_tymatch rp in
  let dir = if reversed then flip rp.rp_dir else rp.rp_dir in
  fold_adjacent_csr_tyd c ~tymatch ~dir src_id f acc

let fold_adjacent_csr (c : Graph.Csr.t) src_id (rp : rel_pat) ~reversed
    (f : Graph.rel -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  fold_adjacent_csr_idx c src_id rp ~reversed
    (fun j far acc -> f c.Graph.Csr.rel_recs.(j) far acc)
    acc

let fold_adjacent_maps (g : Graph.t) src_id (rp : rel_pat) ~reversed
    (f : Graph.rel -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  let out_set, in_set =
    match rp.rp_types with
    | [ ty ] ->
        ( Graph.out_rel_ids_typed g src_id ty,
          Graph.in_rel_ids_typed g src_id ty )
    | _ -> (Graph.out_rel_ids g src_id, Graph.in_rel_ids g src_id)
  in
  let dir = if reversed then flip rp.rp_dir else rp.rp_dir in
  match dir with
  | Out ->
      Iset.fold
        (fun rid acc ->
          let r = Graph.rel_exn g rid in
          f r r.Graph.tgt acc)
        out_set acc
  | In ->
      Iset.fold
        (fun rid acc ->
          let r = Graph.rel_exn g rid in
          f r r.Graph.src acc)
        in_set acc
  | Undirected ->
      (* the incident set is a union of the two adjacency sets, so a
         self-loop appears once without any post-hoc deduplication *)
      Iset.fold
        (fun rid acc ->
          let r = Graph.rel_exn g rid in
          let far =
            if r.Graph.src = src_id then r.Graph.tgt else r.Graph.src
          in
          f r far acc)
        (Iset.union out_set in_set)
        acc

let fold_adjacent (g : Graph.t) src_id (rp : rel_pat) ~reversed
    (f : Graph.rel -> Value.node_id -> 'a -> 'a) (acc : 'a) : 'a =
  match Graph.csr_view g with
  | Some c -> fold_adjacent_csr c src_id rp ~reversed f acc
  | None -> fold_adjacent_maps g src_id rp ~reversed f acc

(** A hop's adjacency enumeration with everything resolvable per
    pattern invocation resolved up front: backend dispatch, traversal
    direction, interned type symbols.  {!fold_adjacent} re-resolves all
    three on every call — fine for one-off enumeration, measurable when
    a hop is expanded from 10⁵ states.  The polymorphic field lets one
    compiled value serve any accumulator type. *)
type adj = {
  adj :
    'a. Value.node_id -> (Graph.rel -> Value.node_id -> 'a -> 'a) -> 'a -> 'a;
}

let compile_adjacent (g : Graph.t) (rp : rel_pat) ~reversed : adj =
  match Graph.csr_view g with
  | Some c ->
      let tymatch = compile_tymatch rp in
      let dir = if reversed then flip rp.rp_dir else rp.rp_dir in
      let recs = c.Graph.Csr.rel_recs in
      {
        adj =
          (fun src f acc ->
            fold_adjacent_csr_tyd c ~tymatch ~dir src
              (fun j far acc -> f recs.(j) far acc)
              acc);
      }
  | None ->
      { adj = (fun src f acc -> fold_adjacent_maps g src rp ~reversed f acc) }

(** [compile_adjacent_rev] is {!compile_adjacent} enumerating in exactly
    reversed order — only available on the CSR backend (the persistent
    sets fold ascending only), hence the option. *)
let compile_adjacent_rev (g : Graph.t) (rp : rel_pat) ~reversed : adj option =
  match Graph.csr_view g with
  | Some c ->
      let tymatch = compile_tymatch rp in
      let dir = if reversed then flip rp.rp_dir else rp.rp_dir in
      let recs = c.Graph.Csr.rel_recs in
      Some
        {
          adj =
            (fun src f acc ->
              fold_adjacent_csr_tyd_rev c ~tymatch ~dir src
                (fun j far acc -> f recs.(j) far acc)
                acc);
        }
  | None -> None

(** Folds over the matches of a single (non-variable-length)
    relationship step from [src_id]: states extended with the
    relationship binding, the far node id, and the traversed
    relationship, in relationship-id order. *)
let fold_single_rel ?(reversed = false) ?bind ?check ?adj (ctx : Ctx.t) st
    src_id (rp : rel_pat)
    (f : state -> Value.node_id -> Graph.rel -> 'a -> 'a) (acc : 'a) : 'a =
  (* callers on the hot path pass binding sites, relationship checks and
     adjacency enumeration compiled once per pattern invocation; the
     defaults recompute them per relationship (or per state), which is
     what the generic path always did *)
  let bind =
    match bind with
    | Some b -> b
    | None -> fun row v -> row_bind_var row rp.rp_var v
  in
  let check =
    match check with
    | Some c -> c
    | None -> fun row r -> rel_satisfies ctx row rp r
  in
  let body (r : Graph.rel) far acc =
    if not (rel_available st r.Graph.r_id) then acc
    else if not (check st.row r) then acc
    else
      match bind st.row (Value.Rel r.Graph.r_id) with
      | None -> acc
      | Some row -> (
          (* one state allocation for the used-set and row updates
             together (the split use_rel-then-bind form allocated two) *)
          match st.mode with
          | Iso ->
              f { st with used = Iset.add r.Graph.r_id st.used; row } far r acc
          | Homo -> f (if row == st.row then st else { st with row }) far r acc)
  in
  match adj with
  | Some a -> a.adj src_id body acc
  | None -> fold_adjacent ctx.graph src_id rp ~reversed body acc

(** Matches a variable-length step: all edge-distinct walks from
    [src_id] whose length lies within the range.  The relationship
    variable (if any) binds to the list of traversed relationships.
    Under [~reversed] the walk is explored from the step's right
    endpoint but reported in the pattern's left-to-right order. *)
let match_varlength ?(reversed = false) (ctx : Ctx.t) st src_id (rp : rel_pat)
    lo hi : (state * Value.node_id * Graph.rel list) list =
  let results = ref [] in
  (* [walk] keeps the walk's own edges distinct — under both matching
     regimes, so that unbounded ranges stay finite *)
  let rec explore st walk node rels_rev len =
    if len >= lo then begin
      let rels = if reversed then rels_rev else List.rev rels_rev in
      results := (st, node, rels) :: !results
    end;
    if match hi with Some h -> len < h | None -> true then
      fold_adjacent ctx.graph node rp ~reversed
        (fun (r : Graph.rel) far () ->
          if
            (not (Iset.mem r.Graph.r_id walk))
            && rel_available st r.Graph.r_id
            && rel_satisfies ctx st.row rp r
          then
            explore
              (use_rel st r.Graph.r_id)
              (Iset.add r.Graph.r_id walk)
              far (r :: rels_rev) (len + 1))
        ()
  in
  explore st Iset.empty src_id [] 0;
  List.filter_map
    (fun (st, far, rels) ->
      let rel_list =
        Value.List (List.map (fun (r : Graph.rel) -> Value.Rel r.Graph.r_id) rels)
      in
      Option.map (fun st -> (st, far, rels)) (bind_var st rp.rp_var rel_list))
    (List.rev !results)

(** Folds [emit] over the matches of one whole path pattern left-to-right
    from state [st] — the naive enumeration: anchor on [pat_start], walk
    the steps in syntactic order.  [emit] is called once per embedding,
    in traversal order; materialising a state list is just one choice of
    [emit] (see {!match_pattern_naive}), counting is another
    (see {!count_patterns}). *)
let fold_pattern_naive (ctx : Ctx.t) st (p : pattern)
    (emit : state -> 'a -> 'a) (acc0 : 'a) : 'a =
  let starts = match_node ctx st p.pat_start in
  (* the path value is only assembled when the pattern is named; an
     anonymous pattern skips the per-embedding list building entirely. *)
  let named = p.pat_var <> None in
  (* far-node checks, binding sites and relationship predicates compiled
     once per pattern, not once per embedding *)
  let csr = Graph.csr_view ctx.graph <> None in
  let compiled_steps =
    List.map
      (fun (rp, np) ->
        ( rp,
          node_check ctx np,
          compile_row_binder st.row np.np_var,
          compile_row_binder st.row rp.rp_var,
          compile_rel_check ctx ~csr rp,
          compile_adjacent ctx.graph rp ~reversed:false ))
      p.pat_steps
  in
  let rec steps st node_id nodes_rev rels_rev rest acc =
    match rest with
    | [] ->
        if not named then emit st acc
        else
          let path =
            Value.Path
              {
                Value.path_nodes = List.rev nodes_rev;
                path_rels = List.rev rels_rev;
              }
          in
          (match bind_var st p.pat_var path with
          | None -> acc
          | Some st -> emit st acc)
    | (rp, check, fbind, rbind, rcheck, adj) :: rest ->
        let far_step st far rels acc =
          if not (check st.row far) then acc
          else
            match fbind st.row (Value.Node far) with
            | None -> acc
            | Some row ->
                let st = if row == st.row then st else { st with row } in
                if not named then steps st far nodes_rev rels_rev rest acc
                else
                  steps st far (far :: nodes_rev)
                    (List.rev_append
                       (List.map (fun (r : Graph.rel) -> r.Graph.r_id) rels)
                       rels_rev)
                    rest acc
        in
        (match rp.rp_range with
        | None ->
            fold_single_rel ~bind:rbind ~check:rcheck ~adj ctx st node_id rp
              (fun st far r acc ->
                far_step st far (if named then [ r ] else []) acc)
              acc
        | Some (lo, hi) ->
            let lo = Option.value ~default:1 lo in
            List.fold_left
              (fun acc (st, far, rels) -> far_step st far rels acc)
              acc
              (match_varlength ctx st node_id rp lo hi))
  in
  List.fold_left
    (fun acc (st, start_id) ->
      steps st start_id
        (if named then [ start_id ] else [])
        [] compiled_steps acc)
    acc0 starts

(* ------------------------------------------------------------------ *)
(* Planned execution                                                  *)
(* ------------------------------------------------------------------ *)

(** Candidate nodes for a planned anchor.  Bound variables and index
    lookups still pass through {!node_satisfies}, so an index bucket may
    safely over-approximate (it is re-filtered). *)
let anchor_candidates (ctx : Ctx.t) st (plan : Plan.t) : Value.node_id list =
  let np = plan.Plan.p_anchor in
  match plan.Plan.p_anchor_kind with
  | Plan.Anchor_bound -> (
      match node_candidates st np with Some ids -> ids | None -> [])
  | Plan.Anchor_prop_index { pi_label; pi_key; pi_value } -> (
      let v = eval_in ctx st.row pi_value in
      match Graph.nodes_with_prop ctx.graph ~label:pi_label ~key:pi_key v with
      | Some ids -> ids
      | None -> Graph.nodes_with_label ctx.graph pi_label)
  | Plan.Anchor_label label -> Graph.nodes_with_label ctx.graph label
  | Plan.Anchor_scan -> Graph.node_ids ctx.graph

exception Not_deferrable

(** [fold_pattern_planned_deferred ctx st plan p emit acc0] is the
    slot-row fast path of {!fold_pattern_planned}: row construction is
    *deferred to the leaf*.  The recursion threads raw node/relationship
    ids through per-invocation scratch arrays and builds one cell array,
    one row and one state per *emitted* embedding — instead of a copied
    row plus a state record per hop of every partial embedding, most of
    which fail a later hop and are thrown away.

    Applicability ([None] falls back to the eager fold):
    - the driving row is a slot row and the pattern is anonymous and has
      no variable-length step;
    - every pattern variable maps to a distinct, currently-absent slot of
      the row's layout — so every eager bind would have succeeded without
      conflict, and the leaf write-out produces the same cells;
    - no property expression of the pattern reads a pattern variable —
      so checking against the invocation's starting row evaluates
      exactly as the eager fold's partial rows would.

    Under [Iso], within-pattern relationship distinctness is a linear
    scan of the (≤ hop-count) scratch ids instead of a per-hop set
    insert; the used-set union happens once per emitted row.  Traversal
    order, check order and emitted rows are identical to the eager fold,
    which is what keeps the two byte-identical through the pipeline.

    When [emit_row] is supplied the consumer wants rows only (the last
    pattern of a tuple): the leaf then skips the used-set union and the
    state allocation altogether and [emit] is never called.

    Under [~natural] the whole enumeration runs in exactly *reversed*
    traversal order — reversed anchor list, descending-id adjacency —
    so a consumer that prepends obtains the rows in natural (forward)
    order without a final reversal.  Requires the CSR backend (the
    persistent adjacency sets fold ascending only) and a fully
    property-free pattern: with no expressions to evaluate, enumeration
    order is unobservable except through the row order the caller is
    deliberately inverting. *)
let fold_pattern_planned_deferred ?emit_row ?(natural = false) (ctx : Ctx.t)
    st (plan : Plan.t) (p : pattern) (emit : state -> 'a -> 'a) (acc0 : 'a) :
    'a option =
  match Record.slots_view st.row with
  | None -> None
  | Some (tab, cells0) -> (
      if
        p.pat_var <> None
        || List.exists
             (fun (h : Plan.hop) -> h.Plan.h_rp.rp_range <> None)
             plan.Plan.p_hops
      then None
      else
        try
          let slot_of var =
            match var with
            | None -> -1
            | Some name ->
                let i = Slots.index tab name in
                if i < 0 || Array.unsafe_get cells0 i != Slots.absent then
                  raise Not_deferrable;
                i
          in
          let anchor_slot = slot_of plan.Plan.p_anchor.np_var in
          let hops_arr = Array.of_list plan.Plan.p_hops in
          let n_hops = Array.length hops_arr in
          let far_slot =
            Array.map (fun (h : Plan.hop) -> slot_of h.Plan.h_far.np_var) hops_arr
          in
          let rel_slot =
            Array.map (fun (h : Plan.hop) -> slot_of h.Plan.h_rp.rp_var) hops_arr
          in
          let all_slots =
            List.filter
              (fun i -> i >= 0)
              (anchor_slot :: (Array.to_list far_slot @ Array.to_list rel_slot))
          in
          if
            List.length (List.sort_uniq Int.compare all_slots)
            <> List.length all_slots
          then raise Not_deferrable;
          let pvars =
            List.filter_map Fun.id
              (p.pat_start.np_var
              :: List.concat_map
                   (fun (rp, np) -> [ rp.rp_var; np.np_var ])
                   p.pat_steps)
          in
          let closed (_, e) =
            List.for_all (fun v -> not (List.mem v pvars)) (expr_free_vars e)
          in
          if
            not
              (List.for_all closed plan.Plan.p_anchor.np_props
              && Array.for_all
                   (fun (h : Plan.hop) ->
                     List.for_all closed h.Plan.h_far.np_props
                     && List.for_all closed h.Plan.h_rp.rp_props)
                   hops_arr)
          then raise Not_deferrable;
          if
            natural
            && not
                 (plan.Plan.p_anchor.np_props = []
                 && Array.for_all
                      (fun (h : Plan.hop) ->
                        h.Plan.h_far.np_props = [] && h.Plan.h_rp.rp_props = [])
                      hops_arr)
          then raise Not_deferrable;
          let anchor_check = node_check ctx plan.Plan.p_anchor in
          let csr = Graph.csr_view ctx.graph <> None in
          let row0 = st.row in
          let iso = st.mode = Iso in
          let compile_adj (h : Plan.hop) =
            if natural then
              match
                compile_adjacent_rev ctx.graph h.Plan.h_rp
                  ~reversed:h.Plan.h_reversed
              with
              | Some a -> a
              | None -> raise Not_deferrable
            else
              compile_adjacent ctx.graph h.Plan.h_rp
                ~reversed:h.Plan.h_reversed
          in
          let compiled =
            Array.map
              (fun (h : Plan.hop) ->
                ( h,
                  node_check ctx h.Plan.h_far,
                  compile_rel_check ctx ~csr h.Plan.h_rp,
                  compile_adj h ))
              hops_arr
          in
          (* the current branch's ids by hop depth; DFS writes depth [d]
             before descending, so indices below the current depth always
             hold this branch's ancestors *)
          let far_ids = Array.make (max n_hops 1) 0 in
          let rel_ids = Array.make (max n_hops 1) 0 in
          let anchor_id = ref 0 in
          let needed_later from_i pos =
            let rec go j =
              j < n_hops && (hops_arr.(j).Plan.h_src_pos = pos || go (j + 1))
            in
            go from_i
          in
          let anchor_store = needed_later 1 plan.Plan.p_anchor_pos in
          let store =
            Array.mapi
              (fun i (h : Plan.hop) -> needed_later (i + 2) h.Plan.h_far_pos)
              hops_arr
          in
          let leaf_row () =
            let cells = Array.copy cells0 in
            if anchor_slot >= 0 then
              cells.(anchor_slot) <- Value.Node !anchor_id;
            for d = 0 to n_hops - 1 do
              if far_slot.(d) >= 0 then
                cells.(far_slot.(d)) <- Value.Node far_ids.(d);
              if rel_slot.(d) >= 0 then
                cells.(rel_slot.(d)) <- Value.Rel rel_ids.(d)
            done;
            Record.of_slots tab cells
          in
          let emit_leaf =
            match emit_row with
            | Some f -> fun acc -> f (leaf_row ()) acc
            | None ->
                fun acc ->
                  let used =
                    if iso then begin
                      let u = ref st.used in
                      for d = 0 to n_hops - 1 do
                        u := Iset.add rel_ids.(d) !u
                      done;
                      !u
                    end
                    else st.used
                  in
                  emit { row = leaf_row (); used; mode = st.mode } acc
          in
          let rec hops d last_pos last_id nodes_at acc =
            if d >= n_hops then emit_leaf acc
            else
              let h, check, rcheck, adj = compiled.(d) in
              let src_id =
                if h.Plan.h_src_pos = last_pos then last_id
                else Imap.find h.Plan.h_src_pos nodes_at
              in
              adj.adj src_id
                (fun (r : Graph.rel) far acc ->
                  let rid = r.Graph.r_id in
                  let fresh =
                    (not iso)
                    || (not (Iset.mem rid st.used))
                       &&
                       let rec scan k =
                         k >= d || (rel_ids.(k) <> rid && scan (k + 1))
                       in
                       scan 0
                  in
                  if not fresh then acc
                  else if not (rcheck row0 r) then acc
                  else if not (check row0 far) then acc
                  else begin
                    rel_ids.(d) <- rid;
                    far_ids.(d) <- far;
                    hops (d + 1) h.Plan.h_far_pos far
                      (if store.(d) then Imap.add h.Plan.h_far_pos far nodes_at
                       else nodes_at)
                      acc
                  end)
                acc
          in
          let anchor_pos = plan.Plan.p_anchor_pos in
          Some
            (List.fold_left
               (fun acc id ->
                 if not (anchor_check row0 id) then acc
                 else begin
                   anchor_id := id;
                   hops 0 anchor_pos id
                     (if anchor_store then Imap.singleton anchor_pos id
                      else Imap.empty)
                     acc
                 end)
               acc0
               (let cands = anchor_candidates ctx st plan in
                if natural then List.rev cands else cands))
        with Not_deferrable -> None)

(** Matches one whole path pattern following a {!Plan.t}: enumerate the
    anchor position first, then each hop from its already-bound side.
    Nodes and traversed relationships are collected by *position* and
    *step index* so the final path value is assembled left-to-right
    regardless of traversal order. *)
let fold_pattern_planned_eager (ctx : Ctx.t) st (p : pattern) (plan : Plan.t)
    (emit : state -> 'a -> 'a) (acc0 : 'a) : 'a =
  let anchor_check = node_check ctx plan.Plan.p_anchor in
  let anchor_bind = compile_row_binder st.row plan.Plan.p_anchor.np_var in
  (* the path value is only assembled when the pattern is named; an
     anonymous pattern skips the per-step relationship bookkeeping.
     Far-node checks, binding sites and relationship predicates are
     compiled once per hop, not once per embedding. *)
  let named = p.pat_var <> None in
  let csr = Graph.csr_view ctx.graph <> None in
  (* The recursion threads the most recently bound position as a plain
     (position, id) pair; the position map only receives entries some
     *later-than-next* hop sources from (plans bind positions in hop
     order, so nothing else ever reads it).  A chain pattern — each hop
     leaving the previous hop's far node — therefore runs with the map
     permanently empty.  A named pattern stores every position: path
     assembly reads them all. *)
  let hops_arr = Array.of_list plan.Plan.p_hops in
  let needed_later from_i pos =
    named
    ||
    let n = Array.length hops_arr in
    let rec go j =
      j < n && (hops_arr.(j).Plan.h_src_pos = pos || go (j + 1))
    in
    go from_i
  in
  let anchor_store = needed_later 1 plan.Plan.p_anchor_pos in
  let compiled_hops =
    List.mapi
      (fun i (h : Plan.hop) ->
        ( h,
          node_check ctx h.Plan.h_far,
          compile_row_binder st.row h.Plan.h_far.np_var,
          compile_row_binder st.row h.Plan.h_rp.rp_var,
          compile_rel_check ctx ~csr h.Plan.h_rp,
          compile_adjacent ctx.graph h.Plan.h_rp ~reversed:h.Plan.h_reversed,
          needed_later (i + 2) h.Plan.h_far_pos ))
      plan.Plan.p_hops
  in
  let rec hops st last_pos last_id nodes_at rels_at rest acc =
    match rest with
    | [] ->
        if not named then emit st acc
        else
          let path =
            Value.Path
              {
                Value.path_nodes =
                  List.init plan.Plan.p_positions (fun i ->
                      Imap.find i nodes_at);
                path_rels =
                  List.concat_map
                    (fun (_, rels) ->
                      List.map (fun (r : Graph.rel) -> r.Graph.r_id) rels)
                    (Imap.bindings rels_at);
              }
          in
          (match bind_var st p.pat_var path with
          | None -> acc
          | Some st -> emit st acc)
    | ((h : Plan.hop), check, fbind, rbind, rcheck, adj, store) :: rest ->
        let src_id =
          if h.Plan.h_src_pos = last_pos then last_id
          else Imap.find h.Plan.h_src_pos nodes_at
        in
        let reversed = h.Plan.h_reversed in
        let far_step st far rels acc =
          if not (check st.row far) then acc
          else
            match fbind st.row (Value.Node far) with
            | None -> acc
            | Some row ->
                let st = if row == st.row then st else { st with row } in
                hops st h.Plan.h_far_pos far
                  (if store then Imap.add h.Plan.h_far_pos far nodes_at
                   else nodes_at)
                  (if named then Imap.add h.Plan.h_step rels rels_at
                   else rels_at)
                  rest acc
        in
        (match h.Plan.h_rp.rp_range with
        | None ->
            fold_single_rel ~reversed ~bind:rbind ~check:rcheck ~adj ctx st
              src_id h.Plan.h_rp
              (fun st far r acc ->
                far_step st far (if named then [ r ] else []) acc)
              acc
        | Some (lo, hi) ->
            let lo = Option.value ~default:1 lo in
            List.fold_left
              (fun acc (st, far, rels) -> far_step st far rels acc)
              acc
              (match_varlength ~reversed ctx st src_id h.Plan.h_rp lo hi))
  in
  let anchor_pos = plan.Plan.p_anchor_pos in
  List.fold_left
    (fun acc id ->
      if not (anchor_check st.row id) then acc
      else
        match anchor_bind st.row (Value.Node id) with
        | None -> acc
        | Some row ->
            let st = if row == st.row then st else { st with row } in
            hops st anchor_pos id
              (if anchor_store then Imap.singleton anchor_pos id
               else Imap.empty)
              Imap.empty compiled_hops acc)
    acc0
    (anchor_candidates ctx st plan)

(** [emit_row], when supplied, replaces [emit] with a row-only consumer
    (the callee may then skip per-embedding state bookkeeping — the
    deferred fold does; the eager fold just adapts). *)
let fold_pattern_planned ?emit_row (ctx : Ctx.t) st (p : pattern)
    (plan : Plan.t) (emit : state -> 'a -> 'a) (acc0 : 'a) : 'a =
  let emit =
    match emit_row with Some f -> fun st acc -> f st.row acc | None -> emit
  in
  match fold_pattern_planned_deferred ?emit_row ctx st plan p emit acc0 with
  | Some acc -> acc
  | None -> fold_pattern_planned_eager ctx st p plan emit acc0

(** [count_pattern_planned ctx st p plan] is
    [fold_pattern_planned ctx st p plan (fun _ n -> n + 1) 0] with one
    extra specialisation: on a final single-relationship anonymous hop of
    an anonymous pattern, matching relationships are counted in place.
    The state [far_step] would build there — relationship marked used,
    far variable bound, a fresh record — is dead at the leaf, so only
    the *checks* run (availability, relationship predicates, far-node
    check, conflicting-rebind test), in exactly the generic path's
    evaluation order.  Only sound for the last pattern of a MATCH tuple:
    an earlier pattern's used-set is consulted by the patterns after it. *)
let count_pattern_planned (ctx : Ctx.t) st (p : pattern) (plan : Plan.t) : int
    =
  if p.pat_var <> None then
    fold_pattern_planned ctx st p plan (fun _ n -> n + 1) 0
  else
    let anchor_check = node_check ctx plan.Plan.p_anchor in
    let compiled_hops =
      List.map
        (fun (h : Plan.hop) -> (h, node_check ctx h.Plan.h_far))
        plan.Plan.p_hops
    in
    let rec hops st nodes_at rest acc =
      match rest with
      | [] -> acc + 1
      | [ ((h : Plan.hop), check) ]
        when h.Plan.h_rp.rp_range = None && h.Plan.h_rp.rp_var = None ->
          (* final hop: count matching relationships without committing
             the extension *)
          let src_id = Imap.find h.Plan.h_src_pos nodes_at in
          let rp = h.Plan.h_rp in
          let far_var = h.Plan.h_far.np_var in
          (match Graph.csr_view ctx.graph with
          | Some c when rp.rp_props = [] ->
              (* record-free on the compact backend: the slice's type
                 filter subsumes [rel_satisfies] when the pattern has no
                 property map, and the used-set test reads the id from
                 the [rel_id] arena — the innermost loop touches only
                 int arrays *)
              fold_adjacent_csr_idx c src_id rp ~reversed:h.Plan.h_reversed
                (fun j far acc ->
                  if
                    rel_available st c.Graph.Csr.rel_id.(j)
                    && check st.row far
                    && bind_check st far_var (Value.Node far)
                  then acc + 1
                  else acc)
                acc
          | _ ->
              fold_adjacent ctx.graph src_id rp ~reversed:h.Plan.h_reversed
                (fun (r : Graph.rel) far acc ->
                  if
                    rel_available st r.Graph.r_id
                    && rel_satisfies ctx st.row rp r
                    && check st.row far
                    && bind_check st far_var (Value.Node far)
                  then acc + 1
                  else acc)
                acc)
      | ((h : Plan.hop), check) :: rest ->
          let src_id = Imap.find h.Plan.h_src_pos nodes_at in
          let far_step st far acc =
            match
              if check st.row far then
                bind_var st h.Plan.h_far.np_var (Value.Node far)
              else None
            with
            | None -> acc
            | Some st -> hops st (Imap.add h.Plan.h_far_pos far nodes_at) rest acc
          in
          (match h.Plan.h_rp.rp_range with
          | None ->
              fold_single_rel ~reversed:h.Plan.h_reversed ctx st src_id
                h.Plan.h_rp
                (fun st far _r acc -> far_step st far acc)
                acc
          | Some (lo, hi) ->
              let lo = Option.value ~default:1 lo in
              List.fold_left
                (fun acc (st, far, _rels) -> far_step st far acc)
                acc
                (match_varlength ~reversed:h.Plan.h_reversed ctx st src_id
                   h.Plan.h_rp lo hi))
    in
    let starts =
      List.filter_map
        (fun id ->
          if anchor_check st.row id then
            Option.map
              (fun st -> (st, Imap.singleton plan.Plan.p_anchor_pos id))
              (bind_var st plan.Plan.p_anchor.np_var (Value.Node id))
          else None)
        (anchor_candidates ctx st plan)
    in
    List.fold_left
      (fun acc (st, nodes_at) -> hops st nodes_at compiled_hops acc)
      0 starts

(** [match_patterns ?mode ?planner ?plans ctx patterns] computes all
    extensions of the context row that embed every pattern; under the
    default [Iso] mode relationship isomorphism is enforced across the
    whole pattern tuple.  [planner] enables cost-guided anchor selection
    and hop orientation (see {!Plan}); the result rows are the same
    either way, possibly in a different order.

    [plans] supplies one precomputed plan option per pattern (as built
    by {!Plan.make} against a representative row): plan selection
    depends only on which variables are bound — uniform across the rows
    of one driving table — and on graph statistics, so hoisting the
    planning out of the per-row loop preserves the result rows while
    eliminating the per-row planning cost.  A [None] entry means naive
    enumeration for that pattern (what per-row planning would also have
    chosen); a list shorter than [patterns] leaves the remaining
    patterns on per-row planning. *)
let match_patterns_rev ?(mode = Iso) ?(planner = false) ?plans (ctx : Ctx.t)
    (patterns : pattern list) : Record.t list =
  (* read-phase boundary: under the compact backend, (re)build the CSR
     snapshot here so the expansion loops below run on it *)
  Graph.ensure_csr ctx.graph;
  let init = { row = ctx.row; used = Iset.empty; mode } in
  let hints = Option.value ~default:[] plans in
  let plan_with hint st p =
    match hint with
    | Some hint -> hint (* [Some None] forces naive enumeration *)
    | None -> if planner then Plan.make ctx st.row p else None
  in
  (* each embedding of a pattern recurses straight into the remaining
     patterns (the order {!count_patterns} also follows); the final
     pattern emits result rows directly — through the row-only leaf when
     planned, which skips the per-embedding state bookkeeping nothing
     will read — so no intermediate state list is ever materialised.
     At 10⁵-row matches this saves several full list traversals. *)
  let emit_last row acc = row :: acc in
  let rec go st i rest acc =
    match rest with
    | [] ->
        (* unreachable while the [patterns = []] guard above holds; a
           structured error keeps a server process alive if it breaks *)
        Ctx.internal "match_patterns_rev: empty pattern list reached the fold"
    | [ p ] -> (
        match plan_with (List.nth_opt hints i) st p with
        | Some plan ->
            fold_pattern_planned ~emit_row:emit_last ctx st p plan
              (fun st acc -> st.row :: acc)
              acc
        | None ->
            fold_pattern_naive ctx st p (fun st acc -> st.row :: acc) acc)
    | p :: rest -> (
        let emit st acc = go st (i + 1) rest acc in
        match plan_with (List.nth_opt hints i) st p with
        | Some plan -> fold_pattern_planned ctx st p plan emit acc
        | None -> fold_pattern_naive ctx st p emit acc)
  in
  match patterns with [] -> [ init.row ] | _ -> go init 0 patterns []

let match_patterns ?mode ?planner ?plans (ctx : Ctx.t)
    (patterns : pattern list) : Record.t list =
  List.rev (match_patterns_rev ?mode ?planner ?plans ctx patterns)

(** [match_patterns_natural ?mode ?plans ctx patterns] attempts the
    fully-inverted enumeration: a single planned pattern run in
    *reversed* traversal order (descending-id CSR adjacency, reversed
    anchor list) with prepend accumulation, so the returned list is
    already in natural (forward) order — the whole match costs exactly
    one list spine, with no final reversal and no consistency
    projection needed downstream.  [None] when the shape doesn't
    qualify (several patterns, no plan, map rows, property predicates,
    persistent backend, ...) — the caller falls back to
    {!match_patterns_rev}. *)
let match_patterns_natural ?(mode = Iso) ?(planner = false) ?plans
    (ctx : Ctx.t) (patterns : pattern list) : Record.t list option =
  match patterns with
  | [ p ] -> (
      Graph.ensure_csr ctx.graph;
      let init = { row = ctx.row; used = Iset.empty; mode } in
      let hint =
        match plans with Some (h :: _) -> Some h | _ -> None
      in
      let plan =
        match hint with
        | Some hint -> hint
        | None -> if planner then Plan.make ctx init.row p else None
      in
      match plan with
      | None -> None
      | Some plan ->
          fold_pattern_planned_deferred
            ~emit_row:(fun row acc -> row :: acc)
            ~natural:true ctx init plan p
            (fun st acc -> st.row :: acc)
            [])
  | _ -> None

(** [count_patterns ?mode ?planner ?plans ctx patterns] is
    [List.length (match_patterns ... )] without materialising any state
    list: each pattern's embeddings are folded over directly, recursing
    into the remaining patterns per embedding.  Traversal (and therefore
    any error raised by a property expression) follows exactly the order
    of {!match_patterns}.  The engine uses this to fuse
    [MATCH ... RETURN count( * )] — at 10⁵+ embeddings the dominant cost
    of the materialising path is allocating and promoting the result
    records, which a count never looks at. *)
let count_patterns ?(mode = Iso) ?(planner = false) ?plans (ctx : Ctx.t)
    (patterns : pattern list) : int =
  Graph.ensure_csr ctx.graph;
  let init = { row = ctx.row; used = Iset.empty; mode } in
  let hints = Option.value ~default:[] plans in
  let rec count st i = function
    | [] -> 1
    | p :: rest ->
        let plan_for =
          match List.nth_opt hints i with
          | Some hint -> hint (* [Some None] forces naive enumeration *)
          | None -> if planner then Plan.make ctx st.row p else None
        in
        let last = rest = [] in
        (match plan_for with
        | Some plan ->
            if last then count_pattern_planned ctx st p plan
            else
              fold_pattern_planned ctx st p plan
                (fun st' n -> n + count st' (i + 1) rest)
                0
        | None ->
            if last then fold_pattern_naive ctx st p (fun _ n -> n + 1) 0
            else
              fold_pattern_naive ctx st p
                (fun st' n -> n + count st' (i + 1) rest)
                0)
  in
  count init 0 patterns

(** [matches ?mode ?planner ctx patterns] decides (p, G, u) ⊨ π: is
    there at least one embedding?  Used by MERGE to split the driving
    table. *)
let matches ?mode ?planner ctx patterns =
  match_patterns ?mode ?planner ctx patterns <> []

(* ------------------------------------------------------------------ *)
(* Shortest paths                                                     *)
(* ------------------------------------------------------------------ *)

(** [shortest_paths ctx ~all pattern] evaluates
    [shortestPath((a)-[:T*]->(b))] (and [allShortestPaths]): a BFS over
    relationships satisfying the single variable-length step, between
    two *bound* endpoints.  Returns a {!Value.Path} (or a list of paths
    under [~all:true]); [Null] (or the empty list) when no path exists.
    The zero-length path is a valid answer when the endpoints coincide
    and the range admits length 0. *)
let shortest_paths (ctx : Ctx.t) ~all (p : pattern) : Value.t =
  Graph.ensure_csr ctx.graph;
  let rp, end_np =
    match p.pat_steps with
    | [ (rp, np) ] when rp.rp_range <> None -> (rp, np)
    | _ ->
        Ctx.error
          "shortestPath requires a single variable-length relationship \
           pattern, e.g. shortestPath((a)-[:T*]->(b))"
  in
  let endpoint (np : node_pat) =
    match np.np_var with
    | Some v -> (
        match Record.find_opt ctx.row v with
        | Some (Value.Node id) -> Some id
        | Some Value.Null -> None
        | Some v ->
            Ctx.error "shortestPath endpoint is not a node: %s"
              (Value.to_string v)
        | None ->
            Ctx.error
              "shortestPath endpoints must be bound (variable `%s` is not)" v)
    | None -> Ctx.error "shortestPath endpoints must be named and bound"
  in
  match (endpoint p.pat_start, endpoint end_np) with
  | None, _ | _, None -> Value.Null (* null endpoint: no path *)
  | Some src, Some tgt -> (
      let lo, hi =
        match rp.rp_range with
        | Some (lo, hi) -> (Option.value ~default:1 lo, hi)
        | None ->
            (* the caller dispatches here only under [rp_range <> None];
               fail structurally rather than aborting the process *)
            Ctx.internal
              "shortestPath: relationship pattern lost its length range"
      in
      (* BFS storing per-node predecessor lists so that all shortest
         walks can be reconstructed.  On the compact backend the whole
         search runs in CSR dense-index space: visited levels and
         predecessor lists are flat arrays over the node count, the
         frontier queue holds dense indices, and the adjacency fold is
         the record-free {!fold_adjacent_csr_idx} — a relationship
         record is only fetched when the pattern carries property
         predicates.  Discovery order (id-sorted slices, FIFO frontier,
         same predecessor cons order) matches the map path exactly, so
         both backends enumerate identical walk lists. *)
      let rel_walks =
        match Graph.csr_view ctx.graph with
        | Some c ->
            let open Graph.Csr in
            let src_i = node_idx c src and tgt_i = node_idx c tgt in
            let found_depth = ref None in
            let level = Array.make (c.node_count + 1) (-1) in
            let preds : (int * int) list array =
              (* (dense rel index, dense predecessor index) *)
              Array.make (c.node_count + 1) []
            in
            if src_i >= 0 then begin
              let has_props = rp.rp_props <> [] in
              (* type symbols and direction resolved once, not per
                 frontier node *)
              let tymatch = compile_tymatch rp in
              let dir = rp.rp_dir in
              level.(src_i) <- 0;
              let queue = Queue.create () in
              Queue.add src_i queue;
              let expand_from depth =
                (match !found_depth with Some d -> depth < d | None -> true)
                && match hi with Some h -> depth < h | None -> true
              in
              while not (Queue.is_empty queue) do
                let i = Queue.pop queue in
                let depth = level.(i) in
                if expand_from depth then
                  fold_adjacent_csr_tyd c ~tymatch ~dir
                    c.node_recs.(i).Graph.n_id
                    (fun j far () ->
                      (* the type filter already ran inside the fold *)
                      if
                        (not has_props)
                        || rel_satisfies ctx ctx.row rp c.rel_recs.(j)
                      then begin
                        let fi = node_idx c far in
                        (if level.(fi) < 0 then begin
                           level.(fi) <- depth + 1;
                           preds.(fi) <- [ (j, i) ];
                           Queue.add fi queue
                         end
                         else if level.(fi) = depth + 1 then
                           preds.(fi) <- (j, i) :: preds.(fi));
                        if
                          fi = tgt_i
                          && depth + 1 >= lo
                          && !found_depth = None
                        then found_depth := Some (depth + 1)
                      end)
                    ()
              done
            end;
            let rec walks_to i depth suffix : Value.rel_id list list =
              if depth = 0 then if i = src_i then [ suffix ] else []
              else
                List.concat_map
                  (fun (j, prev) ->
                    if level.(prev) = depth - 1 then
                      walks_to prev (depth - 1) (c.rel_id.(j) :: suffix)
                    else [])
                  preds.(i)
            in
            if src = tgt && lo = 0 then [ [] ]
            else (
              match !found_depth with
              | Some depth when tgt_i >= 0 -> walks_to tgt_i depth []
              | _ -> [])
        | None ->
            let preds : (int, (Graph.rel * int) list) Hashtbl.t =
              Hashtbl.create 16
            in
            let level : (int, int) Hashtbl.t = Hashtbl.create 16 in
            Hashtbl.replace level src 0;
            let queue = Queue.create () in
            Queue.add src queue;
            let found_depth = ref None in
            let expand_from depth =
              (match !found_depth with Some d -> depth < d | None -> true)
              && match hi with Some h -> depth < h | None -> true
            in
            while not (Queue.is_empty queue) do
              let node = Queue.pop queue in
              let depth = Hashtbl.find level node in
              if expand_from depth then
                fold_adjacent ctx.graph node rp ~reversed:false
                  (fun (r : Graph.rel) far () ->
                    if rel_satisfies ctx ctx.row rp r then begin
                      (match Hashtbl.find_opt level far with
                      | None ->
                          Hashtbl.replace level far (depth + 1);
                          Hashtbl.replace preds far [ (r, node) ];
                          Queue.add far queue
                      | Some d when d = depth + 1 ->
                          Hashtbl.replace preds far
                            ((r, node) :: Hashtbl.find preds far)
                      | Some _ -> ());
                      if far = tgt && depth + 1 >= lo && !found_depth = None
                      then found_depth := Some (depth + 1)
                    end)
                  ()
            done;
            (* all shortest walks as forward relationship-id lists.  The
               walk is threaded backwards from the target as an
               already-forward [suffix] (each step conses the
               relationship traversed *after* it), so no per-hop list
               copy: the old [walk @ [r_id]] append made reconstruction
               quadratic in the walk length. *)
            let rec walks_to node depth suffix : Value.rel_id list list =
              if depth = 0 then if node = src then [ suffix ] else []
              else
                List.concat_map
                  (fun ((r : Graph.rel), prev) ->
                    if Hashtbl.find_opt level prev = Some (depth - 1) then
                      walks_to prev (depth - 1) (r.Graph.r_id :: suffix)
                    else [])
                  (match Hashtbl.find_opt preds node with
                  | Some l -> l
                  | None -> [])
            in
            if src = tgt && lo = 0 then
              (* the zero-length path is trivially shortest *)
              [ [] ]
            else (
              match !found_depth with
              | Some depth -> walks_to tgt depth []
              | None -> [])
      in
      let to_path rels =
        let nodes_rev =
          List.fold_left
            (fun acc rid ->
              let r = Graph.rel_exn ctx.graph rid in
              let last = List.hd acc in
              let next = if r.Graph.src = last then r.Graph.tgt else r.Graph.src in
              next :: acc)
            [ src ] rels
        in
        { Value.path_nodes = List.rev nodes_rev; path_rels = rels }
      in
      let paths = List.map to_path rel_walks in
      if all then Value.List (List.map (fun p -> Value.Path p) paths)
      else
        match paths with [] -> Value.Null | p :: _ -> Value.Path p)
