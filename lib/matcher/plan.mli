(** Cost-guided match planning.

    Chooses, for one path pattern, the cheapest node position to anchor
    enumeration on — using the graph's label histogram and property-index
    bucket cardinalities — and orients every relationship step so it is
    traversed from the side that is already bound.  Planning only
    reorders the enumeration of candidate bindings; the set of result
    rows is unchanged. *)

open Cypher_table
open Cypher_ast.Ast

(** How the anchor position's candidates are produced. *)
type anchor_kind =
  | Anchor_bound  (** the pattern variable is already bound in the row *)
  | Anchor_prop_index of {
      pi_label : string;
      pi_key : string;
      pi_value : expr;  (** evaluated again at match time *)
    }  (** exact-value lookup in a registered property index *)
  | Anchor_label of string  (** label-index scan of the rarest label *)
  | Anchor_scan  (** full node scan; nothing better available *)

(** One relationship step, oriented.  [h_step] is the step's syntactic
    index (0-based, left to right); [h_reversed] means the hop is
    traversed from the step's right node towards its left node. *)
type hop = {
  h_rp : rel_pat;
  h_far : node_pat;
  h_src_pos : int;
  h_far_pos : int;
  h_step : int;
  h_reversed : bool;
}

type t = {
  p_anchor : node_pat;
  p_anchor_pos : int;
  p_anchor_kind : anchor_kind;
  p_anchor_cost : int;  (** estimated anchor candidate count *)
  p_hops : hop list;  (** rightward hops first, then leftward ones *)
  p_positions : int;  (** number of node positions: steps + 1 *)
}

(** [describe plan] renders the traversal order (anchor choice with its
    index and cardinality estimate, then each oriented hop) as a small
    multi-line tree, for EXPLAIN. *)
val describe : t -> string

(** [make ctx row p] plans pattern [p] under the bindings of [row];
    [None] when reordering could be observable (a pattern property
    expression reads a variable not yet bound in [row]), in which case
    the caller falls back to the naive left-to-right enumeration. *)
val make : Cypher_eval.Ctx.t -> Record.t -> pattern -> t option
