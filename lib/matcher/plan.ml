(** Cost-guided match planning.

    The naive matcher anchors every path pattern on its syntactic start
    node and walks the steps left to right.  That is correct but can be
    arbitrarily wasteful: [MATCH (u:User)-[:ORDERED]->(o)-[:OF]->(v:Vendor)]
    scans every [User] even when [Vendor] is a hundred times rarer, and a
    pattern whose only selective element sits at the far end pays for a
    full cross-product before filtering.

    A {!t} is a traversal order for one path pattern: the cheapest node
    position to anchor on — chosen from the store's statistics
    ({!Graph.label_count}, property-index bucket cardinalities) — plus
    the hops to both sides of it, each oriented so enumeration proceeds
    from the already-bound endpoint.  Planning only reorders the
    enumeration of candidate bindings; the set of result rows is
    unchanged (the differential planner-on/off suite checks this).

    {!make} declines to plan (returns [None]) when reordering could be
    observable: a property expression inside the pattern that reads a
    variable not yet bound in the current row (it may be bound by an
    earlier part of this very pattern, so evaluation order matters). *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

(** How the anchor position's candidates are produced. *)
type anchor_kind =
  | Anchor_bound  (** the pattern variable is already bound in the row *)
  | Anchor_prop_index of {
      pi_label : string;
      pi_key : string;
      pi_value : expr;  (** evaluated again at match time *)
    }  (** exact-value lookup in a registered property index *)
  | Anchor_label of string  (** label-index scan of the rarest label *)
  | Anchor_scan  (** full node scan; nothing better available *)

(** One relationship step, oriented.  [h_step] is the step's syntactic
    index (0-based, left to right); [h_reversed] means the hop is
    traversed from the step's right node towards its left node, so the
    pattern direction must be flipped and a variable-length walk
    re-reversed before binding. *)
type hop = {
  h_rp : rel_pat;
  h_far : node_pat;
  h_src_pos : int;
  h_far_pos : int;
  h_step : int;
  h_reversed : bool;
}

type t = {
  p_anchor : node_pat;
  p_anchor_pos : int;
  p_anchor_kind : anchor_kind;
  p_anchor_cost : int;  (** estimated anchor candidate count *)
  p_hops : hop list;  (** rightward hops first, then leftward ones *)
  p_positions : int;  (** number of node positions: steps + 1 *)
}

(* ------------------------------------------------------------------ *)
(* Rendering (EXPLAIN)                                                *)
(* ------------------------------------------------------------------ *)

let describe_node (np : node_pat) =
  let var = Option.value ~default:"" np.np_var in
  let labels = String.concat "" (List.map (fun l -> ":" ^ l) np.np_labels) in
  "(" ^ var ^ labels ^ ")"

let describe_anchor plan =
  let cand n = Printf.sprintf "~%d candidate%s" n (if n = 1 then "" else "s") in
  match plan.p_anchor_kind with
  | Anchor_bound -> "bound variable"
  | Anchor_prop_index { pi_label; pi_key; _ } ->
      Printf.sprintf "prop index :%s(%s), %s" pi_label pi_key
        (cand plan.p_anchor_cost)
  | Anchor_label l ->
      Printf.sprintf "label index :%s, %s" l (cand plan.p_anchor_cost)
  | Anchor_scan ->
      Printf.sprintf "all-nodes scan, %s" (cand plan.p_anchor_cost)

let describe plan =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "anchor @%d %s via %s" plan.p_anchor_pos
       (describe_node plan.p_anchor) (describe_anchor plan));
  List.iter
    (fun h ->
      let types =
        match h.h_rp.rp_types with
        | [] -> ""
        | ts -> ":" ^ String.concat "|" ts
      in
      Buffer.add_string buf
        (Printf.sprintf "\n  expand @%d -[%s]- @%d %s%s" h.h_src_pos types
           h.h_far_pos (describe_node h.h_far)
           (if h.h_reversed then " (reversed)" else "")))
    plan.p_hops;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Safety: is every property expression evaluable before traversal?   *)
(* ------------------------------------------------------------------ *)

let props_evaluable row props =
  List.for_all
    (fun (_, e) ->
      List.for_all
        (fun v -> Record.find_opt row v <> None)
        (expr_free_vars e))
    props

let pattern_evaluable row (p : pattern) =
  props_evaluable row p.pat_start.np_props
  && List.for_all
       (fun (rp, np) ->
         props_evaluable row rp.rp_props && props_evaluable row np.np_props)
       p.pat_steps

(* ------------------------------------------------------------------ *)
(* Anchor selection                                                   *)
(* ------------------------------------------------------------------ *)

(** Estimated candidate count for anchoring on [np], with the cheapest
    way to produce those candidates.  Bound variables are free; a
    property-index bucket beats a label bucket beats a full scan. *)
let anchor_cost (ctx : Ctx.t) row (np : node_pat) : int * anchor_kind =
  let bound =
    match np.np_var with
    | Some v -> Record.find_opt row v <> None
    | None -> false
  in
  if bound then (0, Anchor_bound)
  else
    let g = ctx.Ctx.graph in
    let via_index =
      (* cheapest registered (label, key) index matching an equality
         constraint of the pattern; the value expression is evaluated
         here only to read the bucket cardinality *)
      List.fold_left
        (fun best label ->
          List.fold_left
            (fun best (key, e) ->
              if not (Graph.has_prop_index g ~label ~key) then best
              else
                match Eval.eval (Ctx.with_row ctx row) e with
                | exception Ctx.Error _ -> best
                | v -> (
                    match Graph.count_with_prop g ~label ~key v with
                    | None -> best
                    | Some n ->
                        let kind =
                          Anchor_prop_index
                            { pi_label = label; pi_key = key; pi_value = e }
                        in
                        (match best with
                        | Some (m, _) when m <= n -> best
                        | _ -> Some (n, kind))))
            best np.np_props)
        None np.np_labels
    in
    match via_index with
    | Some (n, kind) -> (n, kind)
    | None -> (
        match np.np_labels with
        | [] -> (Graph.node_count g, Anchor_scan)
        | labels ->
            List.fold_left
              (fun (n, kind) label ->
                let m = Graph.label_count g label in
                if m < n then (m, Anchor_label label) else (n, kind))
              (max_int, Anchor_scan) labels)

(* ------------------------------------------------------------------ *)
(* Plan construction                                                  *)
(* ------------------------------------------------------------------ *)

let make (ctx : Ctx.t) (row : Record.t) (p : pattern) : t option =
  (* an empty graph has no statistics to exploit, and MERGE-style
     workloads probe it once per driving record: skip the planning work *)
  if Graph.node_count ctx.Ctx.graph = 0 then None
  else if not (pattern_evaluable row p) then None
  else begin
    let node_pats =
      Array.of_list (p.pat_start :: List.map snd p.pat_steps)
    in
    let positions = Array.length node_pats in
    (* pick the cheapest anchor position; ties keep the leftmost, so a
       pattern with uniform statistics still anchors on pat_start *)
    let best_cost, best_pos, best_kind =
      Array.to_seqi node_pats
      |> Seq.fold_left
           (fun ((best_cost, _, _) as best) (i, np) ->
             let cost, kind = anchor_cost ctx row np in
             if cost < best_cost then (cost, i, kind) else best)
           (max_int, 0, Anchor_scan)
    in
    let steps = Array.of_list p.pat_steps in
    let rightward =
      List.init
        (positions - 1 - best_pos)
        (fun k ->
          let j = best_pos + k in
          let rp, np = steps.(j) in
          {
            h_rp = rp;
            h_far = np;
            h_src_pos = j;
            h_far_pos = j + 1;
            h_step = j;
            h_reversed = false;
          })
    in
    let leftward =
      List.init best_pos (fun k ->
          let j = best_pos - 1 - k in
          let rp, _ = steps.(j) in
          {
            h_rp = rp;
            h_far = node_pats.(j);
            h_src_pos = j + 1;
            h_far_pos = j;
            h_step = j;
            h_reversed = true;
          })
    in
    Some
      {
        p_anchor = node_pats.(best_pos);
        p_anchor_pos = best_pos;
        p_anchor_kind = best_kind;
        p_anchor_cost = best_cost;
        p_hops = rightward @ leftward;
        p_positions = positions;
      }
  end
