(** Property maps attached to nodes and relationships.

    Following the paper's formalisation, the property function ι is
    total: a key that is not stored maps to [null].  Consequently,
    storing [null] under a key is the same as removing the key, and the
    map never holds [null] values. *)

open Cypher_util.Maps

type t = Value.t Smap.t

val empty : t

(** [get props k] is ι(entity, k): [Null] when the key is absent. *)
val get : t -> string -> Value.t

(** [set props k v] stores [v] under [k]; storing [Null] removes the
    key. *)
val set : t -> string -> Value.t -> t

val remove : t -> string -> t

(** [of_list l] builds a property map, dropping [null]-valued pairs. *)
val of_list : (string * Value.t) list -> t

val bindings : t -> (string * Value.t) list
val keys : t -> string list
val is_empty : t -> bool

(** [merge_into base extra] is the semantics of [SET n += map]: keys of
    [extra] overwrite those of [base]. *)
val merge_into : t -> t -> t

(** The equality used by the collapsibility relation of Section 8.2:
    ι′(x1,k) = ι′(x2,k) for every key k, absent keys being null. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Hash compatible with {!compare} and {!equal}: equal property maps
    hash equally. *)
val hash : t -> int

val to_value : t -> Value.t
val pp : Format.formatter -> t -> unit
