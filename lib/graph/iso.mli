(** Graph isomorphism up to entity identity.

    Two property graphs are isomorphic when there is a bijection between
    their nodes preserving labels and properties, under which the
    relationship bags (source, target, type, properties) coincide.  The
    paper's figures specify result graphs only up to id renaming
    (Section 8.2), so this is the right equality for checking reproduced
    experiments.  Backtracking search; intended for small graphs. *)

val isomorphic : Graph.t -> Graph.t -> bool

(** [check_isomorphic ~expected ~actual] is [Ok ()] or a diagnostic
    message showing both graphs. *)
val check_isomorphic :
  expected:Graph.t -> actual:Graph.t -> (unit, string) result
