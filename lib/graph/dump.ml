(** Serialisation of a property graph to an equivalent Cypher script.

    [to_cypher g] produces a single CREATE statement that rebuilds [g]
    (up to entity ids) when executed on the empty graph — the repository
    analogue of a database dump.  Identifiers that are not plain are
    backtick-quoted; property values print as Cypher literals. *)

open Cypher_util.Maps

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let quote_ident s = if is_plain_ident s then s else "`" ^ s ^ "`"

let props_fragment props =
  if Props.is_empty props then ""
  else
    let pair (k, v) = Printf.sprintf "%s: %s" (quote_ident k) (Value.to_string v) in
    " {" ^ String.concat ", " (List.map pair (Props.bindings props)) ^ "}"

let node_fragment (n : Graph.node) =
  Printf.sprintf "(n%d%s%s)" n.Graph.n_id
    (String.concat ""
       (List.map (fun l -> ":" ^ quote_ident l) (Sset.elements n.Graph.labels)))
    (props_fragment n.Graph.n_props)

let rel_fragment (r : Graph.rel) =
  Printf.sprintf "(n%d)-[:%s%s]->(n%d)" r.Graph.src
    (quote_ident r.Graph.r_type)
    (props_fragment r.Graph.r_props)
    r.Graph.tgt

(** [to_cypher g] is a Cypher script rebuilding [g]; empty for the empty
    graph. *)
let to_cypher (g : Graph.t) : string =
  let fragments =
    List.map node_fragment (Graph.nodes g)
    @ List.map rel_fragment (Graph.rels g)
  in
  match fragments with
  | [] -> ""
  | fragments -> "CREATE " ^ String.concat ",\n       " fragments ^ ";\n"
