(** Serialisation of a property graph to an equivalent Cypher script.

    [to_cypher g] produces a single CREATE statement that rebuilds [g]
    (up to entity ids) when executed on the empty graph — the repository
    analogue of a database dump, and the substrate of snapshot files
    (see [Cypher_storage.Snapshot]).

    The dump is *round-trip exact*: dump → parse → execute on the empty
    graph yields a graph isomorphic to the input ({!Iso.isomorphic}),
    for every storable graph.  That demands more care than pretty
    printing:

    - floats print in a reparse-exact form ([%.17g] fallback), with
      [nan]/[inf] — which have no Cypher literal — emitted as the
      constant expressions [(0.0 / 0.0)] and [(1.0 / 0.0)];
    - [min_int] has no literal either (the lexer only sees the unsigned
      digits, which overflow): it dumps as [(-4611686018427387903 - 1)];
    - identifiers that are not plain are backtick-quoted with embedded
      backticks doubled;
    - nested map keys are quoted like top-level ones;
    - nodes are emitted in id order and relationships after them, also
      in id order, so re-execution assigns fresh ids in the *same
      relative order* — the rebuilt graph is isomorphic under a
      monotone id mapping, which keeps statement replay on top of a
      reloaded snapshot deterministic (see DESIGN.md).

    Two graph shapes cannot be serialised and raise [Invalid_argument]:
    dangling relationships (only reachable through the legacy
    force-delete mid-statement; no Cypher script can recreate them) and
    entity-valued properties (which the engine refuses to store in the
    first place). *)

open Cypher_util.Maps

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let quote_ident s =
  if is_plain_ident s then s
  else
    (* a backtick inside the identifier is escaped by doubling it *)
    "`" ^ String.concat "``" (String.split_on_char '`' s) ^ "`"

(* [%.12g] first (shorter and usually exact), [%.17g] when the short
   form does not reparse to the same float *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

(** A Cypher expression that evaluates back to exactly [v].  Raises
    [Invalid_argument] on entity references ([Node]/[Rel]/[Path]), which
    are identities into a particular graph, not storable values. *)
let rec value_literal (v : Value.t) : string =
  match v with
  | Value.Null -> "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i ->
      if i = min_int then Printf.sprintf "(-%d - 1)" max_int
      else string_of_int i
  | Value.Float f ->
      if Float.is_nan f then "(0.0 / 0.0)"
      else if f = Float.infinity then "(1.0 / 0.0)"
      else if f = Float.neg_infinity then "(-1.0 / 0.0)"
      else float_literal f
  | Value.String s -> "'" ^ Value.escape_string s ^ "'"
  | Value.List l -> "[" ^ String.concat ", " (List.map value_literal l) ^ "]"
  | Value.Map m ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, x) -> quote_ident k ^ ": " ^ value_literal x)
             (Smap.bindings m))
      ^ "}"
  | Value.Node _ | Value.Rel _ | Value.Path _ ->
      invalid_arg
        ("Dump.to_cypher: entity reference " ^ Value.to_string v
       ^ " is not a storable property value")

let props_fragment props =
  if Props.is_empty props then ""
  else
    let pair (k, v) =
      Printf.sprintf "%s: %s" (quote_ident k) (value_literal v)
    in
    " {" ^ String.concat ", " (List.map pair (Props.bindings props)) ^ "}"

let node_fragment (n : Graph.node) =
  Printf.sprintf "(n%d%s%s)" n.Graph.n_id
    (String.concat ""
       (List.map (fun l -> ":" ^ quote_ident l) (Sset.elements n.Graph.labels)))
    (props_fragment n.Graph.n_props)

let rel_fragment (r : Graph.rel) =
  Printf.sprintf "(n%d)-[:%s%s]->(n%d)" r.Graph.src
    (quote_ident r.Graph.r_type)
    (props_fragment r.Graph.r_props)
    r.Graph.tgt

(** [to_cypher g] is a Cypher script rebuilding [g]; empty for the empty
    graph.
    @raise Invalid_argument when [g] has dangling relationships (a
    Cypher script cannot recreate them — an unbound endpoint variable
    would silently create a fresh blank node instead). *)
let to_cypher (g : Graph.t) : string =
  (match Graph.dangling_rels g with
  | [] -> ()
  | rels ->
      invalid_arg
        (Printf.sprintf
           "Dump.to_cypher: graph has %d dangling relationship(s) [%s]"
           (List.length rels)
           (String.concat ", "
              (List.map (fun (r : Graph.rel) -> string_of_int r.Graph.r_id) rels))));
  let fragments =
    List.map node_fragment (Graph.nodes g)
    @ List.map rel_fragment (Graph.rels g)
  in
  match fragments with
  | [] -> ""
  | fragments -> "CREATE " ^ String.concat ",\n       " fragments ^ ";\n"
