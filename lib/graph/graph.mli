(** The property graph store.

    Implements the paper's formal model G = 〈N, R, src, tgt, ι, λ, τ〉
    (Section 8.2) as an immutable, persistent structure.  Immutability is
    what makes the revised, atomic update semantics easy to implement
    correctly: clauses evaluate all their reads against the input graph
    and produce a fresh output graph in one step.

    The store additionally supports the *legacy* (Cypher 9) behaviours
    the paper criticises: {!remove_node_force} can leave dangling
    relationships (Section 4.2), and deleted entities leave tombstones so
    that a driving table can still reference them (the "empty node"
    observation of Section 4.2). *)

open Cypher_util.Maps

type node_id = Value.node_id
type rel_id = Value.rel_id

type node = { n_id : node_id; labels : Sset.t; n_props : Props.t }

type rel = {
  r_id : rel_id;
  src : node_id;
  tgt : node_id;
  r_type : string;
  r_props : Props.t;
}

(** What kind of entity a tombstoned id used to be. *)
type tomb = Tomb_node | Tomb_rel

(** Which physical layout serves reads.  [`Persistent] (default) is the
    persistent-map path; [`Compact] additionally maintains a CSR
    snapshot ({!Csr}) consumed by the matcher's hot expansion paths.
    The backends are observationally identical. *)
type backend = [ `Persistent | `Compact ]

(** The compact backend's read-phase snapshot: CSR-style int adjacency
    plus label / property arenas over {!Symtab} symbols.  Entities live
    in dense index space; each adjacency slice is sorted by
    relationship id, so enumeration order matches the persistent path.
    The arrays are logically immutable — callers must not write to
    them. *)
module Csr : sig
  type csr = {
    node_count : int;
    nidx_of_id : int array;  (** node id → dense index; -1 when absent *)
    node_recs : node array;  (** dense index → record (shared, not copied) *)
    lab_off : int array;  (** node label slice offsets, length n+1 *)
    lab_sym : int array;
    nprop_off : int array;  (** node property slice offsets, length n+1 *)
    nprop_key : int array;
    nprop_val : Value.t array;
    out_off : int array;  (** outgoing adjacency offsets, length n+1 *)
    out_ridx : int array;  (** dense relationship index per entry *)
    out_far : int array;  (** the far endpoint (target) node id *)
    out_ty : int array;  (** the relationship's type symbol *)
    in_off : int array;
    in_ridx : int array;
    in_far : int array;  (** the far endpoint (source) node id *)
    in_ty : int array;
    rel_count : int;
    ridx_of_id : int array;  (** rel id → dense index; -1 when absent *)
    rel_recs : rel array;
    rel_id : int array;
        (** dense index → relationship id; ascending, because dense
            indices are assigned in id order *)
    rel_ty : int array;  (** dense index → type symbol *)
    rprop_off : int array;  (** rel property slice offsets, length m+1 *)
    rprop_key : int array;
    rprop_val : Value.t array;
  }

  type t = csr

  (** Dense index of a node id; -1 when the node is absent. *)
  val node_idx : t -> node_id -> int

  (** Dense index of a rel id; -1 when the relationship is absent. *)
  val rel_idx : t -> rel_id -> int

  val node_rec : t -> int -> node
  val rel_rec : t -> int -> rel
  val has_label_sym : t -> int -> int -> bool

  (** ι over the node property arena: [Null] when the key is absent. *)
  val node_prop_sym : t -> int -> int -> Value.t

  (** ι over the relationship property arena. *)
  val rel_prop_sym : t -> int -> int -> Value.t

  (** Approximate heap footprint of the snapshot's arrays, in words. *)
  val footprint_words : t -> int
end

type t

val empty : t

(** {1 Backend selection} *)

val backend : t -> backend

(** [with_backend b g] selects the physical layout serving reads; the
    graph's content is untouched (no-op when [b] is already selected). *)
val with_backend : backend -> t -> t

(** The valid CSR snapshot, when the compact backend is selected and
    {!ensure_csr} has built one for exactly this content.  Never
    builds: callers finding [None] fall back to the persistent maps. *)
val csr_view : t -> Csr.t option

(** Builds the CSR snapshot at a read-phase boundary: no-op under the
    persistent backend or when the cached snapshot is still valid (reads
    between updates reuse it); any node/relationship update invalidates
    it. *)
val ensure_csr : t -> unit

(** Cumulative monotonic wall-time spent in CSR builds, process-wide.
    Differences between two readings attribute snapshot (re)build cost
    to a span of work — the engine turns the per-statement delta into a
    PROFILE line. *)
val csr_build_ns_total : unit -> int64

(** {1 Lookup} *)

val node : t -> node_id -> node option
val rel : t -> rel_id -> rel option

(** @raise Invalid_argument when the entity does not exist. *)
val node_exn : t -> node_id -> node

(** @raise Invalid_argument when the entity does not exist. *)
val rel_exn : t -> rel_id -> rel

val has_node : t -> node_id -> bool
val has_rel : t -> rel_id -> bool

(** The id supply; ids below this may have existed at some point. *)
val next_id : t -> int

val tombstones : t -> tomb Imap.t
val is_tombstoned : t -> int -> bool
val tombstone : t -> int -> tomb option
val node_count : t -> int
val rel_count : t -> int
val nodes : t -> node list
val rels : t -> rel list
val node_ids : t -> node_id list
val rel_ids : t -> rel_id list
val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val fold_rels : (rel -> 'a -> 'a) -> t -> 'a -> 'a

(** Relationships leaving node [id], in id order. *)
val out_rels : t -> node_id -> rel list

(** Relationships entering node [id], in id order. *)
val in_rels : t -> node_id -> rel list

(** All relationships incident to node [id] (self-loops reported once). *)
val incident_rels : t -> node_id -> rel list

val degree : t -> node_id -> int

(** {1 Typed adjacency}

    Per-node adjacency bucketed by relationship type, maintained
    alongside the plain adjacency sets.  A pattern hop carrying a type
    label enumerates exactly the matching relationships instead of
    filtering the full neighbour list post-hoc. *)

(** Relationships of type [ty] leaving node [id], in id order. *)
val out_rels_typed : t -> node_id -> string -> rel list

(** Relationships of type [ty] entering node [id], in id order. *)
val in_rels_typed : t -> node_id -> string -> rel list

(** Relationships of type [ty] incident to node [id] (self-loops once). *)
val incident_rels_typed : t -> node_id -> string -> rel list

val out_degree_typed : t -> node_id -> string -> int
val in_degree_typed : t -> node_id -> string -> int

(** Raw adjacency id-sets, for callers that fold over neighbours without
    materialising relationship lists (the matcher's hop enumeration). *)
val out_rel_ids : t -> node_id -> Iset.t

val in_rel_ids : t -> node_id -> Iset.t
val out_rel_ids_typed : t -> node_id -> string -> Iset.t
val in_rel_ids_typed : t -> node_id -> string -> Iset.t

(** All relationships carrying type [ty], in id order — from a
    maintained type index. *)
val rels_with_type : t -> string -> rel list

(** Cardinality of the type-index bucket for [ty]. *)
val type_count : t -> string -> int

(** Cardinality of the label-index bucket for [label]. *)
val label_count : t -> string -> int

(** Relationships whose source or target node no longer exists — only
    possible after a legacy force-delete; a well-formed graph has none. *)
val dangling_rels : t -> rel list

val is_wellformed : t -> bool

(** {1 Construction} *)

val create_node : ?labels:string list -> ?props:Props.t -> t -> node_id * t

(** @raise Invalid_argument when an endpoint does not exist. *)
val create_rel :
  src:node_id -> tgt:node_id -> r_type:string -> ?props:Props.t -> t ->
  rel_id * t

(** {1 Modification (persistent: returns a new graph)} *)

val set_node_prop : t -> node_id -> string -> Value.t -> t
val set_rel_prop : t -> rel_id -> string -> Value.t -> t
val remove_node_prop : t -> node_id -> string -> t
val remove_rel_prop : t -> rel_id -> string -> t
val replace_node_props : t -> node_id -> Props.t -> t
val replace_rel_props : t -> rel_id -> Props.t -> t
val merge_node_props : t -> node_id -> Props.t -> t
val merge_rel_props : t -> rel_id -> Props.t -> t
val add_label : t -> node_id -> string -> t
val add_labels : t -> node_id -> string list -> t
val remove_label : t -> node_id -> string -> t

(** {1 Deletion} *)

val remove_rel : t -> rel_id -> t

(** Strict node removal: refuses (returns [Error rels]) when
    relationships are still attached — the revised [DELETE] semantics of
    Section 7. *)
val remove_node : t -> node_id -> (t, rel list) result

(** Legacy force removal: deletes the node even when relationships are
    attached, leaving them dangling — the intermediate illegal state the
    paper exhibits in Section 4.2. *)
val remove_node_force : t -> node_id -> t

(** Detaching removal: deletes all incident relationships first. *)
val remove_node_detach : t -> node_id -> t

(** {1 Property indexes}

    Optional exact-value secondary indexes over a (label, property key)
    pair.  Registration is explicit; once registered, an index is
    maintained through every node construction, update and removal, and
    can be re-registered across {!rebuild}. *)

(** [add_prop_index ~label ~key g] registers and builds the (label, key)
    index; idempotent. *)
val add_prop_index : label:string -> key:string -> t -> t

val has_prop_index : t -> label:string -> key:string -> bool

(** The registered (label, key) index pairs, alphabetically. *)
val prop_index_keys : t -> (string * string) list

(** [nodes_with_prop g ~label ~key v] is [Some ids] — the nodes carrying
    [label] whose [key] property equals [v], in id order — when the
    (label, key) index is registered, [None] otherwise.  A [Null] value
    yields [Some []]: null never matches. *)
val nodes_with_prop :
  t -> label:string -> key:string -> Value.t -> node_id list option

(** Cardinality of the index bucket for [v]; [None] when unindexed. *)
val count_with_prop :
  t -> label:string -> key:string -> Value.t -> int option

(** {1 Wholesale reconstruction} *)

(** [rebuild ~next_id ~tombs nodes rels] constructs a graph from entity
    lists, recomputing adjacency and the type index.  Every relationship
    endpoint must be present in [nodes].  Used by the MERGE SAME
    quotient (Section 8.2).  [prop_indexes] re-registers (and rebuilds)
    the given property indexes on the result.
    @raise Invalid_argument on a missing endpoint. *)
val rebuild :
  ?prop_indexes:(string * string) list ->
  next_id:int ->
  tombs:tomb Imap.t ->
  node list ->
  rel list ->
  t

(** {1 Entity views for the evaluator} *)

(** λ of a node as a sorted list; empty for tombstoned/unknown ids (the
    "empty node" a legacy query can still observe after deletion). *)
val labels_of : t -> node_id -> string list

val node_props_of : t -> node_id -> Props.t
val rel_props_of : t -> rel_id -> Props.t
val has_label : t -> node_id -> string -> bool

(** Ids of the nodes carrying [label], in id order — served from a
    maintained label index, so label-anchored pattern scans avoid a full
    node sweep. *)
val nodes_with_label : t -> string -> node_id list

(** All labels in use with their node counts, alphabetically. *)
val label_histogram : t -> (string * int) list

(** All relationship types in use with their counts, alphabetically. *)
val type_histogram : t -> (string * int) list

(** {1 Printing} *)

val pp_node : t -> Format.formatter -> node -> unit
val pp_rel : t -> Format.formatter -> rel -> unit

(** Deterministic textual dump: nodes then relationships, in id order. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
