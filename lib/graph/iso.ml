(** Graph isomorphism up to entity identity.

    Two property graphs are isomorphic when there is a bijection between
    their nodes preserving labels and properties, under which the
    relationship bags (source, target, type, properties) coincide.  The
    paper's figures specify result graphs only up to id renaming
    ("the output graph-table pairs are the same up to id renaming",
    Section 8.2), so this is the right notion of equality for checking
    reproduced experiments.

    The search is a straightforward backtracking assignment with
    signature-based candidate pruning; the graphs compared in tests and
    experiments are small. *)

open Cypher_util.Maps

(** Sort key summarising everything id-independent about a node. *)
let node_signature (n : Graph.node) =
  (Sset.elements n.labels, Props.bindings n.n_props)

let rel_multiset_key mapping (r : Graph.rel) =
  let remap id = match Imap.find_opt id mapping with Some x -> x | None -> -1 in
  (remap r.src, remap r.tgt, r.r_type, Props.bindings r.r_props)

(** [isomorphic g1 g2] decides whether the two graphs are isomorphic. *)
let isomorphic g1 g2 =
  if Graph.node_count g1 <> Graph.node_count g2 then false
  else if Graph.rel_count g1 <> Graph.rel_count g2 then false
  else
    let nodes1 = Graph.nodes g1 in
    let nodes2 = Graph.nodes g2 in
    (* quick reject: node signature multisets must coincide *)
    let sigs g_nodes = List.sort compare (List.map node_signature g_nodes) in
    if sigs nodes1 <> sigs nodes2 then false
    else
      let rels_ok mapping =
        let key1 =
          List.sort compare
            (List.map (rel_multiset_key mapping) (Graph.rels g1))
        in
        let identity_mapping =
          List.fold_left
            (fun m (n : Graph.node) -> Imap.add n.n_id n.n_id m)
            Imap.empty nodes2
        in
        let key2 =
          List.sort compare
            (List.map (rel_multiset_key identity_mapping) (Graph.rels g2))
        in
        key1 = key2
      in
      let rec assign mapping used = function
        | [] -> rels_ok mapping
        | (n1 : Graph.node) :: rest ->
            let sig1 = node_signature n1 in
            let deg1 = Graph.degree g1 n1.n_id in
            List.exists
              (fun (n2 : Graph.node) ->
                (not (Iset.mem n2.n_id used))
                && node_signature n2 = sig1
                && Graph.degree g2 n2.n_id = deg1
                && assign
                     (Imap.add n1.n_id n2.n_id mapping)
                     (Iset.add n2.n_id used)
                     rest)
              nodes2
      in
      assign Imap.empty Iset.empty nodes1

(** [check_isomorphic ~expected ~actual] is [Ok ()] or a diagnostic
    message showing both graphs; convenient in tests and experiments. *)
let check_isomorphic ~expected ~actual =
  if isomorphic expected actual then Ok ()
  else
    Error
      (Fmt.str "graphs are not isomorphic@.expected:@.%a@.actual:@.%a"
         Graph.pp expected Graph.pp actual)
