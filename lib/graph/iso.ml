(** Graph isomorphism up to entity identity.

    Two property graphs are isomorphic when there is a bijection between
    their nodes preserving labels and properties, under which the
    relationship bags (source, target, type, properties) coincide.  The
    paper's figures specify result graphs only up to id renaming
    ("the output graph-table pairs are the same up to id renaming",
    Section 8.2), so this is the right notion of equality for checking
    reproduced experiments.

    The search is backtracking assignment, made practical for the
    fuzzer's larger result graphs (hundreds of structurally similar
    created nodes) by
    - Weisfeiler–Leman colour refinement: nodes start coloured by
      (labels, properties) and are repeatedly re-coloured by the
      multiset of (direction, type, properties, neighbour colour) of
      their incident relationships, until the partition stabilises.
      Candidates are drawn only from the matching colour class, and
      mismatching colour histograms reject without any search;
    - incremental consistency: when a node is assigned, the
      relationships between it and all previously assigned nodes must
      already correspond, so symmetric classes resolve greedily instead
      of being discovered factorially late. *)

open Cypher_util.Maps

(** Sort key summarising everything id-independent about a node. *)
let node_signature (n : Graph.node) =
  (Sset.elements n.labels, Props.bindings n.n_props)

type dir = Out | In

(** Interning key for refinement colours: the initial id-independent
    node signature, then (own colour, sorted incident descriptors with
    neighbour colours) per round. *)
type colour_key =
  | Sig of (string list * (string * Value.t) list)
  | Refined of int * (dir * string * (string * Value.t) list * int) list

(** [incidence g] is a function from node id to the list of incident
    relationship descriptors [(dir, type, props, other-endpoint)].  A
    self-loop contributes one [Out] and one [In] entry. *)
let incidence g =
  let tbl = Hashtbl.create 64 in
  let add id e =
    Hashtbl.replace tbl id
      (e :: Option.value ~default:[] (Hashtbl.find_opt tbl id))
  in
  List.iter
    (fun (r : Graph.rel) ->
      let props = Props.bindings r.r_props in
      add r.src (Out, r.r_type, props, r.tgt);
      add r.tgt (In, r.r_type, props, r.src))
    (Graph.rels g);
  fun id -> Option.value ~default:[] (Hashtbl.find_opt tbl id)

let rel_multiset_key mapping (r : Graph.rel) =
  let remap id = match Imap.find_opt id mapping with Some x -> x | None -> -1 in
  (remap r.src, remap r.tgt, r.r_type, Props.bindings r.r_props)

(** [isomorphic g1 g2] decides whether the two graphs are isomorphic. *)
let isomorphic g1 g2 =
  if Graph.node_count g1 <> Graph.node_count g2 then false
  else if Graph.rel_count g1 <> Graph.rel_count g2 then false
  else
    let nodes1 = Graph.nodes g1 in
    let nodes2 = Graph.nodes g2 in
    let inc1 = incidence g1 in
    let inc2 = incidence g2 in
    (* Colour refinement.  Colours are interned integers shared between
       the two graphs, so equal colours mean equal refinement keys.
       Interning goes through polymorphic [compare] (a map, not a
       hashtable) so NaN-valued properties compare equal to themselves,
       as they do everywhere else in this module. *)
    let module Kmap = Map.Make (struct
      type t = colour_key

      let compare = compare
    end) in
    let interned = ref Kmap.empty in
    let fresh = ref 0 in
    let intern k =
      match Kmap.find_opt k !interned with
      | Some c -> c
      | None ->
          let c = !fresh in
          incr fresh;
          interned := Kmap.add k c !interned;
          c
    in
    let colour1 = Hashtbl.create 64 in
    let colour2 = Hashtbl.create 64 in
    List.iter
      (fun (n : Graph.node) ->
        Hashtbl.replace colour1 n.n_id (intern (Sig (node_signature n))))
      nodes1;
    List.iter
      (fun (n : Graph.node) ->
        Hashtbl.replace colour2 n.n_id (intern (Sig (node_signature n))))
      nodes2;
    let histogram colours nodes =
      List.sort compare
        (List.map (fun (n : Graph.node) -> Hashtbl.find colours n.n_id) nodes)
    in
    let refine colours inc nodes =
      let next = Hashtbl.create (Hashtbl.length colours) in
      List.iter
        (fun (n : Graph.node) ->
          let nbrs =
            List.sort compare
              (List.map
                 (fun (d, t, p, o) -> (d, t, p, Hashtbl.find colours o))
                 (inc n.n_id))
          in
          Hashtbl.replace next n.n_id
            (intern (Refined (Hashtbl.find colours n.n_id, nbrs))))
        nodes;
      next
    in
    let distinct colours =
      Hashtbl.fold (fun _ c acc -> Iset.add c acc) colours Iset.empty
      |> Iset.cardinal
    in
    let rec stabilise c1 c2 =
      if histogram c1 nodes1 <> histogram c2 nodes2 then None
      else
        let before = distinct c1 in
        let c1' = refine c1 inc1 nodes1 in
        let c2' = refine c2 inc2 nodes2 in
        if distinct c1' = before then Some (c1, c2) else stabilise c1' c2'
    in
    match stabilise colour1 colour2 with
    | None -> false
    | Some (colour1, colour2) ->
        (* Candidate classes in g2, indexed by final colour. *)
        let classes = Hashtbl.create 64 in
        List.iter
          (fun (n : Graph.node) ->
            let c = Hashtbl.find colour2 n.n_id in
            Hashtbl.replace classes c
              (n :: Option.value ~default:[] (Hashtbl.find_opt classes c)))
          nodes2;
        (* sizes are consulted O(n^2) times by the ordering pass below,
           so walking the class list each time turns large symmetric
           classes (thousands of identical created nodes) into minutes *)
        let class_sizes = Hashtbl.create 64 in
        Hashtbl.iter
          (fun c members -> Hashtbl.replace class_sizes c (List.length members))
          classes;
        let class_size c =
          Option.value ~default:0 (Hashtbl.find_opt class_sizes c)
        in
        (* Assignment order: prefer nodes connected to already ordered
           ones (early edge pruning), tie-broken by smallest candidate
           class (most constrained first).  Selection is kept
           incremental — a placement only rescores the placed node's
           neighbours — because an argmax scan over all remaining nodes
           per placement is O(n^2) and dominates whole-run time on the
           fuzzer's multi-thousand-node result graphs. *)
        let order nodes =
          let module Q = Set.Make (struct
            (* (-anchored, class size, node id): Set.min_elt is the
               most-anchored, then most-constrained, then lowest-id *)
            type t = int * int * int

            let compare = compare
          end) in
          let by_id = Hashtbl.create 64 in
          List.iter
            (fun (n : Graph.node) -> Hashtbl.replace by_id n.n_id n)
            nodes;
          let anchored = Hashtbl.create 64 in
          let anchors n_id =
            Option.value ~default:0 (Hashtbl.find_opt anchored n_id)
          in
          let key (n : Graph.node) =
            (-anchors n.n_id, class_size (Hashtbl.find colour1 n.n_id), n.n_id)
          in
          let queue =
            ref (List.fold_left (fun q n -> Q.add (key n) q) Q.empty nodes)
          in
          let out = ref [] in
          while not (Q.is_empty !queue) do
            let ((_, _, id) as k) = Q.min_elt !queue in
            queue := Q.remove k !queue;
            let best = Hashtbl.find by_id id in
            Hashtbl.remove by_id id;
            out := best :: !out;
            List.iter
              (fun (_, _, _, o) ->
                match Hashtbl.find_opt by_id o with
                | None -> () (* already placed *)
                | Some nbr ->
                    queue := Q.remove (key nbr) !queue;
                    Hashtbl.replace anchored o (1 + anchors o);
                    queue := Q.add (key nbr) !queue)
              (inc1 id)
          done;
          List.rev !out
        in
        let ordered1 = order nodes1 in
        (* When assigning [n1 -> n2], the relationships between [n1] and
           every already assigned node must correspond as multisets.
           Completed assignments have therefore checked every
           relationship, but we keep the final whole-bag comparison as a
           cheap safety net. *)
        let consistent mapping used (n1 : Graph.node) (n2 : Graph.node) =
          let mapping' = Imap.add n1.n_id n2.n_id mapping in
          let used' = Iset.add n2.n_id used in
          let k1 =
            List.filter_map
              (fun (d, t, p, o) ->
                Option.map (fun m -> (d, t, p, m)) (Imap.find_opt o mapping'))
              (inc1 n1.n_id)
            |> List.sort compare
          in
          let k2 =
            List.filter_map
              (fun (d, t, p, o) ->
                if Iset.mem o used' then Some (d, t, p, o) else None)
              (inc2 n2.n_id)
            |> List.sort compare
          in
          k1 = k2
        in
        let rels_ok mapping =
          let key1 =
            List.sort compare
              (List.map (rel_multiset_key mapping) (Graph.rels g1))
          in
          let identity_mapping =
            List.fold_left
              (fun m (n : Graph.node) -> Imap.add n.n_id n.n_id m)
              Imap.empty nodes2
          in
          let key2 =
            List.sort compare
              (List.map (rel_multiset_key identity_mapping) (Graph.rels g2))
          in
          key1 = key2
        in
        let rec assign mapping used = function
          | [] -> rels_ok mapping
          | (n1 : Graph.node) :: rest ->
              let c = Hashtbl.find colour1 n1.n_id in
              List.exists
                (fun (n2 : Graph.node) ->
                  (not (Iset.mem n2.n_id used))
                  && consistent mapping used n1 n2
                  && assign
                       (Imap.add n1.n_id n2.n_id mapping)
                       (Iset.add n2.n_id used)
                       rest)
                (Option.value ~default:[] (Hashtbl.find_opt classes c))
        in
        assign Imap.empty Iset.empty ordered1

(** [check_isomorphic ~expected ~actual] is [Ok ()] or a diagnostic
    message showing both graphs; convenient in tests and experiments. *)
let check_isomorphic ~expected ~actual =
  if isomorphic expected actual then Ok ()
  else
    Error
      (Fmt.str "graphs are not isomorphic@.expected:@.%a@.actual:@.%a"
         Graph.pp expected Graph.pp actual)
