(** Property maps attached to nodes and relationships.

    Following the paper's formalisation, the property function ι is total:
    a key that is not stored maps to [null].  Consequently, storing [null]
    under a key is the same as removing the key, and the map never holds
    [null] values. *)

open Cypher_util.Maps

type t = Value.t Smap.t

let empty : t = Smap.empty

(** [get props k] is ι(entity, k): [Null] when the key is absent. *)
let get (props : t) k =
  match Smap.find_opt k props with Some v -> v | None -> Value.Null

(** [set props k v] stores [v] under [k]; storing [Null] removes the key. *)
let set (props : t) k v : t =
  match v with Value.Null -> Smap.remove k props | v -> Smap.add k v props

let remove (props : t) k : t = Smap.remove k props

(** [of_list l] builds a property map, dropping [null]-valued pairs. *)
let of_list l : t =
  List.fold_left (fun acc (k, v) -> set acc k v) empty l

let bindings (props : t) = Smap.bindings props
let keys (props : t) = List.map fst (Smap.bindings props)
let is_empty : t -> bool = Smap.is_empty

(** [merge_into base extra] is the semantics of [SET n += map]: keys of
    [extra] overwrite those of [base]; [null] values in [extra] remove. *)
let merge_into (base : t) (extra : t) : t =
  Smap.fold (fun k v acc -> set acc k v) extra base

(** Strict equality of property maps (null-free by construction, so
    structural equality of stored values suffices).  This is the equality
    used by the collapsibility relation of Section 8.2: ι′(x1,k) =
    ι′(x2,k) for every key k, where absent keys are null on both sides. *)
let equal (p1 : t) (p2 : t) = smap_equal Value.equal_strict p1 p2

let compare (p1 : t) (p2 : t) =
  Smap.compare Value.compare_total p1 p2

(** Hash compatible with {!compare} (and hence with {!equal}): equal
    property maps hash equally. *)
let hash (p : t) =
  Smap.fold
    (fun k v acc -> ((acc * 31) + Hashtbl.hash k * 31) + Value.hash_total v)
    p 0x9e3779b9

let to_value (props : t) = Value.Map props

let pp ppf (props : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s: %a" k Value.pp v))
    (bindings props)
