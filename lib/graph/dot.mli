(** Graphviz DOT rendering of property graphs, used by the shell and the
    example programs to visualise result graphs. *)

(** [to_dot ?name g] renders [g] as a DOT digraph. *)
val to_dot : ?name:string -> Graph.t -> string
