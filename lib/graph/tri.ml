(** Kleene three-valued logic, used by Cypher predicates: comparisons
    involving [null] evaluate to [Unknown] rather than a boolean. *)

type t = True | False | Unknown

let of_bool b = if b then True else False

(** [to_bool_where t] is the truth value used for filtering in [WHERE]:
    only [True] keeps a record; [False] and [Unknown] drop it. *)
let to_bool_where = function True -> true | False | Unknown -> false

let neg = function True -> False | False -> True | Unknown -> Unknown

let conj a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, _ | _, Unknown -> Unknown

let disj a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, _ | _, Unknown -> Unknown

(** Exclusive or: unknown if either side is unknown. *)
let xor a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | True, True | False, False -> False
  | True, False | False, True -> True

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Unknown -> Fmt.string ppf "unknown"
