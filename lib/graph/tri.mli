(** Kleene three-valued logic, used by Cypher predicates: comparisons
    involving [null] evaluate to [Unknown] rather than a boolean. *)

type t = True | False | Unknown

val of_bool : bool -> t

(** [to_bool_where t] is the truth value used for filtering in [WHERE]:
    only [True] keeps a record; [False] and [Unknown] drop it. *)
val to_bool_where : t -> bool

val neg : t -> t
val conj : t -> t -> t
val disj : t -> t -> t

(** Exclusive or: unknown if either side is unknown. *)
val xor : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
