(** Graphviz DOT rendering of property graphs, used by the shell and the
    example programs to visualise result graphs. *)

open Cypher_util.Maps

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label (n : Graph.node) =
  let labels = Sset.elements n.labels in
  let header =
    if labels = [] then Printf.sprintf "#%d" n.n_id
    else String.concat "" (List.map (fun l -> ":" ^ l) labels)
  in
  let props =
    Props.bindings n.n_props
    |> List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (Value.to_string v))
  in
  String.concat "\\n" (header :: props)

let rel_label (r : Graph.rel) =
  let props =
    Props.bindings r.r_props
    |> List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (Value.to_string v))
  in
  String.concat "\\n" ((":" ^ r.r_type) :: props)

(** [to_dot g] renders [g] as a DOT digraph. *)
let to_dot ?(name = "G") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=ellipse, fontname=\"Helvetica\"];\n";
  List.iter
    (fun (n : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" n.n_id
           (escape (node_label n))))
    (Graph.nodes g);
  List.iter
    (fun (r : Graph.rel) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" r.src r.tgt
           (escape (rel_label r))))
    (Graph.rels g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
