(** Global string interning for the compact backend.

    Labels, relationship types and property keys are drawn from small
    vocabularies even in graphs with millions of entities, so the CSR
    snapshot ({!Graph.Csr}) stores them as small integers and compares
    them with [=] instead of [String.compare].  Symbols are process-wide
    and never recycled: an id handed out once denotes the same string
    forever, so CSR snapshots built at different times agree on their
    meaning.

    Reads are lock-free: the string→id map is an immutable {!Smap}
    snapshot behind an [Atomic.t], so matcher workers resolving symbols
    in parallel never contend.  Only inserts take the mutex, and each
    distinct string is inserted exactly once. *)

open Cypher_util.Maps

type table = { by_name : int Smap.t; names : string array; count : int }

let table : table Atomic.t =
  Atomic.make { by_name = Smap.empty; names = [||]; count = 0 }

let lock = Mutex.create ()

(** [find s] is the symbol for [s], if one was ever interned.  Lock-free;
    safe to call from any domain. *)
let find (s : string) : int option = Smap.find_opt s (Atomic.get table).by_name

(** [intern s] returns the symbol for [s], allocating one on first use.
    Idempotent: the same string always yields the same id. *)
let intern (s : string) : int =
  match find s with
  | Some id -> id
  | None ->
      Mutex.lock lock;
      let id =
        (* re-check under the lock: another domain may have won the race *)
        let t = Atomic.get table in
        match Smap.find_opt s t.by_name with
        | Some id -> id
        | None ->
            let id = t.count in
            let cap = Array.length t.names in
            let names =
              if id < cap then t.names
              else begin
                let names = Array.make (max 16 (2 * cap)) "" in
                Array.blit t.names 0 names 0 cap;
                names
              end
            in
            names.(id) <- s;
            Atomic.set table
              { by_name = Smap.add s id t.by_name; names; count = id + 1 };
            id
      in
      Mutex.unlock lock;
      id

(** [name id] is the string interned as [id].
    @raise Invalid_argument if [id] was never handed out. *)
let name (id : int) : string =
  let t = Atomic.get table in
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Symtab.name: unknown symbol %d" id)
  else t.names.(id)

(** Number of symbols interned so far. *)
let count () = (Atomic.get table).count
