(** Cypher values.

    Values are what expressions evaluate to and what records in driving
    tables bind variables to.  Nodes and relationships are represented
    by their identity; their labels and properties live in the graph
    store ({!Graph}). *)

open Cypher_util.Maps

type node_id = int
type rel_id = int

(** A path alternates nodes and relationships, beginning and ending with
    a node: [path_nodes] has length [k+1] when [path_rels] has length
    [k]. *)
type path = { path_nodes : node_id list; path_rels : rel_id list }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Map of t Smap.t
  | Node of node_id
  | Rel of rel_id
  | Path of path

(** [map_of_list l] builds a {!Map} value from an association list. *)
val map_of_list : (string * t) list -> t

(** Type families used for equality and ordering decisions. *)
type family =
  | F_null
  | F_bool
  | F_number
  | F_string
  | F_list
  | F_map
  | F_node
  | F_rel
  | F_path

val family : t -> family
val is_null : t -> bool

(** Ternary equality — the semantics of the [=] operator: [null] on
    either side yields [Unknown]; values of different families are not
    equal; lists and maps compare pointwise, where any pointwise
    [Unknown] makes the result [Unknown] unless some component is
    definitely different.  [NaN] is unequal to everything, including
    itself.  Int/float comparison is exact (no rounding through the
    float embedding, which is lossy beyond 2^53). *)
val equal_tri : t -> t -> Tri.t

(** Strict structural equality used by tests and by the engine when
    checking well-definedness of atomic [SET] (where [null = null] must
    hold, unlike in the ternary [=] operator).  Numbers compare across
    int/float exactly; [NaN] equals [NaN] so that conflict detection
    stays deterministic. *)
val equal_strict : t -> t -> bool

(** Total order over all values, by family rank first ([null] last):
    used by [ORDER BY], grouping and [DISTINCT].  [NaN] sorts
    deterministically below every other number (OCaml's
    [Float.compare] placement). *)
val compare_total : t -> t -> int

(** Hash compatible with {!compare_total}: values equal under the total
    order hash equally (notably [Int n] and a numerically equal
    [Float]). *)
val hash_total : t -> int

(** Ordering comparison for the [<], [<=], [>], [>=] operators:
    [Error ()] (i.e. unknown) when either side is null or the families
    are incomparable.  [NaN] is incomparable to every number. *)
val compare_tri : t -> t -> (int, unit) result

(** [escape_string s] escapes [s] for a single-quoted Cypher literal:
    quotes and backslashes are escaped, control characters become
    [\n]/[\t]/[\r]/[\b]/[\f] or [\uXXXX], so the printed literal
    re-lexes to exactly [s]. *)
val escape_string : string -> string

(** Prints in Cypher literal syntax where one exists. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
