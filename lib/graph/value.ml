(** Cypher values.

    Values are what expressions evaluate to and what records in driving
    tables bind variables to.  Nodes and relationships are represented by
    their identity; their labels and properties live in the graph store
    ({!Graph}). *)

open Cypher_util.Maps

type node_id = int
type rel_id = int

(** A path alternates nodes and relationships, beginning and ending with a
    node: [nodes] has length [k+1] when [rels] has length [k]. *)
type path = { path_nodes : node_id list; path_rels : rel_id list }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Map of t Smap.t
  | Node of node_id
  | Rel of rel_id
  | Path of path

let map_of_list l = Map (smap_of_list l)

(** Type families used for equality and ordering decisions. *)
type family =
  | F_null
  | F_bool
  | F_number
  | F_string
  | F_list
  | F_map
  | F_node
  | F_rel
  | F_path

let family = function
  | Null -> F_null
  | Bool _ -> F_bool
  | Int _ | Float _ -> F_number
  | String _ -> F_string
  | List _ -> F_list
  | Map _ -> F_map
  | Node _ -> F_node
  | Rel _ -> F_rel
  | Path _ -> F_path

let is_null = function Null -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Equality under ternary logic (the semantics of the [=] operator).  *)
(* ------------------------------------------------------------------ *)

(* 2^62 = [max_int] + 1 on 64-bit OCaml; exactly representable as a
   float.  Any float at or beyond it exceeds every int, so the exact
   cross-type comparison below only ever truncates floats whose
   magnitude fits in an [Int64] without overflow. *)
let int_range_bound = 0x1p62

(** Exact comparison of an int with a (non-nan) float.  Going through
    [float_of_int] is wrong: the embedding rounds above 2^53, making
    e.g. [2^53 + 1] compare equal to [2^53 +. 0.] and order incorrectly
    around the boundary.  Instead the float is split into integral and
    fractional parts and the integral part is compared exactly. *)
let compare_int_float (x : int) (y : float) =
  if y >= int_range_bound then -1
  else if y < -.int_range_bound then 1
  else
    let t = Float.trunc y in
    (* |t| <= 2^62, integral: the conversion is exact *)
    let ti = Int64.to_int (Int64.of_float t) in
    if x < ti then -1
    else if x > ti then 1
    else compare 0. (y -. t)

let is_nan = function Float f -> Float.is_nan f | _ -> false

(** Total comparison of two numbers, used by the global sort order:
    [Float.compare]'s deterministic placement of [nan] (below every
    other number) is kept, and int/float comparison is exact. *)
let num_compare a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> if Float.is_nan y then 1 else compare_int_float x y
  | Float x, Int y -> if Float.is_nan x then -1 else -compare_int_float y x
  | _ -> invalid_arg "Value.num_compare: not numbers"

(** Ternary equality: [null] on either side yields [Unknown]; values of
    different families are simply not equal; lists and maps compare
    pointwise, where any pointwise [Unknown] makes the result [Unknown]
    unless some component is definitely different. *)
let rec equal_tri a b : Tri.t =
  match (a, b) with
  | Null, _ | _, Null -> Tri.Unknown
  | Bool x, Bool y -> Tri.of_bool (x = y)
  | (Int _ | Float _), (Int _ | Float _) ->
      (* NaN is unequal to everything under [=], including itself; the
         global sort order ({!compare_total}) still places it
         deterministically *)
      if is_nan a || is_nan b then Tri.False
      else Tri.of_bool (num_compare a b = 0)
  | String x, String y -> Tri.of_bool (String.equal x y)
  | Node x, Node y -> Tri.of_bool (x = y)
  | Rel x, Rel y -> Tri.of_bool (x = y)
  | Path x, Path y ->
      Tri.of_bool (x.path_nodes = y.path_nodes && x.path_rels = y.path_rels)
  | List xs, List ys ->
      if List.length xs <> List.length ys then Tri.False
      else
        List.fold_left2
          (fun acc x y -> Tri.conj acc (equal_tri x y))
          Tri.True xs ys
  | Map xm, Map ym ->
      let keys m = List.map fst (Smap.bindings m) in
      if keys xm <> keys ym then Tri.False
      else
        List.fold_left2
          (fun acc (_, x) (_, y) -> Tri.conj acc (equal_tri x y))
          Tri.True (Smap.bindings xm) (Smap.bindings ym)
  | ( (Bool _ | Int _ | Float _ | String _ | List _ | Map _ | Node _ | Rel _
      | Path _),
      _ ) ->
      Tri.False

(** Strict structural equality used by tests and by the engine when
    checking well-definedness of atomic [SET] (where [null = null] must
    hold, unlike in the ternary [=] operator). *)
let rec equal_strict a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | (Int _ | Float _), (Int _ | Float _) -> num_compare a b = 0
  | String x, String y -> String.equal x y
  | Node x, Node y -> x = y
  | Rel x, Rel y -> x = y
  | Path x, Path y -> x.path_nodes = y.path_nodes && x.path_rels = y.path_rels
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal_strict xs ys
  | Map xm, Map ym -> smap_equal equal_strict xm ym
  | ( ( Null | Bool _ | Int _ | Float _ | String _ | List _ | Map _ | Node _
      | Rel _ | Path _ ),
      _ ) ->
      false

(* ------------------------------------------------------------------ *)
(* Total order (used by ORDER BY, DISTINCT and grouping).             *)
(* ------------------------------------------------------------------ *)

let family_rank = function
  | F_map -> 0
  | F_node -> 1
  | F_rel -> 2
  | F_list -> 3
  | F_path -> 4
  | F_string -> 5
  | F_bool -> 6
  | F_number -> 7
  | F_null -> 8 (* nulls sort last, following Cypher's global order *)

(** Total order over all values: by family rank first, then within a
    family.  This is the "global sort order" used for [ORDER BY],
    grouping keys, and [DISTINCT]; under it [null] equals [null]. *)
let rec compare_total a b =
  let fa = family a and fb = family b in
  if fa <> fb then compare (family_rank fa) (family_rank fb)
  else
    match (a, b) with
    | Null, Null -> 0
    | Bool x, Bool y -> compare x y
    | (Int _ | Float _), (Int _ | Float _) -> num_compare a b
    | String x, String y -> String.compare x y
    | Node x, Node y -> compare x y
    | Rel x, Rel y -> compare x y
    | Path x, Path y ->
        compare (x.path_nodes, x.path_rels) (y.path_nodes, y.path_rels)
    | List xs, List ys -> compare_lists xs ys
    | Map xm, Map ym ->
        compare_lists
          (List.concat_map (fun (k, v) -> [ String k; v ]) (Smap.bindings xm))
          (List.concat_map (fun (k, v) -> [ String k; v ]) (Smap.bindings ym))
    | ( ( Null | Bool _ | Int _ | Float _ | String _ | List _ | Map _ | Node _
        | Rel _ | Path _ ),
        _ ) ->
        assert false (* families already proved equal *)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare_total x y in
      if c <> 0 then c else compare_lists xs' ys'

(* ------------------------------------------------------------------ *)
(* Hashing compatible with the total order                            *)
(* ------------------------------------------------------------------ *)

(** [hash_total v] is compatible with {!compare_total}: equal values
    hash equally.  Numbers are hashed through their float embedding
    because the total order equates [Int n] with [Float f] when they are
    numerically equal — and [Int n = Float f] forces [f] to represent
    [n] exactly, so [float_of_int n] and [f] are the same float.
    ([Hashtbl.hash] already folds [-0.] into [0.] and all nans
    together, matching OCaml's float compare.)  Collisions across
    families are harmless: hashes only pre-bucket candidates that a
    full comparison then distinguishes. *)
let rec hash_total v =
  match v with
  | Null -> 0x6e756c6c
  | Bool b -> Hashtbl.hash b
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Node id -> 0x517cc1b7 lxor Hashtbl.hash id
  | Rel id -> 0x27220a95 lxor Hashtbl.hash id
  | Path p -> Hashtbl.hash (p.path_nodes, p.path_rels)
  | List xs ->
      List.fold_left (fun acc x -> (acc * 31) + hash_total x) 0x11_57 xs
  | Map m ->
      Smap.fold
        (fun k x acc -> ((acc * 31) + Hashtbl.hash k * 31) + hash_total x)
        m 0x11_3a

(** Ordering comparison for the [<, <=, >, >=] operators: [Unknown] when
    either side is null or the families are incomparable. *)
let rec compare_tri a b : (int, unit) result =
  match (family a, family b) with
  | F_null, _ | _, F_null -> Error ()
  | F_number, F_number ->
      (* NaN is incomparable under the ordering operators even though
         the global sort order places it deterministically *)
      if is_nan a || is_nan b then Error () else Ok (num_compare a b)
  | F_string, F_string -> (
      match (a, b) with
      | String x, String y -> Ok (String.compare x y)
      | _ -> assert false)
  | F_bool, F_bool -> (
      match (a, b) with Bool x, Bool y -> Ok (compare x y) | _ -> assert false)
  | F_list, F_list -> (
      (* lists compare lexicographically when comparable elementwise *)
      match (a, b) with
      | List xs, List ys ->
          let rec loop xs ys =
            match (xs, ys) with
            | [], [] -> Ok 0
            | [], _ :: _ -> Ok (-1)
            | _ :: _, [] -> Ok 1
            | x :: xs', y :: ys' -> (
                match compare_tri x y with
                | Error () -> Error ()
                | Ok 0 -> loop xs' ys'
                | Ok c -> Ok c)
          in
          loop xs ys
      | _ -> assert false)
  | _, _ -> Error ()

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\'' -> Buffer.add_string buf "\\'"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when c < ' ' ->
          (* remaining control characters: \uXXXX so the literal
             round-trips through the lexer *)
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
      (* canonical "nan": the C library prints the sign bit ("-nan"),
         which is platform noise, not a value distinction *)
      if Float.is_nan f then Fmt.string ppf "nan"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%.1f" f
      else Fmt.float ppf f
  | String s -> Fmt.pf ppf "'%s'" (escape_string s)
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) l
  | Map m ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s: %a" k pp v))
        (Smap.bindings m)
  | Node id -> Fmt.pf ppf "#node(%d)" id
  | Rel id -> Fmt.pf ppf "#rel(%d)" id
  | Path p ->
      Fmt.pf ppf "#path(nodes=[%a]; rels=[%a])"
        Fmt.(list ~sep:(any ",") int)
        p.path_nodes
        Fmt.(list ~sep:(any ",") int)
        p.path_rels

let to_string v = Fmt.str "%a" pp v
