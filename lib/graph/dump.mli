(** Serialisation of a property graph to an equivalent Cypher script.

    [to_cypher g] produces a single CREATE statement that rebuilds [g]
    (up to entity ids) when executed on the empty graph — the repository
    analogue of a database dump.  Round-trip (dump, then execute) is
    property-tested to yield an isomorphic graph. *)

val to_cypher : Graph.t -> string
