(** Serialisation of a property graph to an equivalent Cypher script.

    [to_cypher g] produces a single CREATE statement that rebuilds [g]
    (up to entity ids, under a monotone id mapping) when executed on the
    empty graph — the repository analogue of a database dump and the
    body of snapshot files.  Round-trip exactness (dump → parse →
    execute → {!Iso.isomorphic}) holds for every storable graph and is
    fuzz-tested; see DESIGN.md. *)

(** @raise Invalid_argument on a graph with dangling relationships or
    entity-valued properties — neither is expressible as a Cypher
    script. *)
val to_cypher : Graph.t -> string

(** [value_literal v] is a Cypher expression evaluating back to exactly
    [v] (floats reparse bit-exactly; [nan]/[±inf] and [min_int], which
    have no literals, render as constant expressions).
    @raise Invalid_argument on [Node]/[Rel]/[Path] values. *)
val value_literal : Value.t -> string

(** [quote_ident s] backtick-quotes [s] unless it is a plain identifier;
    embedded backticks are doubled. *)
val quote_ident : string -> string
