(** The property graph store.

    Implements the paper's formal model G = 〈N, R, src, tgt, ι, λ, τ〉
    (Section 8.2) as an immutable, persistent structure:

    - N is the domain of [nodes]; λ gives each node's label set and ι its
      property map;
    - R is the domain of [rels]; src/tgt/τ/ι are the fields of {!rel}.

    Immutability is what makes the revised, atomic update semantics easy
    to implement correctly: clauses evaluate all their reads against the
    input graph and produce a fresh output graph in one step.

    The store additionally supports the *legacy* (Cypher 9) behaviours the
    paper criticises: {!remove_node_force} can leave dangling
    relationships (Section 4.2), and deleted entities leave tombstones so
    that a driving table can still reference them (the "empty node"
    observation of Section 4.2). *)

open Cypher_util.Maps

type node_id = Value.node_id
type rel_id = Value.rel_id

type node = { n_id : node_id; labels : Sset.t; n_props : Props.t }

type rel = {
  r_id : rel_id;
  src : node_id;
  tgt : node_id;
  r_type : string;
  r_props : Props.t;
}

(** What kind of entity a tombstoned id used to be. *)
type tomb = Tomb_node | Tomb_rel

type t = {
  nodes : node Imap.t;
  rels : rel Imap.t;
  out_adj : Iset.t Imap.t; (* node id -> ids of rels leaving it *)
  in_adj : Iset.t Imap.t; (* node id -> ids of rels entering it *)
  label_index : Iset.t Smap.t; (* label -> ids of nodes carrying it *)
  next_id : int;
  tombs : tomb Imap.t;
}

let empty =
  {
    nodes = Imap.empty;
    rels = Imap.empty;
    out_adj = Imap.empty;
    in_adj = Imap.empty;
    label_index = Smap.empty;
    next_id = 0;
    tombs = Imap.empty;
  }

(* --- label index maintenance -------------------------------------- *)

let index_add label id idx =
  Smap.update label
    (function None -> Some (Iset.singleton id) | Some s -> Some (Iset.add id s))
    idx

let index_remove label id idx =
  Smap.update label
    (function
      | None -> None
      | Some s ->
          let s = Iset.remove id s in
          if Iset.is_empty s then None else Some s)
    idx

let index_node (n : node) idx =
  Sset.fold (fun l idx -> index_add l n.n_id idx) n.labels idx

let unindex_node (n : node) idx =
  Sset.fold (fun l idx -> index_remove l n.n_id idx) n.labels idx

(** Adjusts the index when a node's label set changes. *)
let reindex ~old_labels ~new_labels id idx =
  let idx =
    Sset.fold
      (fun l idx -> index_remove l id idx)
      (Sset.diff old_labels new_labels)
      idx
  in
  Sset.fold
    (fun l idx -> index_add l id idx)
    (Sset.diff new_labels old_labels)
    idx

(* ------------------------------------------------------------------ *)
(* Lookup                                                             *)
(* ------------------------------------------------------------------ *)

let node g id = Imap.find_opt id g.nodes
let rel g id = Imap.find_opt id g.rels

let node_exn g id =
  match node g id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node_exn: no node %d" id)

let rel_exn g id =
  match rel g id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Graph.rel_exn: no relationship %d" id)

let has_node g id = Imap.mem id g.nodes
let next_id g = g.next_id
let tombstones g = g.tombs
let has_rel g id = Imap.mem id g.rels
let is_tombstoned g id = Imap.mem id g.tombs
let tombstone g id = Imap.find_opt id g.tombs
let node_count g = Imap.cardinal g.nodes
let rel_count g = Imap.cardinal g.rels
let nodes g = List.map snd (Imap.bindings g.nodes)
let rels g = List.map snd (Imap.bindings g.rels)
let node_ids g = List.map fst (Imap.bindings g.nodes)
let rel_ids g = List.map fst (Imap.bindings g.rels)
let fold_nodes f g acc = Imap.fold (fun _ n acc -> f n acc) g.nodes acc
let fold_rels f g acc = Imap.fold (fun _ r acc -> f r acc) g.rels acc

let adj_find id m = match Imap.find_opt id m with Some s -> s | None -> Iset.empty

(** Relationships leaving node [id], in id order. *)
let out_rels g id =
  Iset.fold (fun r acc -> rel_exn g r :: acc) (adj_find id g.out_adj) []
  |> List.rev

(** Relationships entering node [id], in id order. *)
let in_rels g id =
  Iset.fold (fun r acc -> rel_exn g r :: acc) (adj_find id g.in_adj) []
  |> List.rev

(** All relationships incident to node [id] (self-loops reported once). *)
let incident_rels g id =
  let s = Iset.union (adj_find id g.out_adj) (adj_find id g.in_adj) in
  Iset.fold (fun r acc -> rel_exn g r :: acc) s [] |> List.rev

let degree g id = Iset.cardinal (Iset.union (adj_find id g.out_adj) (adj_find id g.in_adj))

(** Relationships whose source or target node no longer exists — only
    possible after a legacy force-delete; a well-formed graph has none. *)
let dangling_rels g =
  fold_rels
    (fun r acc ->
      if has_node g r.src && has_node g r.tgt then acc else r :: acc)
    g []
  |> List.rev

let is_wellformed g = dangling_rels g = []

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create_node ?(labels = []) ?(props = Props.empty) g =
  let id = g.next_id in
  let n = { n_id = id; labels = sset_of_list labels; n_props = props } in
  ( id,
    {
      g with
      nodes = Imap.add id n g.nodes;
      label_index = index_node n g.label_index;
      next_id = id + 1;
    } )

let create_rel ~src ~tgt ~r_type ?(props = Props.empty) g =
  if not (has_node g src) then
    invalid_arg (Printf.sprintf "Graph.create_rel: no source node %d" src);
  if not (has_node g tgt) then
    invalid_arg (Printf.sprintf "Graph.create_rel: no target node %d" tgt);
  let id = g.next_id in
  let r = { r_id = id; src; tgt; r_type; r_props = props } in
  let out_adj = Imap.add src (Iset.add id (adj_find src g.out_adj)) g.out_adj in
  let in_adj = Imap.add tgt (Iset.add id (adj_find tgt g.in_adj)) g.in_adj in
  (id, { g with rels = Imap.add id r g.rels; out_adj; in_adj; next_id = id + 1 })

(* ------------------------------------------------------------------ *)
(* In-place modification (persistent: returns a new graph)            *)
(* ------------------------------------------------------------------ *)

let update_node g id f =
  match node g id with
  | None -> g
  | Some n ->
      let n' = f n in
      {
        g with
        nodes = Imap.add id n' g.nodes;
        label_index =
          reindex ~old_labels:n.labels ~new_labels:n'.labels id g.label_index;
      }

let update_rel g id f =
  match rel g id with
  | None -> g
  | Some r -> { g with rels = Imap.add id (f r) g.rels }

let set_node_prop g id k v =
  update_node g id (fun n -> { n with n_props = Props.set n.n_props k v })

let set_rel_prop g id k v =
  update_rel g id (fun r -> { r with r_props = Props.set r.r_props k v })

let remove_node_prop g id k =
  update_node g id (fun n -> { n with n_props = Props.remove n.n_props k })

let remove_rel_prop g id k =
  update_rel g id (fun r -> { r with r_props = Props.remove r.r_props k })

let replace_node_props g id props =
  update_node g id (fun n -> { n with n_props = props })

let replace_rel_props g id props =
  update_rel g id (fun r -> { r with r_props = props })

let merge_node_props g id extra =
  update_node g id (fun n -> { n with n_props = Props.merge_into n.n_props extra })

let merge_rel_props g id extra =
  update_rel g id (fun r -> { r with r_props = Props.merge_into r.r_props extra })

let add_label g id label =
  update_node g id (fun n -> { n with labels = Sset.add label n.labels })

let add_labels g id labels =
  List.fold_left (fun g l -> add_label g id l) g labels

let remove_label g id label =
  update_node g id (fun n -> { n with labels = Sset.remove label n.labels })

(* ------------------------------------------------------------------ *)
(* Deletion                                                           *)
(* ------------------------------------------------------------------ *)

let remove_rel g id =
  match rel g id with
  | None -> g
  | Some r ->
      let out_adj =
        Imap.add r.src (Iset.remove id (adj_find r.src g.out_adj)) g.out_adj
      in
      let in_adj =
        Imap.add r.tgt (Iset.remove id (adj_find r.tgt g.in_adj)) g.in_adj
      in
      {
        g with
        rels = Imap.remove id g.rels;
        out_adj;
        in_adj;
        tombs = Imap.add id Tomb_rel g.tombs;
      }

(** Strict node removal: refuses (returns [Error rels]) when relationships
    are still attached — the revised [DELETE] semantics of Section 7. *)
let remove_node g id =
  match node g id with
  | None -> Ok g
  | Some n -> (
      match incident_rels g id with
      | [] ->
          Ok
            {
              g with
              nodes = Imap.remove id g.nodes;
              out_adj = Imap.remove id g.out_adj;
              in_adj = Imap.remove id g.in_adj;
              label_index = unindex_node n g.label_index;
              tombs = Imap.add id Tomb_node g.tombs;
            }
      | attached -> Error attached)

(** Legacy force removal: deletes the node even when relationships are
    attached, leaving them dangling — the intermediate illegal state the
    paper exhibits in Section 4.2. *)
let remove_node_force g id =
  match node g id with
  | None -> g
  | Some n ->
      {
        g with
        nodes = Imap.remove id g.nodes;
        out_adj = Imap.remove id g.out_adj;
        in_adj = Imap.remove id g.in_adj;
        label_index = unindex_node n g.label_index;
        tombs = Imap.add id Tomb_node g.tombs;
      }

(** Detaching removal: deletes all incident relationships first. *)
let remove_node_detach g id =
  let g = List.fold_left (fun g r -> remove_rel g r.r_id) g (incident_rels g id) in
  match remove_node g id with Ok g -> g | Error _ -> assert false

(* ------------------------------------------------------------------ *)
(* Wholesale reconstruction                                           *)
(* ------------------------------------------------------------------ *)

(** [rebuild ~next_id ~tombs nodes rels] constructs a graph from entity
    lists, recomputing adjacency.  Every relationship endpoint must be
    present in [nodes].  Used by the MERGE SAME quotient, which keeps
    only class representatives and remaps endpoints (Section 8.2). *)
let rebuild ~next_id ~tombs (node_list : node list) (rel_list : rel list) =
  let g =
    List.fold_left
      (fun g (n : node) ->
        {
          g with
          nodes = Imap.add n.n_id n g.nodes;
          label_index = index_node n g.label_index;
        })
      { empty with next_id; tombs }
      node_list
  in
  List.fold_left
    (fun g (r : rel) ->
      if not (has_node g r.src && has_node g r.tgt) then
        invalid_arg "Graph.rebuild: relationship endpoint missing";
      let out_adj =
        Imap.add r.src (Iset.add r.r_id (adj_find r.src g.out_adj)) g.out_adj
      in
      let in_adj =
        Imap.add r.tgt (Iset.add r.r_id (adj_find r.tgt g.in_adj)) g.in_adj
      in
      { g with rels = Imap.add r.r_id r g.rels; out_adj; in_adj })
    g rel_list

(* ------------------------------------------------------------------ *)
(* Entity views for the evaluator                                     *)
(* ------------------------------------------------------------------ *)

(** λ of a node as a sorted list; empty for tombstoned/unknown ids (the
    "empty node" a legacy query can still observe after deletion). *)
let labels_of g id =
  match node g id with Some n -> Sset.elements n.labels | None -> []

let node_props_of g id =
  match node g id with Some n -> n.n_props | None -> Props.empty

let rel_props_of g id =
  match rel g id with Some r -> r.r_props | None -> Props.empty

let has_label g id label =
  match node g id with Some n -> Sset.mem label n.labels | None -> false

(** Ids of the nodes carrying [label], in id order — served from the
    label index, so label-anchored pattern scans avoid a full node
    sweep. *)
let nodes_with_label g label =
  match Smap.find_opt label g.label_index with
  | None -> []
  | Some s -> Iset.elements s

(** All labels in use with their node counts, alphabetically. *)
let label_histogram g =
  Smap.fold (fun l s acc -> (l, Iset.cardinal s) :: acc) g.label_index []
  |> List.rev

(** All relationship types in use with their counts, alphabetically. *)
let type_histogram g =
  let tally =
    fold_rels
      (fun r m ->
        Smap.update r.r_type
          (function None -> Some 1 | Some n -> Some (n + 1))
          m)
      g Smap.empty
  in
  Smap.bindings tally

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_node g ppf (n : node) =
  ignore g;
  let labels = Sset.elements n.labels in
  Fmt.pf ppf "(%d%s%s)" n.n_id
    (String.concat "" (List.map (fun l -> ":" ^ l) labels))
    (if Props.is_empty n.n_props then "" else Fmt.str " %a" Props.pp n.n_props)

let pp_rel g ppf (r : rel) =
  ignore g;
  Fmt.pf ppf "(%d)-[%d:%s%s]->(%d)" r.src r.r_id r.r_type
    (if Props.is_empty r.r_props then "" else Fmt.str " %a" Props.pp r.r_props)
    r.tgt

(** Deterministic textual dump: nodes then relationships, in id order. *)
let pp ppf g =
  Fmt.pf ppf "graph {@[<v>";
  List.iter (fun n -> Fmt.pf ppf "@,%a" (pp_node g) n) (nodes g);
  List.iter (fun r -> Fmt.pf ppf "@,%a" (pp_rel g) r) (rels g);
  Fmt.pf ppf "@]@,}"

let to_string g = Fmt.str "%a" pp g
