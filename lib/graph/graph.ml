(** The property graph store.

    Implements the paper's formal model G = 〈N, R, src, tgt, ι, λ, τ〉
    (Section 8.2) as an immutable, persistent structure:

    - N is the domain of [nodes]; λ gives each node's label set and ι its
      property map;
    - R is the domain of [rels]; src/tgt/τ/ι are the fields of {!rel}.

    Immutability is what makes the revised, atomic update semantics easy
    to implement correctly: clauses evaluate all their reads against the
    input graph and produce a fresh output graph in one step.

    The store additionally supports the *legacy* (Cypher 9) behaviours the
    paper criticises: {!remove_node_force} can leave dangling
    relationships (Section 4.2), and deleted entities leave tombstones so
    that a driving table can still reference them (the "empty node"
    observation of Section 4.2). *)

open Cypher_util.Maps

type node_id = Value.node_id
type rel_id = Value.rel_id

type node = { n_id : node_id; labels : Sset.t; n_props : Props.t }

type rel = {
  r_id : rel_id;
  src : node_id;
  tgt : node_id;
  r_type : string;
  r_props : Props.t;
}

(** What kind of entity a tombstoned id used to be. *)
type tomb = Tomb_node | Tomb_rel

(** Which physical layout serves reads.  [`Persistent] is the default
    persistent-map path; [`Compact] additionally maintains a CSR
    snapshot ({!Csr}) that the matcher's hot expansion paths consume.
    Either way the persistent maps remain the source of truth — the
    backends are observationally identical (fuzz oracle 9). *)
type backend = [ `Persistent | `Compact ]

(** Maps keyed by property values, under the total value order — the
    exact-value property indexes below are served from these. *)
module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

(* Growable array used only while building CSR snapshots. *)
module Vec = struct
  type 'a t = { mutable arr : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { arr = [||]; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.arr then begin
      let arr = Array.make (max 16 (2 * v.len)) v.dummy in
      Array.blit v.arr 0 arr 0 v.len;
      v.arr <- arr
    end;
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  let length v = v.len
  let to_array v = Array.sub v.arr 0 v.len
end

(** The compact backend's read-phase snapshot: CSR-style int adjacency
    plus label / property arenas over {!Symtab} symbols.

    Entities live in dense index space ([node_idx] / [rel_idx] translate
    ids); per-node adjacency is a slice of parallel arrays sorted by
    relationship id, so enumeration order is byte-identical to the
    persistent path's id-ordered sets.  Labels, property keys and
    relationship types are interned symbols compared with [=].

    The arrays are logically immutable — callers must not write to
    them.  They are exposed (rather than wrapped in accessors) so the
    matcher's expansion loops stay allocation-free. *)
module Csr = struct
  type csr = {
    node_count : int;
    nidx_of_id : int array;  (** node id → dense index; -1 when absent *)
    node_recs : node array;  (** dense index → record (shared, not copied) *)
    lab_off : int array;  (** node label slice offsets, length n+1 *)
    lab_sym : int array;
    nprop_off : int array;  (** node property slice offsets, length n+1 *)
    nprop_key : int array;
    nprop_val : Value.t array;
    out_off : int array;  (** outgoing adjacency offsets, length n+1 *)
    out_ridx : int array;  (** dense relationship index per entry *)
    out_far : int array;  (** the far endpoint (target) node id *)
    out_ty : int array;  (** the relationship's type symbol *)
    in_off : int array;
    in_ridx : int array;
    in_far : int array;  (** the far endpoint (source) node id *)
    in_ty : int array;
    rel_count : int;
    ridx_of_id : int array;  (** rel id → dense index; -1 when absent *)
    rel_recs : rel array;
    rel_id : int array;
        (** dense index → relationship id; ascending, because dense
            indices are assigned in id order — so comparing dense
            indices compares ids *)
    rel_ty : int array;  (** dense index → type symbol *)
    rprop_off : int array;  (** rel property slice offsets, length m+1 *)
    rprop_key : int array;
    rprop_val : Value.t array;
  }

  type t = csr

  let node_idx c id =
    if id >= 0 && id < Array.length c.nidx_of_id then c.nidx_of_id.(id) else -1

  let rel_idx c id =
    if id >= 0 && id < Array.length c.ridx_of_id then c.ridx_of_id.(id) else -1

  let node_rec c i = c.node_recs.(i)
  let rel_rec c j = c.rel_recs.(j)

  let has_label_sym c i sym =
    let hi = c.lab_off.(i + 1) in
    let rec scan k = k < hi && (c.lab_sym.(k) = sym || scan (k + 1)) in
    scan c.lab_off.(i)

  (** ι over the node property arena: [Null] when the key is absent. *)
  let node_prop_sym c i sym =
    let hi = c.nprop_off.(i + 1) in
    let rec scan k =
      if k >= hi then Value.Null
      else if c.nprop_key.(k) = sym then c.nprop_val.(k)
      else scan (k + 1)
    in
    scan c.nprop_off.(i)

  (** ι over the relationship property arena. *)
  let rel_prop_sym c j sym =
    let hi = c.rprop_off.(j + 1) in
    let rec scan k =
      if k >= hi then Value.Null
      else if c.rprop_key.(k) = sym then c.rprop_val.(k)
      else scan (k + 1)
    in
    scan c.rprop_off.(j)

  (** Approximate heap footprint of the snapshot's arrays, in words
      (property values are shared with the persistent maps and not
      counted). *)
  let footprint_words c =
    let ints =
      Array.length c.nidx_of_id + Array.length c.lab_off
      + Array.length c.lab_sym + Array.length c.nprop_off
      + Array.length c.nprop_key + Array.length c.out_off
      + Array.length c.out_ridx + Array.length c.out_far
      + Array.length c.out_ty + Array.length c.in_off
      + Array.length c.in_ridx + Array.length c.in_far
      + Array.length c.in_ty + Array.length c.ridx_of_id
      + Array.length c.rel_id + Array.length c.rel_ty
      + Array.length c.rprop_off
      + Array.length c.rprop_key
    in
    let ptrs =
      Array.length c.node_recs + Array.length c.rel_recs
      + Array.length c.nprop_val + Array.length c.rprop_val
    in
    ints + ptrs
end

(* The CSR snapshot cache: one process-global cell threaded through
   every graph value (all graphs derive from [empty] by record update,
   so they share it).  An entry is valid for a graph exactly when the
   graph's node and relationship maps are PHYSICALLY the entry's —
   every update allocates fresh records into fresh maps, so validity
   survives metadata-only rewrites ([with_backend], [add_prop_index] on
   a registered index) and is broken by every real mutation.

   The cell is an [Atomic.t]: the server shares one graph value across
   many domains (reader snapshots, the pool fan-out), and a plain
   mutable field would let two domains racing through [ensure_csr]
   publish torn or duplicate builds with no happens-before edge for a
   third domain's read.  Entries are immutable once built, so a
   publish is a single atomic store; readers either see a valid entry
   or fall back to the persistent maps. *)
type csr_entry = { ce_nodes : node Imap.t; ce_rels : rel Imap.t; ce_csr : Csr.t }
type csr_cache = csr_entry option Atomic.t

type t = {
  nodes : node Imap.t;
  rels : rel Imap.t;
  out_adj : Iset.t Imap.t; (* node id -> ids of rels leaving it *)
  in_adj : Iset.t Imap.t; (* node id -> ids of rels entering it *)
  out_typed : Iset.t Smap.t Imap.t; (* node id -> type -> rels leaving it *)
  in_typed : Iset.t Smap.t Imap.t; (* node id -> type -> rels entering it *)
  label_index : Iset.t Smap.t; (* label -> ids of nodes carrying it *)
  type_index : Iset.t Smap.t; (* type -> ids of rels carrying it *)
  prop_index : Iset.t Vmap.t Smap.t Smap.t;
      (* label -> key -> value -> node ids; an entry for (label, key)
         exists iff that index has been registered, even when empty *)
  dangling : Iset.t;
      (* rels with a missing endpoint — populated only by a legacy
         force-delete; maintained so the per-statement well-formedness
         check is O(1) instead of a full relationship sweep *)
  next_id : int;
  tombs : tomb Imap.t;
  backend : backend;
  ccache : csr_cache;
}

let empty =
  {
    nodes = Imap.empty;
    rels = Imap.empty;
    out_adj = Imap.empty;
    in_adj = Imap.empty;
    out_typed = Imap.empty;
    in_typed = Imap.empty;
    label_index = Smap.empty;
    type_index = Smap.empty;
    prop_index = Smap.empty;
    dangling = Iset.empty;
    next_id = 0;
    tombs = Imap.empty;
    backend = `Persistent;
    ccache = Atomic.make None;
  }

(* --- label index maintenance -------------------------------------- *)

let index_add label id idx =
  Smap.update label
    (function None -> Some (Iset.singleton id) | Some s -> Some (Iset.add id s))
    idx

let index_remove label id idx =
  Smap.update label
    (function
      | None -> None
      | Some s ->
          let s = Iset.remove id s in
          if Iset.is_empty s then None else Some s)
    idx

let index_node (n : node) idx =
  Sset.fold (fun l idx -> index_add l n.n_id idx) n.labels idx

let unindex_node (n : node) idx =
  Sset.fold (fun l idx -> index_remove l n.n_id idx) n.labels idx

(** Adjusts the index when a node's label set changes. *)
let reindex ~old_labels ~new_labels id idx =
  let idx =
    Sset.fold
      (fun l idx -> index_remove l id idx)
      (Sset.diff old_labels new_labels)
      idx
  in
  Sset.fold
    (fun l idx -> index_add l id idx)
    (Sset.diff new_labels old_labels)
    idx

(* --- typed adjacency maintenance ---------------------------------- *)

let tmap_find id m = match Imap.find_opt id m with Some sm -> sm | None -> Smap.empty

let tset_find ty sm =
  match Smap.find_opt ty sm with Some s -> s | None -> Iset.empty

let tadj_add id ty rid m =
  (* single outer-map traversal: creates run hot in MERGE workloads *)
  Imap.update id
    (fun sm ->
      let sm = match sm with Some sm -> sm | None -> Smap.empty in
      Some (Smap.add ty (Iset.add rid (tset_find ty sm)) sm))
    m

let tadj_remove id ty rid m =
  match Imap.find_opt id m with
  | None -> m
  | Some sm ->
      let s = Iset.remove rid (tset_find ty sm) in
      let sm = if Iset.is_empty s then Smap.remove ty sm else Smap.add ty s sm in
      if Smap.is_empty sm then Imap.remove id m else Imap.add id sm m

(* --- property index maintenance ------------------------------------ *)

let vmap_add v id vmap =
  Vmap.update v
    (function None -> Some (Iset.singleton id) | Some s -> Some (Iset.add id s))
    vmap

let vmap_remove v id vmap =
  Vmap.update v
    (function
      | None -> None
      | Some s ->
          let s = Iset.remove id s in
          if Iset.is_empty s then None else Some s)
    vmap

(** Folds [f] over the registered (key, value map) pairs of the labels a
    node carries.  Null-valued (= absent) properties are never indexed:
    a [{k: null}] pattern never matches, so there is nothing to serve. *)
let pindex_fold_node f (n : node) pidx =
  if Smap.is_empty pidx then pidx
  else
    Sset.fold
      (fun l pidx ->
        match Smap.find_opt l pidx with
        | None -> pidx
        | Some keys ->
            Smap.add l
              (Smap.mapi
                 (fun key vmap ->
                   match Props.get n.n_props key with
                   | Value.Null -> vmap
                   | v -> f v n.n_id vmap)
                 keys)
              pidx)
      n.labels pidx

let pindex_node_add n pidx = pindex_fold_node vmap_add n pidx
let pindex_node_remove n pidx = pindex_fold_node vmap_remove n pidx

(* ------------------------------------------------------------------ *)
(* Lookup                                                             *)
(* ------------------------------------------------------------------ *)

let node g id =
  match Atomic.get g.ccache with
  | Some e when g.backend = `Compact && e.ce_nodes == g.nodes ->
      let c = e.ce_csr in
      let i = Csr.node_idx c id in
      if i >= 0 then Some c.Csr.node_recs.(i) else None
  | _ -> Imap.find_opt id g.nodes

let rel g id =
  match Atomic.get g.ccache with
  | Some e when g.backend = `Compact && e.ce_rels == g.rels ->
      let c = e.ce_csr in
      let j = Csr.rel_idx c id in
      if j >= 0 then Some c.Csr.rel_recs.(j) else None
  | _ -> Imap.find_opt id g.rels

let node_exn g id =
  match node g id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node_exn: no node %d" id)

let rel_exn g id =
  match rel g id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Graph.rel_exn: no relationship %d" id)

let has_node g id = Imap.mem id g.nodes
let next_id g = g.next_id
let tombstones g = g.tombs
let has_rel g id = Imap.mem id g.rels
let is_tombstoned g id = Imap.mem id g.tombs
let tombstone g id = Imap.find_opt id g.tombs
let node_count g = Imap.cardinal g.nodes
let rel_count g = Imap.cardinal g.rels
let nodes g = List.map snd (Imap.bindings g.nodes)
let rels g = List.map snd (Imap.bindings g.rels)
let node_ids g = List.map fst (Imap.bindings g.nodes)
let rel_ids g = List.map fst (Imap.bindings g.rels)
let fold_nodes f g acc = Imap.fold (fun _ n acc -> f n acc) g.nodes acc
let fold_rels f g acc = Imap.fold (fun _ r acc -> f r acc) g.rels acc

let adj_find id m = match Imap.find_opt id m with Some s -> s | None -> Iset.empty

(* --- backend selection and the CSR snapshot ------------------------- *)

let backend g = g.backend

(** [with_backend b g] selects the physical layout serving reads.  The
    graph's content is untouched (a no-op when [b] is already
    selected), so a valid CSR snapshot stays valid across the call. *)
let with_backend b g = if g.backend = b then g else { g with backend = b }

(* Builds the CSR snapshot.  Dense indices follow ascending id order
   (persistent [Imap] iteration), and each adjacency slice copies the
   persistent adjacency sets' own id-ordered enumeration — including
   relationships left dangling on one side by a legacy force-delete —
   so the two backends enumerate candidates identically. *)
let build_csr (g : t) : Csr.t =
  let n = Imap.cardinal g.nodes in
  let m = Imap.cardinal g.rels in
  let dummy_node = { n_id = -1; labels = Sset.empty; n_props = Props.empty } in
  let dummy_rel =
    { r_id = -1; src = -1; tgt = -1; r_type = ""; r_props = Props.empty }
  in
  (* each distinct string pays one (lock-free) global lookup *)
  let syms : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let sym s =
    match Hashtbl.find_opt syms s with
    | Some v -> v
    | None ->
        let v = Symtab.intern s in
        Hashtbl.add syms s v;
        v
  in
  let nidx_of_id = Array.make (max 1 g.next_id) (-1) in
  let node_recs = Array.make (max 1 n) dummy_node in
  let i = ref 0 in
  Imap.iter
    (fun id nd ->
      nidx_of_id.(id) <- !i;
      node_recs.(!i) <- nd;
      incr i)
    g.nodes;
  let ridx_of_id = Array.make (max 1 g.next_id) (-1) in
  let rel_recs = Array.make (max 1 m) dummy_rel in
  let rel_id = Array.make (max 1 m) (-1) in
  let rel_ty = Array.make (max 1 m) (-1) in
  let j = ref 0 in
  Imap.iter
    (fun id r ->
      ridx_of_id.(id) <- !j;
      rel_recs.(!j) <- r;
      rel_id.(!j) <- id;
      rel_ty.(!j) <- sym r.r_type;
      incr j)
    g.rels;
  let lab_off = Array.make (n + 1) 0 in
  let labv = Vec.create (-1) in
  let nprop_off = Array.make (n + 1) 0 in
  let npk = Vec.create (-1) in
  let npv = Vec.create Value.Null in
  for k = 0 to n - 1 do
    let nd = node_recs.(k) in
    Sset.iter (fun l -> Vec.push labv (sym l)) nd.labels;
    List.iter
      (fun (key, v) ->
        Vec.push npk (sym key);
        Vec.push npv v)
      (Props.bindings nd.n_props);
    lab_off.(k + 1) <- Vec.length labv;
    nprop_off.(k + 1) <- Vec.length npk
  done;
  let rprop_off = Array.make (m + 1) 0 in
  let rpk = Vec.create (-1) in
  let rpv = Vec.create Value.Null in
  for k = 0 to m - 1 do
    List.iter
      (fun (key, v) ->
        Vec.push rpk (sym key);
        Vec.push rpv v)
      (Props.bindings rel_recs.(k).r_props);
    rprop_off.(k + 1) <- Vec.length rpk
  done;
  let out_off = Array.make (n + 1) 0 in
  let o_ridx = Vec.create (-1) in
  let o_far = Vec.create (-1) in
  let o_ty = Vec.create (-1) in
  let in_off = Array.make (n + 1) 0 in
  let i_ridx = Vec.create (-1) in
  let i_far = Vec.create (-1) in
  let i_ty = Vec.create (-1) in
  for k = 0 to n - 1 do
    let id = node_recs.(k).n_id in
    Iset.iter
      (fun rid ->
        let j = ridx_of_id.(rid) in
        Vec.push o_ridx j;
        Vec.push o_far rel_recs.(j).tgt;
        Vec.push o_ty rel_ty.(j))
      (adj_find id g.out_adj);
    out_off.(k + 1) <- Vec.length o_ridx;
    Iset.iter
      (fun rid ->
        let j = ridx_of_id.(rid) in
        Vec.push i_ridx j;
        Vec.push i_far rel_recs.(j).src;
        Vec.push i_ty rel_ty.(j))
      (adj_find id g.in_adj);
    in_off.(k + 1) <- Vec.length i_ridx
  done;
  {
    Csr.node_count = n;
    nidx_of_id;
    node_recs;
    lab_off;
    lab_sym = Vec.to_array labv;
    nprop_off;
    nprop_key = Vec.to_array npk;
    nprop_val = Vec.to_array npv;
    out_off;
    out_ridx = Vec.to_array o_ridx;
    out_far = Vec.to_array o_far;
    out_ty = Vec.to_array o_ty;
    in_off;
    in_ridx = Vec.to_array i_ridx;
    in_far = Vec.to_array i_far;
    in_ty = Vec.to_array i_ty;
    rel_count = m;
    ridx_of_id;
    rel_recs;
    rel_id;
    rel_ty;
    rprop_off;
    rprop_key = Vec.to_array rpk;
    rprop_val = Vec.to_array rpv;
  }

(** [csr_view g] is the valid CSR snapshot for [g], when the compact
    backend is selected and one has been built for exactly this content
    ({!ensure_csr}).  Never builds: read paths that find [None] fall
    back to the persistent maps, so a forgotten [ensure_csr] costs
    speed, never correctness. *)
let csr_view g =
  match (g.backend, Atomic.get g.ccache) with
  | `Compact, Some e when e.ce_nodes == g.nodes && e.ce_rels == g.rels ->
      Some e.ce_csr
  | _ -> None

(** [ensure_csr g] builds the CSR snapshot at a read-phase boundary: a
    no-op under the persistent backend or when the cached snapshot is
    still valid (reads between updates reuse it); any update to nodes
    or relationships invalidates it structurally. *)
(* Cumulative wall-time spent building CSR snapshots, process-wide.
   Surfaced as a PROFILE line by the engine: the first read after a
   bulk load can spend seconds here (23 s at n=10⁶), and without this
   counter that cost hides inside whichever clause triggered the
   rebuild.  An [Atomic] because the server lets several domains reach
   a read-phase boundary on the same fresh graph at once. *)
let csr_build_ns = Atomic.make 0L

let csr_build_ns_total () = Atomic.get csr_build_ns

let rec atomic_add_i64 cell ns =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (Int64.add old ns)) then
    atomic_add_i64 cell ns

let ensure_csr g =
  match g.backend with
  | `Persistent -> ()
  | `Compact -> (
      (* double-checked publish: re-read the cell, build only when no
         valid entry is installed, and CAS our (immutable) entry over
         the value we observed.  Two domains racing on the same graph
         may both build — the build is deterministic, so whichever
         entry lands is correct — but a reader can never observe a
         torn entry, and a loser whose CAS failed against a *valid*
         entry for this graph simply adopts the winner's.  Domains
         racing on *different* graphs overwrite each other (the cache
         holds one entry); losers fall back to the persistent maps,
         which costs speed, never correctness. *)
      match csr_view g with
      | Some _ -> ()
      | None ->
          let observed = Atomic.get g.ccache in
          let c, ns = Cypher_util.Mclock.span_ns (fun () -> build_csr g) in
          atomic_add_i64 csr_build_ns ns;
          let entry = Some { ce_nodes = g.nodes; ce_rels = g.rels; ce_csr = c } in
          if not (Atomic.compare_and_set g.ccache observed entry) then
            if csr_view g = None then Atomic.set g.ccache entry)

(** Relationships leaving node [id], in id order. *)
let out_rels g id =
  Iset.fold (fun r acc -> rel_exn g r :: acc) (adj_find id g.out_adj) []
  |> List.rev

(** Relationships entering node [id], in id order. *)
let in_rels g id =
  Iset.fold (fun r acc -> rel_exn g r :: acc) (adj_find id g.in_adj) []
  |> List.rev

(** All relationships incident to node [id] (self-loops reported once). *)
let incident_rels g id =
  let s = Iset.union (adj_find id g.out_adj) (adj_find id g.in_adj) in
  Iset.fold (fun r acc -> rel_exn g r :: acc) s [] |> List.rev

let degree g id = Iset.cardinal (Iset.union (adj_find id g.out_adj) (adj_find id g.in_adj))

(* --- typed adjacency views ----------------------------------------- *)

let rels_of_set g s = Iset.fold (fun r acc -> rel_exn g r :: acc) s [] |> List.rev

(* raw adjacency id-sets, for callers that fold without materialising
   relationship lists (the matcher's hop enumeration) *)
let out_rel_ids g id = adj_find id g.out_adj
let in_rel_ids g id = adj_find id g.in_adj
let out_rel_ids_typed g id ty = tset_find ty (tmap_find id g.out_typed)
let in_rel_ids_typed g id ty = tset_find ty (tmap_find id g.in_typed)

(** Relationships of type [ty] leaving node [id], in id order — served
    from the typed adjacency map, so a hop with a type label never
    enumerates differently-typed neighbours. *)
let out_rels_typed g id ty = rels_of_set g (tset_find ty (tmap_find id g.out_typed))

(** Relationships of type [ty] entering node [id], in id order. *)
let in_rels_typed g id ty = rels_of_set g (tset_find ty (tmap_find id g.in_typed))

(** Relationships of type [ty] incident to node [id] (self-loops once). *)
let incident_rels_typed g id ty =
  rels_of_set g
    (Iset.union
       (tset_find ty (tmap_find id g.out_typed))
       (tset_find ty (tmap_find id g.in_typed)))

let out_degree_typed g id ty = Iset.cardinal (tset_find ty (tmap_find id g.out_typed))
let in_degree_typed g id ty = Iset.cardinal (tset_find ty (tmap_find id g.in_typed))

(** All relationships carrying type [ty], in id order — from the type
    index. *)
let rels_with_type g ty = rels_of_set g (tset_find ty g.type_index)

let type_count g ty = Iset.cardinal (tset_find ty g.type_index)

let label_count g label =
  match Smap.find_opt label g.label_index with
  | None -> 0
  | Some s -> Iset.cardinal s

(** Relationships whose source or target node no longer exists — only
    possible after a legacy force-delete; a well-formed graph has none.
    Served from a maintained set: the statement-boundary validity check
    runs on every query, so it must not sweep all relationships. *)
let dangling_rels g = rels_of_set g g.dangling

let is_wellformed g = Iset.is_empty g.dangling

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create_node ?(labels = []) ?(props = Props.empty) g =
  let id = g.next_id in
  let n = { n_id = id; labels = sset_of_list labels; n_props = props } in
  ( id,
    {
      g with
      nodes = Imap.add id n g.nodes;
      label_index = index_node n g.label_index;
      prop_index = pindex_node_add n g.prop_index;
      next_id = id + 1;
    } )

let create_rel ~src ~tgt ~r_type ?(props = Props.empty) g =
  if not (has_node g src) then
    invalid_arg (Printf.sprintf "Graph.create_rel: no source node %d" src);
  if not (has_node g tgt) then
    invalid_arg (Printf.sprintf "Graph.create_rel: no target node %d" tgt);
  let id = g.next_id in
  let r = { r_id = id; src; tgt; r_type; r_props = props } in
  let adj_insert n m =
    Imap.update n
      (function
        | Some s -> Some (Iset.add id s) | None -> Some (Iset.singleton id))
      m
  in
  let out_adj = adj_insert src g.out_adj in
  let in_adj = adj_insert tgt g.in_adj in
  ( id,
    {
      g with
      rels = Imap.add id r g.rels;
      out_adj;
      in_adj;
      out_typed = tadj_add src r_type id g.out_typed;
      in_typed = tadj_add tgt r_type id g.in_typed;
      type_index = index_add r_type id g.type_index;
      next_id = id + 1;
    } )

(* ------------------------------------------------------------------ *)
(* In-place modification (persistent: returns a new graph)            *)
(* ------------------------------------------------------------------ *)

let update_node g id f =
  match node g id with
  | None -> g
  | Some n ->
      let n' = f n in
      {
        g with
        nodes = Imap.add id n' g.nodes;
        label_index =
          reindex ~old_labels:n.labels ~new_labels:n'.labels id g.label_index;
        prop_index =
          (if Smap.is_empty g.prop_index then g.prop_index
           else pindex_node_add n' (pindex_node_remove n g.prop_index));
      }

let update_rel g id f =
  match rel g id with
  | None -> g
  | Some r ->
      let r' = f r in
      let g = { g with rels = Imap.add id r' g.rels } in
      if r'.r_type = r.r_type && r'.src = r.src && r'.tgt = r.tgt then g
      else
        (* re-key every structure derived from type or endpoints *)
        let move old_n new_n adj =
          if old_n = new_n then adj
          else
            Imap.add new_n
              (Iset.add id (adj_find new_n adj))
              (Imap.add old_n (Iset.remove id (adj_find old_n adj)) adj)
        in
        {
          g with
          out_adj = move r.src r'.src g.out_adj;
          in_adj = move r.tgt r'.tgt g.in_adj;
          out_typed =
            tadj_add r'.src r'.r_type id (tadj_remove r.src r.r_type id g.out_typed);
          in_typed =
            tadj_add r'.tgt r'.r_type id (tadj_remove r.tgt r.r_type id g.in_typed);
          type_index =
            (if r'.r_type = r.r_type then g.type_index
             else index_add r'.r_type id (index_remove r.r_type id g.type_index));
          dangling =
            (if has_node g r'.src && has_node g r'.tgt then
               Iset.remove id g.dangling
             else Iset.add id g.dangling);
        }

let set_node_prop g id k v =
  update_node g id (fun n -> { n with n_props = Props.set n.n_props k v })

let set_rel_prop g id k v =
  update_rel g id (fun r -> { r with r_props = Props.set r.r_props k v })

let remove_node_prop g id k =
  update_node g id (fun n -> { n with n_props = Props.remove n.n_props k })

let remove_rel_prop g id k =
  update_rel g id (fun r -> { r with r_props = Props.remove r.r_props k })

let replace_node_props g id props =
  update_node g id (fun n -> { n with n_props = props })

let replace_rel_props g id props =
  update_rel g id (fun r -> { r with r_props = props })

let merge_node_props g id extra =
  update_node g id (fun n -> { n with n_props = Props.merge_into n.n_props extra })

let merge_rel_props g id extra =
  update_rel g id (fun r -> { r with r_props = Props.merge_into r.r_props extra })

let add_label g id label =
  update_node g id (fun n -> { n with labels = Sset.add label n.labels })

let add_labels g id labels =
  List.fold_left (fun g l -> add_label g id l) g labels

let remove_label g id label =
  update_node g id (fun n -> { n with labels = Sset.remove label n.labels })

(* ------------------------------------------------------------------ *)
(* Deletion                                                           *)
(* ------------------------------------------------------------------ *)

let remove_rel g id =
  match rel g id with
  | None -> g
  | Some r ->
      let out_adj =
        Imap.add r.src (Iset.remove id (adj_find r.src g.out_adj)) g.out_adj
      in
      let in_adj =
        Imap.add r.tgt (Iset.remove id (adj_find r.tgt g.in_adj)) g.in_adj
      in
      {
        g with
        rels = Imap.remove id g.rels;
        out_adj;
        in_adj;
        out_typed = tadj_remove r.src r.r_type id g.out_typed;
        in_typed = tadj_remove r.tgt r.r_type id g.in_typed;
        type_index = index_remove r.r_type id g.type_index;
        dangling = Iset.remove id g.dangling;
        tombs = Imap.add id Tomb_rel g.tombs;
      }

(** Strict node removal: refuses (returns [Error rels]) when relationships
    are still attached — the revised [DELETE] semantics of Section 7. *)
let remove_node g id =
  match node g id with
  | None -> Ok g
  | Some n -> (
      match incident_rels g id with
      | [] ->
          Ok
            {
              g with
              nodes = Imap.remove id g.nodes;
              out_adj = Imap.remove id g.out_adj;
              in_adj = Imap.remove id g.in_adj;
              out_typed = Imap.remove id g.out_typed;
              in_typed = Imap.remove id g.in_typed;
              label_index = unindex_node n g.label_index;
              prop_index = pindex_node_remove n g.prop_index;
              tombs = Imap.add id Tomb_node g.tombs;
            }
      | attached -> Error attached)

(** Legacy force removal: deletes the node even when relationships are
    attached, leaving them dangling — the intermediate illegal state the
    paper exhibits in Section 4.2. *)
let remove_node_force g id =
  match node g id with
  | None -> g
  | Some n ->
      {
        g with
        nodes = Imap.remove id g.nodes;
        out_adj = Imap.remove id g.out_adj;
        in_adj = Imap.remove id g.in_adj;
        out_typed = Imap.remove id g.out_typed;
        in_typed = Imap.remove id g.in_typed;
        label_index = unindex_node n g.label_index;
        prop_index = pindex_node_remove n g.prop_index;
        (* the still-attached relationships lose an endpoint *)
        dangling =
          Iset.union
            (Iset.union (adj_find id g.out_adj) (adj_find id g.in_adj))
            g.dangling;
        tombs = Imap.add id Tomb_node g.tombs;
      }

(** Detaching removal: deletes all incident relationships first. *)
let remove_node_detach g id =
  let g = List.fold_left (fun g r -> remove_rel g r.r_id) g (incident_rels g id) in
  match remove_node g id with Ok g -> g | Error _ -> assert false

(* ------------------------------------------------------------------ *)
(* Property indexes                                                   *)
(* ------------------------------------------------------------------ *)

(** [add_prop_index ~label ~key g] registers an exact-value index over
    the [key] property of [label]-carrying nodes and builds it from the
    current graph.  Once registered, the index is maintained by every
    node construction, update and removal; idempotent. *)
let add_prop_index ~label ~key g =
  let registered =
    match Smap.find_opt label g.prop_index with
    | Some keys -> Smap.mem key keys
    | None -> false
  in
  if registered then g
  else
    let vmap =
      Iset.fold
        (fun id vmap ->
          match node g id with
          | None -> vmap
          | Some n -> (
              match Props.get n.n_props key with
              | Value.Null -> vmap
              | v -> vmap_add v id vmap))
        (match Smap.find_opt label g.label_index with
        | Some s -> s
        | None -> Iset.empty)
        Vmap.empty
    in
    let keys =
      match Smap.find_opt label g.prop_index with
      | Some ks -> ks
      | None -> Smap.empty
    in
    { g with prop_index = Smap.add label (Smap.add key vmap keys) g.prop_index }

let has_prop_index g ~label ~key =
  match Smap.find_opt label g.prop_index with
  | Some keys -> Smap.mem key keys
  | None -> false

(** The registered (label, key) index pairs, alphabetically. *)
let prop_index_keys g =
  Smap.fold
    (fun l keys acc -> Smap.fold (fun k _ acc -> (l, k) :: acc) keys acc)
    g.prop_index []
  |> List.rev

(** [nodes_with_prop g ~label ~key v] is [Some ids] — the nodes carrying
    [label] whose [key] property equals [v], in id order — when the
    (label, key) index is registered, and [None] otherwise.  A [Null]
    value yields [Some []]: null never matches. *)
let nodes_with_prop g ~label ~key v =
  match Smap.find_opt label g.prop_index with
  | None -> None
  | Some keys -> (
      match Smap.find_opt key keys with
      | None -> None
      | Some vmap ->
          if Value.is_null v then Some []
          else
            Some
              (match Vmap.find_opt v vmap with
              | Some s -> Iset.elements s
              | None -> []))

(** Cardinality of the index bucket for [v]; [None] when unindexed. *)
let count_with_prop g ~label ~key v =
  match Smap.find_opt label g.prop_index with
  | None -> None
  | Some keys -> (
      match Smap.find_opt key keys with
      | None -> None
      | Some vmap ->
          if Value.is_null v then Some 0
          else
            Some
              (match Vmap.find_opt v vmap with
              | Some s -> Iset.cardinal s
              | None -> 0))

(* ------------------------------------------------------------------ *)
(* Wholesale reconstruction                                           *)
(* ------------------------------------------------------------------ *)

(** [rebuild ~next_id ~tombs nodes rels] constructs a graph from entity
    lists, recomputing adjacency and the type index.  Every relationship
    endpoint must be present in [nodes].  Used by the MERGE SAME
    quotient, which keeps only class representatives and remaps
    endpoints (Section 8.2).  [prop_indexes] re-registers (and rebuilds)
    the given property indexes on the result. *)
let rebuild ?(prop_indexes = []) ~next_id ~tombs (node_list : node list)
    (rel_list : rel list) =
  let g =
    List.fold_left
      (fun g (n : node) ->
        {
          g with
          nodes = Imap.add n.n_id n g.nodes;
          label_index = index_node n g.label_index;
        })
      { empty with next_id; tombs }
      node_list
  in
  let g =
    List.fold_left
      (fun g (r : rel) ->
        if not (has_node g r.src && has_node g r.tgt) then
          invalid_arg "Graph.rebuild: relationship endpoint missing";
        let out_adj =
          Imap.add r.src (Iset.add r.r_id (adj_find r.src g.out_adj)) g.out_adj
        in
        let in_adj =
          Imap.add r.tgt (Iset.add r.r_id (adj_find r.tgt g.in_adj)) g.in_adj
        in
        {
          g with
          rels = Imap.add r.r_id r g.rels;
          out_adj;
          in_adj;
          out_typed = tadj_add r.src r.r_type r.r_id g.out_typed;
          in_typed = tadj_add r.tgt r.r_type r.r_id g.in_typed;
          type_index = index_add r.r_type r.r_id g.type_index;
        })
      g rel_list
  in
  List.fold_left (fun g (label, key) -> add_prop_index ~label ~key g) g prop_indexes

(* ------------------------------------------------------------------ *)
(* Entity views for the evaluator                                     *)
(* ------------------------------------------------------------------ *)

(** λ of a node as a sorted list; empty for tombstoned/unknown ids (the
    "empty node" a legacy query can still observe after deletion). *)
let labels_of g id =
  match node g id with Some n -> Sset.elements n.labels | None -> []

let node_props_of g id =
  match node g id with Some n -> n.n_props | None -> Props.empty

let rel_props_of g id =
  match rel g id with Some r -> r.r_props | None -> Props.empty

let has_label g id label =
  match node g id with Some n -> Sset.mem label n.labels | None -> false

(** Ids of the nodes carrying [label], in id order — served from the
    label index, so label-anchored pattern scans avoid a full node
    sweep. *)
let nodes_with_label g label =
  match Smap.find_opt label g.label_index with
  | None -> []
  | Some s -> Iset.elements s

(** All labels in use with their node counts, alphabetically. *)
let label_histogram g =
  Smap.fold (fun l s acc -> (l, Iset.cardinal s) :: acc) g.label_index []
  |> List.rev

(** All relationship types in use with their counts, alphabetically —
    served from the type index. *)
let type_histogram g =
  Smap.fold
    (fun ty s acc ->
      if Iset.is_empty s then acc else (ty, Iset.cardinal s) :: acc)
    g.type_index []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_node g ppf (n : node) =
  ignore g;
  let labels = Sset.elements n.labels in
  Fmt.pf ppf "(%d%s%s)" n.n_id
    (String.concat "" (List.map (fun l -> ":" ^ l) labels))
    (if Props.is_empty n.n_props then "" else Fmt.str " %a" Props.pp n.n_props)

let pp_rel g ppf (r : rel) =
  ignore g;
  Fmt.pf ppf "(%d)-[%d:%s%s]->(%d)" r.src r.r_id r.r_type
    (if Props.is_empty r.r_props then "" else Fmt.str " %a" Props.pp r.r_props)
    r.tgt

(** Deterministic textual dump: nodes then relationships, in id order. *)
let pp ppf g =
  Fmt.pf ppf "graph {@[<v>";
  List.iter (fun n -> Fmt.pf ppf "@,%a" (pp_node g) n) (nodes g);
  List.iter (fun r -> Fmt.pf ppf "@,%a" (pp_rel g) r) (rels g);
  Fmt.pf ppf "@]@,}"

let to_string g = Fmt.str "%a" pp g
