(** Global string interning for the compact backend: labels,
    relationship types and property keys become small integers that CSR
    snapshots compare with [=].  Symbols are process-wide, stable for
    the lifetime of the process, and never recycled.  [find] and [name]
    are lock-free; [intern] locks only on first sight of a string. *)

val intern : string -> int
(** The symbol for a string, allocating one on first use.  Idempotent. *)

val find : string -> int option
(** The symbol for a string, if one was ever interned.  Lock-free. *)

val name : int -> string
(** The string interned under a symbol.
    @raise Invalid_argument on an id never handed out. *)

val count : unit -> int
(** Number of symbols interned so far. *)
