(** Records: the rows of driving tables.

    A record is a key–value map from variable names to Cypher values.
    In Cypher the records of a table are *consistent*: they share the
    same set of keys (the table's columns); {!Table} maintains that
    invariant. *)

open Cypher_util.Maps
open Cypher_graph

type t = Value.t Smap.t

val empty : t
val bind : t -> string -> Value.t -> t
val find_opt : t -> string -> Value.t option

(** [find r name] is the value bound to [name], or [Null] when absent
    (used for consistency padding, e.g. by OPTIONAL MATCH or UNION). *)
val find : t -> string -> Value.t

val mem : t -> string -> bool
val remove : t -> string -> t
val keys : t -> string list
val bindings : t -> (string * Value.t) list
val of_list : (string * Value.t) list -> t

(** [project r names] keeps only the bindings for [names], padding
    missing ones with [Null]. *)
val project : t -> string list -> t

(** [map_values f r] rewrites every bound value (used to replace deleted
    entities by nulls, and to rewrite collapsed ids after MERGE SAME). *)
val map_values : (Value.t -> Value.t) -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
