(** Records: the rows of driving tables.

    A record is a key–value map from variable names to Cypher values.
    In Cypher the records of a table are *consistent*: they share the
    same set of keys (the table's columns); {!Table} maintains that
    invariant.

    Two physical representations serve the same observable map: a
    persistent string-keyed map (the general form), and a flat value
    array over a compiled {!Slots} layout (the slot-compiled form the
    engine seeds at read-clause boundaries when [Config.rows = `Slots]).
    Every accessor dispatches; observable orderings follow ascending
    name order in both, so the two are byte-identical through every
    consumer. *)

open Cypher_graph

type t

val empty : t
val bind : t -> string -> Value.t -> t
val find_opt : t -> string -> Value.t option

(** [compile_find r0 name] compiles a lookup for [name] against the
    layout of [r0] — a representative of the rows about to be scanned.
    On a slot row the index resolves once and same-layout rows read by
    array probe; other rows fall back to {!find_opt}, so the compiled
    lookup is sound on arbitrary rows.  For scans that look one name
    up across many rows (aggregation, projection). *)
val compile_find : t -> string -> t -> Value.t option

(** [find r name] is the value bound to [name], or [Null] when absent
    (used for consistency padding, e.g. by OPTIONAL MATCH or UNION). *)
val find : t -> string -> Value.t

val mem : t -> string -> bool
val remove : t -> string -> t

(** The bound names, in ascending order. *)
val keys : t -> string list

val bindings : t -> (string * Value.t) list
val of_list : (string * Value.t) list -> t

(** [of_slots tab cells] adopts [cells] as an array row over [tab]
    without copying; the caller transfers ownership of the array.
    Unbound slots must hold {!Slots.absent}. *)
val of_slots : Slots.t -> Value.t array -> t

(** [slots_view r] exposes the array representation, when [r] has one
    (shared, not copied — callers must not write). *)
val slots_view : t -> (Slots.t * Value.t array) option

(** [slot_bind r i v] is the conflict-checked bind of slot [i]: the
    extended row when the slot is empty, [r] itself when it already
    holds a value equal (strictly) to [v], [None] on a conflicting
    rebind.  The hot path of the matcher's precompiled binding sites:
    the slot index is resolved once per pattern invocation, so the
    per-embedding work is one probe and a copying store.  Only valid on
    a slot row whose layout has slot [i] — the matcher guarantees this
    by resolving [i] against the row it starts from (in-layout binds
    preserve the layout, extensions only append).
    @raise Invalid_argument on a map-backed row. *)
val slot_bind : t -> int -> Value.t -> t option

(** [seed tab r] re-lays [r] out as an array row over [tab] — the
    clause-boundary conversion of the slot pipeline.  Layout names
    unbound in [r] start absent; bindings outside the layout are
    dropped. *)
val seed : Slots.t -> t -> t

(** [project r names] keeps only the bindings for [names], padding
    missing ones with [Null]. *)
val project : t -> string list -> t

(** [map_values f r] rewrites every bound value (used to replace deleted
    entities by nulls, and to rewrite collapsed ids after MERGE SAME). *)
val map_values : (Value.t -> Value.t) -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
