(** Slot tables: compiled name → index layouts for array rows.

    Within one clause execution every driving row has the same columns,
    so the mapping from variable names to row positions can be computed
    once — at the clause boundary — instead of being re-derived by every
    bind and lookup through a string-keyed map.  A slot table is that
    compiled layout: a deduplicated name array in first-occurrence
    order, plus the index permutation that lists slots in ascending name
    order (so array rows can reproduce the persistent map's observable
    key ordering exactly — see {!Record}).

    Lookup is a linear scan comparing physical equality before string
    contents: the names flowing in are AST/column strings shared by
    every row of a clause, so the [==] probe almost always decides, and
    rows are narrow enough (a handful of variables) that a scan beats
    any hashing scheme. *)

open Cypher_graph

type t = {
  names : string array;  (** slot order: first occurrence wins *)
  sorted : int array;  (** slot indices in ascending name order *)
  mutable exts : (string * t) list;
      (** memoized single-name extensions (see {!extend}).  Extension
          from pool workers can race; a lost memo update only costs a
          duplicate (equivalent) table, never correctness — every
          consumer compares layouts by name, not by identity. *)
}

(** A physically unique sentinel marking an unbound slot.  Array rows
    are always full-width, but a slot may not be bound yet (pattern
    variables during matching) or may have been removed; [absent] is
    distinguishable from an explicit [Null] binding (OPTIONAL MATCH
    padding binds real nulls) only by physical identity — compare with
    [==], and never let it escape a {!Record} accessor. *)
let absent : Value.t = Value.String (String.make 8 '\000')

let width t = Array.length t.names
let name t i = t.names.(i)

(** [index t name] is [name]'s slot, or [-1] when it has none. *)
let index t name =
  let names = t.names in
  let n = Array.length names in
  let rec go i =
    if i >= n then -1
    else
      let s = Array.unsafe_get names i in
      if s == name || String.equal s name then i else go (i + 1)
  in
  go 0

(** [of_names names] compiles a layout over [names], deduplicated to
    first occurrence (the same discipline as [Table.dedup_columns]). *)
let of_names names =
  let rec dedup acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if List.exists (fun s -> s == c || String.equal s c) acc then
          dedup acc rest
        else dedup (c :: acc) rest
  in
  let names = Array.of_list (dedup [] names) in
  let sorted = Array.init (Array.length names) Fun.id in
  Array.sort (fun i j -> String.compare names.(i) names.(j)) sorted;
  { names; sorted; exts = [] }

let names t = Array.to_list t.names

(** [extend t name] is the layout of [t] with [name] appended (slot
    [width t]).  Memoized on [t]: the evaluator extends a clause's
    layout with the same loop variable (list comprehensions, reduce,
    pattern predicates) for every row, and must not compile a fresh
    table per element. *)
let extend t name =
  match
    List.find_opt (fun (s, _) -> s == name || String.equal s name) t.exts
  with
  | Some (_, t') -> t'
  | None ->
      let t' = of_names (Array.to_list t.names @ [ name ]) in
      t.exts <- (name, t') :: t.exts;
      t'
