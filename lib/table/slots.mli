(** Slot tables: compiled name → index layouts for array rows.

    A slot table maps each in-scope variable of a clause to a fixed
    array index, computed once at the clause boundary; {!Record} array
    rows carry one.  See slots.ml for the layout discipline. *)

open Cypher_graph

type t = {
  names : string array;
      (** slot order, first occurrence wins — logically immutable, do
          not write *)
  sorted : int array;
      (** slot indices in ascending name order — logically immutable *)
  mutable exts : (string * t) list;  (** memoized {!extend} results *)
}

(** A physically unique sentinel marking an unbound slot.  Compare with
    [==] only; must never escape through a {!Record} accessor. *)
val absent : Value.t

val width : t -> int

(** [name t i] is the name of slot [i]. *)
val name : t -> int -> string

(** [index t name] is [name]'s slot, or [-1] when it has none. *)
val index : t -> string -> int

(** [of_names names] compiles a layout over [names], deduplicated to
    first occurrence. *)
val of_names : string list -> t

(** The slot names, in slot order. *)
val names : t -> string list

(** [extend t name] is [t] with [name] appended as slot [width t];
    memoized on [t]. *)
val extend : t -> string -> t
