(** Records: the rows of driving tables.

    A record is a key–value map from variable names to Cypher values.
    In Cypher the records of a table are *consistent*: they share the same
    set of keys (the table's columns); {!Table} maintains that invariant. *)

open Cypher_util.Maps
open Cypher_graph

type t = Value.t Smap.t

let empty : t = Smap.empty
let bind (r : t) name v : t = Smap.add name v r
let find_opt (r : t) name = Smap.find_opt name r

(** [find r name] is the value bound to [name], or [Null] when absent
    (used for consistency padding, e.g. by OPTIONAL MATCH or UNION). *)
let find (r : t) name =
  match Smap.find_opt name r with Some v -> v | None -> Value.Null

let mem (r : t) name = Smap.mem name r
let remove (r : t) name : t = Smap.remove name r
let keys (r : t) = List.map fst (Smap.bindings r)
let bindings (r : t) = Smap.bindings r
let of_list l : t = smap_of_list l

(** [project r names] keeps only the bindings for [names], padding missing
    ones with [Null]. *)
let project (r : t) names : t =
  List.fold_left (fun acc name -> Smap.add name (find r name) acc) empty names

(** [map_values f r] rewrites every bound value (used to replace deleted
    entities by nulls, and to rewrite collapsed ids after MERGE SAME). *)
let map_values f (r : t) : t = Smap.map f r

let equal (r1 : t) (r2 : t) = smap_equal Value.equal_strict r1 r2

let compare (r1 : t) (r2 : t) = Smap.compare Value.compare_total r1 r2

let pp ppf (r : t) =
  Fmt.pf ppf "(%a)"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s: %a" k Value.pp v))
    (bindings r)
