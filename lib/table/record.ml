(** Records: the rows of driving tables.

    A record is a key–value map from variable names to Cypher values.
    In Cypher the records of a table are *consistent*: they share the same
    set of keys (the table's columns); {!Table} maintains that invariant.

    Two physical representations serve the same observable map:

    - [Rec]: a persistent string-keyed map — the general form; every
      record can be one, and update clauses, legacy mode and ad-hoc
      construction always produce one.
    - [Arr]: a flat value array over a compiled {!Slots} layout — the
      slot-compiled form the engine seeds at read-clause boundaries when
      [Config.rows = `Slots].  Binding an in-layout name is an array
      copy plus an index store; lookup is an index load.  A slot may
      hold {!Slots.absent} (physically unique, compared with [==]) when
      the variable is not yet bound — observationally identical to the
      name being absent from a [Rec], and distinct from an explicit
      [Null] binding.

    Every accessor dispatches, so the two forms are interchangeable
    anywhere; observable orderings (keys, bindings, comparison,
    printing) follow ascending name order in both, which is what keeps
    the slot path byte-identical to the map path. *)

open Cypher_util.Maps
open Cypher_graph

type t =
  | Rec of Value.t Smap.t
  | Arr of { tab : Slots.t; cells : Value.t array }

let empty : t = Rec Smap.empty

let bind (r : t) name v : t =
  match r with
  | Rec m -> Rec (Smap.add name v m)
  | Arr { tab; cells } ->
      let i = Slots.index tab name in
      if i >= 0 then begin
        let cells = Array.copy cells in
        cells.(i) <- v;
        Arr { tab; cells }
      end
      else
        (* a name outside the layout (evaluator loop variables, pattern
           predicates): extend the layout — memoized, so per-row binds
           of the same variable share one extended table *)
        let tab = Slots.extend tab name in
        let n = Array.length cells in
        let cells' = Array.make (n + 1) v in
        Array.blit cells 0 cells' 0 n;
        Arr { tab; cells = cells' }

let find_opt (r : t) name =
  match r with
  | Rec m -> Smap.find_opt name m
  | Arr { tab; cells } ->
      let i = Slots.index tab name in
      if i < 0 then None
      else
        let v = Array.unsafe_get cells i in
        if v == Slots.absent then None else Some v

(** [compile_find r0 name] compiles a lookup for [name] against the
    layout of [r0] — a representative of the rows about to be scanned.
    On a slot row the index is resolved once; every row sharing that
    layout (physical test) is then read by a single array probe.  Rows
    with any other representation fall back to the generic
    {!find_opt}, so the compiled lookup is sound on arbitrary rows. *)
let compile_find (r0 : t) name : t -> Value.t option =
  match r0 with
  | Arr { tab = tab0; _ } ->
      let i = Slots.index tab0 name in
      if i < 0 then fun r -> find_opt r name
      else fun r ->
        (match r with
        | Arr { tab; cells } when tab == tab0 ->
            let v = Array.unsafe_get cells i in
            if v == Slots.absent then None else Some v
        | _ -> find_opt r name)
  | Rec _ -> fun r -> find_opt r name

(** [find r name] is the value bound to [name], or [Null] when absent
    (used for consistency padding, e.g. by OPTIONAL MATCH or UNION). *)
let find (r : t) name =
  match find_opt r name with Some v -> v | None -> Value.Null

let mem (r : t) name = find_opt r name <> None

let remove (r : t) name : t =
  match r with
  | Rec m -> Rec (Smap.remove name m)
  | Arr { tab; cells } ->
      let i = Slots.index tab name in
      if i < 0 || Array.unsafe_get cells i == Slots.absent then r
      else begin
        let cells = Array.copy cells in
        cells.(i) <- Slots.absent;
        Arr { tab; cells }
      end

(* ascending name order in both representations: [Smap] enumerates
   sorted, and the slot layout carries its sorted index permutation *)

let keys (r : t) =
  match r with
  | Rec m -> List.rev (Smap.fold (fun k _ acc -> k :: acc) m [])
  | Arr { tab; cells } ->
      let sorted = tab.Slots.sorted in
      let rec go k acc =
        if k < 0 then acc
        else
          let i = Array.unsafe_get sorted k in
          let acc =
            if Array.unsafe_get cells i == Slots.absent then acc
            else Slots.name tab i :: acc
          in
          go (k - 1) acc
      in
      go (Array.length sorted - 1) []

let bindings (r : t) =
  match r with
  | Rec m -> Smap.bindings m
  | Arr { tab; cells } ->
      let sorted = tab.Slots.sorted in
      let rec go k acc =
        if k < 0 then acc
        else
          let i = Array.unsafe_get sorted k in
          let v = Array.unsafe_get cells i in
          let acc =
            if v == Slots.absent then acc else (Slots.name tab i, v) :: acc
          in
          go (k - 1) acc
      in
      go (Array.length sorted - 1) []

let of_list l : t = Rec (smap_of_list l)

(** [of_slots tab cells] adopts [cells] as an array row over [tab]
    without copying; the caller transfers ownership of the array. *)
let of_slots tab cells : t = Arr { tab; cells }

(** [slots_view r] exposes the array representation, when [r] has one
    (the layout and cells are shared — callers must not write). *)
let slots_view (r : t) =
  match r with Rec _ -> None | Arr { tab; cells } -> Some (tab, cells)

(** [slot_bind r i v] is the conflict-checked bind of slot [i]; see the
    interface.  The empty-slot case allocates only the copied cells and
    the row header — no name resolution happens here. *)
let slot_bind (r : t) i v : t option =
  match r with
  | Arr a ->
      let cur = a.cells.(i) in
      if cur == Slots.absent then begin
        let cells = Array.copy a.cells in
        cells.(i) <- v;
        Some (Arr { a with cells })
      end
      else if Value.equal_strict cur v then Some r
      else None
  | Rec _ -> invalid_arg "Record.slot_bind: map-backed row"

(** [seed tab r] re-lays [r] out as an array row over [tab] — the
    clause-boundary conversion of the slot pipeline.  Layout names
    unbound in [r] start absent; bindings of [r] outside the layout are
    dropped (the engine seeds over the clause's full column set, so
    there are none in practice). *)
let seed tab (r : t) : t =
  match r with
  | Arr a when a.tab == tab -> r
  | _ ->
      Arr
        {
          tab;
          cells =
            Array.map
              (fun name ->
                match find_opt r name with
                | Some v -> v
                | None -> Slots.absent)
              tab.Slots.names;
        }

(** [project r names] keeps only the bindings for [names], padding missing
    ones with [Null].  When [r] is an array row whose layout is exactly
    [names] — the common case: a table built over the same column list
    the row was seeded on — the row is reused (or absent slots padded in
    one array pass) instead of rebuilding a map per row. *)
let project (r : t) names : t =
  match r with
  | Arr { tab; cells }
    when (let arr = tab.Slots.names in
          let n = Array.length arr in
          let rec agree i = function
            | [] -> i = n
            | name :: rest ->
                i < n
                && (let s = Array.unsafe_get arr i in
                    s == name || String.equal s name)
                && agree (i + 1) rest
          in
          agree 0 names) ->
      let n = Array.length cells in
      let rec has_absent i =
        i < n && (Array.unsafe_get cells i == Slots.absent || has_absent (i + 1))
      in
      if not (has_absent 0) then r
      else
        Arr
          {
            tab;
            cells =
              Array.map
                (fun v -> if v == Slots.absent then Value.Null else v)
                cells;
          }
  | _ ->
      List.fold_left
        (fun acc name -> Smap.add name (find r name) acc)
        Smap.empty names
      |> fun m -> Rec m

(** [map_values f r] rewrites every bound value (used to replace deleted
    entities by nulls, and to rewrite collapsed ids after MERGE SAME). *)
let map_values f (r : t) : t =
  match r with
  | Rec m -> Rec (Smap.map f m)
  | Arr { tab; cells } ->
      Arr
        {
          tab;
          cells = Array.map (fun v -> if v == Slots.absent then v else f v) cells;
        }

(* comparison and equality follow [Smap]'s: the ascending (name, value)
   binding sequences compared lexicographically, a missing binding
   ordering below any present one.  Same-layout full array rows compare
   cell-to-cell in sorted-name order without materialising the
   sequences. *)

let rec compare_seqs cmp l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (k1, v1) :: t1, (k2, v2) :: t2 ->
      let c = String.compare k1 k2 in
      if c <> 0 then c
      else
        let c = cmp v1 v2 in
        if c <> 0 then c else compare_seqs cmp t1 t2

let full cells =
  let n = Array.length cells in
  let rec go i =
    i >= n || (Array.unsafe_get cells i != Slots.absent && go (i + 1))
  in
  go 0

let compare (r1 : t) (r2 : t) =
  match (r1, r2) with
  | Rec m1, Rec m2 -> Smap.compare Value.compare_total m1 m2
  | Arr a1, Arr a2 when a1.tab == a2.tab && full a1.cells && full a2.cells ->
      let sorted = a1.tab.Slots.sorted in
      let n = Array.length sorted in
      let rec go k =
        if k >= n then 0
        else
          let i = Array.unsafe_get sorted k in
          let c = Value.compare_total a1.cells.(i) a2.cells.(i) in
          if c <> 0 then c else go (k + 1)
      in
      go 0
  | _ -> compare_seqs Value.compare_total (bindings r1) (bindings r2)

let equal (r1 : t) (r2 : t) =
  match (r1, r2) with
  | Rec m1, Rec m2 -> smap_equal Value.equal_strict m1 m2
  | Arr a1, Arr a2 when a1.tab == a2.tab && full a1.cells && full a2.cells ->
      let n = Array.length a1.cells in
      let rec go i =
        i >= n || (Value.equal_strict a1.cells.(i) a2.cells.(i) && go (i + 1))
      in
      go 0
  | _ ->
      let b1 = bindings r1 and b2 = bindings r2 in
      List.length b1 = List.length b2
      && List.for_all2
           (fun (k1, v1) (k2, v2) ->
             String.equal k1 k2 && Value.equal_strict v1 v2)
           b1 b2

let pp ppf (r : t) =
  Fmt.pf ppf "(%a)"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s: %a" k Value.pp v))
    (bindings r)
