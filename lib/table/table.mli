(** Driving tables: bags of consistent records.

    A table is a multiset of records over a fixed column list; the row
    list is the bag (duplicates matter).  Row order is semantically
    irrelevant in Cypher — the paper's point is precisely that legacy
    updates leak it — so this module also provides explicit reorderings
    used to exhibit that leakage. *)

type t

(** The unit table T(): one empty record, no columns — the input to
    every statement (Section 8.1). *)
val unit : t

(** The empty table: no rows at all. *)
val empty_over : string list -> t

val columns : t -> string list
val rows : t -> Record.t list
val row_count : t -> int
val is_empty : t -> bool

(** [make columns rows] builds a table, padding every record to exactly
    [columns] (missing bindings become null, extra bindings are dropped)
    so the consistency invariant holds.  Column order is preserved
    (first occurrence wins on duplicates). *)
val make : string list -> Record.t list -> t

(** [make_rev columns rows_rev] is [make columns (List.rev rows_rev)]
    in a single traversal — for producers that accumulate rows in
    reverse order (the matcher's fold). *)
val make_rev : string list -> Record.t list -> t

(** [of_consistent columns rows] adopts [rows] without the per-row
    consistency projection of {!make}.  Trusted, engine-only: the
    caller must guarantee every row binds exactly [columns] (in that
    order) and that [columns] is duplicate-free — the matcher's
    natural-order slot path is the intended producer. *)
val of_consistent : string list -> Record.t list -> t

(** [of_rows rows] infers the column set as the union of all keys. *)
val of_rows : Record.t list -> t

val map : (Record.t -> Record.t) -> t -> t

(** [concat_map columns f t] expands every row into several rows; the
    new column set must be supplied since expansion may bind new
    variables. *)
val concat_map : string list -> (Record.t -> Record.t list) -> t -> t

(** [concat_map_par ~parallelism columns f t] is {!concat_map} with the
    per-row expansion fanned out over the {!Cypher_util.Pool} domain
    pool ([parallelism <= 1] falls back to the serial path).  [f] must
    be pure; results are gathered in input order, so the output is
    byte-identical to the serial one. *)
val concat_map_par :
  parallelism:int -> string list -> (Record.t -> Record.t list) -> t -> t

val filter : (Record.t -> bool) -> t -> t
val fold : (Record.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Bag union ⊎: duplicates add up; column lists are unified with null
    padding (used by UNION ALL and by MERGE's Tmatch ⊎ Tcreate). *)
val bag_union : t -> t -> t

(** Duplicate elimination preserving first-occurrence order. *)
val distinct : t -> t

(** Set union: bag union followed by {!distinct} (UNION). *)
val union : t -> t -> t

(** [project names t] is the projection π_names(t) (bag semantics: row
    count is preserved). *)
val project : string list -> t -> t

val order_by : (Record.t -> Record.t -> int) -> t -> t
val skip : int -> t -> t
val limit : int -> t -> t

(** {1 Reorderings for the order-dependence experiments (E6, E7)} *)

val reverse : t -> t
val permute_seed : int -> t -> t

(** Bag equality: same columns, same row multiset. *)
val equal_as_bags : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
