(** Driving tables: bags of consistent records.

    A table is a multiset of records over a fixed column set; the row list
    is the bag (duplicates matter).  Row order is semantically irrelevant
    in Cypher — the paper's point is precisely that legacy updates leak
    it — so this module also provides explicit reorderings used to
    exhibit that leakage. *)

open Cypher_util.Maps
open Cypher_graph

type t = { columns : string list; rows : Record.t list }

(** The unit table T(): one empty record, no columns — the input to every
    statement (Section 8.1). *)
let unit = { columns = []; rows = [ Record.empty ] }

(** The empty table: no rows at all. *)
let empty_over columns = { columns; rows = [] }

let columns t = t.columns
let rows t = t.rows
let row_count t = List.length t.rows
let is_empty t = t.rows = []

let dedup_columns columns =
  (* set-based membership: [of_rows] feeds this the concatenated key
     lists of every record, so the accumulator can get wide *)
  let rec loop seen acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if Sset.mem c seen then loop seen acc rest
        else loop (Sset.add c seen) (c :: acc) rest
  in
  loop Sset.empty [] columns

(** [make columns rows] builds a table, padding every record to exactly
    [columns] (missing bindings become null, extra bindings are dropped)
    so the consistency invariant holds.  Column order is preserved
    (first occurrence wins on duplicates). *)
let make columns rows =
  let columns = dedup_columns columns in
  { columns; rows = List.map (fun r -> Record.project r columns) rows }

(** [make_rev columns rows_rev] is [make columns (List.rev rows_rev)] in
    one traversal: the reversal and the consistency projection share a
    single [List.rev_map] pass (projection is pure, so evaluation order
    is unobservable).  For producers that naturally accumulate rows in
    reverse — the matcher's fold — this avoids walking and re-consing a
    large row list twice. *)
let make_rev columns rows_rev =
  let columns = dedup_columns columns in
  { columns; rows = List.rev_map (fun r -> Record.project r columns) rows_rev }

(** [of_consistent columns rows] adopts [rows] as-is — no per-row
    consistency projection.  Trusted constructor for engine-internal
    producers that already guarantee every row binds exactly [columns]
    (the matcher's natural-order slot path, whose rows all share the
    layout compiled from these very columns).  [columns] must already
    be duplicate-free. *)
let of_consistent columns rows = { columns; rows }

(** [of_rows rows] infers the column set as the union of all keys. *)
let of_rows rows =
  let columns = dedup_columns (List.concat_map Record.keys rows) in
  make columns rows

let map f t = { t with rows = List.map f t.rows }

(** [concat_map columns f t] expands every row into several rows; the new
    column set must be supplied since expansion may bind new variables.
    A single-row table (every first MATCH runs on one) takes [f row]
    directly, skipping [List.concat_map]'s rev_append/rev round trip
    over what may be a very large expansion. *)
let concat_map columns f t =
  make columns
    (match t.rows with
    | [ row ] -> f row
    | rows -> List.concat_map f rows)

(** [concat_map_par ~parallelism columns f t] is {!concat_map} with the
    per-row expansion fanned out over a domain pool.  The gather is
    ordered, so the result is byte-identical to the serial one whenever
    [f] is pure — the caller's obligation (the engine only uses this for
    read phases against an immutable graph snapshot). *)
let concat_map_par ~parallelism columns f t =
  match t.rows with
  | [ row ] -> make columns (f row) (* nothing to fan out *)
  | rows -> make columns (Cypher_util.Pool.concat_map_chunks ~parallelism f rows)

let filter p t = { t with rows = List.filter p t.rows }

let fold f t acc = List.fold_left (fun acc r -> f r acc) acc t.rows

(** Bag union ⊎: duplicates add up; the column sets are unified with null
    padding (used by UNION ALL and by MERGE's Tmatch ⊎ Tcreate). *)
let bag_union t1 t2 =
  let columns = dedup_columns (t1.columns @ t2.columns) in
  make columns (t1.rows @ t2.rows)

module Rset = Set.Make (struct
  type t = Record.t

  let compare = Record.compare
end)

(** Set union: bag union followed by duplicate elimination (UNION).
    First-occurrence order of rows is preserved; membership is tracked
    in a balanced set keyed by the record total order, so UNION over an
    n-row table costs O(n log n) rather than O(n²). *)
let distinct t =
  let rec dedup seen acc = function
    | [] -> List.rev acc
    | r :: rest ->
        if Rset.mem r seen then dedup seen acc rest
        else dedup (Rset.add r seen) (r :: acc) rest
  in
  { t with rows = dedup Rset.empty [] t.rows }

let union t1 t2 = distinct (bag_union t1 t2)

(** [project names t] is the projection π_names(t) (bag semantics: row
    count is preserved). *)
let project names t = make names t.rows

let order_by cmp t = { t with rows = List.stable_sort cmp t.rows }

let skip n t = { t with rows = Cypher_util.Listx.drop n t.rows }
let limit n t = { t with rows = Cypher_util.Listx.take n t.rows }

(** Reorderings used by the order-dependence experiments (E6, E7). *)
let reverse t = { t with rows = List.rev t.rows }

let permute_seed seed t =
  { t with rows = Cypher_util.Listx.permutation_of_seed seed t.rows }

let equal_as_bags t1 t2 =
  List.sort Record.compare t1.rows = List.sort Record.compare t2.rows
  && t1.columns = t2.columns

let pp ppf t =
  Fmt.pf ppf "@[<v>| %a |" Fmt.(list ~sep:(any " | ") string) t.columns;
  List.iter
    (fun r ->
      Fmt.pf ppf "@,| %a |"
        Fmt.(list ~sep:(any " | ") Value.pp)
        (List.map (Record.find r) t.columns))
    t.rows;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t
