(** Semantics of DELETE and DETACH DELETE.

    Legacy (Cypher 9): entities are removed one record at a time; the
    graph may pass through illegal states with dangling relationships,
    validity being checked only at the end of the statement (Neo4j's
    commit-time check).  References to deleted entities stay in the
    driving table (the "empty node" of Section 4.2).

    Revised (Section 7): all entities to delete are collected against
    the input graph; a plain DELETE fails with {!Errors.Delete_dangling}
    if relationships would be left dangling, DETACH DELETE adds every
    attached relationship; all collected entities are removed at once
    and every table reference to them is replaced by null. *)

open Cypher_graph
open Cypher_table

val run :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> detach:bool -> Cypher_ast.Ast.expr list ->
  Graph.t * Table.t
