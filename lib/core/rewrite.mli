(** Rewriting of entity references inside values and records.

    Used by atomic DELETE ("any reference to a deleted entity in the
    driving table is replaced by a null", Section 7) and by the
    MERGE SAME quotient (occurrences of an entity are replaced by their
    equivalence-class representative, Section 8.2). *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table

(** [map_entities ~node ~rel v] rewrites every node/relationship
    reference in [v], descending into lists, maps and paths.  [node] and
    [rel] return [None] to null the reference out; a path with a deleted
    component becomes null as a whole. *)
val map_entities :
  node:(Value.node_id -> Value.node_id option) ->
  rel:(Value.rel_id -> Value.rel_id option) ->
  Value.t ->
  Value.t

val record :
  node:(Value.node_id -> Value.node_id option) ->
  rel:(Value.rel_id -> Value.rel_id option) ->
  Record.t ->
  Record.t

val table :
  node:(Value.node_id -> Value.node_id option) ->
  rel:(Value.rel_id -> Value.rel_id option) ->
  Table.t ->
  Table.t

(** [null_deleted ~nodes ~rels t] replaces references to the deleted id
    sets by null throughout [t]. *)
val null_deleted : nodes:Iset.t -> rels:Iset.t -> Table.t -> Table.t
