(** Semantics of the SET clause.

    Legacy (Cypher 9): set items are applied one record at a time, one
    item at a time, each immediately visible to the next — which loses
    the simultaneous-assignment reading (Example 1) and silently resolves
    conflicting assignments by last-writer-wins (Example 2).

    Revised (Section 7): all expressions are first evaluated against the
    *input* graph for every record, accumulating the induced changes
    (propchanges / labchanges of Section 8.2); if two changes assign
    different values to the same property of the same entity the clause
    fails with {!Errors.Set_conflict}; otherwise all changes are applied
    in one atomic step. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

type target = T_node of int | T_rel of int

let target_value = function
  | T_node id -> Value.Node id
  | T_rel id -> Value.Rel id

(** Resolves a SET target expression; [None] means null (no-op). *)
let resolve_target config g row e : target option =
  let v = Eval.eval (Runtime.ctx config g row) e in
  match v with
  | Value.Node id -> Some (T_node id)
  | Value.Rel id -> Some (T_rel id)
  | Value.Null -> None
  | v ->
      Errors.eval_error "SET target must be a node or relationship, got %s"
        (Value.to_string v)

(** Evaluates the map argument of [SET e = m] / [SET e += m]: a literal
    map, a node or a relationship (whose properties are copied). *)
let resolve_props config g row e : Props.t =
  let v = Eval.eval (Runtime.ctx config g row) e in
  match v with
  | Value.Map m ->
      (* re-add through Props.set so null values drop keys *)
      List.fold_left
        (fun acc (k, v) -> Props.set acc k v)
        Props.empty
        (Cypher_util.Maps.Smap.bindings m)
  | Value.Node id -> Graph.node_props_of g id
  | Value.Rel id -> Graph.rel_props_of g id
  | v ->
      Errors.eval_error
        "SET expects a map, node or relationship on the right, got %s"
        (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Legacy: immediate application                                      *)
(* ------------------------------------------------------------------ *)

(* The apply_* helpers are the single point every property/label write
   funnels through (legacy immediate application, atomic apply_change,
   MERGE's ON CREATE / ON MATCH), so the stats touches recorded here are
   exhaustive.  Touches are recorded only for entities that exist at
   write time — a legacy SET on a deleted node is a graph no-op
   (Section 4.2's "empty node") and must be a stats no-op too. *)

let stats_target = function
  | T_node id -> Stats.Tnode id
  | T_rel id -> Stats.Trel id

let target_alive g = function
  | T_node id -> Graph.has_node g id
  | T_rel id -> Graph.has_rel g id

let props_of g = function
  | T_node id -> Graph.node_props_of g id
  | T_rel id -> Graph.rel_props_of g id

let touch_prop stats g target k =
  if Stats.enabled stats && target_alive g target then
    Stats.prop_touched stats (stats_target target) k
      ~orig:(Props.get (props_of g target) k)

let apply_prop ~stats g target k v =
  touch_prop stats g target k;
  match target with
  | T_node id -> Graph.set_node_prop g id k v
  | T_rel id -> Graph.set_rel_prop g id k v

let apply_replace ~stats g target props =
  (if Stats.enabled stats && target_alive g target then
     (* every key of the old and the new map is potentially changed *)
     let keys =
       List.map fst (Props.bindings (props_of g target))
       @ List.map fst (Props.bindings props)
     in
     List.iter (fun k -> touch_prop stats g target k) keys);
  match target with
  | T_node id -> Graph.replace_node_props g id props
  | T_rel id -> Graph.replace_rel_props g id props

let apply_merge ~stats g target props =
  (if Stats.enabled stats && target_alive g target then
     List.iter (fun (k, _) -> touch_prop stats g target k) (Props.bindings props));
  match target with
  | T_node id -> Graph.merge_node_props g id props
  | T_rel id -> Graph.merge_rel_props g id props

let apply_labels ~stats g target labels =
  match target with
  | T_node id ->
      if Stats.enabled stats && Graph.has_node g id then
        List.iter
          (fun l -> Stats.label_touched stats id l ~had:(Graph.has_label g id l))
          labels;
      Graph.add_labels g id labels
  | T_rel _ ->
      Errors.update_error "labels can only be set on nodes"

let legacy_item config ~stats g row item =
  match item with
  | Set_prop (e, k, ve) -> (
      match resolve_target config g row e with
      | None -> g
      | Some t ->
          let v = Eval.eval (Runtime.ctx config g row) ve in
          apply_prop ~stats g t k v)
  | Set_all_props (e, me) -> (
      match resolve_target config g row e with
      | None -> g
      | Some t -> apply_replace ~stats g t (resolve_props config g row me))
  | Set_merge_props (e, me) -> (
      match resolve_target config g row e with
      | None -> g
      | Some t -> apply_merge ~stats g t (resolve_props config g row me))
  | Set_labels (e, ls) -> (
      match resolve_target config g row e with
      | None -> g
      | Some t -> apply_labels ~stats g t ls)

let run_legacy config ~stats (g, t) items =
  let rows = Config.arrange_rows config (Table.rows t) in
  let g =
    List.fold_left
      (fun g row ->
        List.fold_left (fun g item -> legacy_item config ~stats g row item) g items)
      g rows
  in
  (g, t)

(* ------------------------------------------------------------------ *)
(* Revised: collect, check, apply                                     *)
(* ------------------------------------------------------------------ *)

type change =
  | C_prop of target * string * Value.t
  | C_replace of target * Props.t
  | C_labels of target * string list

(** Collects the changes of one item under one record, evaluated against
    the input graph [g0]. *)
let collect_item config g0 row item acc =
  match item with
  | Set_prop (e, k, ve) -> (
      match resolve_target config g0 row e with
      | None -> acc
      | Some t ->
          let v = Eval.eval (Runtime.ctx config g0 row) ve in
          C_prop (t, k, v) :: acc)
  | Set_all_props (e, me) -> (
      match resolve_target config g0 row e with
      | None -> acc
      | Some t -> C_replace (t, resolve_props config g0 row me) :: acc)
  | Set_merge_props (e, me) -> (
      match resolve_target config g0 row e with
      | None -> acc
      | Some t ->
          (* += expands to one per-key change so that conflicts between
             overlapping maps are detected *)
          let props = resolve_props config g0 row me in
          (* keys removed by a null value in the source map have already
             been dropped by resolve_props; a += can therefore only add
             or overwrite keys, never remove them *)
          List.fold_left
            (fun acc (k, v) -> C_prop (t, k, v) :: acc)
            acc (Props.bindings props))
  | Set_labels (e, ls) -> (
      match resolve_target config g0 row e with
      | None -> acc
      | Some t -> C_labels (t, ls) :: acc)

(** Checks well-definedness: no two changes may assign different values
    to the same property of the same entity (Example 2 must error). *)
let check_conflicts changes =
  let tbl = Hashtbl.create 16 in
  let replace_tbl = Hashtbl.create 4 in
  List.iter
    (fun change ->
      match change with
      | C_prop (t, k, v) -> (
          match Hashtbl.find_opt tbl (t, k) with
          | None -> Hashtbl.add tbl (t, k) v
          | Some v' ->
              if not (Value.equal_strict v v') then
                Errors.fail
                  (Errors.Set_conflict
                     { entity = target_value t; key = k; value1 = v'; value2 = v }))
      | C_replace (t, props) -> (
          match Hashtbl.find_opt replace_tbl t with
          | None -> Hashtbl.add replace_tbl t props
          | Some props' ->
              if not (Props.equal props props') then
                Errors.fail
                  (Errors.Set_conflict
                     {
                       entity = target_value t;
                       key = "*";
                       value1 = Props.to_value props';
                       value2 = Props.to_value props;
                     }))
      | C_labels _ -> ())
    changes;
  (* a whole-map replacement combined with a point assignment on the
     same entity is well-defined only when the point assignment agrees
     with the replacement map *)
  Hashtbl.iter
    (fun (t, k) v ->
      match Hashtbl.find_opt replace_tbl t with
      | None -> ()
      | Some props ->
          if not (Value.equal_strict (Props.get props k) v) then
            Errors.fail
              (Errors.Set_conflict
                 {
                   entity = target_value t;
                   key = k;
                   value1 = Props.get props k;
                   value2 = v;
                 }))
    tbl

let apply_change ~stats g = function
  | C_prop (t, k, v) -> apply_prop ~stats g t k v
  | C_replace (t, props) -> apply_replace ~stats g t props
  | C_labels (t, ls) -> apply_labels ~stats g t ls

let run_atomic config ~stats (g, t) items =
  let changes =
    List.fold_left
      (fun acc row ->
        List.fold_left (fun acc item -> collect_item config g row item acc) acc items)
      [] (Table.rows t)
  in
  let changes = List.rev changes in
  check_conflicts changes;
  (* replacements first, then point assignments, then labels: point
     assignments agreeing with a replacement must survive it *)
  let order = function C_replace _ -> 0 | C_prop _ -> 1 | C_labels _ -> 2 in
  let changes = List.stable_sort (fun a b -> compare (order a) (order b)) changes in
  let g = List.fold_left (apply_change ~stats) g changes in
  (g, t)

let run config ~stats (g, t) items =
  match config.Config.mode with
  | Config.Legacy -> run_legacy config ~stats (g, t) items
  | Config.Atomic -> run_atomic config ~stats (g, t) items
