(** Execution configuration: which update semantics to run, in which
    driving-table order legacy clauses process records, which dialect to
    validate against, and the query parameters. *)

open Cypher_util.Maps
open Cypher_graph

(** Update semantics regime for SET / DELETE / FOREACH and for plain
    MERGE.  [Legacy] is Cypher 9's per-record behaviour (Section 3–4);
    [Atomic] is the revised behaviour of Section 7. *)
type mode = Legacy | Atomic

(** Record-processing order used by [Legacy] clauses.  Cypher tables are
    unordered, so a correct semantics must not depend on this — the
    legacy one does (Example 3), which this knob makes observable. *)
type order = Forward | Reverse | Seeded of int

(** Pattern-matching regime.  [Isomorphic] is Cypher's: distinct
    relationship patterns bind distinct relationships (Section 2).
    [Homomorphic] lifts that restriction — the extension the paper
    announces for later Cypher versions (Section 6, Example 7), under
    which Strong Collapse is "a very natural choice".  Variable-length
    steps remain edge-distinct within their own walk so that outputs
    stay finite. *)
type match_mode = Isomorphic | Homomorphic

(** Cost-guided match planning (anchor selection, hop orientation —
    see [Matcher.Plan]).  [Off] keeps the naive left-to-right
    enumeration, whose row *order* the legacy order-sensitivity
    experiments depend on; planning never changes the row *set*. *)
type planner = On | Off

(** Journal durability for sessions opened on a database path
    ([Cypher_storage.Store]).  [Fsync] forces the write-ahead journal to
    stable storage on every outermost commit; [Buffered] leaves flushing
    to the OS (fast, loses the tail of the journal on a machine crash —
    never on a process crash).  Irrelevant to purely in-memory
    sessions. *)
type durability = Fsync | Buffered

(** Physical graph layout serving reads — {!Graph.backend}.
    [`Persistent] is the default persistent-map path; [`Compact] builds
    CSR snapshots at read-phase boundaries (interned symbols, int
    adjacency arrays, property arenas) for large graphs.  The two are
    observationally identical (fuzz oracle 9). *)
type backend = Graph.backend

(** Row representation of the read pipeline.  [`Records] (default)
    executes over persistent string-keyed maps; [`Slots] compiles each
    clause's column set to a {!Cypher_table.Slots} layout at the clause
    boundary and runs MATCH expansion, WHERE, UNWIND and projection over
    flat value arrays (one allocation per row, index binds/lookups).
    The two are observationally identical — the fuzz battery runs
    byte-for-byte under either. *)
type rows = [ `Records | `Slots ]

type t = {
  mode : mode;
  order : order;
  match_mode : match_mode;
  planner : planner;
  parallelism : int;
  durability : durability;
  collect_stats : bool;
      (** collect per-statement update counters ({!Stats}); on by
          default — the disabled path exists for benchmarking the
          collection overhead away *)
  dialect : Cypher_ast.Validate.dialect;
  params : Value.t Smap.t;
  plan_cache_capacity : int;
      (** maximum number of compiled statements a {!Session} keeps in
          its LRU plan cache; [0] disables caching entirely *)
  backend : backend;
  rows : rows;
}

(** Parses a [CYPHER_PARALLELISM]-style value: unset/empty/"0"/invalid
    mean serial, "auto" means {!Cypher_util.Pool.recommended}, and a
    positive integer is the fan-out width (the calling domain counts). *)
let parallelism_of_string = function
  | None | Some "" | Some "0" -> 0
  | Some "auto" -> Cypher_util.Pool.recommended ()
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 0)

(** Process-wide default, read once from [CYPHER_PARALLELISM] at
    startup: every stock configuration below starts from it, so
    [CYPHER_PARALLELISM=4 dune exec ...] parallelises the read phases
    without any code change.  Unset means serial — parallel-on is
    byte-identical to parallel-off (see DESIGN.md), but spawning
    domains for small inputs is a cost the caller should opt into. *)
let default_parallelism =
  parallelism_of_string (Sys.getenv_opt "CYPHER_PARALLELISM")

(** Parses a [CYPHER_BACKEND]-style value: "compact" selects the CSR
    backend, anything else (including unset) the persistent default. *)
let backend_of_string : string option -> backend = function
  | Some "compact" -> `Compact
  | _ -> `Persistent

(** Process-wide default, read once from [CYPHER_BACKEND] at startup:
    every stock configuration below starts from it, so
    [CYPHER_BACKEND=compact dune exec ...] runs the whole process —
    tests and fuzz oracles included — on the compact backend without
    any code change. *)
let default_backend = backend_of_string (Sys.getenv_opt "CYPHER_BACKEND")

(** Parses a [CYPHER_ROWS]-style value: "slots" selects slot-compiled
    array rows, anything else (including unset) the record default. *)
let rows_of_string : string option -> rows = function
  | Some "slots" -> `Slots
  | _ -> `Records

(** Process-wide default, read once from [CYPHER_ROWS] at startup:
    every stock configuration below starts from it, so
    [CYPHER_ROWS=slots dune exec ...] runs the whole process — tests
    and fuzz oracles included — on slot-compiled rows without any code
    change. *)
let default_rows = rows_of_string (Sys.getenv_opt "CYPHER_ROWS")

(** Cypher 9 as shipped: legacy update semantics, Figure 2–5 grammar,
    naive matching (its order-sensitive behaviours stay reproducible). *)
let cypher9 =
  { mode = Legacy; order = Forward; match_mode = Isomorphic; planner = Off;
    parallelism = default_parallelism; durability = Fsync; collect_stats = true;
    dialect = Cypher_ast.Validate.Cypher9; params = Smap.empty;
    plan_cache_capacity = 128; backend = default_backend; rows = default_rows }

(** The paper's revised language: atomic semantics, Figure 10 grammar. *)
let revised =
  { mode = Atomic; order = Forward; match_mode = Isomorphic; planner = On;
    parallelism = default_parallelism; durability = Fsync; collect_stats = true;
    dialect = Cypher_ast.Validate.Revised; params = Smap.empty;
    plan_cache_capacity = 128; backend = default_backend; rows = default_rows }

(** Everything the parser accepts, atomic semantics: used to experiment
    with the Section 6 proposal variants (MERGE GROUPING / WEAK /
    COLLAPSE). *)
let permissive =
  { mode = Atomic; order = Forward; match_mode = Isomorphic; planner = On;
    parallelism = default_parallelism; durability = Fsync; collect_stats = true;
    dialect = Cypher_ast.Validate.Permissive; params = Smap.empty;
    plan_cache_capacity = 128; backend = default_backend; rows = default_rows }

let with_order order t = { t with order }
let with_match_mode match_mode t = { t with match_mode }
let with_planner planner t = { t with planner }
let with_parallelism parallelism t = { t with parallelism = max 0 parallelism }
let with_durability durability t = { t with durability }
let with_stats collect_stats t = { t with collect_stats }
let with_params params t = { t with params }

let with_param name v t = { t with params = Smap.add name v t.params }

let with_plan_cache_capacity n t = { t with plan_cache_capacity = max 0 n }
let with_backend backend t = { t with backend }
let with_rows rows t = { t with rows }

(** [arrange_rows config rows] applies the configured record order;
    identity under [Forward]. *)
let arrange_rows config rows =
  match config.order with
  | Forward -> rows
  | Reverse -> List.rev rows
  | Seeded seed -> Cypher_util.Listx.permutation_of_seed seed rows
