(** Semantics of the REMOVE clause (Section 8.2).

    Label and property removals cannot conflict — removing twice is the
    same as removing once — so the legacy and revised semantics coincide;
    changes are evaluated and applied from left to right. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

let resolve config g row e =
  let v = Eval.eval (Runtime.ctx config g row) e in
  match v with
  | Value.Node id -> Some (`Node id)
  | Value.Rel id -> Some (`Rel id)
  | Value.Null -> None
  | v ->
      Errors.eval_error "REMOVE target must be a node or relationship, got %s"
        (Value.to_string v)

let apply_item config ~stats g row = function
  | Rem_prop (e, k) -> (
      match resolve config g row e with
      | None -> g
      | Some (`Node id) ->
          if Stats.enabled stats && Graph.has_node g id then
            Stats.prop_touched stats (Stats.Tnode id) k
              ~orig:(Props.get (Graph.node_props_of g id) k);
          Graph.remove_node_prop g id k
      | Some (`Rel id) ->
          if Stats.enabled stats && Graph.has_rel g id then
            Stats.prop_touched stats (Stats.Trel id) k
              ~orig:(Props.get (Graph.rel_props_of g id) k);
          Graph.remove_rel_prop g id k)
  | Rem_labels (e, ls) -> (
      match resolve config g row e with
      | None -> g
      | Some (`Node id) ->
          if Stats.enabled stats && Graph.has_node g id then
            List.iter
              (fun l ->
                Stats.label_touched stats id l ~had:(Graph.has_label g id l))
              ls;
          List.fold_left (fun g l -> Graph.remove_label g id l) g ls
      | Some (`Rel _) -> Errors.update_error "labels can only be removed from nodes")

let run config ~stats (g, t) items =
  let g =
    Table.fold
      (fun row g ->
        List.fold_left (fun g item -> apply_item config ~stats g row item) g items)
      t g
  in
  (g, t)
