(** The clause-by-clause execution engine.

    Implements the semantics framework of Section 8.1: a clause denotes
    a function on graph–table pairs, [[C S]](G,T) = [[S]]([[C]](G,T)),
    and a statement's output is [[Q]](G, T()) where T() is the unit
    table. *)

open Cypher_graph
open Cypher_table

(** Cross-execution cache of hoisted match plans, carried by a prepared
    statement ({!Api.prepare}).  Slots are keyed by top-level clause
    index; the memo remembers the property-index key set it was filled
    under and invalidates itself when that set changes, so a plan
    compiled before an index registration is never served afterwards. *)
module Plan_memo : sig
  type t

  val create : unit -> t
  val clear : t -> unit
end

(** [exec_clause config ~stats (g, t) c] is [[c]](g, t); update clauses
    record what they do into [stats] (pass {!Stats.null} to collect
    nothing).
    @raise Errors.Error / Cypher_eval.Ctx.Error on failure. *)
val exec_clause :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> Cypher_ast.Ast.clause -> Graph.t * Table.t

(** Executes a query on a graph–table pair.  UNION branches run
    left-to-right, each on the unit table against the graph produced by
    the previous branch; their output tables are combined by bag union
    (UNION ALL) or set union (UNION), as in Section 8.2.  [memo] (with
    [counter] numbering the top-level clauses) lets repeated executions
    of the same compiled query reuse hoisted match plans; see
    {!Plan_memo}. *)
val exec_query :
  Config.t ->
  stats:Stats.collector ->
  ?profile:Stats.profile_entry list ref ->
  ?memo:Plan_memo.t ->
  counter:int ref ->
  Graph.t * Table.t -> Cypher_ast.Ast.query -> Graph.t * Table.t

(** [output ?stats ?profile config g q] is output(Q, G) of Section 8.1:
    runs the whole statement on the unit table.  Under the legacy
    regime, graph validity is only checked here, at the statement
    boundary — mirroring Neo4j's commit-time dangling check
    (Section 4.2).  When [profile] is given, each top-level clause is
    timed and its output row count recorded (entries accumulate in
    execution order, latest first). *)
val output :
  ?stats:Stats.collector ->
  ?profile:Stats.profile_entry list ref ->
  ?memo:Plan_memo.t ->
  Config.t -> Graph.t -> Cypher_ast.Ast.query -> Graph.t * Table.t
