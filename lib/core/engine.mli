(** The clause-by-clause execution engine.

    Implements the semantics framework of Section 8.1: a clause denotes
    a function on graph–table pairs, [[C S]](G,T) = [[S]]([[C]](G,T)),
    and a statement's output is [[Q]](G, T()) where T() is the unit
    table. *)

open Cypher_graph
open Cypher_table

(** [exec_clause config (g, t) c] is [[c]](g, t).
    @raise Errors.Error / Cypher_eval.Ctx.Error on failure. *)
val exec_clause :
  Config.t -> Graph.t * Table.t -> Cypher_ast.Ast.clause -> Graph.t * Table.t

(** Executes a query on a graph–table pair.  UNION branches run
    left-to-right, each on the unit table against the graph produced by
    the previous branch; their output tables are combined by bag union
    (UNION ALL) or set union (UNION), as in Section 8.2. *)
val exec_query :
  Config.t -> Graph.t * Table.t -> Cypher_ast.Ast.query -> Graph.t * Table.t

(** [output config g q] is output(Q, G) of Section 8.1: runs the whole
    statement on the unit table.  Under the legacy regime, graph
    validity is only checked here, at the statement boundary — mirroring
    Neo4j's commit-time dangling check (Section 4.2). *)
val output : Config.t -> Graph.t -> Cypher_ast.Ast.query -> Graph.t * Table.t
