(** Public entry points: parse, validate and execute Cypher statements.

    This is the facade a downstream user programs against; everything
    else in [cypher_core] is reachable for fine-grained use (e.g. the
    experiment harness drives {!Merge} directly to compare proposal
    variants on explicit driving tables). *)

open Cypher_graph
open Cypher_table
module Parser = Cypher_parser.Parser
module Validate = Cypher_ast.Validate

type outcome = { graph : Graph.t; table : Table.t }

type result = {
  r_graph : Graph.t;
  r_table : Table.t;
  r_stats : Stats.t;
  r_plan : string option;  (** rendered under EXPLAIN / PROFILE *)
  r_profile : Stats.profile_entry list option;  (** PROFILE only *)
}

let wrap_errors f =
  try Ok (f ()) with
  | Errors.Error e -> Error e
  | Cypher_eval.Ctx.Error m -> Error (Errors.Eval_error m)
  | Invalid_argument m -> Error (Errors.Eval_error m)

(** [parse ~dialect src] parses and validates one statement. *)
let parse ?(dialect = Validate.Revised) src =
  match Parser.parse_string src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok q -> (
      match Validate.validate dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q -> Ok q)

(** [run_query_full ~config ~prefix graph q] validates [q] against the
    configured dialect and executes it under the given statement prefix.
    [EXPLAIN] renders the plan and does not run the statement (the input
    graph comes back unchanged, with an empty table); [PROFILE] runs it
    and additionally reports per-clause row counts and wall-time. *)
let run_query_full ?(config = Config.revised) ?(prefix = Parser.Plain) graph
    (q : Cypher_ast.Ast.query) : (result, Errors.t) Stdlib.result =
  match Validate.validate config.Config.dialect q with
  | Error m -> Error (Errors.Validation_error m)
  | Ok q ->
      wrap_errors (fun () ->
          match prefix with
          | Parser.Explain ->
              {
                r_graph = graph;
                r_table = Table.unit;
                r_stats = Stats.empty;
                r_plan = Some (Explain.render config graph q);
                r_profile = None;
              }
          | Parser.Plain | Parser.Profile ->
              let stats =
                if config.Config.collect_stats then Stats.make ()
                else Stats.null
              in
              let profile =
                match prefix with
                | Parser.Profile -> Some (ref [])
                | _ -> None
              in
              let plan =
                match prefix with
                | Parser.Profile ->
                    Some (Explain.render ~profiled:true config graph q)
                | _ -> None
              in
              let graph', table = Engine.output ~stats ?profile config graph q in
              {
                r_graph = graph';
                r_table = table;
                r_stats = Stats.finalize stats graph';
                r_plan = plan;
                r_profile =
                  Option.map (fun acc -> List.rev !acc) profile;
              })

(** [run_query ~config graph q] validates [q] against the configured
    dialect and executes it, returning the updated graph and the output
    table. *)
let run_query ?config graph (q : Cypher_ast.Ast.query) :
    (outcome, Errors.t) Stdlib.result =
  match run_query_full ?config graph q with
  | Error e -> Error e
  | Ok r -> Ok { graph = r.r_graph; table = r.r_table }

(** [run_string_full ~config graph src] parses (recognising an optional
    EXPLAIN / PROFILE prefix), validates and executes one statement. *)
let run_string_full ?(config = Config.revised) graph src =
  match Parser.parse_statement src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok (prefix, q) -> (
      match Validate.validate config.Config.dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q -> run_query_full ~config ~prefix graph q)

(** [run_string ~config graph src] parses, validates and executes one
    statement. *)
let run_string ?(config = Config.revised) graph src =
  match parse ~dialect:config.Config.dialect src with
  | Error e -> Error e
  | Ok q -> run_query ~config graph q

(** [run_program ~config graph src] executes a [;]-separated sequence of
    statements, threading the graph; returns the final graph and the
    output table of every statement.  Execution stops at the first
    error. *)
let run_program ?(config = Config.revised) graph src :
    (Graph.t * Table.t list, Errors.t) Stdlib.result =
  match Parser.parse_program src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok queries ->
      let rec loop graph acc = function
        | [] -> Ok (graph, List.rev acc)
        | q :: rest -> (
            match run_query ~config graph q with
            | Error e -> Error e
            | Ok { graph; table } -> loop graph (table :: acc) rest)
      in
      loop graph [] queries

(** Convenience: [run_exn] for tests and examples that treat errors as
    fatal.  Raises {!Errors.Error} so callers keep the structured error
    (the printer registered in {!Errors} renders it readably if it
    escapes to top level) rather than a flattened [Failure] string. *)
let run_exn ?config graph src =
  match run_string ?config graph src with
  | Ok outcome -> outcome
  | Error e -> Errors.fail e
