(** Public entry points: parse, validate and execute Cypher statements.

    This is the facade a downstream user programs against; everything
    else in [cypher_core] is reachable for fine-grained use (e.g. the
    experiment harness drives {!Merge} directly to compare proposal
    variants on explicit driving tables). *)

open Cypher_graph
open Cypher_table
module Parser = Cypher_parser.Parser
module Validate = Cypher_ast.Validate

type outcome = { graph : Graph.t; table : Table.t }

let wrap_errors f =
  try Ok (f ()) with
  | Errors.Error e -> Error e
  | Cypher_eval.Ctx.Error m -> Error (Errors.Eval_error m)
  | Invalid_argument m -> Error (Errors.Eval_error m)

(** [parse ~dialect src] parses and validates one statement. *)
let parse ?(dialect = Validate.Revised) src =
  match Parser.parse_string src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok q -> (
      match Validate.validate dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q -> Ok q)

(** [run_query ~config graph q] validates [q] against the configured
    dialect and executes it, returning the updated graph and the output
    table. *)
let run_query ?(config = Config.revised) graph (q : Cypher_ast.Ast.query) :
    (outcome, Errors.t) result =
  match Validate.validate config.Config.dialect q with
  | Error m -> Error (Errors.Validation_error m)
  | Ok q ->
      wrap_errors (fun () ->
          let graph, table = Engine.output config graph q in
          { graph; table })

(** [run_string ~config graph src] parses, validates and executes one
    statement. *)
let run_string ?(config = Config.revised) graph src =
  match parse ~dialect:config.Config.dialect src with
  | Error e -> Error e
  | Ok q -> run_query ~config graph q

(** [run_program ~config graph src] executes a [;]-separated sequence of
    statements, threading the graph; returns the final graph and the
    output table of every statement.  Execution stops at the first
    error. *)
let run_program ?(config = Config.revised) graph src :
    (Graph.t * Table.t list, Errors.t) result =
  match Parser.parse_program src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok queries ->
      let rec loop graph acc = function
        | [] -> Ok (graph, List.rev acc)
        | q :: rest -> (
            match run_query ~config graph q with
            | Error e -> Error e
            | Ok { graph; table } -> loop graph (table :: acc) rest)
      in
      loop graph [] queries

(** Convenience: [run_exn] for tests and examples that treat errors as
    fatal. *)
let run_exn ?config graph src =
  match run_string ?config graph src with
  | Ok outcome -> outcome
  | Error e -> failwith (Errors.to_string e)
