(** Public entry points: parse, validate and execute Cypher statements.

    This is the facade a downstream user programs against; everything
    else in [cypher_core] is reachable for fine-grained use (e.g. the
    experiment harness drives {!Merge} directly to compare proposal
    variants on explicit driving tables). *)

open Cypher_graph
open Cypher_table
open Cypher_util.Maps
module Parser = Cypher_parser.Parser
module Validate = Cypher_ast.Validate

type outcome = { graph : Graph.t; table : Table.t }

type result = {
  r_graph : Graph.t;
  r_table : Table.t;
  r_stats : Stats.t;
  r_plan : string option;  (** rendered under EXPLAIN / PROFILE *)
  r_profile : Stats.profile_entry list option;  (** PROFILE only *)
}

let wrap_errors f =
  try Ok (f ()) with
  | Errors.Error e -> Error e
  | Cypher_eval.Ctx.Error m -> Error (Errors.Eval_error m)
  | Cypher_eval.Ctx.Internal m -> Error (Errors.Internal_error m)
  | Invalid_argument m -> Error (Errors.Eval_error m)

(** [parse ~dialect src] parses and validates one statement. *)
let parse ?(dialect = Validate.Revised) src =
  match Parser.parse_string src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok q -> (
      match Validate.validate dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q -> Ok q)

(* Executes an already-validated query under the given statement prefix;
   the shared back half of [run_query_full] and [execute_full].  [memo]
   carries hoisted match plans across executions of a prepared
   statement. *)
let run_validated ?memo ~config ~prefix graph (q : Cypher_ast.Ast.query) :
    (result, Errors.t) Stdlib.result =
  (* the statement runs — and its result graph stays — on the
     configured backend; a metadata-only rewrite, so a CSR snapshot
     built for this content remains valid across statements *)
  let graph = Graph.with_backend config.Config.backend graph in
  wrap_errors (fun () ->
      match prefix with
      | Parser.Explain ->
          {
            r_graph = graph;
            r_table = Table.unit;
            r_stats = Stats.empty;
            r_plan = Some (Explain.render config graph q);
            r_profile = None;
          }
      | Parser.Plain | Parser.Profile ->
          let stats =
            if config.Config.collect_stats then Stats.make () else Stats.null
          in
          let profile =
            match prefix with Parser.Profile -> Some (ref []) | _ -> None
          in
          let plan =
            match prefix with
            | Parser.Profile ->
                Some (Explain.render ~profiled:true config graph q)
            | _ -> None
          in
          let graph', table =
            Engine.output ~stats ?profile ?memo config graph q
          in
          {
            r_graph = graph';
            r_table = table;
            r_stats = Stats.finalize stats graph';
            r_plan = plan;
            r_profile = Option.map (fun acc -> List.rev !acc) profile;
          })

(** [run_query_full ~config ~prefix graph q] validates [q] against the
    configured dialect and executes it under the given statement prefix.
    [EXPLAIN] renders the plan and does not run the statement (the input
    graph comes back unchanged, with an empty table); [PROFILE] runs it
    and additionally reports per-clause row counts and wall-time. *)
let run_query_full ?(config = Config.revised) ?(prefix = Parser.Plain) graph
    (q : Cypher_ast.Ast.query) : (result, Errors.t) Stdlib.result =
  match Validate.validate config.Config.dialect q with
  | Error m -> Error (Errors.Validation_error m)
  | Ok q -> run_validated ~config ~prefix graph q

(** [run_query ~config graph q] validates [q] against the configured
    dialect and executes it, returning the updated graph and the output
    table. *)
let run_query ?config graph (q : Cypher_ast.Ast.query) :
    (outcome, Errors.t) Stdlib.result =
  match run_query_full ?config graph q with
  | Error e -> Error e
  | Ok r -> Ok { graph = r.r_graph; table = r.r_table }

(* Every parameter a statement references must be supplied before it
   runs (Neo4j's discipline); the parser hands us each [$name]'s source
   position, so the error carries a span instead of surfacing lazily
   from deep inside evaluation.  EXPLAIN skips the check — it never
   evaluates anything. *)
let check_params_supplied params required =
  List.iter
    (fun (name, (line, col)) ->
      if not (Smap.mem name params) then
        Errors.eval_error "parameter $%s was not supplied (line %d, column %d)"
          name line col)
    required

(** [run_string_full ~config graph src] parses (recognising an optional
    EXPLAIN / PROFILE prefix), validates and executes one statement.
    Statements referencing parameters absent from [config.params] are
    rejected up front with the [$param]'s source position. *)
let run_string_full ?(config = Config.revised) graph src =
  match Parser.parse_statement_params src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok (prefix, q, required) -> (
      match Validate.validate config.Config.dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q ->
          if prefix <> Parser.Explain then
            match
              wrap_errors (fun () ->
                  check_params_supplied config.Config.params required)
            with
            | Error e -> Error e
            | Ok () -> run_validated ~config ~prefix graph q
          else run_validated ~config ~prefix graph q)

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                *)
(* ------------------------------------------------------------------ *)

(** A compiled statement: parsed, validated, and carrying a plan memo so
    repeat executions (under fresh parameter bindings) skip lexing,
    parsing, validation and match planning.  Compiled once with
    {!prepare}, executed many times with {!execute} /
    {!execute_full}. *)
type prepared = {
  p_src : string;
  p_prefix : Parser.prefix;
  p_query : Cypher_ast.Ast.query;
  p_config : Config.t;
  p_params : (string * (int * int)) list;
      (* parameters the statement references, with source positions *)
  p_memo : Engine.Plan_memo.t;
}

(** [prepare ~config src] compiles one statement: parse (recognising
    EXPLAIN / PROFILE), validate against the configured dialect, and
    attach an empty plan memo.  The result is immutable apart from the
    memo and may be executed any number of times, against different
    graphs and parameter bindings. *)
let prepare ?(config = Config.revised) src :
    (prepared, Errors.t) Stdlib.result =
  match Parser.parse_statement_params src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok (prefix, q, params) -> (
      match Validate.validate config.Config.dialect q with
      | Error m -> Error (Errors.Validation_error m)
      | Ok q ->
          Ok
            {
              p_src = src;
              p_prefix = prefix;
              p_query = q;
              p_config = config;
              p_params = params;
              p_memo = Engine.Plan_memo.create ();
            })

(** Parameters the compiled statement references: name and (line,
    column) of the first occurrence, in first-occurrence order. *)
let prepared_params p = p.p_params

let prepared_source p = p.p_src

(** [prepared_updates p] is true when the compiled statement contains an
    update clause in any UNION branch.  EXPLAIN never executes, so it is
    always a read; PROFILE runs for real and classifies by content. *)
let prepared_updates p =
  let rec updates (q : Cypher_ast.Ast.query) =
    List.exists Cypher_ast.Ast.is_update_clause q.Cypher_ast.Ast.clauses
    ||
    match q.Cypher_ast.Ast.union with
    | None -> false
    | Some (_, q') -> updates q'
  in
  p.p_prefix <> Parser.Explain && updates p.p_query

(** [prepared_plan p graph] renders the execution plan the statement
    would use against [graph] (an EXPLAIN without executing). *)
let prepared_plan p graph = Explain.render p.p_config graph p.p_query

(** [execute_full p params graph] runs the compiled statement with the
    given parameter bindings (overriding any bindings already in the
    preparation config).  Unsupplied parameters are rejected up front
    with their source position.  Hoisted match plans are reused from the
    statement's memo; the memo invalidates itself whenever the graph's
    property-index key set changes, so no stale plan survives an index
    registration. *)
let execute_full (p : prepared) params graph :
    (result, Errors.t) Stdlib.result =
  let params = Smap.fold Smap.add params p.p_config.Config.params in
  let config = { p.p_config with Config.params } in
  if p.p_prefix <> Parser.Explain then
    match
      wrap_errors (fun () -> check_params_supplied params p.p_params)
    with
    | Error e -> Error e
    | Ok () ->
        run_validated ~memo:p.p_memo ~config ~prefix:p.p_prefix graph
          p.p_query
  else run_validated ~memo:p.p_memo ~config ~prefix:p.p_prefix graph p.p_query

(** [execute p params graph] is {!execute_full} reduced to the updated
    graph and output table. *)
let execute (p : prepared) params graph :
    (outcome, Errors.t) Stdlib.result =
  match execute_full p params graph with
  | Error e -> Error e
  | Ok r -> Ok { graph = r.r_graph; table = r.r_table }

(** [run_string ~config graph src] parses, validates and executes one
    statement; {!run_string_full} reduced to the graph and table.  Like
    it, statements referencing unbound parameters are rejected up front
    with the [$param]'s source position. *)
let run_string ?(config = Config.revised) graph src =
  match run_string_full ~config graph src with
  | Error e -> Error e
  | Ok r -> Ok { graph = r.r_graph; table = r.r_table }

(** [run_program ~config graph src] executes a [;]-separated sequence of
    statements, threading the graph; returns the final graph and the
    output table of every statement.  Execution stops at the first
    error. *)
let run_program ?(config = Config.revised) graph src :
    (Graph.t * Table.t list, Errors.t) Stdlib.result =
  match Parser.parse_program src with
  | Error e -> Error (Errors.Parse_error (Parser.error_to_string e))
  | Ok queries ->
      let rec loop graph acc = function
        | [] -> Ok (graph, List.rev acc)
        | q :: rest -> (
            match run_query ~config graph q with
            | Error e -> Error e
            | Ok { graph; table } -> loop graph (table :: acc) rest)
      in
      loop graph [] queries

(** Convenience: [run_exn] for tests and examples that treat errors as
    fatal.  Raises {!Errors.Error} so callers keep the structured error
    (the printer registered in {!Errors} renders it readably if it
    escapes to top level) rather than a flattened [Failure] string. *)
let run_exn ?config graph src =
  match run_string ?config graph src with
  | Ok outcome -> outcome
  | Error e -> Errors.fail e
