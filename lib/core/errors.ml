(** Typed errors surfaced by query execution.

    The revised semantics of Section 7 turns several silent legacy
    behaviours into errors: conflicting atomic [SET] assignments
    (Example 2) and deletions that would leave dangling relationships.
    These get dedicated constructors so callers (tests, the REPL, the
    experiment harness) can pattern-match on them. *)

open Cypher_graph

type t =
  | Parse_error of string
  | Validation_error of string
  | Eval_error of string
      (** type errors, unknown variables, bad function calls, … *)
  | Set_conflict of {
      entity : Value.t;
      key : string;
      value1 : Value.t;
      value2 : Value.t;
    }
      (** atomic SET collected two different values for the same
          property of the same entity (Example 2) *)
  | Delete_dangling of { node : int; rels : int list }
      (** atomic DELETE would leave relationships without an endpoint *)
  | Statement_dangling of int list
      (** legacy semantics: dangling relationships remained at the end
          of the statement (Neo4j's commit-time check, Section 4.2) *)
  | Update_error of string
      (** malformed update: recreating a bound variable, merging on a
          null binding, … *)
  | Internal_error of string
      (** an engine invariant broke (a guard admitted a shape its
          branch cannot handle).  Surfaced as a structured error so a
          long-lived server connection reports it and survives instead
          of dying on [assert false]. *)

exception Error of t

let fail e = raise (Error e)
let eval_error fmt = Format.kasprintf (fun m -> fail (Eval_error m)) fmt
let update_error fmt = Format.kasprintf (fun m -> fail (Update_error m)) fmt
let internal_error fmt = Format.kasprintf (fun m -> fail (Internal_error m)) fmt

let to_string = function
  | Parse_error m -> "parse error: " ^ m
  | Validation_error m -> "validation error: " ^ m
  | Eval_error m -> "evaluation error: " ^ m
  | Set_conflict { entity; key; value1; value2 } ->
      Fmt.str
        "SET conflict: property %s of %a would be set to both %a and %a"
        key Value.pp entity Value.pp value1 Value.pp value2
  | Delete_dangling { node; rels } ->
      Fmt.str
        "cannot delete node %d: relationships [%a] would be left dangling \
         (delete them in the same clause or use DETACH DELETE)"
        node
        Fmt.(list ~sep:(any ", ") int)
        rels
  | Statement_dangling rels ->
      Fmt.str
        "statement left dangling relationships [%a] in the graph"
        Fmt.(list ~sep:(any ", ") int)
        rels
  | Update_error m -> "update error: " ^ m
  | Internal_error m -> "internal error: " ^ m

let pp ppf e = Fmt.string ppf (to_string e)

(* a structured error escaping to top level (e.g. via [Api.run_exn])
   should render as its message, not as an opaque constructor dump *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Cypher_core.Errors.Error: " ^ to_string e)
    | _ -> None)
