(** Statement update counters — see stats.mli.

    Why first-touch originals instead of bumping a counter per
    operation: the statement may set the same property several times,
    set it back to its original value, or delete the entity it just
    decorated.  Raw operation counts then disagree with the input/output
    graph diff, and the whole point of these counters is that the
    [counters] fuzz oracle can check them *against* that diff.  So the
    collector records identities (created/deleted entity sets with
    cancellation, first-touch original property/label values) and
    {!finalize} nets everything out against the result graph. *)

open Cypher_util.Maps
open Cypher_graph

type t = {
  nodes_created : int;
  nodes_deleted : int;
  rels_created : int;
  rels_deleted : int;
  props_set : int;
  props_removed : int;
  labels_added : int;
  labels_removed : int;
  merge_matched : int;
  merge_created : int;
  rows : int;
}

let empty =
  {
    nodes_created = 0;
    nodes_deleted = 0;
    rels_created = 0;
    rels_deleted = 0;
    props_set = 0;
    props_removed = 0;
    labels_added = 0;
    labels_removed = 0;
    merge_matched = 0;
    merge_created = 0;
    rows = 0;
  }

let contains_updates s =
  s.nodes_created <> 0 || s.nodes_deleted <> 0 || s.rels_created <> 0
  || s.rels_deleted <> 0 || s.props_set <> 0 || s.props_removed <> 0
  || s.labels_added <> 0 || s.labels_removed <> 0

let equal (a : t) (b : t) = a = b

let footer s =
  let counted verb n singular plural =
    if n = 0 then None
    else Some (Printf.sprintf "%s %d %s" verb n (if n = 1 then singular else plural))
  in
  let parts =
    List.filter_map Fun.id
      [
        counted "created" s.nodes_created "node" "nodes";
        counted "created" s.rels_created "relationship" "relationships";
        counted "set" s.props_set "property" "properties";
        counted "added" s.labels_added "label" "labels";
        counted "deleted" s.nodes_deleted "node" "nodes";
        counted "deleted" s.rels_deleted "relationship" "relationships";
        counted "removed" s.props_removed "property" "properties";
        counted "removed" s.labels_removed "label" "labels";
      ]
  in
  match parts with
  | [] -> "(no changes)"
  | first :: rest ->
      (* only the first clause is capitalised *)
      String.concat ", " (String.capitalize_ascii first :: rest)

let pp ppf s =
  Fmt.pf ppf
    "@[<h>+%dn -%dn +%dr -%dr props +%d -%d labels +%d -%d merge %dm/%dc \
     rows %d@]"
    s.nodes_created s.nodes_deleted s.rels_created s.rels_deleted s.props_set
    s.props_removed s.labels_added s.labels_removed s.merge_matched
    s.merge_created s.rows

let to_string s = Fmt.str "%a" pp s

(* ------------------------------------------------------------------ *)
(* Collection                                                         *)
(* ------------------------------------------------------------------ *)

type target = Tnode of int | Trel of int

type collector = {
  c_enabled : bool;
  mutable created_nodes : Iset.t;  (** created and still alive *)
  mutable created_nodes_ever : Iset.t;  (** created at any point *)
  mutable created_rels : Iset.t;
  mutable created_rels_ever : Iset.t;
  mutable deleted_nodes : Iset.t;  (** pre-existing, deleted *)
  mutable deleted_rels : Iset.t;
  prop_origs : (target * string, Value.t) Hashtbl.t;
  label_origs : (int * string, bool) Hashtbl.t;
  mutable c_merge_matched : int;
  mutable c_merge_created : int;
  mutable c_rows : int;
}

let make_with enabled =
  {
    c_enabled = enabled;
    created_nodes = Iset.empty;
    created_nodes_ever = Iset.empty;
    created_rels = Iset.empty;
    created_rels_ever = Iset.empty;
    deleted_nodes = Iset.empty;
    deleted_rels = Iset.empty;
    prop_origs = Hashtbl.create 16;
    label_origs = Hashtbl.create 8;
    c_merge_matched = 0;
    c_merge_created = 0;
    c_rows = 0;
  }

let make () = make_with true
let null = make_with false
let enabled c = c.c_enabled

let node_created c id =
  if c.c_enabled then begin
    c.created_nodes <- Iset.add id c.created_nodes;
    c.created_nodes_ever <- Iset.add id c.created_nodes_ever
  end

let rel_created c id =
  if c.c_enabled then begin
    c.created_rels <- Iset.add id c.created_rels;
    c.created_rels_ever <- Iset.add id c.created_rels_ever
  end

(* deleting an entity the statement created cancels the creation; only
   entities that pre-existed the statement count as deleted *)
let node_deleted c id =
  if c.c_enabled then
    if Iset.mem id c.created_nodes_ever then
      c.created_nodes <- Iset.remove id c.created_nodes
    else c.deleted_nodes <- Iset.add id c.deleted_nodes

let rel_deleted c id =
  if c.c_enabled then
    if Iset.mem id c.created_rels_ever then
      c.created_rels <- Iset.remove id c.created_rels
    else c.deleted_rels <- Iset.add id c.deleted_rels

let created_target c = function
  | Tnode id -> Iset.mem id c.created_nodes_ever
  | Trel id -> Iset.mem id c.created_rels_ever

let prop_touched c target key ~orig =
  if c.c_enabled && not (created_target c target) then
    let k = (target, key) in
    if not (Hashtbl.mem c.prop_origs k) then Hashtbl.add c.prop_origs k orig

let label_touched c id label ~had =
  if c.c_enabled && not (Iset.mem id c.created_nodes_ever) then
    let k = (id, label) in
    if not (Hashtbl.mem c.label_origs k) then Hashtbl.add c.label_origs k had

let merge_matched c n = if c.c_enabled then c.c_merge_matched <- c.c_merge_matched + n
let merge_created c n = if c.c_enabled then c.c_merge_created <- c.c_merge_created + n

let remap_created c ~node_map ~rel_map =
  if c.c_enabled then begin
    let map f s = Iset.fold (fun id acc -> Iset.add (f id) acc) s Iset.empty in
    c.created_nodes <- map node_map c.created_nodes;
    c.created_nodes_ever <- map node_map c.created_nodes_ever;
    c.created_rels <- map rel_map c.created_rels;
    c.created_rels_ever <- map rel_map c.created_rels_ever
  end

let set_rows c n = if c.c_enabled then c.c_rows <- n

(* ------------------------------------------------------------------ *)
(* Finalisation against the result graph                              *)
(* ------------------------------------------------------------------ *)

let finalize c (g : Graph.t) : t =
  if not c.c_enabled then empty
  else begin
    (* survivors of the created sets (the quotient remap already folded
       collapsed ids onto representatives; cancellation already removed
       created-then-deleted ids) *)
    let live_nodes = Iset.filter (Graph.has_node g) c.created_nodes in
    let live_rels = Iset.filter (Graph.has_rel g) c.created_rels in
    let props_set = ref 0 and props_removed = ref 0 in
    let labels_added = ref 0 and labels_removed = ref 0 in
    (* created entities contribute their final decoration wholesale *)
    Iset.iter
      (fun id ->
        props_set := !props_set + List.length (Props.bindings (Graph.node_props_of g id));
        labels_added := !labels_added + List.length (Graph.labels_of g id))
      live_nodes;
    Iset.iter
      (fun id ->
        props_set := !props_set + List.length (Props.bindings (Graph.rel_props_of g id)))
      live_rels;
    (* touched properties on pre-existing entities: net change only *)
    Hashtbl.iter
      (fun (target, key) orig ->
        let alive, current =
          match target with
          | Tnode id ->
              if Graph.has_node g id then (true, Props.get (Graph.node_props_of g id) key)
              else (false, Value.Null)
          | Trel id ->
              if Graph.has_rel g id then (true, Props.get (Graph.rel_props_of g id) key)
              else (false, Value.Null)
        in
        (* a deleted entity's properties vanish with it — counted (or
           not) under the entity's deletion, not as property changes *)
        if alive && not (Value.equal_strict orig current) then
          if Value.is_null current then incr props_removed
          else incr props_set)
      c.prop_origs;
    Hashtbl.iter
      (fun (id, label) had ->
        if Graph.has_node g id then
          let has = Graph.has_label g id label in
          if has && not had then incr labels_added
          else if had && not has then incr labels_removed)
      c.label_origs;
    {
      nodes_created = Iset.cardinal live_nodes;
      nodes_deleted = Iset.cardinal c.deleted_nodes;
      rels_created = Iset.cardinal live_rels;
      rels_deleted = Iset.cardinal c.deleted_rels;
      props_set = !props_set;
      props_removed = !props_removed;
      labels_added = !labels_added;
      labels_removed = !labels_removed;
      merge_matched = c.c_merge_matched;
      merge_created = c.c_merge_created;
      rows = c.c_rows;
    }
  end

(* ------------------------------------------------------------------ *)
(* Profiling                                                          *)
(* ------------------------------------------------------------------ *)

type profile_entry = { pf_clause : string; pf_rows : int; pf_ns : int64 }

let pp_profile ppf entries =
  let width =
    List.fold_left (fun w e -> max w (String.length e.pf_clause)) 6 entries
  in
  Fmt.pf ppf "@[<v>%-*s %8s %10s@," width "clause" "rows" "time";
  Fmt.pf ppf "%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "%-*s %8d %10s" width e.pf_clause e.pf_rows
           (Cypher_util.Mclock.pp_ns e.pf_ns)))
    entries
