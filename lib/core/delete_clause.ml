(** Semantics of DELETE and DETACH DELETE.

    Legacy (Cypher 9): entities are removed one record at a time, as the
    clause processes the driving table.  Deleting a node that still has
    relationships does *not* fail immediately — the graph passes through
    an illegal state with dangling relationships, and validity is only
    checked at the end of the whole statement (Neo4j's commit-time
    check).  References to deleted entities stay in the driving table and
    can still be SET upon or returned (the "empty node" of Section 4.2).

    Revised (Section 7): all entities to delete are collected against the
    input graph; a plain DELETE fails with {!Errors.Delete_dangling} if
    relationships would be left dangling, DETACH DELETE adds every
    attached relationship to the collection; all collected entities are
    then removed at once and every reference to them in the driving table
    is replaced by null. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table

module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

let eval_target config g row e =
  Eval.eval (Runtime.ctx config g row) e

(** Adds the entities denoted by value [v] to the deletion sets. *)
let rec collect_value (nodes, rels) v =
  match v with
  | Value.Null -> (nodes, rels)
  | Value.Node id -> (Iset.add id nodes, rels)
  | Value.Rel id -> (nodes, Iset.add id rels)
  | Value.Path p ->
      ( List.fold_left (fun s id -> Iset.add id s) nodes p.Value.path_nodes,
        List.fold_left (fun s id -> Iset.add id s) rels p.Value.path_rels )
  | Value.List l -> List.fold_left collect_value (nodes, rels) l
  | v ->
      Errors.eval_error "DELETE expects nodes, relationships or paths, got %s"
        (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Legacy                                                             *)
(* ------------------------------------------------------------------ *)

let legacy_delete_value ~stats ~detach g v =
  let nodes, rels = collect_value (Iset.empty, Iset.empty) v in
  let g =
    Iset.fold
      (fun id g ->
        if Graph.has_rel g id then Stats.rel_deleted stats id;
        Graph.remove_rel g id)
      rels g
  in
  Iset.fold
    (fun id g ->
      if Graph.has_node g id then begin
        (* DETACH also takes the incident relationships with it; a bare
           legacy DELETE leaves them dangling (still present). *)
        if detach then
          List.iter
            (fun (r : Graph.rel) -> Stats.rel_deleted stats r.Graph.r_id)
            (Graph.incident_rels g id);
        Stats.node_deleted stats id
      end;
      if detach then Graph.remove_node_detach g id
      else Graph.remove_node_force g id)
    nodes g

let run_legacy config ~stats (g, t) ~detach targets =
  let rows = Config.arrange_rows config (Table.rows t) in
  let g =
    List.fold_left
      (fun g row ->
        List.fold_left
          (fun g e ->
            legacy_delete_value ~stats ~detach g (eval_target config g row e))
          g targets)
      g rows
  in
  (* the table keeps its (now possibly dangling) references *)
  (g, t)

(* ------------------------------------------------------------------ *)
(* Revised                                                            *)
(* ------------------------------------------------------------------ *)

let run_atomic config ~stats (g, t) ~detach targets =
  let nodes, rels =
    Table.fold
      (fun row acc ->
        List.fold_left
          (fun acc e -> collect_value acc (eval_target config g row e))
          acc targets)
      t
      (Iset.empty, Iset.empty)
  in
  (* DETACH adds every relationship attached to a collected node *)
  let rels =
    if detach then
      Iset.fold
        (fun id rels ->
          List.fold_left
            (fun rels (r : Graph.rel) -> Iset.add r.Graph.r_id rels)
            rels
            (Graph.incident_rels g id))
        nodes rels
    else rels
  in
  (* strictness: no collected node may keep an uncollected relationship *)
  if not detach then
    Iset.iter
      (fun id ->
        let attached =
          List.filter
            (fun (r : Graph.rel) -> not (Iset.mem r.Graph.r_id rels))
            (Graph.incident_rels g id)
        in
        if attached <> [] then
          Errors.fail
            (Errors.Delete_dangling
               {
                 node = id;
                 rels = List.map (fun (r : Graph.rel) -> r.Graph.r_id) attached;
               }))
      nodes;
  if Stats.enabled stats then begin
    Iset.iter (fun id -> if Graph.has_rel g id then Stats.rel_deleted stats id) rels;
    Iset.iter (fun id -> if Graph.has_node g id then Stats.node_deleted stats id) nodes
  end;
  let g = Iset.fold (fun id g -> Graph.remove_rel g id) rels g in
  let g =
    Iset.fold
      (fun id g ->
        match Graph.remove_node g id with
        | Ok g -> g
        | Error _ -> assert false (* strictness was checked above *))
      nodes g
  in
  (g, Rewrite.null_deleted ~nodes ~rels t)

let run config ~stats (g, t) ~detach targets =
  match config.Config.mode with
  | Config.Legacy -> run_legacy config ~stats (g, t) ~detach targets
  | Config.Atomic -> run_atomic config ~stats (g, t) ~detach targets
