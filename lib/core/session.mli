(** Sessions: a mutable graph handle with nested transactions.

    Statement-level atomicity is already guaranteed by the engine (a
    failing statement leaves the session graph unchanged); this module
    adds explicit transaction boundaries: {!begin_tx} snapshots the
    graph, {!rollback} restores the snapshot, {!commit} discards it.
    Because the store is immutable, snapshots are O(1).  Transactions
    nest.

    A session may carry a journal sink ({!set_journal}): every
    graph-changing statement is handed to the sink *before* the
    in-memory graph advances (write-ahead).  Inside transactions entries
    buffer and reach the sink only at the outermost {!commit};
    {!rollback} journals nothing.  The durable storage layer
    ([Cypher_storage.Store]) builds on this hook. *)

open Cypher_graph

type t

(** How a journal entry's [je_src] is to be replayed: [`Statement] is
    Cypher source re-executed through the [Api]; [`Bulk] is a bulk-load
    frame in the loader's line format, applied directly to the graph
    (see [Cypher_storage.Bulk]). *)
type journal_kind = [ `Statement | `Bulk ]

(** One journaled statement: source text, the net update counters its
    application produced, the configuration it ran under, and how to
    replay it. *)
type journal_entry = {
  je_src : string;
  je_stats : Stats.t;
  je_config : Config.t;
  je_kind : journal_kind;
}

val create : ?config:Config.t -> Graph.t -> t
val graph : t -> Graph.t
val config : t -> Config.t

(** [set_config s config] swaps the session configuration.  Changing any
    field that affects compilation or plan choice (mode, order, match
    mode, planner, parallelism, stats collection, dialect) invalidates
    the plan cache; rebinding parameters does not.  Changing
    [plan_cache_capacity] rebuilds the cache. *)
val set_config : t -> Config.t -> unit

(** Plan-cache hit / miss / eviction / invalidation counters. *)
val cache_stats : t -> Plan_cache.stats

(** [register_prop_index s ~label ~key] builds the (label, key) property
    index on the session graph and invalidates the plan cache, so no
    compiled statement keeps serving a plan chosen without the index. *)
val register_prop_index : t -> label:string -> key:string -> unit

(** [set_journal s sink] attaches (or, with [None], detaches) the
    journal sink.  While attached, update-counter collection is forced
    on (the counters decide what to journal).  A sink that raises makes
    the triggering statement or commit fail without advancing the
    graph. *)
val set_journal : t -> (journal_entry list -> unit) option -> unit

val journal_attached : t -> bool

(** Transaction depth: 0 outside any transaction. *)
val depth : t -> int

val in_transaction : t -> bool
val begin_tx : t -> unit

(** [commit s] pops one transaction level.  At the outermost level the
    buffered journal entries are flushed to the sink first; if the flush
    fails, the transaction is rolled back to its snapshot and the error
    returned (all-or-nothing durability). *)
val commit : t -> (unit, string) result

val rollback : t -> (unit, string) result

(** [run s src] executes one statement against the session graph —
    recognising EXPLAIN / PROFILE prefixes — and returns the full
    {!Api.result} (table, update counters, optional plan and profile);
    the graph advances only on success (statement-level atomicity).

    Statements compile through the session's LRU plan cache
    ({!Config.t.plan_cache_capacity}): a repeat execution of the same
    normalized statement text under the same config skips lexing,
    parsing, validation and match planning, resolving the current
    [config.params] against the cached compiled statement.  Under
    EXPLAIN / PROFILE the rendered plan gains a trailing
    ["plan cache: hit|miss"] line. *)
val run : t -> string -> (Api.result, Errors.t) result

(** [prepare s src] compiles [src] through the session's plan cache
    without executing it: a repeat call with the same normalized
    statement text under the same config skips lexing, parsing and
    validation.  This is how the server classifies incoming statements
    (read vs update) without paying a parse per request. *)
val prepare : t -> string -> (Api.prepared, Errors.t) result

(** [advance_bulk s ~src ~stats graph'] journals one externally-applied
    bulk batch — [src] is the batch's frame payload (the bulk loader's
    line format, not Cypher), [stats] its net update counters — and
    advances the session graph to [graph'].  Journaling follows the same
    discipline as statements: write-ahead flush outside a transaction,
    buffered until the outermost commit inside one.  The entry carries
    [je_kind = `Bulk] so recovery replays it through the bulk loader
    instead of the parser. *)
val advance_bulk :
  t -> src:string -> stats:Stats.t -> Graph.t -> (unit, Errors.t) result

(** [run_query s q] is {!run} for a pre-parsed query; [prefix]
    defaults to [Plain]. *)
val run_query :
  ?prefix:Cypher_parser.Parser.prefix ->
  t ->
  Cypher_ast.Ast.query ->
  (Api.result, Errors.t) result

(** [reset s] drops the graph, any open transactions, and any buffered
    journal entries. *)
val reset : t -> unit

(** [run_on s graph src] compiles [src] through the session's plan
    cache and executes it against [graph] instead of the session graph;
    the session does not advance and nothing is journaled.
    Update-counter collection is forced on so the caller can classify
    and journal the statement itself.  This is the concurrent server's
    executor: per-connection transaction state lives outside the
    session, and the group committer replays buffered statements
    against whatever head its batch is stacked on. *)
val run_on : t -> Graph.t -> string -> (Api.result, Errors.t) result

(** [run_prepared_on s graph p] is {!run_on} for a statement already
    compiled through this session's {!prepare} — execution pays no
    second plan-cache lookup.  [p] must come from a session configured
    with update-counter collection on (the server forces it at
    connection setup) for the result's counters to be populated. *)
val run_prepared_on :
  t -> Graph.t -> Api.prepared -> (Api.result, Errors.t) result

(** [set_graph s g] repositions the session on a new base graph (the
    server moves sessions onto the latest committed head).  Fails
    inside a transaction — open snapshots must not survive a
    reposition. *)
val set_graph : t -> Graph.t -> (unit, string) result
