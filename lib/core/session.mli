(** Sessions: a mutable graph handle with nested transactions.

    Statement-level atomicity is already guaranteed by the engine (a
    failing statement leaves the session graph unchanged); this module
    adds explicit transaction boundaries: {!begin_tx} snapshots the
    graph, {!rollback} restores the snapshot, {!commit} discards it.
    Because the store is immutable, snapshots are O(1).  Transactions
    nest. *)

open Cypher_graph
open Cypher_table

type t

val create : ?config:Config.t -> Graph.t -> t
val graph : t -> Graph.t
val config : t -> Config.t
val set_config : t -> Config.t -> unit

(** Transaction depth: 0 outside any transaction. *)
val depth : t -> int

val in_transaction : t -> bool
val begin_tx : t -> unit
val commit : t -> (unit, string) result
val rollback : t -> (unit, string) result

(** [run s src] executes one statement against the session graph; the
    graph advances only on success (statement-level atomicity). *)
val run : t -> string -> (Table.t, Errors.t) result

(** [run_query s q] is {!run} for a pre-parsed query. *)
val run_query : t -> Cypher_ast.Ast.query -> (Table.t, Errors.t) result

(** [reset s] drops the graph and any open transactions. *)
val reset : t -> unit
