(** Sessions: a mutable graph handle with nested transactions.

    Statement-level atomicity is already guaranteed by the engine (a
    failing statement leaves the session graph unchanged); this module
    adds explicit transaction boundaries: {!begin_tx} snapshots the
    graph, {!rollback} restores the snapshot, {!commit} discards it.
    Because the store is immutable, snapshots are O(1).  Transactions
    nest. *)

open Cypher_graph

type t

val create : ?config:Config.t -> Graph.t -> t
val graph : t -> Graph.t
val config : t -> Config.t
val set_config : t -> Config.t -> unit

(** Transaction depth: 0 outside any transaction. *)
val depth : t -> int

val in_transaction : t -> bool
val begin_tx : t -> unit
val commit : t -> (unit, string) result
val rollback : t -> (unit, string) result

(** [run s src] executes one statement against the session graph —
    recognising EXPLAIN / PROFILE prefixes — and returns the full
    {!Api.result} (table, update counters, optional plan and profile);
    the graph advances only on success (statement-level atomicity). *)
val run : t -> string -> (Api.result, Errors.t) result

(** [run_query s q] is {!run} for a pre-parsed query; [prefix]
    defaults to [Plain]. *)
val run_query :
  ?prefix:Cypher_parser.Parser.prefix ->
  t ->
  Cypher_ast.Ast.query ->
  (Api.result, Errors.t) result

(** [reset s] drops the graph and any open transactions. *)
val reset : t -> unit
