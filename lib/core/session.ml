(** Sessions: a mutable graph handle with nested transactions.

    The paper notes that freely mixing reading and writing clauses
    "raises questions regarding atomicity of statements and transaction
    boundaries" (Section 2).  Statement-level atomicity is already
    guaranteed by the engine (a failing statement returns an error and
    the session keeps its previous graph).  This module adds explicit
    transaction boundaries on top: [begin_tx] snapshots the graph,
    [rollback] restores the snapshot, [commit] discards it.  Because the
    store is immutable, snapshots are O(1).

    Transactions nest: each [begin_tx] pushes a snapshot, [commit] and
    [rollback] pop one. *)

open Cypher_graph

type t = {
  mutable graph : Graph.t;
  mutable config : Config.t;
  mutable snapshots : Graph.t list;
}

let create ?(config = Config.revised) graph = { graph; config; snapshots = [] }

let graph s = s.graph
let config s = s.config
let set_config s config = s.config <- config

(** Transaction depth: 0 outside any transaction. *)
let depth s = List.length s.snapshots

let in_transaction s = s.snapshots <> []

let begin_tx s = s.snapshots <- s.graph :: s.snapshots

let commit s =
  match s.snapshots with
  | [] -> Error "no transaction in progress"
  | _ :: rest ->
      s.snapshots <- rest;
      Ok ()

let rollback s =
  match s.snapshots with
  | [] -> Error "no transaction in progress"
  | snapshot :: rest ->
      s.graph <- snapshot;
      s.snapshots <- rest;
      Ok ()

(** [run s src] executes one statement against the session graph —
    recognising EXPLAIN / PROFILE prefixes — and returns the full
    {!Api.result} (table, update counters, optional plan/profile); the
    graph advances only on success (statement-level atomicity). *)
let run s src : (Api.result, Errors.t) result =
  match Api.run_string_full ~config:s.config s.graph src with
  | Ok r ->
      s.graph <- r.Api.r_graph;
      Ok r
  | Error e -> Error e

(** [run_query s q] is {!run} for a pre-parsed query. *)
let run_query ?prefix s q : (Api.result, Errors.t) result =
  match Api.run_query_full ~config:s.config ?prefix s.graph q with
  | Ok r ->
      s.graph <- r.Api.r_graph;
      Ok r
  | Error e -> Error e

(** [reset s] drops the graph and any open transactions. *)
let reset s =
  s.graph <- Graph.empty;
  s.snapshots <- []
