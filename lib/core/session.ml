(** Sessions: a mutable graph handle with nested transactions.

    The paper notes that freely mixing reading and writing clauses
    "raises questions regarding atomicity of statements and transaction
    boundaries" (Section 2).  Statement-level atomicity is already
    guaranteed by the engine (a failing statement returns an error and
    the session keeps its previous graph).  This module adds explicit
    transaction boundaries on top: [begin_tx] snapshots the graph,
    [rollback] restores the snapshot, [commit] discards it.  Because the
    store is immutable, snapshots are O(1).

    Transactions nest: each [begin_tx] pushes a snapshot, [commit] and
    [rollback] pop one.

    A session may carry a *journal sink* ([set_journal]) — the hook the
    durable storage layer ([Cypher_storage.Store]) uses to write-ahead
    every graph-changing statement.  Journaling is transactional:
    outside a transaction each statement flushes immediately (and the
    write-ahead happens *before* the in-memory graph advances, so a
    failed append leaves the session exactly as it was); inside a
    transaction entries buffer and flush only at the *outermost* commit;
    rollback discards the buffered entries without journaling
    anything. *)

open Cypher_graph

(** One journaled statement: its source text, the net update counters
    its application produced, and the configuration it ran under. *)
type journal_entry = {
  je_src : string;
  je_stats : Stats.t;
  je_config : Config.t;
}

type t = {
  mutable graph : Graph.t;
  mutable config : Config.t;
  mutable snapshots : Graph.t list;
  mutable journal : (journal_entry list -> unit) option;
  mutable pending : journal_entry list list;
      (** one buffer per open transaction, innermost first; each buffer
          holds its entries newest-first *)
}

let create ?(config = Config.revised) graph =
  { graph; config; snapshots = []; journal = None; pending = [] }

let graph s = s.graph
let config s = s.config
let set_config s config = s.config <- config
let set_journal s sink = s.journal <- sink
let journal_attached s = s.journal <> None

(** Transaction depth: 0 outside any transaction. *)
let depth s = List.length s.snapshots

let in_transaction s = s.snapshots <> []

let begin_tx s =
  s.snapshots <- s.graph :: s.snapshots;
  if s.journal <> None then s.pending <- [] :: s.pending

let flush s entries =
  match (s.journal, entries) with
  | None, _ | _, [] -> Ok ()
  | Some sink, entries -> (
      try
        sink entries;
        Ok ()
      with e -> Error ("journal append failed: " ^ Printexc.to_string e))

let commit s =
  match s.snapshots with
  | [] -> Error "no transaction in progress"
  | snapshot :: rest -> (
      match (s.journal, s.pending) with
      | None, _ ->
          s.snapshots <- rest;
          Ok ()
      | Some _, buf :: outer :: pending ->
          (* nested commit: fold the entries into the enclosing
             transaction; only the outermost commit reaches the sink *)
          s.snapshots <- rest;
          s.pending <- (buf @ outer) :: pending;
          Ok ()
      | Some _, [ buf ] -> (
          match flush s (List.rev buf) with
          | Ok () ->
              s.snapshots <- rest;
              s.pending <- [];
              Ok ()
          | Error m ->
              (* the journal is the durability contract: a commit whose
                 entries cannot be written aborts, restoring the
                 transaction's snapshot *)
              s.graph <- snapshot;
              s.snapshots <- rest;
              s.pending <- [];
              Error m)
      | Some _, [] ->
          (* journal attached mid-transaction: nothing was buffered *)
          s.snapshots <- rest;
          Ok ())

let rollback s =
  match s.snapshots with
  | [] -> Error "no transaction in progress"
  | snapshot :: rest ->
      s.graph <- snapshot;
      s.snapshots <- rest;
      (match s.pending with [] -> () | _ :: p -> s.pending <- p);
      Ok ()

(* Journaling needs the update counters to decide whether a statement
   changed the graph; when a sink is attached, collection is forced on
   regardless of the configured [collect_stats]. *)
let effective_config s =
  if s.journal <> None then Config.with_stats true s.config else s.config

(** Records a successful statement into the journal (write-ahead when
    outside a transaction) and advances the session graph.  Read-only
    statements — no net update — journal nothing. *)
let advance s ~src (r : Api.result) =
  if s.journal = None || not (Stats.contains_updates r.Api.r_stats) then begin
    s.graph <- r.Api.r_graph;
    Ok r
  end
  else
    let entry = { je_src = src; je_stats = r.Api.r_stats; je_config = s.config } in
    match s.pending with
    | buf :: rest ->
        s.pending <- (entry :: buf) :: rest;
        s.graph <- r.Api.r_graph;
        Ok r
    | [] -> (
        match flush s [ entry ] with
        | Ok () ->
            s.graph <- r.Api.r_graph;
            Ok r
        | Error m -> Error (Errors.Update_error m))

(** [run s src] executes one statement against the session graph —
    recognising EXPLAIN / PROFILE prefixes — and returns the full
    {!Api.result} (table, update counters, optional plan/profile); the
    graph advances only on success (statement-level atomicity). *)
let run s src : (Api.result, Errors.t) result =
  match Api.run_string_full ~config:(effective_config s) s.graph src with
  | Ok r -> advance s ~src r
  | Error e -> Error e

(** [run_query s q] is {!run} for a pre-parsed query.  Journaled source
    text is the pretty-printed statement (print/parse round-tripping is
    oracle 1 of the fuzz suite). *)
let run_query ?prefix s q : (Api.result, Errors.t) result =
  match Api.run_query_full ~config:(effective_config s) ?prefix s.graph q with
  | Ok r -> advance s ~src:(Cypher_ast.Pretty.query_to_string q) r
  | Error e -> Error e

(** [reset s] drops the graph and any open transactions (buffered
    journal entries included — the caller owning the sink is responsible
    for persisting the cleared state, e.g. [Store.compact]). *)
let reset s =
  s.graph <- Graph.empty;
  s.snapshots <- [];
  s.pending <- []
