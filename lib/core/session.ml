(** Sessions: a mutable graph handle with nested transactions.

    The paper notes that freely mixing reading and writing clauses
    "raises questions regarding atomicity of statements and transaction
    boundaries" (Section 2).  Statement-level atomicity is already
    guaranteed by the engine (a failing statement returns an error and
    the session keeps its previous graph).  This module adds explicit
    transaction boundaries on top: [begin_tx] snapshots the graph,
    [rollback] restores the snapshot, [commit] discards it.  Because the
    store is immutable, snapshots are O(1).

    Transactions nest: each [begin_tx] pushes a snapshot, [commit] and
    [rollback] pop one.

    A session may carry a *journal sink* ([set_journal]) — the hook the
    durable storage layer ([Cypher_storage.Store]) uses to write-ahead
    every graph-changing statement.  Journaling is transactional:
    outside a transaction each statement flushes immediately (and the
    write-ahead happens *before* the in-memory graph advances, so a
    failed append leaves the session exactly as it was); inside a
    transaction entries buffer and flush only at the *outermost* commit;
    rollback discards the buffered entries without journaling
    anything. *)

open Cypher_graph

(** What a journal entry's payload is: the source text of a statement,
    or one batch of a bulk load (a [Cypher_storage.Bulk] frame, replayed
    by the loader rather than the parser). *)
type journal_kind = [ `Statement | `Bulk ]

(** One journaled statement (or bulk batch): its payload, the net update
    counters its application produced, and the configuration it ran
    under. *)
type journal_entry = {
  je_src : string;
  je_stats : Stats.t;
  je_config : Config.t;
  je_kind : journal_kind;
}

(** One open transaction.  The snapshot and the pending journal buffer
    live in the same value, so rollback can never pop a snapshot without
    also dropping exactly that transaction's buffered entries (the two
    stacks previously lived in separate fields and could fall out of
    step when a journal sink was attached mid-transaction). *)
type tx_frame = {
  fr_snapshot : Graph.t;  (** graph to restore on rollback / failed flush *)
  fr_journaled : bool;
      (** whether a journal sink was attached when this transaction
          began; statements run while [false] keep the legacy
          flush-immediately behaviour *)
  mutable fr_entries : journal_entry list;  (** newest-first *)
}

type t = {
  mutable graph : Graph.t;
  mutable config : Config.t;
  mutable frames : tx_frame list;
      (** open transactions, innermost first *)
  mutable journal : (journal_entry list -> unit) option;
  mutable cache : Api.prepared Plan_cache.t;
      (** LRU of compiled statements, keyed on normalized statement text
          plus the config fingerprint below *)
  mutable fingerprint : string;
      (** [config_fingerprint config], maintained by {!set_config} so
          cache hits don't re-render it per statement *)
}

let graph s = s.graph
let config s = s.config


(* The plan-cache key is the normalized statement text plus the config
   fields that change what compilation produces: the dialect decides
   validation, planner/match_mode/mode/order/parallelism/collect_stats
   decide plan choice and execution strategy.  Parameters are
   deliberately excluded — rebinding values must hit — as is journal
   durability, which only affects how the storage layer flushes. *)
let config_fingerprint (c : Config.t) =
  Printf.sprintf "%s|%s|%s|%s|%d|%b|%s|%s"
    (match c.Config.mode with Config.Legacy -> "legacy" | Config.Atomic -> "atomic")
    (match c.Config.order with
    | Config.Forward -> "fwd"
    | Config.Reverse -> "rev"
    | Config.Seeded n -> "seed" ^ string_of_int n)
    (match c.Config.match_mode with
    | Config.Isomorphic -> "iso"
    | Config.Homomorphic -> "homo")
    (match c.Config.planner with Config.On -> "on" | Config.Off -> "off")
    c.Config.parallelism c.Config.collect_stats
    (match c.Config.dialect with
    | Cypher_ast.Validate.Cypher9 -> "cypher9"
    | Cypher_ast.Validate.Revised -> "revised"
    | Cypher_ast.Validate.Permissive -> "permissive")
    (match c.Config.backend with
    | `Persistent -> "persistent"
    | `Compact -> "compact")

let create ?(config = Config.revised) graph =
  {
    graph;
    config;
    frames = [];
    journal = None;
    cache = Plan_cache.create config.Config.plan_cache_capacity;
    fingerprint = config_fingerprint config;
  }

(* Normalization: surrounding whitespace and a trailing [;] never change
   what a statement compiles to. *)
let normalize_src src =
  let src = String.trim src in
  let n = String.length src in
  if n > 0 && src.[n - 1] = ';' then String.trim (String.sub src 0 (n - 1))
  else src


(** [set_config s config] swaps the session configuration.  A change to
    any field of the plan-cache key (semantics mode, record order, match
    mode, planner, parallelism, stats collection, dialect) invalidates
    the cached compiled statements — a plan chosen under the old config
    must not be served under the new one; parameter rebinding does not
    invalidate.  Changing the cache capacity rebuilds the cache. *)
let set_config s config =
  let old = s.config in
  let fp = config_fingerprint config in
  let fp_changed = fp <> s.fingerprint in
  s.config <- config;
  s.fingerprint <- fp;
  if
    config.Config.plan_cache_capacity
    <> old.Config.plan_cache_capacity
  then s.cache <- Plan_cache.create config.Config.plan_cache_capacity
  else if fp_changed then Plan_cache.invalidate s.cache

(** Plan-cache hit/miss/eviction/invalidation counters. *)
let cache_stats s = Plan_cache.stats s.cache

(** [register_prop_index s ~label ~key] builds the (label, key) property
    index on the session graph and invalidates the plan cache: compiled
    statements carry plans chosen without the index, and serving them
    would silently forfeit it.  (Each compiled statement's plan memo
    additionally checks the graph's index key set on every execution, so
    even externally swapped graphs can never be served stale plans.) *)
let register_prop_index s ~label ~key =
  s.graph <- Graph.add_prop_index ~label ~key s.graph;
  Plan_cache.invalidate s.cache
let set_journal s sink = s.journal <- sink
let journal_attached s = s.journal <> None

(** Transaction depth: 0 outside any transaction. *)
let depth s = List.length s.frames

let in_transaction s = s.frames <> []

let begin_tx s =
  s.frames <-
    { fr_snapshot = s.graph; fr_journaled = s.journal <> None; fr_entries = [] }
    :: s.frames

let flush s entries =
  match (s.journal, entries) with
  | None, _ | _, [] -> Ok ()
  | Some sink, entries -> (
      try
        sink entries;
        Ok ()
      with
      | Errors.Error e ->
          (* a sink that fails with a structured error (e.g. the store
             is closed) keeps it structured for the caller *)
          Error e
      | e ->
          Error
            (Errors.Update_error
               ("journal append failed: " ^ Printexc.to_string e)))

let commit s =
  match s.frames with
  | [] -> Error "no transaction in progress"
  | frame :: rest -> (
      match (frame.fr_entries, rest) with
      | [], _ ->
          s.frames <- rest;
          Ok ()
      | entries, outer :: _ ->
          (* nested commit: fold the entries into the enclosing
             transaction; only the outermost commit reaches the sink *)
          s.frames <- rest;
          outer.fr_entries <- entries @ outer.fr_entries;
          Ok ()
      | entries, [] -> (
          match flush s (List.rev entries) with
          | Ok () ->
              s.frames <- rest;
              Ok ()
          | Error e ->
              (* the journal is the durability contract: a commit whose
                 entries cannot be written aborts, restoring the
                 transaction's snapshot *)
              s.graph <- frame.fr_snapshot;
              s.frames <- rest;
              Error (Errors.to_string e)))

let rollback s =
  match s.frames with
  | [] -> Error "no transaction in progress"
  | frame :: rest ->
      (* the frame's buffered entries die with it: rollback journals
         nothing, and the entries cannot outlive their snapshot *)
      s.graph <- frame.fr_snapshot;
      s.frames <- rest;
      Ok ()

(* Journaling needs the update counters to decide whether a statement
   changed the graph; when a sink is attached, collection is forced on
   regardless of the configured [collect_stats]. *)
let effective_config s =
  if s.journal <> None then Config.with_stats true s.config else s.config

(** Records a successful statement into the journal (write-ahead when
    outside a transaction) and advances the session graph.  Read-only
    statements — no net update — journal nothing. *)
let advance s ~src (r : Api.result) =
  if s.journal = None || not (Stats.contains_updates r.Api.r_stats) then begin
    s.graph <- r.Api.r_graph;
    Ok r
  end
  else
    let entry =
      {
        je_src = src;
        je_stats = r.Api.r_stats;
        je_config = s.config;
        je_kind = `Statement;
      }
    in
    match s.frames with
    | frame :: _ when frame.fr_journaled ->
        frame.fr_entries <- entry :: frame.fr_entries;
        s.graph <- r.Api.r_graph;
        Ok r
    | _ -> (
        match flush s [ entry ] with
        | Ok () ->
            s.graph <- r.Api.r_graph;
            Ok r
        | Error e -> Error e)

(** [advance_bulk s ~src ~stats graph'] journals one externally-applied
    bulk batch — [src] is the frame payload ([Cypher_storage.Bulk]'s
    line format, not Cypher), [stats] its net counters — and advances
    the session graph to [graph'].  Write-ahead discipline matches
    {!advance}: immediate flush outside a transaction, buffered inside
    one; on a failed append the graph does not move. *)
let advance_bulk s ~src ~stats graph' =
  if s.journal = None then begin
    s.graph <- graph';
    Ok ()
  end
  else
    let entry =
      { je_src = src; je_stats = stats; je_config = s.config; je_kind = `Bulk }
    in
    match s.frames with
    | frame :: _ when frame.fr_journaled ->
        frame.fr_entries <- entry :: frame.fr_entries;
        s.graph <- graph';
        Ok ()
    | _ -> (
        match flush s [ entry ] with
        | Ok () ->
            s.graph <- graph';
            Ok ()
        | Error e -> Error e)

(* Compile through the plan cache: a hit skips lexing, parsing,
   validation and (via the statement's plan memo) match planning.
   Compilation errors are not cached — error statements are not hot
   paths, and caching them would mask later fixes to e.g. dialect. *)
let compile s config src =
  (* [effective_config] returns [s.config] itself unless a journal sink
     rewrote it, so the common path reuses the maintained fingerprint
     instead of re-rendering it for every statement *)
  let fp =
    if config == s.config then s.fingerprint else config_fingerprint config
  in
  let key = normalize_src src ^ "\x00" ^ fp in
  match Plan_cache.find s.cache key with
  | Some p -> Ok (p, `Hit)
  | None -> (
      match Api.prepare ~config src with
      | Error e -> Error e
      | Ok p ->
          Plan_cache.add s.cache key p;
          Ok (p, `Miss))

(** [prepare s src] compiles [src] through the session's plan cache
    without executing it — a repeat call with the same normalized text
    under the same config is a cache hit that skips lexing, parsing and
    validation.  The server's request dispatcher classifies every
    incoming statement (read vs update), so classification must not
    cost a full parse per request. *)
let prepare s src : (Api.prepared, Errors.t) result =
  match compile s (effective_config s) src with
  | Error e -> Error e
  | Ok (p, _) -> Ok p

(* Surfacing: EXPLAIN / PROFILE output grows a trailing cache-status
   line, so the observability layer shows whether compilation was
   served from the cache. *)
let annotate_plan status (r : Api.result) =
  match r.Api.r_plan with
  | None -> r
  | Some plan ->
      let line =
        match status with
        | `Hit -> "plan cache: hit"
        | `Miss -> "plan cache: miss"
      in
      { r with Api.r_plan = Some (plan ^ "\n" ^ line) }

(** [run s src] executes one statement against the session graph —
    recognising EXPLAIN / PROFILE prefixes — and returns the full
    {!Api.result} (table, update counters, optional plan/profile); the
    graph advances only on success (statement-level atomicity).

    Statements compile through the session's LRU plan cache: a repeat
    execution of the same (normalized) statement text under the same
    config skips lexing, parsing, validation and match planning, and
    resolves the current [config.params] against the cached compiled
    statement.  Statements referencing unsupplied parameters fail up
    front with the [$param]'s source position. *)
let run s src : (Api.result, Errors.t) result =
  let config = effective_config s in
  match compile s config src with
  | Error e -> Error e
  | Ok (p, status) -> (
      match Api.execute_full p config.Config.params s.graph with
      | Ok r -> advance s ~src (annotate_plan status r)
      | Error e -> Error e)

(** [run_query s q] is {!run} for a pre-parsed query.  Journaled source
    text is the pretty-printed statement (print/parse round-tripping is
    oracle 1 of the fuzz suite). *)
let run_query ?prefix s q : (Api.result, Errors.t) result =
  match Api.run_query_full ~config:(effective_config s) ?prefix s.graph q with
  | Ok r -> advance s ~src:(Cypher_ast.Pretty.query_to_string q) r
  | Error e -> Error e

(** [reset s] drops the graph and any open transactions (buffered
    journal entries included — the caller owning the sink is responsible
    for persisting the cleared state, e.g. [Store.compact]). *)
let reset s =
  s.graph <- Graph.empty;
  s.frames <- []

(* ------------------------------------------------------------------ *)
(* Server support: execution against explicit graphs                  *)
(* ------------------------------------------------------------------ *)

(** [run_on s graph src] compiles [src] through the session's plan
    cache and executes it against [graph] — not the session graph — and
    does not advance the session or touch the journal.  Update-counter
    collection is forced on so the caller can classify and journal the
    statement itself.  This is the concurrent server's executor: the
    per-connection transaction state lives outside the session, and the
    group committer replays buffered statements against whatever head
    the batch is stacked on. *)
let run_on s graph src : (Api.result, Errors.t) result =
  let config = Config.with_stats true s.config in
  match compile s config src with
  | Error e -> Error e
  | Ok (p, status) -> (
      match Api.execute_full p config.Config.params graph with
      | Ok r -> Ok (annotate_plan status r)
      | Error e -> Error e)

(** [run_prepared_on s graph p] is {!run_on} for a statement already
    compiled through this session's {!prepare}: execution pays no
    second cache lookup.  The server classifies every request by
    compiling it, so by execution time the compiled statement is
    already in hand — and the committer's serial section is exactly
    where a redundant lookup per batch member would hurt. *)
let run_prepared_on s graph (p : Api.prepared) :
    (Api.result, Errors.t) result =
  Api.execute_full p s.config.Config.params graph

(** [set_graph s g] repositions the session on a new base graph — the
    server moves its per-connection session onto the latest committed
    head.  Refused inside a transaction: the open frames hold snapshots
    of the graph being replaced, and rolling back across a reposition
    would resurrect the old line of history. *)
let set_graph s g =
  if in_transaction s then Error "cannot reposition a session inside a transaction"
  else begin
    s.graph <- g;
    Ok ()
  end
