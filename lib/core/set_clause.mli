(** Semantics of the SET clause.

    Legacy (Cypher 9): set items are applied one record at a time, one
    item at a time, each immediately visible to the next — which loses
    the simultaneous-assignment reading (Example 1) and silently
    resolves conflicting assignments by last-writer-wins (Example 2).

    Revised (Section 7): all expressions are first evaluated against the
    *input* graph for every record, accumulating the induced changes
    (propchanges / labchanges of Section 8.2); if two changes assign
    different values to the same property of the same entity the clause
    fails with {!Errors.Set_conflict}; otherwise all changes are applied
    in one atomic step. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast

(** Applies one set item to one record immediately (legacy semantics);
    also used by legacy MERGE's ON CREATE / ON MATCH subclauses. *)
val legacy_item :
  Config.t -> stats:Stats.collector -> Graph.t -> Record.t -> set_item -> Graph.t

(** The two-phase atomic semantics, independent of [config.mode]; used
    by revised MERGE's ON CREATE / ON MATCH subclauses. *)
val run_atomic :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> set_item list -> Graph.t * Table.t

(** Dispatches on [config.mode]. *)
val run :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> set_item list -> Graph.t * Table.t
