(** Semantics of RETURN and WITH: projection, aliasing, aggregation with
    implicit grouping, DISTINCT, ORDER BY, SKIP and LIMIT, and the
    WITH ... WHERE filter. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval
module Pretty = Cypher_ast.Pretty

(** Output column name of a projection item: the alias, the variable
    name, or the printed expression. *)
let item_name (it : proj_item) =
  match it.item_alias with
  | Some a -> a
  | None -> (
      match it.item_expr with
      | Var v -> v
      | Prop (Var v, k) -> v ^ "." ^ k
      | e -> Pretty.expr_to_string e)

(** [count_star_alias proj] is the output column name when [proj] is a
    bare [count( * )] projection — a single count-star item with no
    DISTINCT, [*], ORDER BY, SKIP, LIMIT or WHERE — and [None]
    otherwise.  Such a projection over a MATCH is fused by the engine
    into a counting traversal that materialises no rows
    ({!Cypher_matcher.Matcher.count_patterns}). *)
let count_star_alias (proj : projection) : string option =
  match proj with
  | {
   proj_distinct = false;
   proj_star = false;
   proj_items = [ ({ item_expr = Agg (Count, false, None); _ } as it) ];
   proj_order = [];
   proj_skip = None;
   proj_limit = None;
   proj_where = None;
  } ->
      Some (item_name it)
  | _ -> None

(** Expands [*] to one item per input column (sorted), then appends the
    explicit items. *)
let effective_items (t : Table.t) (proj : projection) : proj_item list =
  let star_items =
    if proj.proj_star then
      List.map
        (fun c -> { item_expr = Var c; item_alias = Some c })
        (Table.columns t)
    else []
  in
  star_items @ proj.proj_items

(** One evaluated output row, with enough context kept around to
    evaluate ORDER BY expressions (which may mention input variables and
    aggregates). *)
type out_row = {
  projected : Record.t;
  source : Record.t;  (** representative input record *)
  group : Record.t list option;  (** aggregation group, when grouping *)
}

let eval_sort_key config g (r : out_row) e =
  let merged =
    List.fold_left
      (fun acc (k, v) -> Record.bind acc k v)
      r.source
      (Record.bindings r.projected)
  in
  let ctx = Runtime.ctx config g merged in
  let ctx = match r.group with None -> ctx | Some rows -> Ctx.with_group ctx rows in
  Eval.eval ctx e

let eval_count config g e =
  let ctx = Runtime.ctx config g Record.empty in
  match Eval.eval ctx e with
  | Value.Int n -> max 0 n
  | v ->
      Errors.eval_error "SKIP/LIMIT requires a non-negative integer, got %s"
        (Value.to_string v)

let run config (g, t) (proj : projection) =
  let items = effective_items t proj in
  let names = List.map item_name items in
  (match
     List.find_opt
       (fun n -> List.length (List.filter (String.equal n) names) > 1)
       names
   with
  | Some n -> Errors.eval_error "duplicate column name `%s` in projection" n
  | None -> ());
  let has_agg = List.exists (fun it -> expr_has_agg it.item_expr) items in
  let parallelism = Runtime.parallelism_of config in
  (* Builds one projected row by evaluating the items left to right.
     Under [`Slots] the output layout is compiled once ([names] is
     duplicate-free — checked above, so item positions and slots align)
     and each row is a single array; under [`Records] the original
     per-item map build.  Evaluation order is identical. *)
  let mk_projected =
    match Runtime.rows_of config with
    | `Records ->
        fun ctx ->
          List.fold_left2
            (fun acc name it ->
              Record.bind acc name (Eval.eval ctx it.item_expr))
            Record.empty names items
    | `Slots ->
        let tab = Cypher_table.Slots.of_names names in
        let width = List.length names in
        fun ctx ->
          let cells = Array.make width Value.Null in
          List.iteri
            (fun i it -> cells.(i) <- Eval.eval ctx it.item_expr)
            items;
          Record.of_slots tab cells
  in
  let out_rows =
    if not has_agg then
      (* per-row expression evaluation reads only the immutable input
         graph: fan it out with ordered gather (byte-identical to the
         serial map) *)
      Cypher_util.Pool.map_chunks ~parallelism
        (fun row ->
          let ctx = Runtime.ctx config g row in
          { projected = mk_projected ctx; source = row; group = None })
        (Table.rows t)
    else begin
      (* implicit grouping: non-aggregate items are the grouping keys *)
      let key_items = List.filter (fun it -> not (expr_has_agg it.item_expr)) items in
      let key_of row =
        let ctx = Runtime.ctx config g row in
        List.map (fun it -> Eval.eval ctx it.item_expr) key_items
      in
      let groups =
        if key_items = [] then
          (* one global group, present even when the table is empty *)
          [ ([], Table.rows t) ]
        else
          Cypher_util.Listx.group_by
            (fun row ->
              Fmt.str "%a" Fmt.(list ~sep:(any "\x00") Value.pp) (key_of row))
            (Table.rows t)
          |> List.map (fun (_, rows) -> (key_of (List.hd rows), rows))
      in
      List.map
        (fun (_, rows) ->
          let source = match rows with r :: _ -> r | [] -> Record.empty in
          let ctx =
            Ctx.with_group (Runtime.ctx config g source) rows
          in
          { projected = mk_projected ctx; source; group = Some rows })
        groups
    end
  in
  (* DISTINCT: first-occurrence order, membership in a balanced set
     keyed on the projected record (same O(n log n) discipline as
     Table.distinct) *)
  let out_rows =
    if not proj.proj_distinct then out_rows
    else
      let module Rset = Set.Make (struct
        type t = Record.t

        let compare = Record.compare
      end) in
      let rec dedup seen acc = function
        | [] -> List.rev acc
        | r :: rest ->
            if Rset.mem r.projected seen then dedup seen acc rest
            else dedup (Rset.add r.projected seen) (r :: acc) rest
      in
      dedup Rset.empty [] out_rows
  in
  (* ORDER BY *)
  let out_rows =
    if proj.proj_order = [] then out_rows
    else
      let cmp r1 r2 =
        let rec loop = function
          | [] -> 0
          | s :: rest ->
              let v1 = eval_sort_key config g r1 s.sort_expr in
              let v2 = eval_sort_key config g r2 s.sort_expr in
              let c = Value.compare_total v1 v2 in
              if c <> 0 then if s.sort_ascending then c else -c else loop rest
        in
        loop proj.proj_order
      in
      List.stable_sort cmp out_rows
  in
  (* SKIP / LIMIT *)
  let out_rows =
    match proj.proj_skip with
    | None -> out_rows
    | Some e -> Cypher_util.Listx.drop (eval_count config g e) out_rows
  in
  let out_rows =
    match proj.proj_limit with
    | None -> out_rows
    | Some e -> Cypher_util.Listx.take (eval_count config g e) out_rows
  in
  (* WITH ... WHERE: a pure per-row predicate over the input graph —
     filtered in parallel with ordered gather *)
  let out_rows =
    match proj.proj_where with
    | None -> out_rows
    | Some e ->
        Cypher_util.Pool.filter_chunks ~parallelism
          (fun r ->
            let ctx = Runtime.ctx config g r.projected in
            Cypher_graph.Tri.to_bool_where (Eval.eval_truth ctx e))
          out_rows
  in
  (g, Table.make names (List.map (fun r -> r.projected) out_rows))
