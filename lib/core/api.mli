(** Public entry points: parse, validate and execute Cypher statements.

    This is the facade a downstream user programs against; the rest of
    [cypher_core] remains reachable for fine-grained use (e.g. the
    experiment harness drives {!Merge} directly to compare proposal
    variants on explicit driving tables). *)

open Cypher_graph
open Cypher_table

type outcome = { graph : Graph.t; table : Table.t }

(** The full observable outcome of one statement: graph, table, update
    counters, and — under an EXPLAIN / PROFILE prefix — the rendered
    plan and the per-clause profile. *)
type result = {
  r_graph : Graph.t;
  r_table : Table.t;
  r_stats : Stats.t;
  r_plan : string option;  (** rendered under EXPLAIN / PROFILE *)
  r_profile : Stats.profile_entry list option;  (** PROFILE only *)
}

(** [parse ~dialect src] parses and validates one statement.  The
    dialect defaults to the revised grammar (Figure 10). *)
val parse :
  ?dialect:Cypher_ast.Validate.dialect ->
  string ->
  (Cypher_ast.Ast.query, Errors.t) Stdlib.result

(** [run_query ~config graph q] validates [q] against the configured
    dialect and executes it, returning the updated graph and the output
    table.  The configuration defaults to {!Config.revised}. *)
val run_query :
  ?config:Config.t -> Graph.t -> Cypher_ast.Ast.query ->
  (outcome, Errors.t) Stdlib.result

(** [run_query_full ~config ~prefix graph q] executes [q] under a
    statement prefix: [Explain] renders the plan without running the
    statement (input graph unchanged, unit table); [Profile] runs it and
    reports per-clause row counts and monotonic wall-time alongside the
    plan; [Plain] (the default) just collects counters (when
    [config.collect_stats] is set, the default). *)
val run_query_full :
  ?config:Config.t ->
  ?prefix:Cypher_parser.Parser.prefix ->
  Graph.t -> Cypher_ast.Ast.query -> (result, Errors.t) Stdlib.result

(** [run_string ~config graph src] parses, validates and executes one
    statement; {!run_string_full} reduced to the graph and table, so it
    too recognises [EXPLAIN] / [PROFILE] prefixes and rejects unbound
    [$param]s up front with their source position. *)
val run_string :
  ?config:Config.t -> Graph.t -> string -> (outcome, Errors.t) Stdlib.result

(** [run_string_full ~config graph src] parses one statement —
    recognising an optional [EXPLAIN] / [PROFILE] prefix — validates and
    executes it.  Statements referencing parameters absent from
    [config.params] are rejected up front with an {!Errors.Eval_error}
    carrying the [$param]'s source position ([EXPLAIN] skips the check —
    it never evaluates anything). *)
val run_string_full :
  ?config:Config.t -> Graph.t -> string -> (result, Errors.t) Stdlib.result

(** {2 Prepared statements}

    A compiled statement: parsed, validated, and carrying a memo of
    hoisted match plans, so repeat executions (under fresh parameter
    bindings) skip lexing, parsing, validation and match planning.
    Compiled once with {!prepare}, executed any number of times with
    {!execute} / {!execute_full}, against different graphs and parameter
    bindings.  The plan memo invalidates itself whenever the graph's
    property-index key set changes, so no stale plan survives an index
    registration. *)

type prepared

(** [prepare ~config src] compiles one statement (parse, recognising
    [EXPLAIN] / [PROFILE]; validate against the configured dialect;
    attach an empty plan memo). *)
val prepare :
  ?config:Config.t -> string -> (prepared, Errors.t) Stdlib.result

(** [execute p params graph] runs the compiled statement with the given
    parameter bindings ([params] override bindings already present in
    the preparation config).  Parameters the statement references but
    that are not supplied are rejected up front, with their source
    position. *)
val execute :
  prepared ->
  Value.t Cypher_util.Maps.Smap.t ->
  Graph.t ->
  (outcome, Errors.t) Stdlib.result

(** [execute_full p params graph] is {!execute} with the full
    {!result} (plan and profile under an EXPLAIN / PROFILE prefix). *)
val execute_full :
  prepared ->
  Value.t Cypher_util.Maps.Smap.t ->
  Graph.t ->
  (result, Errors.t) Stdlib.result

(** Parameters the compiled statement references: name and (line,
    column) of the first occurrence, in first-occurrence order. *)
val prepared_params : prepared -> (string * (int * int)) list

(** The statement text the compilation started from, verbatim. *)
val prepared_source : prepared -> string

(** [prepared_updates p] is true when the compiled statement contains an
    update clause in any UNION branch — EXPLAIN statements never execute
    and are always reads. *)
val prepared_updates : prepared -> bool

(** [prepared_plan p graph] renders the execution plan the statement
    would use against [graph] (an EXPLAIN without executing). *)
val prepared_plan : prepared -> Graph.t -> string

(** [run_program ~config graph src] executes a [;]-separated sequence of
    statements, threading the graph; returns the final graph and the
    output table of every statement.  Execution stops at the first
    error. *)
val run_program :
  ?config:Config.t -> Graph.t -> string ->
  (Graph.t * Table.t list, Errors.t) Stdlib.result

(** Convenience for tests and examples that treat errors as fatal.
    @raise Errors.Error on any error (the structured error is
    preserved, not flattened to a string). *)
val run_exn : ?config:Config.t -> Graph.t -> string -> outcome
