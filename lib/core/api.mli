(** Public entry points: parse, validate and execute Cypher statements.

    This is the facade a downstream user programs against; the rest of
    [cypher_core] remains reachable for fine-grained use (e.g. the
    experiment harness drives {!Merge} directly to compare proposal
    variants on explicit driving tables). *)

open Cypher_graph
open Cypher_table

type outcome = { graph : Graph.t; table : Table.t }

(** [parse ~dialect src] parses and validates one statement.  The
    dialect defaults to the revised grammar (Figure 10). *)
val parse :
  ?dialect:Cypher_ast.Validate.dialect ->
  string ->
  (Cypher_ast.Ast.query, Errors.t) result

(** [run_query ~config graph q] validates [q] against the configured
    dialect and executes it, returning the updated graph and the output
    table.  The configuration defaults to {!Config.revised}. *)
val run_query :
  ?config:Config.t -> Graph.t -> Cypher_ast.Ast.query ->
  (outcome, Errors.t) result

(** [run_string ~config graph src] parses, validates and executes one
    statement. *)
val run_string :
  ?config:Config.t -> Graph.t -> string -> (outcome, Errors.t) result

(** [run_program ~config graph src] executes a [;]-separated sequence of
    statements, threading the graph; returns the final graph and the
    output table of every statement.  Execution stops at the first
    error. *)
val run_program :
  ?config:Config.t -> Graph.t -> string ->
  (Graph.t * Table.t list, Errors.t) result

(** Convenience for tests and examples that treat errors as fatal.
    @raise Failure on any error. *)
val run_exn : ?config:Config.t -> Graph.t -> string -> outcome
