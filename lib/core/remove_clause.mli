(** Semantics of the REMOVE clause (Section 8.2).

    Label and property removals cannot conflict — removing twice is the
    same as removing once — so the legacy and revised semantics
    coincide; changes are evaluated and applied from left to right. *)

open Cypher_graph
open Cypher_table

val run :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> Cypher_ast.Ast.remove_item list -> Graph.t * Table.t
