(** EXPLAIN / PROFILE plan rendering.

    Renders, per top-level clause, the traversal the matcher would use:
    for each path pattern of a MATCH / MERGE, the {!Cypher_matcher.Plan}
    the planner picks against the *current* graph statistics, or the
    reason the naive left-to-right enumeration is used instead (planner
    off, pattern not plannable, empty graph).

    The rendering probes {!Cypher_matcher.Plan.make} with every
    in-scope variable bound to null — a variable bound by an earlier
    clause is bound at match time, and the planner only asks *whether*
    a variable is bound, never what to.  Estimates are read from the
    graph the statement starts on; clauses further down see the graph
    their predecessors produce, so their statistics are approximations
    (flagged in the header). *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Plan = Cypher_matcher.Plan
module Pretty = Cypher_ast.Pretty

let clause_label c =
  let s = Pretty.clause_to_string c in
  if String.length s <= 72 then s else String.sub s 0 69 ^ "..."

(** The variables a clause adds to (or, for projections, resets) the
    scope — enough for boundness probing; validation proper happens in
    {!Cypher_ast.Validate}. *)
let scope_after bound (c : clause) =
  let add vars = List.fold_left (fun acc v -> v :: acc) bound vars in
  match c with
  | Match { patterns; _ } | Create patterns ->
      add (List.concat_map pattern_vars patterns)
  | Merge { patterns; _ } -> add (List.concat_map pattern_vars patterns)
  | Unwind { alias; _ } -> add [ alias ]
  | With proj | Return proj ->
      let aliases =
        List.filter_map
          (fun it ->
            match it.item_alias with
            | Some a -> Some a
            | None -> ( match it.item_expr with Var v -> Some v | _ -> None))
          proj.proj_items
      in
      if proj.proj_star then add aliases else aliases
  | Set _ | Remove _ | Delete _ | Foreach _ -> bound

let probe_row bound =
  List.fold_left (fun r v -> Record.bind r v Value.Null) Record.empty bound

let indent prefix s =
  String.split_on_char '\n' s
  |> List.map (fun l -> prefix ^ l)
  |> String.concat "\n"

let describe_patterns config g bound patterns buf =
  let row = probe_row bound in
  let ctx = Runtime.ctx config g row in
  List.iteri
    (fun i (p : pattern) ->
      let head = Printf.sprintf "    pattern %d:" i in
      if not (Runtime.planner_on config) then
        Buffer.add_string buf (head ^ " naive left-to-right (planner off)\n")
      else
        match Plan.make ctx row p with
        | None ->
            Buffer.add_string buf
              (head ^ " naive left-to-right (not plannable here)\n")
        | Some plan ->
            Buffer.add_string buf
              (head ^ "\n" ^ indent "      " (Plan.describe plan) ^ "\n"))
    patterns

let header config ~profiled =
  let mode =
    match config.Config.mode with
    | Config.Legacy -> "legacy"
    | Config.Atomic -> "atomic"
  in
  let planner = if Runtime.planner_on config then "on" else "off" in
  let par = Runtime.parallelism_of config in
  let exec =
    if par >= 2 then
      Printf.sprintf "parallel x%d%s" par
        (if profiled then " (clause times overlap domain scheduling)" else "")
    else "serial" ^ if profiled then " (clause times exact)" else ""
  in
  Printf.sprintf "plan: mode=%s planner=%s execution=%s" mode planner exec

(** [render config g q] is the EXPLAIN rendering of statement [q]
    against graph [g] (statistics from [g]; later clauses see derived
    graphs, so their estimates are indicative). *)
let render ?(profiled = false) config g (q : query) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header config ~profiled);
  Buffer.add_char buf '\n';
  let rec walk bound (q : query) =
    let bound =
      List.fold_left
        (fun bound c ->
          Buffer.add_string buf ("  " ^ clause_label c ^ "\n");
          (match c with
          | Match { patterns; _ } | Merge { patterns; _ } ->
              describe_patterns config g bound patterns buf
          | _ -> ());
          scope_after bound c)
        bound q.clauses
    in
    match q.union with
    | None -> bound
    | Some (all, q') ->
        Buffer.add_string buf
          (if all then "  UNION ALL\n" else "  UNION\n");
        (* each branch starts on the unit table: fresh scope *)
        walk [] q'
  in
  let (_ : string list) = walk [] q in
  (* drop the trailing newline *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s
