(** Construction of evaluation contexts by the engine.

    Centralises the plumbing every clause needs: query parameters and
    the oracles that let the evaluator answer pattern predicates,
    pattern comprehensions and shortestPath without depending on the
    matcher (the matcher sits above the evaluator in the library stack,
    so the dependency is inverted by injection here). *)

open Cypher_graph
open Cypher_table

(** The matcher-level regime selected by the configuration. *)
val match_mode_of : Config.t -> Cypher_matcher.Matcher.mode

(** Whether the configuration enables cost-guided match planning. *)
val planner_on : Config.t -> bool

(** The configured read-phase fan-out width (see {!Config.t}). *)
val parallelism_of : Config.t -> int
val rows_of : Config.t -> Config.rows

(** [ctx config graph row] is the evaluation context for one record,
    with parameters and the oracles installed. *)
val ctx : Config.t -> Graph.t -> Record.t -> Cypher_eval.Ctx.t
