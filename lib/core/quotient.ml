(** The collapsibility quotient of Section 8.2.

    Given the output of MERGE ALL, nodes created by the clause are
    *collapsible* (Definition 1) when they carry the same label set and
    the same property map — pre-existing nodes only collapse with
    themselves (condition iii).  Relationships created by the clause are
    collapsible (Definition 2) when they have the same type and
    properties and their endpoints are collapsible.  The quotient graph
    keeps one representative per equivalence class and remaps
    relationship endpoints and driving-table references.

    The position flags implement the weaker proposals of Section 6:
    when [node_pos_matters] is true, only nodes created for the *same
    position* of the input pattern may collapse (Weak Collapse); likewise
    [rel_pos_matters] for relationships (Weak Collapse and Collapse).
    MERGE SAME (Strong Collapse) sets both to false.

    Equivalence classes are keyed structurally (label sets, property
    maps and representative ids compared directly) rather than through
    printed key strings: MERGE workloads quotient thousands of created
    entities per clause, and formatting every property map dominated the
    clause's running time.  Keys are pre-bucketed by an
    equality-respecting hash ({!Value.hash_total} agrees with the total
    order's numeric [Int]/[Float] equality), so the full structural
    comparison runs only within a bucket. *)

open Cypher_util.Maps
open Cypher_graph

(** Position of a created entity inside the MERGE pattern tuple:
    (pattern index, element index within that pattern). *)
type position = int * int

let compare_pos (a : position option) (b : position option) =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some (i1, j1), Some (i2, j2) ->
      let c = Int.compare i1 i2 in
      if c <> 0 then c else Int.compare j1 j2

let hash_pos = function
  | None -> 0x517cc1b7
  | Some (i, j) -> (((i * 31) + j) * 31) + 1

let hash_sset (s : Sset.t) =
  Sset.fold (fun l acc -> (acc * 31) + Hashtbl.hash l) s 0x85eb_ca6b

(** Collapsibility class of a created node (Definition 1). *)
module Nkey = struct
  type t = { pos : position option; labels : Sset.t; props : Props.t }

  let compare a b =
    let c = compare_pos a.pos b.pos in
    if c <> 0 then c
    else
      let c = Sset.compare a.labels b.labels in
      if c <> 0 then c else Props.compare a.props b.props

  let hash k =
    ((hash_pos k.pos * 31) + hash_sset k.labels * 31) + Props.hash k.props
end

(** Collapsibility class of a created relationship (Definition 2):
    endpoints are compared by class representative. *)
module Rkey = struct
  type t = {
    pos : position option;
    r_type : string;
    props : Props.t;
    src : int;
    tgt : int;
  }

  let compare a b =
    let c = compare_pos a.pos b.pos in
    if c <> 0 then c
    else
      let c = String.compare a.r_type b.r_type in
      if c <> 0 then c
      else
        let c = Int.compare a.src b.src in
        if c <> 0 then c
        else
          let c = Int.compare a.tgt b.tgt in
          if c <> 0 then c else Props.compare a.props b.props

  let hash k =
    ((((hash_pos k.pos * 31) + Hashtbl.hash k.r_type * 31) + (k.src * 31)
     + k.tgt)
     * 31)
    + Props.hash k.props
end

(** Hash-bucketed class table: buckets keyed by the key's hash, full
    structural comparison only among bucket members.  [classify] returns
    the class representative, registering [id] as a fresh class when the
    key is new. *)
let classify (type k) (compare : k -> k -> int) (hash : k -> int)
    (classes : (int, (k * int) list ref) Hashtbl.t) (key : k) (id : int) : int
    =
  let h = hash key in
  match Hashtbl.find_opt classes h with
  | None ->
      Hashtbl.add classes h (ref [ (key, id) ]);
      id
  | Some bucket -> (
      match List.find_opt (fun (k, _) -> compare k key = 0) !bucket with
      | Some (_, rep) -> rep
      | None ->
          bucket := (key, id) :: !bucket;
          id)

type result = {
  graph : Graph.t;
  node_map : int -> int;  (** entity id → class representative *)
  rel_map : int -> int;
}

(* ids are unique, so ordering by id alone is a total order on the
   created-entity lists (and much cheaper than polymorphic compare) *)
let by_id (a, _) (b, _) = Int.compare a b

let identity_result graph =
  { graph; node_map = (fun id -> id); rel_map = (fun id -> id) }

(** [apply g ~new_nodes ~new_rels ~node_pos_matters ~rel_pos_matters]
    quotients [g] by collapsibility of the listed created entities. *)
let apply (g : Graph.t) ~(new_nodes : (int * position) list)
    ~(new_rels : (int * position) list) ~node_pos_matters ~rel_pos_matters :
    result =
  (* --- node classes ------------------------------------------------ *)
  (* entities are visited in ascending id order, so the first member of
     each class — the first-created entity — becomes its representative *)
  let node_reps : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let node_classes = Hashtbl.create 64 in
  List.iter
    (fun (id, pos) ->
      match Graph.node g id with
      | None -> ()
      | Some n ->
          let key =
            {
              Nkey.pos = (if node_pos_matters then Some pos else None);
              labels = n.Graph.labels;
              props = n.Graph.n_props;
            }
          in
          let rep = classify Nkey.compare Nkey.hash node_classes key id in
          Hashtbl.replace node_reps id rep)
    (List.sort by_id new_nodes);
  let node_map id =
    match Hashtbl.find_opt node_reps id with
    | None -> id (* pre-existing node: collapses only with itself *)
    | Some rep -> rep
  in
  (* --- relationship classes ---------------------------------------- *)
  let rel_reps : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rel_classes = Hashtbl.create 64 in
  List.iter
    (fun (id, pos) ->
      match Graph.rel g id with
      | None -> ()
      | Some r ->
          let key =
            {
              Rkey.pos = (if rel_pos_matters then Some pos else None);
              r_type = r.Graph.r_type;
              props = r.Graph.r_props;
              src = node_map r.Graph.src;
              tgt = node_map r.Graph.tgt;
            }
          in
          let rep = classify Rkey.compare Rkey.hash rel_classes key id in
          Hashtbl.replace rel_reps id rep)
    (List.sort by_id new_rels);
  let rel_map id =
    match Hashtbl.find_opt rel_reps id with None -> id | Some rep -> rep
  in
  (* --- rebuild ------------------------------------------------------ *)
  let keep_node (n : Graph.node) = node_map n.Graph.n_id = n.Graph.n_id in
  let keep_rel (r : Graph.rel) = rel_map r.Graph.r_id = r.Graph.r_id in
  let nodes = List.filter keep_node (Graph.nodes g) in
  let rels =
    List.filter_map
      (fun (r : Graph.rel) ->
        if keep_rel r then
          Some { r with Graph.src = node_map r.Graph.src; tgt = node_map r.Graph.tgt }
        else None)
      (Graph.rels g)
  in
  let graph =
    Graph.rebuild
      ~prop_indexes:(Graph.prop_index_keys g)
      ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g) nodes rels
  in
  { graph; node_map; rel_map }
