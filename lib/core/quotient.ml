(** The collapsibility quotient of Section 8.2.

    Given the output of MERGE ALL, nodes created by the clause are
    *collapsible* (Definition 1) when they carry the same label set and
    the same property map — pre-existing nodes only collapse with
    themselves (condition iii).  Relationships created by the clause are
    collapsible (Definition 2) when they have the same type and
    properties and their endpoints are collapsible.  The quotient graph
    keeps one representative per equivalence class and remaps
    relationship endpoints and driving-table references.

    The position flags implement the weaker proposals of Section 6:
    when [node_pos_matters] is true, only nodes created for the *same
    position* of the input pattern may collapse (Weak Collapse); likewise
    [rel_pos_matters] for relationships (Weak Collapse and Collapse).
    MERGE SAME (Strong Collapse) sets both to false. *)

open Cypher_util.Maps
open Cypher_graph

(** Position of a created entity inside the MERGE pattern tuple:
    (pattern index, element index within that pattern). *)
type position = int * int

(** Canonical, comparison-safe key for a property map. *)
let props_key props = Fmt.str "%a" Props.pp props

type result = {
  graph : Graph.t;
  node_map : int -> int;  (** entity id → class representative *)
  rel_map : int -> int;
}

let identity_result graph =
  { graph; node_map = (fun id -> id); rel_map = (fun id -> id) }

(** [apply g ~new_nodes ~new_rels ~node_pos_matters ~rel_pos_matters]
    quotients [g] by collapsibility of the listed created entities. *)
let apply (g : Graph.t) ~(new_nodes : (int * position) list)
    ~(new_rels : (int * position) list) ~node_pos_matters ~rel_pos_matters :
    result =
  (* --- node classes ------------------------------------------------ *)
  let node_classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let node_reps = Hashtbl.create 16 in
  List.iter
    (fun (id, pos) ->
      match Graph.node g id with
      | None -> ()
      | Some n ->
          let key =
            Fmt.str "%s|%s|%s"
              (if node_pos_matters then Fmt.str "%d.%d" (fst pos) (snd pos)
               else "_")
              (String.concat ":" (Sset.elements n.Graph.labels))
              (props_key n.Graph.n_props)
          in
          (* class representative: the smallest id in the class (ids grow
             monotonically, so the first-created entity represents) *)
          let rep =
            match Hashtbl.find_opt node_classes key with
            | None ->
                Hashtbl.add node_classes key id;
                id
            | Some rep -> min rep id
          in
          Hashtbl.replace node_classes key rep;
          Hashtbl.replace node_reps id key)
    (List.sort compare new_nodes);
  let node_map id =
    match Hashtbl.find_opt node_reps id with
    | None -> id (* pre-existing node: collapses only with itself *)
    | Some key -> Hashtbl.find node_classes key
  in
  (* --- relationship classes ---------------------------------------- *)
  let rel_classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rel_reps = Hashtbl.create 16 in
  List.iter
    (fun (id, pos) ->
      match Graph.rel g id with
      | None -> ()
      | Some r ->
          let key =
            Fmt.str "%s|%s|%s|%d|%d"
              (if rel_pos_matters then Fmt.str "%d.%d" (fst pos) (snd pos)
               else "_")
              r.Graph.r_type
              (props_key r.Graph.r_props)
              (node_map r.Graph.src) (node_map r.Graph.tgt)
          in
          let rep =
            match Hashtbl.find_opt rel_classes key with
            | None ->
                Hashtbl.add rel_classes key id;
                id
            | Some rep -> min rep id
          in
          Hashtbl.replace rel_classes key rep;
          Hashtbl.replace rel_reps id key)
    (List.sort compare new_rels);
  let rel_map id =
    match Hashtbl.find_opt rel_reps id with
    | None -> id
    | Some key -> Hashtbl.find rel_classes key
  in
  (* --- rebuild ------------------------------------------------------ *)
  let keep_node (n : Graph.node) = node_map n.Graph.n_id = n.Graph.n_id in
  let keep_rel (r : Graph.rel) = rel_map r.Graph.r_id = r.Graph.r_id in
  let nodes = List.filter keep_node (Graph.nodes g) in
  let rels =
    List.filter_map
      (fun (r : Graph.rel) ->
        if keep_rel r then
          Some { r with Graph.src = node_map r.Graph.src; tgt = node_map r.Graph.tgt }
        else None)
      (Graph.rels g)
  in
  let graph =
    Graph.rebuild ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g) nodes
      rels
  in
  { graph; node_map; rel_map }
