(** Execution configuration: which update semantics to run, in which
    driving-table order legacy clauses process records, which pattern
    matching regime to use, which dialect to validate against, and the
    query parameters. *)

open Cypher_util.Maps
open Cypher_graph

(** Update semantics regime for SET / DELETE / FOREACH and for plain
    MERGE.  [Legacy] is Cypher 9's per-record behaviour (Sections 3–4);
    [Atomic] is the revised behaviour of Section 7. *)
type mode = Legacy | Atomic

(** Record-processing order used by [Legacy] clauses.  Cypher tables are
    unordered, so a correct semantics must not depend on this — the
    legacy one does (Example 3), which this knob makes observable. *)
type order = Forward | Reverse | Seeded of int

(** Pattern-matching regime.  [Isomorphic] is Cypher's: distinct
    relationship patterns bind distinct relationships (Section 2).
    [Homomorphic] lifts that restriction — the extension the paper
    announces for later Cypher versions (Section 6, Example 7). *)
type match_mode = Isomorphic | Homomorphic

(** Cost-guided match planning (anchor selection, hop orientation —
    see [Matcher.Plan]).  [Off] keeps the naive left-to-right
    enumeration, whose row *order* the legacy order-sensitivity
    experiments depend on; planning never changes the row *set*. *)
type planner = On | Off

(** Journal durability for sessions opened on a database path
    ([Cypher_storage.Store]).  [Fsync] forces the write-ahead journal to
    stable storage on every outermost commit; [Buffered] leaves flushing
    to the OS.  Irrelevant to purely in-memory sessions. *)
type durability = Fsync | Buffered

(** Physical graph layout serving reads — {!Graph.backend}.
    [`Persistent] is the default persistent-map path; [`Compact] builds
    CSR snapshots at read-phase boundaries (interned symbols, int
    adjacency arrays, property arenas) for large graphs.  The two are
    observationally identical (fuzz oracle 9). *)
type backend = Graph.backend

(** Row representation of the read pipeline.  [`Records] (default)
    executes over persistent string-keyed maps; [`Slots] compiles each
    clause's column set to a {!Cypher_table.Slots} layout at the clause
    boundary and runs MATCH expansion, WHERE, UNWIND and projection over
    flat value arrays.  Observationally identical (fuzz battery under
    [CYPHER_ROWS=slots]). *)
type rows = [ `Records | `Slots ]

type t = {
  mode : mode;
  order : order;
  match_mode : match_mode;
  planner : planner;
  parallelism : int;
      (** Read-phase fan-out width: [0] (or [1]) runs serially, [n >= 2]
          chunks the driving table over at most [n] domains (the caller
          included) for MATCH expansion, WHERE filtering,
          UNWIND/projection row mapping and MERGE candidate
          enumeration.  Update application always stays sequential, and
          parallel output is byte-identical to serial output (see
          DESIGN.md). *)
  durability : durability;
  collect_stats : bool;
      (** Collect per-statement update counters ({!Stats}); on by
          default.  The disabled path exists so the collection overhead
          itself can be benchmarked away. *)
  dialect : Cypher_ast.Validate.dialect;
  params : Value.t Smap.t;
  plan_cache_capacity : int;
      (** Maximum number of compiled statements a {!Session} keeps in
          its LRU plan cache; [0] disables caching entirely. *)
  backend : backend;
  rows : rows;
}

(** Parses a [CYPHER_PARALLELISM]-style value: unset/empty/"0"/invalid
    mean serial, "auto" means {!Cypher_util.Pool.recommended}, a
    positive integer is the fan-out width. *)
val parallelism_of_string : string option -> int

(** The process-wide default, read once from [CYPHER_PARALLELISM] at
    startup; the baseline of every stock configuration below. *)
val default_parallelism : int

(** Parses a [CYPHER_BACKEND]-style value: "compact" selects the CSR
    backend, anything else (including unset) the persistent default. *)
val backend_of_string : string option -> backend

(** The process-wide default, read once from [CYPHER_BACKEND] at
    startup; the baseline of every stock configuration below. *)
val default_backend : backend

(** Parses a [CYPHER_ROWS]-style value: "slots" selects slot-compiled
    array rows, anything else (including unset) the record default. *)
val rows_of_string : string option -> rows

(** The process-wide default, read once from [CYPHER_ROWS] at startup;
    the baseline of every stock configuration below. *)
val default_rows : rows

(** Cypher 9 as shipped: legacy update semantics, Figure 2–5 grammar. *)
val cypher9 : t

(** The paper's revised language: atomic semantics, Figure 10 grammar. *)
val revised : t

(** Everything the parser accepts, atomic semantics: used to experiment
    with the Section 6 proposal variants (MERGE GROUPING / WEAK /
    COLLAPSE). *)
val permissive : t

val with_order : order -> t -> t
val with_match_mode : match_mode -> t -> t
val with_planner : planner -> t -> t

(** [with_parallelism n t] sets the read-phase fan-out width (clamped
    at 0). *)
val with_parallelism : int -> t -> t

(** [with_durability d t] sets the journal durability regime. *)
val with_durability : durability -> t -> t

(** [with_stats b t] toggles update-counter collection. *)
val with_stats : bool -> t -> t
val with_params : Value.t Smap.t -> t -> t
val with_param : string -> Value.t -> t -> t

(** [with_plan_cache_capacity n t] bounds the session plan cache
    (clamped at 0; 0 disables caching). *)
val with_plan_cache_capacity : int -> t -> t

(** [with_backend b t] selects the physical graph layout serving
    reads. *)
val with_backend : backend -> t -> t

(** [with_rows r t] selects the read-pipeline row representation. *)
val with_rows : rows -> t -> t

(** [arrange_rows config rows] applies the configured record order;
    identity under [Forward]. *)
val arrange_rows : t -> 'a list -> 'a list
