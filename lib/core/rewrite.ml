(** Rewriting of entity references inside values and records.

    Used by atomic DELETE ("any reference to a deleted entity in the
    driving table is replaced by a null", Section 7) and by the
    MERGE SAME quotient (occurrences of an entity are replaced by their
    equivalence-class representative, Section 8.2). *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table

(** [map_entities ~node ~rel v] rewrites every node/relationship
    reference in [v], descending into lists, maps and paths.  [node] and
    [rel] return [None] to null the reference out, or [Some id]. *)
let rec map_entities ~node ~rel (v : Value.t) : Value.t =
  match v with
  | Value.Node id -> (
      match node id with Some id' -> Value.Node id' | None -> Value.Null)
  | Value.Rel id -> (
      match rel id with Some id' -> Value.Rel id' | None -> Value.Null)
  | Value.Path p ->
      let nodes = List.map node p.Value.path_nodes in
      let rels = List.map rel p.Value.path_rels in
      if List.exists Option.is_none nodes || List.exists Option.is_none rels
      then Value.Null (* a path with a deleted component is no longer a path *)
      else
        Value.Path
          {
            Value.path_nodes = List.map Option.get nodes;
            path_rels = List.map Option.get rels;
          }
  | Value.List l -> Value.List (List.map (map_entities ~node ~rel) l)
  | Value.Map m -> Value.Map (Smap.map (map_entities ~node ~rel) m)
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _
    ->
      v

let record ~node ~rel (r : Record.t) : Record.t =
  Record.map_values (map_entities ~node ~rel) r

let table ~node ~rel (t : Table.t) : Table.t =
  Table.map (record ~node ~rel) t

(** [null_deleted ~nodes ~rels t] replaces references to the deleted id
    sets by null throughout [t]. *)
let null_deleted ~nodes ~rels t =
  table
    ~node:(fun id -> if Iset.mem id nodes then None else Some id)
    ~rel:(fun id -> if Iset.mem id rels then None else Some id)
    t
