(** Typed errors surfaced by query execution.

    The revised semantics of Section 7 turns several silent legacy
    behaviours into errors: conflicting atomic [SET] assignments
    (Example 2) and deletions that would leave dangling relationships.
    These get dedicated constructors so callers (tests, the REPL, the
    experiment harness) can pattern-match on them. *)

open Cypher_graph

type t =
  | Parse_error of string
  | Validation_error of string
  | Eval_error of string
      (** type errors, unknown variables, bad function calls, … *)
  | Set_conflict of {
      entity : Value.t;
      key : string;
      value1 : Value.t;
      value2 : Value.t;
    }
      (** atomic SET collected two different values for the same
          property of the same entity (Example 2); [key = "*"] denotes a
          whole-map replacement conflict *)
  | Delete_dangling of { node : int; rels : int list }
      (** atomic DELETE would leave relationships without an endpoint *)
  | Statement_dangling of int list
      (** legacy semantics: dangling relationships remained at the end
          of the statement (Neo4j's commit-time check, Section 4.2) *)
  | Update_error of string
      (** malformed update: recreating a bound variable, merging on a
          null binding, … *)
  | Internal_error of string
      (** an engine invariant broke (a guard admitted a shape its
          branch cannot handle).  Surfaced as a structured error so a
          long-lived server connection reports it and survives instead
          of dying on [assert false]. *)

exception Error of t

(** [fail e] raises {!Error}. *)
val fail : t -> 'a

val eval_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val update_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val internal_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
