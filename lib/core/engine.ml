(** The clause-by-clause execution engine.

    Implements the semantics framework of Section 8.1: a clause denotes a
    function on graph–table pairs, [[C S]](G,T) = [[S]]([[C]](G,T)), and a
    statement's output is [[Q]](G, T()) where T() is the unit table.
    Reading clauses leave the graph untouched; update clauses dispatch on
    the configured regime (legacy vs revised). *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval
module Matcher = Cypher_matcher.Matcher
module Plan = Cypher_matcher.Plan

let ctx_of config graph row = Runtime.ctx config graph row

(* ------------------------------------------------------------------ *)
(* Plan memo                                                          *)
(* ------------------------------------------------------------------ *)

(** Cross-execution cache of hoisted match plans, carried by a prepared
    statement ({!Api.prepare}).  Slots are keyed by the statement's
    top-level clause index — stable across executions of the same
    compiled query, which also fixes each clause's driving-table columns
    and hence variable boundness, the only per-row input plan choice
    depends on.  The memo remembers the property-index key set it was
    filled under and drops every slot when that set changes, so a plan
    compiled before [Graph.add_prop_index] is never served afterwards
    (stale plans are merely suboptimal, never incorrect — planned
    matching re-filters candidates — but a cached label scan would
    silently forfeit the index). *)
module Plan_memo = struct
  type t = {
    mutable slots : (int * Plan.t option list) list;
    mutable fingerprint : (string * string) list;
  }

  let create () = { slots = []; fingerprint = [] }

  let clear t =
    t.slots <- [];
    t.fingerprint <- []

  (** Invalidate when the graph's property-index key set differs from
      the one the memo was filled under. *)
  let sync t g =
    let fp = Graph.prop_index_keys g in
    if fp <> t.fingerprint then (
      t.slots <- [];
      t.fingerprint <- fp)

  let find t key = List.assoc_opt key t.slots

  let store t key plans =
    t.slots <- (key, plans) :: List.remove_assoc key t.slots
end

(* ------------------------------------------------------------------ *)
(* Reading clauses                                                    *)
(* ------------------------------------------------------------------ *)

(* The per-row expansions of MATCH and UNWIND read only the immutable
   input graph [g] — under the revised semantics a clause never sees its
   own writes — so fanning the driving table out over the domain pool is
   unobservable: the ordered gather reproduces the serial row order
   exactly (DESIGN.md, "Parallel read phases"). *)

(* Plan hoisting: within one MATCH execution every driving row has the
   same columns, so plan choice (which depends on variable boundness and
   graph statistics only) is uniform across rows and can be computed
   once from a representative row instead of per row.  The exception is
   a multi-pattern MATCH whose later patterns reference variables bound
   by earlier patterns of the same clause: the old per-state planning
   saw those intermediate bindings, so such clauses keep per-row
   planning to preserve plan choice (and thus row order) exactly. *)
let hoistable columns patterns =
  let referenced p = expr_free_vars (Pattern_pred [ p ]) in
  let rec go bound = function
    | [] -> true
    | p :: rest ->
        List.for_all (fun v -> not (List.mem v bound)) (referenced p)
        && go
             (List.filter (fun v -> not (List.mem v columns)) (pattern_vars p)
             @ bound)
             rest
  in
  go [] patterns

let hoisted_plans ?slot config g t patterns =
  if not (Runtime.planner_on config) then None
  else
    match Table.rows t with
    | [] -> None
    | row0 :: _ ->
        if not (hoistable (Table.columns t) patterns) then None
        else
          let fresh () =
            let ctx = ctx_of config g row0 in
            List.map (fun p -> Plan.make ctx row0 p) patterns
          in
          Some
            (match slot with
            | None -> fresh ()
            | Some (memo, key) -> (
                Plan_memo.sync memo g;
                match Plan_memo.find memo key with
                | Some plans -> plans
                | None ->
                    let plans = fresh () in
                    (* never memoize plans made against an empty graph:
                       they are all [None] and would pin naive matching
                       after the graph grows *)
                    if Graph.node_count g > 0 then
                      Plan_memo.store memo key plans;
                    plans))

(* Slot seeding: under [Config.rows = `Slots] a read clause compiles
   its output column set to a slot layout once, and re-lays each driving
   row out as a flat value array over it before expansion.  Every bind
   in the match/unwind inner loop is then an array copy plus an index
   store, and every lookup an index load — no string-keyed map rebuilds
   on the hot path.  Pattern variables start absent and are filled by
   the matcher through the ordinary [Record] API, so the layout is
   stable across the whole expansion and the final [Table.make]
   projection is a no-op per row.  Identity under [`Records]. *)
let row_seeder config columns =
  match Runtime.rows_of config with
  | `Records -> Fun.id
  | `Slots ->
      let tab = Slots.of_names columns in
      Record.seed tab

let exec_match ?slot config (g, t) ~optional ~patterns ~where =
  let vars = List.concat_map pattern_vars patterns in
  let columns = Table.columns t @ vars in
  (* build the compact backend's CSR snapshot before any parallel
     fan-out, so pool workers share one snapshot instead of racing to
     build their own *)
  Graph.ensure_csr g;
  let plans = hoisted_plans ?slot config g t patterns in
  let seed = row_seeder config columns in
  let mode = Runtime.match_mode_of config in
  let planner = Runtime.planner_on config in
  let pad row =
    (* pad the pattern variables with nulls *)
    List.fold_left
      (fun r v -> if Record.mem r v then r else Record.bind r v Value.Null)
      row vars
  in
  let expand row =
    let row = seed row in
    let matches =
      Matcher.match_patterns ~mode ~planner ?plans (ctx_of config g row)
        patterns
    in
    let matches =
      match where with
      | None -> matches
      | Some cond ->
          List.filter
            (fun row' ->
              Tri.to_bool_where (Eval.eval_truth (ctx_of config g row') cond))
            matches
    in
    if matches = [] && optional then [ pad row ] else matches
  in
  match (Table.rows t, where) with
  | [ row ], None ->
      (* single driving row, no WHERE (every first MATCH): consume the
         matcher's reversed accumulation directly and restore row order
         in the same pass that builds the result table — one traversal
         of a possibly very large expansion instead of two.  WHERE-d
         clauses keep the natural-order path so predicate evaluation
         order (and thus any evaluation error) is unchanged. *)
      let row = seed row in
      let ctx = ctx_of config g row in
      let tbl =
        (* fully-inverted enumeration first: rows arrive in natural
           order over the compiled slot layout, already consistent —
           one list spine, no reversal, no projection.  The rows bind
           exactly [columns]: natural success means every pattern
           variable landed in a distinct previously-absent slot of the
           layout compiled from these very columns. *)
        match Matcher.match_patterns_natural ~mode ~planner ?plans ctx patterns with
        | Some rows ->
            let rows = if rows = [] && optional then [ pad row ] else rows in
            Table.of_consistent columns rows
        | None ->
            let matches_rev =
              Matcher.match_patterns_rev ~mode ~planner ?plans ctx patterns
            in
            let rows_rev =
              if matches_rev = [] && optional then [ pad row ] else matches_rev
            in
            Table.make_rev columns rows_rev
      in
      (g, tbl)
  | _ ->
      ( g,
        Table.concat_map_par
          ~parallelism:(Runtime.parallelism_of config)
          columns expand t )

(** Fused [MATCH ... RETURN count( * ) AS n]: counts embeddings per
    driving row without materialising the expanded table.  Restricted by
    the caller to a non-OPTIONAL, WHERE-less MATCH followed directly by
    a bare count( * ) RETURN — exactly the shape whose unfused execution
    puts every embedding through record binding, table projection and a
    single global aggregation group just to take the list's length.
    Plan hoisting and the CSR snapshot behave as in {!exec_match}. *)
let exec_match_count ?slot config (g, t) ~patterns ~name =
  Graph.ensure_csr g;
  let plans = hoisted_plans ?slot config g t patterns in
  let seed =
    row_seeder config
      (Table.columns t @ List.concat_map pattern_vars patterns)
  in
  let total =
    Table.fold
      (fun row acc ->
        let row = seed row in
        acc
        + Matcher.count_patterns
            ~mode:(Runtime.match_mode_of config)
            ~planner:(Runtime.planner_on config) ?plans (ctx_of config g row)
            patterns)
      t 0
  in
  (g, Table.make [ name ] [ Record.bind Record.empty name (Value.Int total) ])

let exec_unwind config (g, t) ~source ~alias =
  let columns = Table.columns t @ [ alias ] in
  let seed = row_seeder config columns in
  let expand row =
    match Eval.eval (ctx_of config g row) source with
    | Value.Null -> []
    | Value.List l ->
        let row = seed row in
        List.map (fun v -> Record.bind row alias v) l
    | v ->
        (* UNWIND is defined on lists (and NULL, which contributes no
           rows); anything else is a type error, not a singleton list *)
        Errors.eval_error "Type mismatch: expected List, got %s"
          (Value.to_string v)
  in
  ( g,
    Table.concat_map_par ~parallelism:(Runtime.parallelism_of config) columns
      expand t )

(* ------------------------------------------------------------------ *)
(* Clause dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let rec exec_clause config ~stats (g, t) (c : clause) =
  match c with
  | Match { optional; patterns; where } ->
      exec_match config (g, t) ~optional ~patterns ~where
  | Unwind { source; alias } -> exec_unwind config (g, t) ~source ~alias
  | With proj | Return proj -> Projection.run config (g, t) proj
  | Create patterns -> Create.run config ~stats (g, t) patterns
  | Set items -> Set_clause.run config ~stats (g, t) items
  | Remove items -> Remove_clause.run config ~stats (g, t) items
  | Delete { detach; targets } ->
      Delete_clause.run config ~stats (g, t) ~detach targets
  | Merge { mode; patterns; on_create; on_match } ->
      Merge.run config ~stats (g, t) ~mode ~patterns ~on_create ~on_match
  | Foreach { fe_var; fe_source; fe_body } ->
      exec_foreach config ~stats (g, t) ~fe_var ~fe_source ~fe_body

(** FOREACH: for each record and each element of the list, the body
    update clauses run on a one-record table binding the loop variable.
    The driving table itself is unchanged (the loop variable does not
    leak).  The body clauses follow the configured regime. *)
and exec_foreach config ~stats (g, t) ~fe_var ~fe_source ~fe_body =
  let g =
    Table.fold
      (fun row g ->
        match Eval.eval (ctx_of config g row) fe_source with
        | Value.Null -> g
        | Value.List l ->
            List.fold_left
              (fun g v ->
                let inner_row = Record.bind row fe_var v in
                let inner =
                  Table.make
                    (Table.columns t @ [ fe_var ])
                    [ inner_row ]
                in
                let g, _ =
                  List.fold_left
                    (fun (g, t) c -> exec_clause config ~stats (g, t) c)
                    (g, inner) fe_body
                in
                g)
              g l
        | v ->
            Errors.eval_error "FOREACH requires a list, got %s"
              (Value.to_string v))
      t g
  in
  (g, t)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

(** Executes a query on a graph–table pair.  UNION branches run
    left-to-right, each on the unit table against the graph produced by
    the previous branch; their output tables are combined by bag union
    (UNION ALL) or set union (UNION), as in Section 8.2. *)
(* PROFILE: each top-level clause (including those of UNION branches) is
   timed with the monotonic clock and tagged with the row count of the
   table it produced.  In serial mode the wall-times are exact per-clause
   costs; under parallelism the read phases overlap domain scheduling, so
   the profile header labels the run as parallel (see [Explain]). *)
let profile_clause profile c f =
  match profile with
  | None -> f ()
  | Some acc ->
      let label =
        let s = Cypher_ast.Pretty.clause_to_string c in
        if String.length s <= 60 then s else String.sub s 0 57 ^ "..."
      in
      let (g, t), ns = Cypher_util.Mclock.span_ns f in
      acc :=
        { Stats.pf_clause = label; pf_rows = Table.row_count t; pf_ns = ns }
        :: !acc;
      (g, t)

let rec exec_query config ~stats ?profile ?memo ~counter (g, t) (q : query) =
  let exec_one (g, t) c =
    let key = !counter in
    incr counter;
    profile_clause profile c (fun () ->
        match c with
        | Match { optional; patterns; where } ->
            let slot = Option.map (fun m -> (m, key)) memo in
            exec_match ?slot config (g, t) ~optional ~patterns ~where
        | c -> exec_clause config ~stats (g, t) c)
  in
  let rec run (g, t) = function
    | [] -> (g, t)
    (* [MATCH ... RETURN count( * )] fuses into a counting traversal.  The
       restriction to a final plain-MATCH/bare-count( * ) pair keeps the
       observable behaviour exactly that of the unfused pipeline (same
       embeddings enumerated in the same order, same single-row output
       table); under PROFILE the clauses stay separate so per-clause row
       counts remain exact. *)
    | [ Match { optional = false; patterns; where = None }; Return proj ]
      when Option.is_none profile
           && Option.is_some (Projection.count_star_alias proj) ->
        let name = Option.get (Projection.count_star_alias proj) in
        let key = !counter in
        (* the fused pair consumes both clause slots, keeping plan-memo
           keys aligned with the unfused numbering *)
        counter := !counter + 2;
        let slot = Option.map (fun m -> (m, key)) memo in
        exec_match_count ?slot config (g, t) ~patterns ~name
    | c :: rest -> run (exec_one (g, t) c) rest
  in
  let g, t1 = run (g, t) q.clauses in
  match q.union with
  | None -> (g, t1)
  | Some (all, q') ->
      let g, t2 =
        exec_query config ~stats ?profile ?memo ~counter (g, Table.unit) q'
      in
      if Table.columns t1 <> Table.columns t2 then
        Errors.eval_error
          "UNION branches must produce the same columns (%s vs %s)"
          (String.concat ", " (Table.columns t1))
          (String.concat ", " (Table.columns t2))
      else if all then (g, Table.bag_union t1 t2)
      else (g, Table.union t1 t2)

(** [output config g q] is output(Q, G) of Section 8.1: runs the whole
    statement on the unit table.  Under the legacy regime, graph validity
    is only checked here, at the statement boundary — mirroring Neo4j's
    commit-time dangling check (Section 4.2). *)
let output ?(stats = Stats.null) ?profile ?memo config g (q : query) =
  (* attribute CSR snapshot (re)build time to its own PROFILE line: the
     build runs lazily inside whichever clause first reads after an
     update (or a load), and at scale it dominates that clause's time
     without being part of its steady-state cost *)
  let csr_ns0 =
    match profile with Some _ -> Graph.csr_build_ns_total () | None -> 0L
  in
  let g', t' =
    exec_query config ~stats ?profile ?memo ~counter:(ref 0) (g, Table.unit) q
  in
  (match profile with
  | Some acc ->
      let d = Int64.sub (Graph.csr_build_ns_total ()) csr_ns0 in
      if d > 0L then
        acc :=
          { Stats.pf_clause = "[csr snapshot build]"; pf_rows = 0; pf_ns = d }
          :: !acc
  | None -> ());
  Stats.set_rows stats (Table.row_count t');
  (match config.Config.mode with
  | Config.Legacy ->
      let dangling = Graph.dangling_rels g' in
      if dangling <> [] then
        Errors.fail
          (Errors.Statement_dangling
             (List.map (fun (r : Graph.rel) -> r.Graph.r_id) dangling))
  | Config.Atomic ->
      (* the revised semantics cannot produce dangling relationships *)
      assert (Graph.is_wellformed g'));
  (g', t')
