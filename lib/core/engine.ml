(** The clause-by-clause execution engine.

    Implements the semantics framework of Section 8.1: a clause denotes a
    function on graph–table pairs, [[C S]](G,T) = [[S]]([[C]](G,T)), and a
    statement's output is [[Q]](G, T()) where T() is the unit table.
    Reading clauses leave the graph untouched; update clauses dispatch on
    the configured regime (legacy vs revised). *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval
module Matcher = Cypher_matcher.Matcher

let ctx_of config graph row = Runtime.ctx config graph row

(* ------------------------------------------------------------------ *)
(* Reading clauses                                                    *)
(* ------------------------------------------------------------------ *)

(* The per-row expansions of MATCH and UNWIND read only the immutable
   input graph [g] — under the revised semantics a clause never sees its
   own writes — so fanning the driving table out over the domain pool is
   unobservable: the ordered gather reproduces the serial row order
   exactly (DESIGN.md, "Parallel read phases"). *)

let exec_match config (g, t) ~optional ~patterns ~where =
  let vars = List.concat_map pattern_vars patterns in
  let columns = Table.columns t @ vars in
  let expand row =
    let matches = Matcher.match_patterns ~mode:(Runtime.match_mode_of config) ~planner:(Runtime.planner_on config) (ctx_of config g row) patterns in
    let matches =
      match where with
      | None -> matches
      | Some cond ->
          List.filter
            (fun row' ->
              Tri.to_bool_where (Eval.eval_truth (ctx_of config g row') cond))
            matches
    in
    if matches = [] && optional then
      (* pad the pattern variables with nulls *)
      [ List.fold_left
          (fun r v -> if Record.mem r v then r else Record.bind r v Value.Null)
          row vars ]
    else matches
  in
  ( g,
    Table.concat_map_par ~parallelism:(Runtime.parallelism_of config) columns
      expand t )

let exec_unwind config (g, t) ~source ~alias =
  let columns = Table.columns t @ [ alias ] in
  let expand row =
    match Eval.eval (ctx_of config g row) source with
    | Value.Null -> []
    | Value.List l -> List.map (fun v -> Record.bind row alias v) l
    | v ->
        (* UNWIND is defined on lists (and NULL, which contributes no
           rows); anything else is a type error, not a singleton list *)
        Errors.eval_error "Type mismatch: expected List, got %s"
          (Value.to_string v)
  in
  ( g,
    Table.concat_map_par ~parallelism:(Runtime.parallelism_of config) columns
      expand t )

(* ------------------------------------------------------------------ *)
(* Clause dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let rec exec_clause config ~stats (g, t) (c : clause) =
  match c with
  | Match { optional; patterns; where } ->
      exec_match config (g, t) ~optional ~patterns ~where
  | Unwind { source; alias } -> exec_unwind config (g, t) ~source ~alias
  | With proj | Return proj -> Projection.run config (g, t) proj
  | Create patterns -> Create.run config ~stats (g, t) patterns
  | Set items -> Set_clause.run config ~stats (g, t) items
  | Remove items -> Remove_clause.run config ~stats (g, t) items
  | Delete { detach; targets } ->
      Delete_clause.run config ~stats (g, t) ~detach targets
  | Merge { mode; patterns; on_create; on_match } ->
      Merge.run config ~stats (g, t) ~mode ~patterns ~on_create ~on_match
  | Foreach { fe_var; fe_source; fe_body } ->
      exec_foreach config ~stats (g, t) ~fe_var ~fe_source ~fe_body

(** FOREACH: for each record and each element of the list, the body
    update clauses run on a one-record table binding the loop variable.
    The driving table itself is unchanged (the loop variable does not
    leak).  The body clauses follow the configured regime. *)
and exec_foreach config ~stats (g, t) ~fe_var ~fe_source ~fe_body =
  let g =
    Table.fold
      (fun row g ->
        match Eval.eval (ctx_of config g row) fe_source with
        | Value.Null -> g
        | Value.List l ->
            List.fold_left
              (fun g v ->
                let inner_row = Record.bind row fe_var v in
                let inner =
                  Table.make
                    (Table.columns t @ [ fe_var ])
                    [ inner_row ]
                in
                let g, _ =
                  List.fold_left
                    (fun (g, t) c -> exec_clause config ~stats (g, t) c)
                    (g, inner) fe_body
                in
                g)
              g l
        | v ->
            Errors.eval_error "FOREACH requires a list, got %s"
              (Value.to_string v))
      t g
  in
  (g, t)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

(** Executes a query on a graph–table pair.  UNION branches run
    left-to-right, each on the unit table against the graph produced by
    the previous branch; their output tables are combined by bag union
    (UNION ALL) or set union (UNION), as in Section 8.2. *)
(* PROFILE: each top-level clause (including those of UNION branches) is
   timed with the monotonic clock and tagged with the row count of the
   table it produced.  In serial mode the wall-times are exact per-clause
   costs; under parallelism the read phases overlap domain scheduling, so
   the profile header labels the run as parallel (see [Explain]). *)
let profile_clause profile c f =
  match profile with
  | None -> f ()
  | Some acc ->
      let label =
        let s = Cypher_ast.Pretty.clause_to_string c in
        if String.length s <= 60 then s else String.sub s 0 57 ^ "..."
      in
      let (g, t), ns = Cypher_util.Mclock.span_ns f in
      acc :=
        { Stats.pf_clause = label; pf_rows = Table.row_count t; pf_ns = ns }
        :: !acc;
      (g, t)

let rec exec_query config ~stats ?profile (g, t) (q : query) =
  let g, t1 =
    List.fold_left
      (fun (g, t) c ->
        profile_clause profile c (fun () -> exec_clause config ~stats (g, t) c))
      (g, t) q.clauses
  in
  match q.union with
  | None -> (g, t1)
  | Some (all, q') ->
      let g, t2 = exec_query config ~stats ?profile (g, Table.unit) q' in
      if Table.columns t1 <> Table.columns t2 then
        Errors.eval_error
          "UNION branches must produce the same columns (%s vs %s)"
          (String.concat ", " (Table.columns t1))
          (String.concat ", " (Table.columns t2))
      else if all then (g, Table.bag_union t1 t2)
      else (g, Table.union t1 t2)

(** [output config g q] is output(Q, G) of Section 8.1: runs the whole
    statement on the unit table.  Under the legacy regime, graph validity
    is only checked here, at the statement boundary — mirroring Neo4j's
    commit-time dangling check (Section 4.2). *)
let output ?(stats = Stats.null) ?profile config g (q : query) =
  let g', t' = exec_query config ~stats ?profile (g, Table.unit) q in
  Stats.set_rows stats (Table.row_count t');
  (match config.Config.mode with
  | Config.Legacy ->
      let dangling = Graph.dangling_rels g' in
      if dangling <> [] then
        Errors.fail
          (Errors.Statement_dangling
             (List.map (fun (r : Graph.rel) -> r.Graph.r_id) dangling))
  | Config.Atomic ->
      (* the revised semantics cannot produce dangling relationships *)
      assert (Graph.is_wellformed g'));
  (g', t')
