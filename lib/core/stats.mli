(** Statement update counters (the observability substrate).

    Every update module records what it does into a {!collector}; at the
    statement boundary {!finalize} turns the recorded touches into a
    {!t} of *net* counts against the result graph.  The counts are
    defined to equal the structural diff of the statement's input and
    output graphs:

    - an entity created and later deleted in the same statement counts
      for nothing;
    - a property set twice counts once; set back to its original value,
      zero times;
    - properties and labels of entities created (or deleted) by the
      statement are folded into the created/deleted counts, not into
      [props_set]/[labels_removed].

    This "net diff" reading is what makes the counters checkable: the
    [counters] fuzz oracle recomputes the diff from the two graphs and
    the two numbers must agree (see DESIGN.md).  [merge_matched],
    [merge_created] and [rows] are execution facts, not diff facts. *)

open Cypher_graph

type t = {
  nodes_created : int;
  nodes_deleted : int;
  rels_created : int;
  rels_deleted : int;
  props_set : int;
  props_removed : int;
  labels_added : int;
  labels_removed : int;
  merge_matched : int;  (** MERGE driving records that found a match *)
  merge_created : int;  (** MERGE driving records that went down the create path *)
  rows : int;  (** rows in the statement's output table *)
}

val empty : t

(** [contains_updates s] is true when any graph-changing count is
    non-zero (merge counters and [rows] do not count). *)
val contains_updates : t -> bool

val equal : t -> t -> bool

(** Neo4j-style one-line footer, e.g.
    ["Created 2 nodes, set 3 properties"]; ["(no changes)"] when
    {!contains_updates} is false. *)
val footer : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(* ------------------------------------------------------------------ *)
(* Collection                                                         *)
(* ------------------------------------------------------------------ *)

(** A mutable collector threaded through the update modules.  All
    recording functions are no-ops on a disabled collector, so the
    disabled path costs one branch per recorded event. *)
type collector

val make : unit -> collector

(** The shared disabled collector: recording into it does nothing.
    Callers that do not want counters pass this. *)
val null : collector

val enabled : collector -> bool

(** Identity of a touched property/label carrier. *)
type target = Tnode of int | Trel of int

val node_created : collector -> int -> unit
val rel_created : collector -> int -> unit

(** [node_deleted c id] / [rel_deleted c id]: call only when the entity
    actually existed at deletion time.  Deleting an entity the statement
    itself created cancels the creation instead of counting a delete. *)
val node_deleted : collector -> int -> unit

val rel_deleted : collector -> int -> unit

(** [prop_touched c target key ~orig] records the first-touch original
    value ([Value.Null] = absent) of a property the statement writes or
    removes.  Touches on entities the statement created are ignored —
    their final properties are counted wholesale at {!finalize}. *)
val prop_touched : collector -> target -> string -> orig:Value.t -> unit

(** [label_touched c id label ~had] likewise for a node label;
    [had] is whether the node carried the label before the touch. *)
val label_touched : collector -> int -> string -> had:bool -> unit

val merge_matched : collector -> int -> unit
val merge_created : collector -> int -> unit

(** [remap_created c ~node_map ~rel_map] maps the created-entity sets
    through a MERGE collapsibility quotient (ids of collapsed entities
    fold onto their class representative). *)
val remap_created :
  collector -> node_map:(int -> int) -> rel_map:(int -> int) -> unit

val set_rows : collector -> int -> unit

(** [finalize c g_out] closes the collector against the statement's
    result graph: created entities contribute their final labels and
    properties; touched properties/labels on surviving pre-existing
    entities are compared first-touch-original vs final. *)
val finalize : collector -> Graph.t -> t

(* ------------------------------------------------------------------ *)
(* Profiling                                                          *)
(* ------------------------------------------------------------------ *)

(** One top-level clause of a PROFILEd statement. *)
type profile_entry = {
  pf_clause : string;  (** rendered clause text (possibly truncated) *)
  pf_rows : int;  (** rows in the table the clause produced *)
  pf_ns : int64;  (** monotonic wall-time spent in the clause *)
}

val pp_profile : Format.formatter -> profile_entry list -> unit
