(** Semantics of MERGE — legacy and all five proposed replacements.

    Legacy (Cypher 9, Section 4.3): records are processed one at a time;
    each record first tries to match the pattern in the *current* graph
    (including what earlier records created) and creates an instance on
    failure.  Reading its own writes makes the clause order-dependent and
    hence nondeterministic (Example 3 / Figure 6).

    Revised (Sections 6–8): the driving table is split against the
    *input* graph into Tmatch (records with at least one embedding,
    extended with every embedding, as in MATCH) and Tfail; instances are
    created for Tfail; the result table is Tmatch ⊎ Tcreate.

    - MERGE ALL (Atomic): one fresh instance per failing record.
    - Grouping: one instance per group of failing records with equal
      values for every expression appearing in the pattern.
    - Weak Collapse:  ALL followed by the quotient with both position
      restrictions (only same-position entities collapse).
    - Collapse:       quotient with cross-position node collapsing.
    - Strong Collapse (= MERGE SAME): quotient with cross-position node
      and relationship collapsing (Definitions 1 and 2 verbatim).

    The collapsing proposals are implemented as *grouped* instantiation
    followed by their quotient: records with equal pattern expressions
    would create entity-wise identical instances, which every
    position-sensitive or -insensitive quotient merges completely, so
    instantiating once per group and quotienting the group instances
    yields the same graph — and the same remapped bindings — as one
    instance per record, without materialising entities that are
    immediately collapsed away. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval
module Matcher = Cypher_matcher.Matcher

let ctx_of config graph row = Runtime.ctx config graph row

(* ------------------------------------------------------------------ *)
(* Legacy MERGE                                                       *)
(* ------------------------------------------------------------------ *)

let apply_set_legacy config ~stats g rows items =
  List.fold_left
    (fun g row ->
      List.fold_left
        (fun g item -> Set_clause.legacy_item config ~stats g row item)
        g items)
    g rows

let run_legacy config ~stats (g, t) ~patterns ~on_create ~on_match =
  let rows = Config.arrange_rows config (Table.rows t) in
  let g, out_rows_rev =
    List.fold_left
      (fun (g, acc) row ->
        let matches = Matcher.match_patterns ~mode:(Runtime.match_mode_of config) ~planner:(Runtime.planner_on config) (ctx_of config g row) patterns in
        if matches <> [] then begin
          Stats.merge_matched stats 1;
          let g = apply_set_legacy config ~stats g matches on_match in
          (g, List.rev_append matches acc)
        end
        else begin
          Stats.merge_created stats 1;
          let g, row' = Create.create_row config ~stats g row patterns in
          let g = apply_set_legacy config ~stats g [ row' ] on_create in
          (g, row' :: acc)
        end)
      (g, []) rows
  in
  let columns = Table.columns t @ List.concat_map pattern_vars patterns in
  (g, Table.make columns (List.rev out_rows_rev))

(* ------------------------------------------------------------------ *)
(* Instantiation for the revised semantics                            *)
(* ------------------------------------------------------------------ *)

type created = {
  c_nodes : (int * Quotient.position) list;
  c_rels : (int * Quotient.position) list;
}

let no_created = { c_nodes = []; c_rels = [] }

(** Creates one instance of the pattern tuple.  Bound variables anchor
    the instance to existing nodes; everything else is created fresh.
    Property expressions are evaluated against the *input* graph [g0].
    Returns created entity ids tagged with their pattern positions. *)
let instantiate config ~stats g0 g row (patterns : pattern list) =
  let created = ref no_created in
  let resolve_node g row pat_idx elem_idx (np : node_pat) =
    let bound =
      match np.np_var with Some v -> Record.find_opt row v | None -> None
    in
    match bound with
    | Some (Value.Node id) ->
        if not (Graph.has_node g id) then
          Errors.update_error "MERGE: bound node %d no longer exists" id
        else (g, row, id)
    | Some Value.Null ->
        Errors.update_error "MERGE: cannot merge on null-bound variable `%s`"
          (Option.get np.np_var)
    | Some v ->
        Errors.update_error "MERGE: variable `%s` is bound to %s, not a node"
          (Option.get np.np_var) (Value.to_string v)
    | None ->
        let props = Eval.eval_props (ctx_of config g0 row) np.np_props in
        let id, g = Graph.create_node ~labels:np.np_labels ~props g in
        Stats.node_created stats id;
        created :=
          { !created with c_nodes = (id, (pat_idx, elem_idx)) :: !created.c_nodes };
        let row =
          match np.np_var with
          | None -> row
          | Some v -> Record.bind row v (Value.Node id)
        in
        (g, row, id)
  in
  let g, row =
    List.fold_left
      (fun (g, row) (pat_idx, (p : pattern)) ->
        let g, row, start_id = resolve_node g row pat_idx 0 p.pat_start in
        let g, row, nodes_rev, rels_rev, _ =
          List.fold_left
            (fun (g, row, nodes_rev, rels_rev, elem_idx) ((rp : rel_pat), np) ->
              let prev = List.hd nodes_rev in
              let g, row, next_id = resolve_node g row pat_idx elem_idx np in
              (match rp.rp_var with
              | Some v when Record.mem row v ->
                  Errors.update_error
                    "MERGE: relationship variable `%s` is already bound" v
              | _ -> ());
              let r_type =
                match rp.rp_types with
                | [ ty ] -> ty
                | _ ->
                    Errors.update_error
                      "MERGE relationship patterns must carry exactly one type"
              in
              let src, tgt =
                match rp.rp_dir with
                | In -> (next_id, prev)
                | Out | Undirected -> (prev, next_id)
              in
              let props = Eval.eval_props (ctx_of config g0 row) rp.rp_props in
              let rel_id, g = Graph.create_rel ~src ~tgt ~r_type ~props g in
              Stats.rel_created stats rel_id;
              created :=
                {
                  !created with
                  c_rels = (rel_id, (pat_idx, elem_idx - 1)) :: !created.c_rels;
                };
              let row =
                match rp.rp_var with
                | None -> row
                | Some v -> Record.bind row v (Value.Rel rel_id)
              in
              (g, row, next_id :: nodes_rev, rel_id :: rels_rev, elem_idx + 1))
            (g, row, [ start_id ], [], 1)
            p.pat_steps
        in
        let row =
          match p.pat_var with
          | None -> row
          | Some v ->
              Record.bind row v
                (Value.Path
                   {
                     Value.path_nodes = List.rev nodes_rev;
                     path_rels = List.rev rels_rev;
                   })
        in
        (g, row))
      (g, row)
      (List.mapi (fun i p -> (i, p)) patterns)
  in
  (g, row, !created)

(** The grouping key of a failing record: the values of every property
    expression appearing in the pattern tuple, plus the values of every
    variable of the pattern that the record already binds (Section 6:
    "grouping records in the driving table by the expressions appearing
    in the pattern").  The key mirrors the pattern's structure (one
    sublist per element) so values from different elements can never
    shift into alignment, and is compared under the total order — the
    same equality the collapsibility quotient uses for property values. *)
let grouping_key config g0 (patterns : pattern list) row : Value.t =
  let ctx = ctx_of config g0 row in
  let of_props kvs =
    Value.List (List.map (fun (_, e) -> Eval.eval ctx e) kvs)
  in
  let of_var = function
    | Some v -> (
        match Record.find_opt row v with
        | Some x -> Value.List [ x ]
        | None -> Value.List [])
    | None -> Value.List []
  in
  Value.List
    (List.map
       (fun (p : pattern) ->
         Value.List
           (of_var p.pat_start.np_var
           :: of_props p.pat_start.np_props
           :: List.concat_map
                (fun ((rp : rel_pat), (np : node_pat)) ->
                  [ of_props rp.rp_props; of_var np.np_var;
                    of_props np.np_props ])
                p.pat_steps))
       patterns)

(* ------------------------------------------------------------------ *)
(* Revised MERGE                                                      *)
(* ------------------------------------------------------------------ *)

type row_outcome =
  | Matched of Record.t list
  | Created of Record.t  (** filled in after instantiation *)

let apply_set_atomic config ~stats g rows columns items =
  if items = [] || rows = [] then g
  else
    let t = Table.make columns rows in
    let g, _ = Set_clause.run_atomic config ~stats (g, t) items in
    g

let run_revised config ~stats (g0, t) ~mode ~patterns ~on_create ~on_match =
  (* 1. split the table against the input graph.  Candidate enumeration
     reads only the immutable [g0] snapshot, so it fans out over the
     domain pool with ordered gather; everything from instantiation on
     mutates the graph and stays strictly sequential. *)
  Graph.ensure_csr g0;
  let outcomes =
    Cypher_util.Pool.map_chunks
      ~parallelism:(Runtime.parallelism_of config)
      (fun row ->
        match Matcher.match_patterns ~mode:(Runtime.match_mode_of config) ~planner:(Runtime.planner_on config) (ctx_of config g0 row) patterns with
        | [] -> `Fail row
        | matches -> `Match matches)
      (Table.rows t)
  in
  (* 2. instantiate for failing records *)
  (* The collapsing modes (Weak Collapse, Collapse, SAME) also
     instantiate once per group: records with equal grouping keys create
     entity-wise identical instances, which their quotients merge
     completely, so grouped instantiation yields the same graph and the
     same remapped bindings as one instance per record — while creating
     (and immediately collapsing) far fewer entities.  MERGE ALL keeps
     one instance per record by definition. *)
  let grouped =
    match mode with
    | Merge_grouping | Merge_weak_collapse | Merge_collapse | Merge_same ->
        true
    | Merge_all | Merge_legacy -> false
  in
  (* group table bucketed by the key's hash; keys compared under the
     total order only within a bucket *)
  let group_cache :
      (int, (Value.t * (Record.t * created)) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let find_group key =
    match Hashtbl.find_opt group_cache (Value.hash_total key) with
    | None -> None
    | Some bucket ->
        Option.map snd
          (List.find_opt
             (fun (k, _) -> Value.compare_total k key = 0)
             !bucket)
  in
  let add_group key v =
    let h = Value.hash_total key in
    match Hashtbl.find_opt group_cache h with
    | None -> Hashtbl.add group_cache h (ref [ (key, v) ])
    | Some bucket -> bucket := (key, v) :: !bucket
  in
  (* instantiation-time validation must still fire for records that
     reuse their group's instance instead of instantiating *)
  let check_reused_row row =
    List.iter
      (fun (p : pattern) ->
        List.iter
          (fun ((rp : rel_pat), _) ->
            match rp.rp_var with
            | Some v when Record.mem row v ->
                Errors.update_error
                  "MERGE: relationship variable `%s` is already bound" v
            | _ -> ())
          p.pat_steps)
      patterns
  in
  let g, outcomes, all_created =
    List.fold_left
      (fun (g, acc, all_created) outcome ->
        match outcome with
        | `Match matches ->
            Stats.merge_matched stats 1;
            (g, Matched matches :: acc, all_created)
        | `Fail row ->
            Stats.merge_created stats 1;
            if grouped then (
              let key = grouping_key config g0 patterns row in
              match find_group key with
              | Some (bindings, _) ->
                  check_reused_row row;
                  (* reuse the group's instance: copy its new bindings *)
                  let row' =
                    List.fold_left
                      (fun row (k, v) ->
                        if Record.mem row k then row else Record.bind row k v)
                      row
                      (Record.bindings bindings)
                  in
                  (g, Created row' :: acc, all_created)
              | None ->
                  let g, row', created =
                    instantiate config ~stats g0 g row patterns
                  in
                  add_group key (row', created);
                  ( g,
                    Created row' :: acc,
                    {
                      c_nodes = created.c_nodes @ all_created.c_nodes;
                      c_rels = created.c_rels @ all_created.c_rels;
                    } ))
            else
              let g, row', created = instantiate config ~stats g0 g row patterns in
              ( g,
                Created row' :: acc,
                {
                  c_nodes = created.c_nodes @ all_created.c_nodes;
                  c_rels = created.c_rels @ all_created.c_rels;
                } ))
      (g0, [], no_created) outcomes
  in
  let outcomes = List.rev outcomes in
  (* 3. quotient according to the chosen proposal *)
  let quotient =
    match mode with
    | Merge_all | Merge_grouping | Merge_legacy -> Quotient.identity_result g
    | Merge_weak_collapse ->
        Quotient.apply g ~new_nodes:all_created.c_nodes
          ~new_rels:all_created.c_rels ~node_pos_matters:true
          ~rel_pos_matters:true
    | Merge_collapse ->
        Quotient.apply g ~new_nodes:all_created.c_nodes
          ~new_rels:all_created.c_rels ~node_pos_matters:false
          ~rel_pos_matters:true
    | Merge_same ->
        Quotient.apply g ~new_nodes:all_created.c_nodes
          ~new_rels:all_created.c_rels ~node_pos_matters:false
          ~rel_pos_matters:false
  in
  let g = quotient.Quotient.graph in
  (* fold the created-entity sets through the quotient so collapsed
     instances count once *)
  (match mode with
  | Merge_all | Merge_grouping | Merge_legacy -> ()
  | Merge_weak_collapse | Merge_collapse | Merge_same ->
      Stats.remap_created stats ~node_map:quotient.Quotient.node_map
        ~rel_map:quotient.Quotient.rel_map);
  (* remap every outcome row through the quotient exactly once; the
     remapped rows feed both the ON MATCH / ON CREATE sub-tables and the
     final result table.  The non-collapsing modes use the identity
     quotient, where the rewrite would be a no-op traversal — skip it. *)
  let outcomes =
    match mode with
    | Merge_all | Merge_grouping | Merge_legacy -> outcomes
    | Merge_weak_collapse | Merge_collapse | Merge_same ->
        let remap row =
          Rewrite.record
            ~node:(fun id -> Some (quotient.Quotient.node_map id))
            ~rel:(fun id -> Some (quotient.Quotient.rel_map id))
            row
        in
        List.map
          (function
            | Matched rows -> Matched (List.map remap rows)
            | Created row -> Created (remap row))
          outcomes
  in
  let matched_rows =
    List.concat_map
      (function Matched rows -> rows | Created _ -> [])
      outcomes
  in
  let created_rows =
    List.filter_map
      (function Created row -> Some row | Matched _ -> None)
      outcomes
  in
  let columns = Table.columns t @ List.concat_map pattern_vars patterns in
  (* 4. ON MATCH / ON CREATE as atomic SETs over the two sub-tables *)
  let g = apply_set_atomic config ~stats g matched_rows columns on_match in
  let g = apply_set_atomic config ~stats g created_rows columns on_create in
  (* 5. result table: Tmatch â Tcreate, in original record order *)
  let rows =
    List.concat_map
      (function Matched rows -> rows | Created row -> [ row ])
      outcomes
  in
  (g, Table.make columns rows)

let run config ~stats (g, t) ~mode ~patterns ~on_create ~on_match =
  match mode with
  | Merge_legacy -> run_legacy config ~stats (g, t) ~patterns ~on_create ~on_match
  | Merge_all | Merge_same | Merge_grouping | Merge_weak_collapse
  | Merge_collapse ->
      run_revised config ~stats (g, t) ~mode ~patterns ~on_create ~on_match
