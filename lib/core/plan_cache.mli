(** A small LRU cache for compiled statements, used by {!Session}.

    Keys are strings (normalized statement text plus a config
    fingerprint); values are whatever the session stores.  Running
    hit / miss / eviction / invalidation counters are kept for the
    observability layer. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

type 'a t

(** [create capacity] makes an empty cache holding at most [capacity]
    entries (clamped at 0; a zero-capacity cache stores nothing). *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] looks the key up, counting a hit (and refreshing the
    entry's recency) or a miss. *)
val find : 'a t -> string -> 'a option

(** [peek t key] is {!find} without touching recency or counters. *)
val peek : 'a t -> string -> 'a option

(** [add t key v] inserts (or replaces) the binding as most recently
    used, evicting the least recently used entry when at capacity. *)
val add : 'a t -> string -> 'a -> unit

(** [invalidate t] drops every entry and counts one invalidation event
    (index registration, config change). *)
val invalidate : 'a t -> unit

val stats : 'a t -> stats
val pp_stats : Format.formatter -> stats -> unit
