(** Semantics of RETURN and WITH: projection, aliasing, aggregation with
    implicit grouping (non-aggregate items are the grouping keys),
    DISTINCT, ORDER BY, SKIP and LIMIT, and the WITH ... WHERE filter. *)

open Cypher_graph
open Cypher_table

(** Output column name of a projection item: the alias, the variable
    name, or the printed expression. *)
val item_name : Cypher_ast.Ast.proj_item -> string

(** The output column name when the projection is a bare [count( * )] —
    single count-star item, no DISTINCT/[*]/ORDER BY/SKIP/LIMIT/WHERE —
    [None] otherwise.  The engine fuses such a projection over a MATCH
    into a counting traversal that materialises no rows. *)
val count_star_alias : Cypher_ast.Ast.projection -> string option

val run :
  Config.t -> Graph.t * Table.t -> Cypher_ast.Ast.projection ->
  Graph.t * Table.t
