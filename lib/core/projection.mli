(** Semantics of RETURN and WITH: projection, aliasing, aggregation with
    implicit grouping (non-aggregate items are the grouping keys),
    DISTINCT, ORDER BY, SKIP and LIMIT, and the WITH ... WHERE filter. *)

open Cypher_graph
open Cypher_table

(** Output column name of a projection item: the alias, the variable
    name, or the printed expression. *)
val item_name : Cypher_ast.Ast.proj_item -> string

val run :
  Config.t -> Graph.t * Table.t -> Cypher_ast.Ast.projection ->
  Graph.t * Table.t
