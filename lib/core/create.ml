(** Semantics of the CREATE clause (Section 8.2).

    For each record of the driving table, the patterns are instantiated:
    node positions whose variable is already bound reuse the bound node
    (and may then carry no labels or properties in the pattern); all
    other node positions and every relationship position create fresh
    entities.  Named variables are bound in the output record; the
    temporary variables introduced by saturation are simply never
    recorded.  CREATE never reads what it writes, so record order cannot
    influence the result and the clause is the same under both regimes. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval

let ctx_of config graph row = Runtime.ctx config graph row

(** Resolves the node position [np]: reuse when bound, create when not.
    Returns the graph, updated row and the node id. *)
let resolve_node config ~stats g row (np : node_pat) =
  let bound =
    match np.np_var with
    | Some v -> Record.find_opt row v
    | None -> None
  in
  match bound with
  | Some (Value.Node id) ->
      if np.np_labels <> [] || np.np_props <> [] then
        Errors.update_error
          "variable `%s` is already bound; it cannot carry labels or \
           properties in CREATE"
          (Option.get np.np_var)
      else if not (Graph.has_node g id) then
        Errors.update_error
          "cannot CREATE using variable `%s`: the node was deleted"
          (Option.get np.np_var)
      else (g, row, id)
  | Some Value.Null ->
      Errors.update_error "cannot CREATE using null-bound variable `%s`"
        (Option.get np.np_var)
  | Some v ->
      Errors.update_error "variable `%s` is bound to %s, not a node"
        (Option.get np.np_var) (Value.to_string v)
  | None ->
      let props = Eval.eval_props (ctx_of config g row) np.np_props in
      let id, g = Graph.create_node ~labels:np.np_labels ~props g in
      Stats.node_created stats id;
      let row =
        match np.np_var with
        | None -> row
        | Some v -> Record.bind row v (Value.Node id)
      in
      (g, row, id)

let create_rel config ~stats g row (rp : rel_pat) ~src ~tgt =
  (match rp.rp_var with
  | Some v when Record.mem row v ->
      Errors.update_error
        "relationship variable `%s` is already bound; relationships are \
         always created afresh"
        v
  | _ -> ());
  let r_type =
    match rp.rp_types with
    | [ t ] -> t
    | _ ->
        Errors.update_error
          "CREATE relationship patterns must carry exactly one type"
  in
  (* Cypher 9 MERGE may present an undirected relationship; creation
     then picks the left-to-right direction. *)
  let src, tgt = match rp.rp_dir with In -> (tgt, src) | Out | Undirected -> (src, tgt) in
  let props = Eval.eval_props (ctx_of config g row) rp.rp_props in
  let id, g = Graph.create_rel ~src ~tgt ~r_type ~props g in
  Stats.rel_created stats id;
  let row =
    match rp.rp_var with
    | None -> row
    | Some v -> Record.bind row v (Value.Rel id)
  in
  (g, row, id)

(** Instantiates one pattern for one record. *)
let create_pattern config ~stats g row (p : pattern) =
  let g, row, start_id = resolve_node config ~stats g row p.pat_start in
  let g, row, nodes_rev, rels_rev =
    List.fold_left
      (fun (g, row, nodes_rev, rels_rev) (rp, np) ->
        let prev = match nodes_rev with n :: _ -> n | [] -> assert false in
        let g, row, next_id = resolve_node config ~stats g row np in
        let g, row, rel_id =
          create_rel config ~stats g row rp ~src:prev ~tgt:next_id
        in
        (g, row, next_id :: nodes_rev, rel_id :: rels_rev))
      (g, row, [ start_id ], [])
      p.pat_steps
  in
  let row =
    match p.pat_var with
    | None -> row
    | Some v ->
        Record.bind row v
          (Value.Path
             {
               Value.path_nodes = List.rev nodes_rev;
               path_rels = List.rev rels_rev;
             })
  in
  (g, row)

let create_row config ~stats g row patterns =
  List.fold_left
    (fun (g, row) p -> create_pattern config ~stats g row p)
    (g, row) patterns

(** [run config ~stats (g, t) patterns] is [[CREATE π]](G, T). *)
let run config ~stats (g, t) (patterns : pattern list) =
  let g, rows_rev =
    List.fold_left
      (fun (g, acc) row ->
        let g, row = create_row config ~stats g row patterns in
        (g, row :: acc))
      (g, []) (Table.rows t)
  in
  let new_columns =
    Table.columns t @ List.concat_map pattern_vars patterns
  in
  (g, Table.make new_columns (List.rev rows_rev))
