(** Semantics of MERGE — legacy and all five proposed replacements.

    Legacy (Cypher 9, Section 4.3): records are processed one at a time;
    each record first tries to match the pattern in the *current* graph
    (including what earlier records created) and creates an instance on
    failure.  Reading its own writes makes the clause order-dependent
    and hence nondeterministic (Example 3 / Figure 6).

    Revised (Sections 6–8): the driving table is split against the
    *input* graph into Tmatch (records with at least one embedding,
    extended with every embedding, as in MATCH) and Tfail; instances are
    created for Tfail; the result table is Tmatch ⊎ Tcreate.

    - [Merge_all] (Atomic): one fresh instance per failing record.
    - [Merge_grouping]: one instance per group of failing records with
      equal values for every expression appearing in the pattern.
    - [Merge_weak_collapse]: ALL + the quotient with both position
      restrictions.
    - [Merge_collapse]: quotient with cross-position node collapsing.
    - [Merge_same] (Strong Collapse): quotient with cross-position node
      and relationship collapsing (Definitions 1 and 2 verbatim).

    ON CREATE SET / ON MATCH SET run per matched/created row (legacy) or
    as one atomic SET over the created/matched sub-table (revised), with
    conflict detection after the quotient. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast

(** [run config (g, t) ~mode ~patterns ~on_create ~on_match] executes
    one MERGE clause under the semantics selected by [mode]. *)
val run :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t ->
  mode:merge_mode ->
  patterns:pattern list ->
  on_create:set_item list ->
  on_match:set_item list ->
  Graph.t * Table.t
