(** A small LRU cache for compiled statements, used by {!Session}.

    Keys are strings (normalized statement text plus a config
    fingerprint — see [Session.compile]); values are whatever the
    session stores (compiled {!Api.prepared} statements).  Recency is
    tracked with a monotonic tick per entry; eviction scans for the
    minimum tick, which is O(capacity) but only runs on insertion over a
    full cache — capacities are small (default 128) and the scan is
    orders of magnitude cheaper than the parse/plan work a hit saves.

    The cache keeps running counters (hits / misses / evictions /
    invalidations) surfaced through the observability layer. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

type 'a entry = { value : 'a; mutable tick : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create capacity =
  {
    capacity = max 0 capacity;
    tbl = Hashtbl.create (min 64 (max 1 capacity));
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(** [find t key] looks the key up, counting a hit (and refreshing the
    entry's recency) or a miss. *)
let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      e.tick <- tick t;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(** [peek t key] is {!find} without touching recency or counters. *)
let peek t key =
  Option.map (fun e -> e.value) (Hashtbl.find_opt t.tbl key)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.tick -> acc
        | _ -> Some (key, e.tick))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

(** [add t key v] inserts (or replaces) the binding as most recently
    used, evicting the least recently used entry if the cache is at
    capacity.  A zero-capacity cache stores nothing. *)
let add t key v =
  if t.capacity > 0 then begin
    if
      (not (Hashtbl.mem t.tbl key))
      && Hashtbl.length t.tbl >= t.capacity
    then evict_lru t;
    Hashtbl.replace t.tbl key { value = v; tick = tick t }
  end

(** [invalidate t] drops every entry and counts one invalidation event
    (index registration, config change). *)
let invalidate t =
  if Hashtbl.length t.tbl > 0 then Hashtbl.reset t.tbl;
  t.invalidations <- t.invalidations + 1

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d invalidations=%d" s.hits
    s.misses s.evictions s.invalidations
