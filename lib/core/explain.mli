(** EXPLAIN / PROFILE plan rendering: per top-level clause, the
    traversal order the planner picks ({!Cypher_matcher.Plan.describe})
    or the reason enumeration stays naive.  See explain.ml for the
    boundness-probing approximation. *)

open Cypher_graph

(** [render ?profiled config g q] renders the execution plan of [q]
    against the statistics of [g].  [profiled] only adjusts the header's
    note on timing exactness (serial = exact, parallel = overlapping). *)
val render :
  ?profiled:bool -> Config.t -> Graph.t -> Cypher_ast.Ast.query -> string
