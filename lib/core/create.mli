(** Semantics of the CREATE clause (Section 8.2).

    For each record of the driving table, the patterns are instantiated:
    node positions whose variable is already bound reuse the bound node
    (and may then carry no labels or properties in the pattern); all
    other node positions and every relationship position create fresh
    entities.  CREATE never reads what it writes, so record order cannot
    influence the result and the clause behaves identically under both
    regimes. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast

(** [create_row config g row patterns] instantiates the pattern tuple
    once, for a single record; used by legacy MERGE's create branch. *)
val create_row :
  Config.t ->
  stats:Stats.collector ->
  Graph.t -> Record.t -> pattern list -> Graph.t * Record.t

(** [run config (g, t) patterns] is [[CREATE π]](G, T). *)
val run :
  Config.t ->
  stats:Stats.collector ->
  Graph.t * Table.t -> pattern list -> Graph.t * Table.t
