(** The collapsibility quotient of Section 8.2.

    Given the output of MERGE ALL, nodes created by the clause are
    *collapsible* (Definition 1) when they carry the same label set and
    the same property map — pre-existing nodes only collapse with
    themselves (condition iii).  Relationships created by the clause are
    collapsible (Definition 2) when they have the same type and
    properties and their endpoints are collapsible.  The quotient graph
    keeps one representative per equivalence class and remaps
    relationship endpoints and driving-table references.

    The position flags implement the weaker proposals of Section 6:
    when [node_pos_matters] is true, only nodes created for the *same
    position* of the input pattern may collapse (Weak Collapse);
    likewise [rel_pos_matters] for relationships (Weak Collapse and
    Collapse).  MERGE SAME (Strong Collapse) sets both to false. *)

open Cypher_graph

(** Position of a created entity inside the MERGE pattern tuple:
    (pattern index, element index within that pattern). *)
type position = int * int

type result = {
  graph : Graph.t;
  node_map : int -> int;  (** entity id → class representative *)
  rel_map : int -> int;
}

(** The identity quotient (used by MERGE ALL and Grouping). *)
val identity_result : Graph.t -> result

(** [apply g ~new_nodes ~new_rels ~node_pos_matters ~rel_pos_matters]
    quotients [g] by collapsibility of the listed created entities. *)
val apply :
  Graph.t ->
  new_nodes:(int * position) list ->
  new_rels:(int * position) list ->
  node_pos_matters:bool ->
  rel_pos_matters:bool ->
  result
