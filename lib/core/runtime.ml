(** Construction of evaluation contexts by the engine.

    Centralises two pieces of plumbing every clause needs: the query
    parameters, and the *pattern oracle* — the callback that lets the
    evaluator decide pattern predicates such as [exists((a)-[:T]->(b))]
    without depending on the matcher (the matcher sits above the
    evaluator in the library stack, so the dependency is inverted by
    injection here). *)

open Cypher_graph
open Cypher_table
module Ctx = Cypher_eval.Ctx
module Matcher = Cypher_matcher.Matcher

let match_mode_of config =
  match config.Config.match_mode with
  | Config.Isomorphic -> Matcher.Iso
  | Config.Homomorphic -> Matcher.Homo

let planner_on config =
  match config.Config.planner with Config.On -> true | Config.Off -> false

let parallelism_of config = config.Config.parallelism
let rows_of config = config.Config.rows

(** [ctx config graph row] is the evaluation context for one record,
    with parameters and the pattern oracle installed. *)
let ctx (config : Config.t) (graph : Graph.t) (row : Record.t) : Ctx.t =
  let pattern_oracle c patterns =
    Matcher.match_patterns ~mode:(match_mode_of config)
      ~planner:(planner_on config) c patterns
  in
  let shortest_oracle c ~all p = Matcher.shortest_paths c ~all p in
  Ctx.make ~params:config.Config.params ~pattern_oracle ~shortest_oracle graph
    row
