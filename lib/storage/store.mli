(** A database on disk: a directory holding a snapshot ([snapshot.cy])
    and a statement journal ([journal.wal]), wired to a {!Session} whose
    journal sink write-aheads every graph-changing statement.  See
    {!Recovery} for the crash model. *)

open Cypher_core

type t

(** [open_db ?config dir] opens (creating if needed) the database at
    [dir], recovers its graph — truncating a crash-torn journal tail
    after recording it in {!recovery} — and returns the store paired
    with a session wired for write-ahead journaling.  [config] (default
    {!Config.revised}) sets the session semantics and journal
    durability. *)
val open_db : ?config:Config.t -> string -> (t * Session.t, string) result

(** What {!open_db} found: recovered statement count, torn-tail report,
    whether a snapshot was loaded. *)
val recovery : t -> Recovery.t

val dir : t -> string

(** [append_entries t entries] journals [entries] as one WAL frame
    batch — a single [write] + (under [Fsync]) a single fsync, whatever
    the batch size.  The server's group committer batches the entries
    of several concurrently committing transactions into one call.
    No-op on [[]]; raises [Errors.Error] when the store is closed. *)
val append_entries : t -> Session.journal_entry list -> unit

(** Journal writer counters ([None] once the store is closed):
    [records / fsyncs] is the achieved group-commit amortization. *)
val wal_stats : t -> Wal.writer_stats option

(** [compact t session] folds the journal into a fresh snapshot of the
    session's current graph and empties the journal.  Refused inside a
    transaction. *)
val compact : t -> Session.t -> (unit, string) result

(** [close t] closes the journal.  The session keeps working in memory,
    but further update statements fail their journal append — detach
    the sink ([Session.set_journal session None]) to keep using it
    non-durably. *)
val close : t -> unit
