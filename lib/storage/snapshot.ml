(** Snapshot files: a checksummed, versioned image of a graph.

    A snapshot is the [Dump.to_cypher] script of the graph — a single
    CREATE statement rebuilding it up to entity ids — prefixed by the
    registered property indexes and a header with entity counts and a
    CRC-32 of the body:

    {v
    #cypher-snapshot v1 nodes=<n> rels=<m> crc=<crc32-hex>\n
    // index: <label> <key>\n        (zero or more)
    CREATE ...;\n
    v}

    Loading re-registers the indexes on the empty graph and executes the
    script through the ordinary [Api]; because the dump emits entities
    in id order, the rebuilt graph is isomorphic to the original under a
    monotone id mapping, which keeps journal replay on top of it
    deterministic (see DESIGN.md).  Files are written to a temporary
    sibling and renamed into place, so a crash mid-snapshot leaves the
    previous snapshot intact. *)

open Cypher_core
open Cypher_graph

let version_tag = "#cypher-snapshot v1"

(* Replay is semantics-independent — the body is a single CREATE — so
   any dialect that parses it will do; [permissive] accepts every dump
   the engine can emit.  Counters and parallel fan-out are pure
   overhead here. *)
let replay_config =
  Config.with_stats false (Config.with_parallelism 0 Config.permissive)

let index_line (label, key) = Printf.sprintf "// index: %s %s" label key

let parse_index_line line =
  match String.split_on_char ' ' line with
  | [ "//"; "index:"; label; key ] -> Some (label, key)
  | _ -> None

(** [to_string g] renders the snapshot image of [g].
    @raise Invalid_argument on a graph with dangling relationships
    (see {!Dump.to_cypher}). *)
let to_string (g : Graph.t) : string =
  let body =
    String.concat ""
      (List.map (fun ik -> index_line ik ^ "\n") (Graph.prop_index_keys g))
    ^ Dump.to_cypher g
  in
  Printf.sprintf "%s nodes=%d rels=%d crc=%s\n%s" version_tag
    (List.length (Graph.nodes g))
    (List.length (Graph.rels g))
    (Crc32.to_hex (Crc32.digest body))
    body

(** [parse s] validates and executes a snapshot image, returning the
    rebuilt graph.  Never raises: version/checksum/count mismatches and
    script failures all come back as [Error]. *)
let parse (s : string) : (Graph.t, string) result =
  let header, body =
    match String.index_opt s '\n' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  let field name =
    let p = " " ^ name ^ "=" in
    List.find_map
      (fun part ->
        let part = " " ^ part in
        let pl = String.length p in
        if String.length part >= pl && String.sub part 0 pl = p then
          Some (String.sub part pl (String.length part - pl))
        else None)
      (String.split_on_char ' ' header)
  in
  if
    String.length header < String.length version_tag
    || String.sub header 0 (String.length version_tag) <> version_tag
  then Error "snapshot: unrecognised header (not a snapshot file?)"
  else
    match (field "nodes", field "rels", field "crc") with
    | Some nodes_s, Some rels_s, Some crc_s -> (
        if Crc32.to_hex (Crc32.digest body) <> crc_s then
          Error "snapshot: body checksum mismatch"
        else
          let lines = String.split_on_char '\n' body in
          let indexes = List.filter_map parse_index_line lines in
          let script =
            String.concat "\n"
              (List.filter (fun l -> parse_index_line l = None) lines)
          in
          let g0 =
            List.fold_left
              (fun g (label, key) -> Graph.add_prop_index ~label ~key g)
              Graph.empty indexes
          in
          let run () =
            if String.trim script = "" then Ok (g0, [])
            else Api.run_program ~config:replay_config g0 script
          in
          match run () with
          | Error e -> Error ("snapshot: script failed: " ^ Errors.to_string e)
          | Ok (g, _) ->
              let n = List.length (Graph.nodes g)
              and m = List.length (Graph.rels g) in
              if
                Some n <> int_of_string_opt nodes_s
                || Some m <> int_of_string_opt rels_s
              then
                Error
                  (Printf.sprintf
                     "snapshot: rebuilt %d nodes / %d rels, header declares \
                      %s / %s"
                     n m nodes_s rels_s)
              else Ok g)
    | _ -> Error "snapshot: malformed header fields"

(* ------------------------------------------------------------------ *)
(* Files                                                              *)
(* ------------------------------------------------------------------ *)

let fsync_dir dir =
  (* best effort: some filesystems refuse fsync on a directory fd *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(** [write path g] writes the snapshot image of [g] to [path]
    atomically: temporary sibling, fsync, rename into place. *)
let write (path : string) (g : Graph.t) : unit =
  let content = to_string g in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length content in
      let rec go off =
        if off < len then
          go (off + Unix.write_substring fd content off (len - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(** [read path] loads a snapshot file; a missing file is [Ok None]. *)
let read (path : string) : (Graph.t option, string) result =
  if not (Sys.file_exists path) then Ok None
  else
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse content with Ok g -> Ok (Some g) | Error e -> Error e
