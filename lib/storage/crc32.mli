(** CRC-32 (IEEE 802.3, reflected): the frame checksum of the journal
    and the snapshot header.  Detects all burst errors up to 32 bits —
    in particular any single corrupted byte. *)

(** [digest s] is the CRC-32 of all of [s]. *)
val digest : string -> int

(** Zero-padded lowercase hex, 8 digits. *)
val to_hex : int -> string
