(** Crash recovery: snapshot load + journal replay.

    Recovery rebuilds the last durable state of a database: load the
    snapshot (if any), then re-execute every journal record on top of
    it, each under the semantics recorded in the record.  Torn or
    corrupt trailing journal records — the only damage an append-only
    journal can suffer from a crash — are detected by the frame CRC,
    reported precisely (byte offset, reason, bytes dropped) and
    excluded from replay; everything before the tear is recovered.

    Replay is checked, not trusted: each record carries the update
    counters of its original execution, and replay re-derives them.  A
    mismatch means re-execution diverged from the original run — an
    engine-determinism bug, not a storage problem — and recovery fails
    loudly rather than silently reconstructing a different graph.  (Why
    replay is deterministic at all: the snapshot emits entities in id
    order, so the reloaded graph's ids are a monotone remapping of the
    originals, and the engine enumerates in id order — see DESIGN.md.) *)

open Cypher_core
open Cypher_graph

(** The outcome of a successful recovery. *)
type t = {
  graph : Graph.t;  (** the recovered graph *)
  replayed : int;  (** journal records re-executed *)
  snapshot_loaded : bool;
  clean_len : int;  (** byte length of the journal's valid prefix *)
  torn : Wal.torn option;
      (** damage found at the journal tail, if any; the bytes from
          [t_offset] on were not replayed *)
  dropped : int;  (** journal bytes discarded after the tear *)
}

(* Each record replays under the semantics it was originally executed
   with — including its recorded parameter bindings, so parameterized
   statements re-execute with exactly the values they originally saw.
   The dialect is permissive because validation already happened at
   original execution time, and stricter dialects must not reject a
   statement the journal proves was accepted.  Counters are forced on —
   they are the replay checksum. *)
let config_of_record (r : Wal.record) : Config.t =
  {
    Config.permissive with
    mode = r.Wal.mode;
    order = r.Wal.order;
    match_mode = r.Wal.match_mode;
    parallelism = 0;
    collect_stats = true;
    params = r.Wal.params;
  }

(** [replay base records] re-executes [records] in order on top of
    [base], verifying each record's counter checksum.  [Error] on a
    statement failure or a checksum mismatch (both mean replay diverged
    from the original execution). *)
let replay (base : Graph.t) (records : Wal.record list) :
    (Graph.t, string) result =
  (* one id map across the whole replay: bulk frames resolve
     relationship endpoints by raw CSV id, and a load's relationship
     batches follow its node batches as separate records *)
  let bulk_ids = Bulk.create_idmap () in
  let check i (recorded : Stats.t) (replayed : Stats.t) k =
    if not (Stats.equal replayed recorded) then
      Error
        (Printf.sprintf
           "replay: record %d diverged: journal says %S, replay produced %S" i
           (Stats.footer recorded) (Stats.footer replayed))
    else k ()
  in
  let rec go g i = function
    | [] -> Ok g
    | (r : Wal.record) :: rest -> (
        match r.Wal.kind with
        | `Bulk -> (
            match Bulk.apply_frame ~ids:bulk_ids g r.Wal.src with
            | Error m ->
                Error (Printf.sprintf "replay: bulk record %d failed: %s" i m)
            | Ok (g', stats) ->
                check i r.Wal.stats stats (fun () -> go g' (i + 1) rest))
        | `Statement -> (
            match
              Api.run_string_full ~config:(config_of_record r) g r.Wal.src
            with
            | Error e ->
                Error
                  (Printf.sprintf "replay: record %d failed: %s" i
                     (Errors.to_string e))
            | Ok res ->
                check i r.Wal.stats res.Api.r_stats (fun () ->
                    go res.Api.r_graph (i + 1) rest)))
  in
  go base 0 records

let build ~snapshot ~(wal : Wal.record list * int * Wal.torn option)
    ~(total_len : int) : (t, string) result =
  let records, clean_len, torn = wal in
  let base, snapshot_loaded =
    match snapshot with Some g -> (g, true) | None -> (Graph.empty, false)
  in
  match replay base records with
  | Error e -> Error e
  | Ok graph ->
      Ok
        {
          graph;
          replayed = List.length records;
          snapshot_loaded;
          clean_len;
          torn;
          dropped = total_len - clean_len;
        }

(** [recover_strings ?snapshot ~wal ()] is recovery over in-memory
    images: [snapshot] is a snapshot file image (as produced by
    {!Snapshot.to_string}), [wal] the raw journal bytes.  This is the
    fault-injection surface of fuzz oracle 7 — byte-level damage is
    applied to these strings directly, no filesystem involved. *)
let recover_strings ?snapshot ~(wal : string) () : (t, string) result =
  let snapshot_graph =
    match snapshot with
    | None -> Ok None
    | Some s -> (
        match Snapshot.parse s with Ok g -> Ok (Some g) | Error e -> Error e)
  in
  match snapshot_graph with
  | Error e -> Error e
  | Ok snapshot ->
      build ~snapshot ~wal:(Wal.scan_string wal)
        ~total_len:(String.length wal)

(** [recover_files ~snapshot_path ~wal_path] is recovery from disk;
    missing files mean an empty snapshot / journal (a fresh database
    recovers to the empty graph). *)
let recover_files ~snapshot_path ~wal_path : (t, string) result =
  match Snapshot.read snapshot_path with
  | Error e -> Error e
  | Ok snapshot ->
      let total_len =
        if Sys.file_exists wal_path then (Unix.stat wal_path).Unix.st_size
        else 0
      in
      build ~snapshot ~wal:(Wal.read_file wal_path) ~total_len

(** One-line human summary, e.g.
    ["recovered 12 statements on top of snapshot (dropped 17-byte torn
    tail: truncated payload @ 1043)"]. *)
let describe (r : t) : string =
  let base = if r.snapshot_loaded then " on top of snapshot" else "" in
  let tail =
    match r.torn with
    | None -> ""
    | Some t ->
        Printf.sprintf " (dropped %d-byte torn tail: %s @ %d)" r.dropped
          t.Wal.t_reason t.Wal.t_offset
  in
  Printf.sprintf "recovered %d statement%s%s%s" r.replayed
    (if r.replayed = 1 then "" else "s")
    base tail
