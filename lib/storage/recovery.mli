(** Crash recovery: snapshot load + checked journal replay.  Torn or
    corrupt journal tails are detected by the frame CRC, reported
    precisely, and excluded; each replayed record's update counters must
    match the journaled ones (replay is checked, not trusted). *)

open Cypher_core
open Cypher_graph

(** The outcome of a successful recovery. *)
type t = {
  graph : Graph.t;  (** the recovered graph *)
  replayed : int;  (** journal records re-executed *)
  snapshot_loaded : bool;
  clean_len : int;  (** byte length of the journal's valid prefix *)
  torn : Wal.torn option;
      (** damage found at the journal tail, if any; the bytes from
          [t_offset] on were not replayed *)
  dropped : int;  (** journal bytes discarded after the tear *)
}

(** The configuration a journal record replays under: the semantics
    recorded in the record, permissive dialect, counters forced on. *)
val config_of_record : Wal.record -> Config.t

(** [replay base records] re-executes [records] in order on top of
    [base], verifying each record's counter checksum.  [Error] on a
    statement failure or checksum mismatch (replay diverged from the
    original execution). *)
val replay : Graph.t -> Wal.record list -> (Graph.t, string) result

(** [recover_strings ?snapshot ~wal ()] is recovery over in-memory
    images (the fault-injection surface of fuzz oracle 7): [snapshot]
    a {!Snapshot.to_string} image, [wal] raw journal bytes. *)
val recover_strings : ?snapshot:string -> wal:string -> unit -> (t, string) result

(** [recover_files ~snapshot_path ~wal_path] is recovery from disk;
    missing files mean an empty snapshot / journal. *)
val recover_files :
  snapshot_path:string -> wal_path:string -> (t, string) result

(** One-line human summary of a recovery. *)
val describe : t -> string
