(** The write-ahead statement journal.

    The journal is an append-only text file of framed records, one per
    successfully applied graph-changing statement.  Each record stores
    the statement's *source text* — replaying the journal means
    re-executing the statements through the ordinary [Api] — together
    with the semantics it ran under (mode / order / match mode, because
    a shell session can switch semantics mid-stream) and the statement's
    update counters as a semantic checksum: recovery re-derives the
    counters and any disagreement means replay diverged from the
    original execution.

    Frame format (all text, so a journal is greppable and debuggable
    with standard tools):

    {v
    %<payload-bytes> <crc32-hex>\n
    <payload>\n
    v}

    where the payload is one metadata line followed by the statement
    source:

    {v
    m=<legacy|atomic> o=<fwd|rev|seed:N> x=<iso|homo> s=<11 counters> [p=<params>] [k=b]\n
    <statement text, possibly multi-line>
    v}

    The optional [p=] field carries the statement's bound parameter
    values — a percent-encoded Cypher map literal (['%'], [' '], CR and
    LF escaped as [%XX], keeping the metadata line single-line and
    space-splittable) — so replay reproduces a parameterized execution
    exactly.  It is omitted when no parameters were bound, which also
    keeps the frame byte-identical to the pre-parameter format;
    {!decode_meta} accepts both.  Parameters must be storable values
    (graph entities cannot outlive the statement): journaling a
    statement whose bindings contain a node, relationship or path
    fails the statement rather than writing an unreplayable record.

    The CRC-32 covers the payload bytes exactly.  A crash can only
    damage the journal's tail (the file is append-only and records are
    written with a single [write]); {!scan_string} accepts the longest
    valid prefix of whole records and reports the first damaged byte
    offset, which recovery uses to truncate the tail away.  The CRC
    catches every single-byte corruption, so a damaged record is never
    silently replayed. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_core

type record = {
  src : string;  (** statement source text *)
  stats : Stats.t;  (** update counters recorded at original execution *)
  mode : Config.mode;
  order : Config.order;
  match_mode : Config.match_mode;
  params : Value.t Smap.t;
      (** parameter bindings the statement ran under (empty when none) *)
  kind : Session.journal_kind;
      (** how [src] replays: Cypher source re-executed through the
          [Api], or a bulk-load frame applied by [Bulk.apply_frame] *)
}

(** Where and why a scan stopped before the end of the input. *)
type torn = {
  t_offset : int;  (** byte offset of the first unusable record *)
  t_reason : string;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let encode_stats (s : Stats.t) =
  String.concat ","
    (List.map string_of_int
       [
         s.Stats.nodes_created;
         s.Stats.nodes_deleted;
         s.Stats.rels_created;
         s.Stats.rels_deleted;
         s.Stats.props_set;
         s.Stats.props_removed;
         s.Stats.labels_added;
         s.Stats.labels_removed;
         s.Stats.merge_matched;
         s.Stats.merge_created;
         s.Stats.rows;
       ])

let decode_stats s : Stats.t option =
  match List.filter_map int_of_string_opt (String.split_on_char ',' s) with
  | [ nc; nd; rc; rd; ps; pr; la; lr; mm; mc; rows ] ->
      Some
        {
          Stats.nodes_created = nc;
          nodes_deleted = nd;
          rels_created = rc;
          rels_deleted = rd;
          props_set = ps;
          props_removed = pr;
          labels_added = la;
          labels_removed = lr;
          merge_matched = mm;
          merge_created = mc;
          rows;
        }
  | _ -> None

let encode_mode = function Config.Legacy -> "legacy" | Config.Atomic -> "atomic"

let decode_mode = function
  | "legacy" -> Some Config.Legacy
  | "atomic" -> Some Config.Atomic
  | _ -> None

let encode_order = function
  | Config.Forward -> "fwd"
  | Config.Reverse -> "rev"
  | Config.Seeded n -> "seed:" ^ string_of_int n

let decode_order s =
  match s with
  | "fwd" -> Some Config.Forward
  | "rev" -> Some Config.Reverse
  | _ -> (
      match String.index_opt s ':' with
      | Some 4 when String.sub s 0 4 = "seed" -> (
          match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
          | Some n -> Some (Config.Seeded n)
          | None -> None)
      | _ -> None)

let encode_match = function
  | Config.Isomorphic -> "iso"
  | Config.Homomorphic -> "homo"

let decode_match = function
  | "iso" -> Some Config.Isomorphic
  | "homo" -> Some Config.Homomorphic
  | _ -> None

(* Percent-encoding for the [p=] field: the metadata line is split on
   spaces and terminated by a newline, so those bytes (and '%' itself,
   plus CR for symmetry) must not appear in the encoded value. *)
let pct_encode s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' | ' ' | '\n' | '\r' ->
          Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pct_decode s : string option =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            go (i + 3)
        | _ -> None
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

(* Parameter bindings travel as a percent-encoded Cypher map literal:
   [Dump.value_literal] renders every storable value as an expression
   that evaluates back to exactly itself, and decoding re-parses and
   re-evaluates it with the ordinary parser and evaluator — no second
   serialization format to keep in sync.  Entity values (nodes,
   relationships, paths) make [value_literal] raise, which surfaces as
   a journal-append failure for the offending statement. *)
let encode_params (params : Value.t Smap.t) : string =
  pct_encode (Dump.value_literal (Value.Map params))

let decode_params s : Value.t Smap.t option =
  match pct_decode s with
  | None -> None
  | Some txt -> (
      match Cypher_parser.Parser.parse_expr_string txt with
      | Error _ -> None
      | Ok e -> (
          try
            match
              Cypher_eval.Eval.eval
                (Cypher_eval.Ctx.make Graph.empty Cypher_table.Record.empty)
                e
            with
            | Value.Map m -> Some m
            | _ -> None
          with _ -> None))

let encode_meta r =
  let base =
    Printf.sprintf "m=%s o=%s x=%s s=%s" (encode_mode r.mode)
      (encode_order r.order)
      (encode_match r.match_mode)
      (encode_stats r.stats)
  in
  let base =
    if Smap.is_empty r.params then base
    else base ^ " p=" ^ encode_params r.params
  in
  match r.kind with `Statement -> base | `Bulk -> base ^ " k=b"

let decode_meta line src : record option =
  let field prefix s =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  (* the four positional fields are mandatory; trailing options ([p=]
     parameters, [k=] record kind) appear in any order and default to
     "no parameters" / "statement", so pre-parameter and pre-bulk
     journals still decode *)
  match String.split_on_char ' ' line with
  | m :: o :: x :: s :: opts -> (
      let rec scan params kind = function
        | [] -> Some (params, kind)
        | opt :: rest -> (
            match field "p=" opt with
            | Some p -> (
                match decode_params p with
                | Some params -> scan params kind rest
                | None -> None)
            | None -> (
                match field "k=" opt with
                | Some "b" -> scan params `Bulk rest
                | Some _ | None -> None))
      in
      match
        ( Option.bind (field "m=" m) decode_mode,
          Option.bind (field "o=" o) decode_order,
          Option.bind (field "x=" x) decode_match,
          Option.bind (field "s=" s) decode_stats,
          scan Smap.empty `Statement opts )
      with
      | Some mode, Some order, Some match_mode, Some stats, Some (params, kind)
        ->
          Some { src; stats; mode; order; match_mode; params; kind }
      | _ -> None)
  | _ -> None

(** [encode r] is the full frame for [r], header through trailing
    newline. *)
let encode (r : record) : string =
  let payload = encode_meta r ^ "\n" ^ r.src in
  Printf.sprintf "%%%d %s\n%s\n" (String.length payload)
    (Crc32.to_hex (Crc32.digest payload))
    payload

(* ------------------------------------------------------------------ *)
(* Scanning                                                           *)
(* ------------------------------------------------------------------ *)

(** [scan_string s] parses records from the front of [s].  Returns
    [(records, clean_len, torn)]: the records of the longest valid
    prefix, the byte length of that prefix, and — unless the prefix is
    all of [s] — where and why the scan stopped.  Never raises. *)
let scan_string (s : string) : record list * int * torn option =
  let len = String.length s in
  let torn at reason = Some { t_offset = at; t_reason = reason } in
  let rec loop acc p =
    if p >= len then (List.rev acc, p, None)
    else if s.[p] <> '%' then (List.rev acc, p, torn p "bad frame marker")
    else
      match String.index_from_opt s p '\n' with
      | None -> (List.rev acc, p, torn p "truncated frame header")
      | Some nl -> (
          let header = String.sub s (p + 1) (nl - p - 1) in
          match String.split_on_char ' ' header with
          | [ len_s; crc_s ]
            when String.length crc_s = 8
                 && len_s <> ""
                 && String.for_all (function '0' .. '9' -> true | _ -> false) len_s
            -> (
              match int_of_string_opt len_s with
              | None -> (List.rev acc, p, torn p "malformed frame header")
              | Some plen ->
                  let payload_start = nl + 1 in
                  if payload_start + plen + 1 > len then
                    (List.rev acc, p, torn p "truncated payload")
                  else if s.[payload_start + plen] <> '\n' then
                    (List.rev acc, p, torn p "missing record terminator")
                  else
                    let payload = String.sub s payload_start plen in
                    if Crc32.to_hex (Crc32.digest payload) <> crc_s then
                      (List.rev acc, p, torn p "checksum mismatch")
                    else
                      let meta, src =
                        match String.index_opt payload '\n' with
                        | Some i ->
                            ( String.sub payload 0 i,
                              String.sub payload (i + 1)
                                (String.length payload - i - 1) )
                        | None -> (payload, "")
                      in
                      (match decode_meta meta src with
                      | Some r -> loop (r :: acc) (payload_start + plen + 1)
                      | None ->
                          (List.rev acc, p, torn p "malformed record metadata")))
          | _ -> (List.rev acc, p, torn p "malformed frame header"))
  in
  loop [] 0

(* ------------------------------------------------------------------ *)
(* Files                                                              *)
(* ------------------------------------------------------------------ *)

(** [read_file path] scans the whole journal file; a missing file is an
    empty journal. *)
let read_file path : record list * int * torn option =
  if not (Sys.file_exists path) then ([], 0, None)
  else
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    scan_string content

(** [truncate_file path n] cuts the journal back to its first [n] bytes
    (dropping a torn tail). *)
let truncate_file path n = if Sys.file_exists path then Unix.truncate path n

(** Writer-side counters: how many {!append} calls ran, how many
    records they carried, and how many fsyncs they cost.  The ratio
    [records / fsyncs] is the group-commit amortization factor the
    server's bench reports. *)
type writer_stats = { appends : int; records : int; fsyncs : int }

type writer = {
  fd : Unix.file_descr;
  durability : Config.durability;
  mutable closed : bool;
  mutable appends : int;
  mutable records : int;
  mutable fsyncs : int;
}

(** [open_writer ~durability path] opens [path] for appending, creating
    it if needed. *)
let open_writer ?(durability = Config.Fsync) path : writer =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  { fd; durability; closed = false; appends = 0; records = 0; fsyncs = 0 }

let writer_stats (w : writer) : writer_stats =
  { appends = w.appends; records = w.records; fsyncs = w.fsyncs }

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

(** [append w records] writes all [records] as one [write] (a crash can
    only tear the tail, never interleave), then — under [Fsync]
    durability — forces them to stable storage before returning. *)
let append (w : writer) (records : record list) : unit =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  write_all w.fd (String.concat "" (List.map encode records));
  w.appends <- w.appends + 1;
  w.records <- w.records + List.length records;
  match w.durability with
  | Config.Fsync ->
      Unix.fsync w.fd;
      w.fsyncs <- w.fsyncs + 1
  | Config.Buffered -> ()

let close_writer (w : writer) =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

(* ------------------------------------------------------------------ *)
(* Bridges                                                            *)
(* ------------------------------------------------------------------ *)

(** A journal record for a session journal entry. *)
let record_of_entry (e : Session.journal_entry) : record =
  {
    src = e.Session.je_src;
    stats = e.Session.je_stats;
    mode = e.Session.je_config.Config.mode;
    order = e.Session.je_config.Config.order;
    match_mode = e.Session.je_config.Config.match_mode;
    params = e.Session.je_config.Config.params;
    kind = e.Session.je_kind;
  }
