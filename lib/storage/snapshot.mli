(** Snapshot files: a checksummed, versioned image of a graph, built on
    {!Dump.to_cypher}.  Header line (version, entity counts, body
    CRC-32), then the registered property indexes, then a single CREATE
    statement rebuilding the graph.  Written atomically (temporary
    sibling + rename), loaded by re-executing the script through the
    ordinary [Api]. *)

open Cypher_graph

(** [to_string g] renders the snapshot image of [g].
    @raise Invalid_argument on a graph with dangling relationships
    (see {!Dump.to_cypher}). *)
val to_string : Graph.t -> string

(** [parse s] validates and executes a snapshot image, returning the
    rebuilt graph (isomorphic to the dumped one).  Never raises:
    version/checksum/count mismatches and script failures all come back
    as [Error]. *)
val parse : string -> (Graph.t, string) result

(** [write path g] writes the snapshot image of [g] to [path]
    atomically: temporary sibling, fsync, rename into place. *)
val write : string -> Graph.t -> unit

(** [read path] loads a snapshot file; a missing file is [Ok None]. *)
val read : string -> (Graph.t option, string) result
