(** Streaming bulk loader: two CSV files (nodes, relationships) →
    graph, validated in full before anything is applied, journaled as
    one {!Wal} frame per batch instead of one per statement.

    Node CSV: required [id] column (the file-local identifier the
    relationship file refers to), optional [labels] column
    ([;]-separated), every other column a typed property.  Relationship
    CSV: required [src] / [tgt] / [type] columns, every other column a
    typed property.  A failed load — malformed CSV, missing or duplicate
    columns, ragged rows, duplicate node ids, unknown endpoints, a
    closed store — returns a structured error naming file and line and
    leaves the graph untouched (application runs inside a transaction).

    Frame payloads use raw CSV ids for relationship endpoints, resolved
    through an {!idmap} threaded across frames, so replay is immune to
    the internal-id remapping a snapshot compaction performs.  See the
    implementation header for the frame grammar. *)

open Cypher_graph
open Cypher_core

type report = {
  nodes_created : int;
  rels_created : int;
  batches : int;  (** journal frames written *)
}

(** Raw CSV id → internal node id, threaded across the frames of one
    load (or one recovery replay). *)
type idmap

val create_idmap : unit -> idmap
val default_batch_size : int

(** [apply_frame ~ids g payload] applies one bulk frame to [g],
    recording created nodes in [ids] and resolving relationship
    endpoints through it; returns the new graph and the frame's update
    counters (the journal checksum).  [Error] on a malformed line or an
    unresolvable endpoint.  Recovery replay calls this on [`Bulk]
    journal records with one [ids] shared across the whole replay. *)
val apply_frame :
  ids:idmap -> Graph.t -> string -> (Graph.t * Stats.t, string) result

(** [load_strings session ~nodes ~rels] validates and applies the two
    CSV images to [session], journaling one frame per [batch_size] rows
    (default {!default_batch_size}).  [nodes_name] / [rels_name] label
    error messages (defaults ["<nodes>"] / ["<rels>"]). *)
val load_strings :
  ?batch_size:int ->
  ?nodes_name:string ->
  ?rels_name:string ->
  Session.t ->
  nodes:string ->
  rels:string ->
  (report, Errors.t) result

(** [load_files session ~nodes_path ~rels_path] is {!load_strings} over
    files; errors cite the file paths. *)
val load_files :
  ?batch_size:int ->
  Session.t ->
  nodes_path:string ->
  rels_path:string ->
  (report, Errors.t) result
