(** A database on disk: directory with a snapshot and a statement
    journal, wired to a {!Session}.

    Layout: [<dir>/snapshot.cy] (a {!Snapshot} image, absent until the
    first {!compact}) and [<dir>/journal.wal] (the {!Wal} of statements
    applied since that snapshot).  {!open_db} recovers the graph from
    both (truncating a crash-torn journal tail after reporting it),
    opens the journal for appending, and hands back a session whose
    journal sink write-aheads every graph-changing statement; from then
    on the in-memory session and the on-disk state move in lockstep —
    killing the process at any instant loses at most the statement
    whose journal append had not completed, and that statement's graph
    effects with it (the append happens first).

    {!compact} folds the journal into a fresh snapshot: write the
    current graph image atomically (rename commits it), then reset the
    journal to empty.  A crash between the two steps leaves the old
    journal next to the new snapshot; replaying those already-folded
    statements fails the counter checksum, so {!open_db} surfaces the
    inconsistency loudly instead of silently double-applying. *)

open Cypher_core

type t = {
  dir : string;
  snapshot_path : string;
  wal_path : string;
  durability : Config.durability;
  mutable writer : Wal.writer option;
  recovery : Recovery.t;  (** what {!open_db} found *)
}

let snapshot_file = "snapshot.cy"
let journal_file = "journal.wal"
let recovery t = t.recovery
let dir t = t.dir

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A closed store must fail the triggering statement with a structured
   error (the session surfaces sink exceptions as the statement's
   failure), not a bare [Failure] that callers cannot classify. *)
let sink t entries =
  match t.writer with
  | Some w -> Wal.append w (List.map Wal.record_of_entry entries)
  | None ->
      Errors.fail
        (Errors.Update_error
           (Printf.sprintf
              "store at %s is closed: reopen it or detach the journal \
               (Session.set_journal session None) to continue in memory"
              t.dir))

(** [append_entries t entries] journals [entries] as one WAL frame
    batch: a single [write] + (under [Fsync]) a single fsync, whatever
    the batch size.  This is the group committer's durability call —
    the server batches the entries of several concurrently committing
    transactions into one call here.  Raises a structured error when
    the store is closed, like the session sink. *)
let append_entries t (entries : Session.journal_entry list) : unit =
  if entries <> [] then sink t entries

(** Writer counters ([None] once the store is closed). *)
let wal_stats t = Option.map Wal.writer_stats t.writer

(** [open_db ?config dir] opens (creating if needed) the database at
    [dir], recovers its graph, and returns the store paired with a
    session wired for write-ahead journaling.  [config] (default
    {!Config.revised}) sets the session semantics and the journal
    durability.  A torn journal tail is truncated on disk here, after
    being recorded in the {!recovery} report. *)
let open_db ?(config = Config.revised) dir : (t * Session.t, string) result =
  try
    mkdir_p dir;
    if not (Sys.is_directory dir) then
      Error (Printf.sprintf "open_db: %s is not a directory" dir)
    else
      let snapshot_path = Filename.concat dir snapshot_file in
      let wal_path = Filename.concat dir journal_file in
      match Recovery.recover_files ~snapshot_path ~wal_path with
      | Error e -> Error e
      | Ok recovery ->
          if recovery.Recovery.torn <> None then
            Wal.truncate_file wal_path recovery.Recovery.clean_len;
          let writer =
            Wal.open_writer ~durability:config.Config.durability wal_path
          in
          let t =
            {
              dir;
              snapshot_path;
              wal_path;
              durability = config.Config.durability;
              writer = Some writer;
              recovery;
            }
          in
          let session = Session.create ~config recovery.Recovery.graph in
          Session.set_journal session (Some (sink t));
          Ok (t, session)
  with
  | Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "open_db: %s(%s): %s" fn arg (Unix.error_message err))
  | Sys_error m -> Error ("open_db: " ^ m)

(** [compact t session] folds the journal into a fresh snapshot of the
    session's current graph and empties the journal.  Refused inside a
    transaction (uncommitted statements must not reach the snapshot). *)
let compact (t : t) (session : Session.t) : (unit, string) result =
  if Session.in_transaction session then
    Error "compact: transaction in progress"
  else if t.writer = None then Error "compact: store is closed"
  else
    try
      Snapshot.write t.snapshot_path (Session.graph session);
      Option.iter Wal.close_writer t.writer;
      Wal.truncate_file t.wal_path 0;
      t.writer <- Some (Wal.open_writer ~durability:t.durability t.wal_path);
      Ok ()
    with
    | Unix.Unix_error (err, fn, arg) ->
        Error
          (Printf.sprintf "compact: %s(%s): %s" fn arg
             (Unix.error_message err))
    | Invalid_argument m | Sys_error m -> Error ("compact: " ^ m)

(** [close t] closes the journal.  The session keeps working in memory,
    but further update statements fail their journal append — detach
    the sink ([Session.set_journal session None]) to keep using it
    non-durably. *)
let close (t : t) : unit =
  Option.iter Wal.close_writer t.writer;
  t.writer <- None
