(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    The frame checksum of the write-ahead journal and the snapshot
    header.  CRC-32 detects every burst error up to 32 bits — in
    particular any single corrupted byte — which is exactly the failure
    model of the torn-write fault injection (see DESIGN.md).  Table
    driven; OCaml's 63-bit native ints hold the 32-bit registers
    directly. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** [digest s] is the CRC-32 of all of [s]. *)
let digest (s : string) : int =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(** Zero-padded lowercase hex, 8 digits. *)
let to_hex (c : int) : string = Printf.sprintf "%08x" c
