(** Streaming bulk loader: CSV files → graph, bypassing the parser.

    The paper motivates MERGE by bulk import ("a graph database may be
    initially populated by importing data from a relational database or
    a CSV file", Section 6), but routing a million-entity import through
    per-statement Cypher — one parse, one plan, one journal frame and
    one fsync per entity — is the wrong tool.  This module is the right
    one: it validates two CSV files (nodes, then relationships) in
    full, then applies them in batches, journaling one {!Wal} frame per
    batch ([k=b] records) instead of one per statement.

    {2 CSV formats}

    Nodes: the header must contain an [id] column (the file-local
    identifier relationships refer to); an optional [labels] column
    holds [;]-separated labels; every other column is a property, typed
    like any CSV import ({!Cypher_csv.Csv.type_field} — empty fields are
    null and store nothing).

    Relationships: the header must contain [src], [tgt] and [type]
    columns; [src]/[tgt] are node-file [id] values, [type] the
    relationship type; every other column is a property.

    {2 Atomicity}

    Both files are parsed and validated completely — empty file, missing
    required columns, ragged rows, duplicate node ids, unknown endpoints
    all fail with a structured error naming file and line — before the
    first entity is created, and application runs inside a transaction,
    so a failed load never leaves a partial graph behind.

    {2 Frame format and replay}

    Each batch journals as one payload of lines

    {v
    N <id> <labels|-> <props|->
    R <src> <tgt> <type> <props|->
    v}

    with every field percent-encoded ({!Wal.pct_encode}), labels
    [;]-joined and properties rendered as a Cypher map literal
    ({!Dump.value_literal}) — [-] marks an absent value.  Relationship
    endpoints are the {e raw} CSV ids, not internal node ids: snapshot
    compaction remaps internal ids (monotonically), so a frame that
    hard-coded them would silently rebind after a compact.  Instead
    {!apply_frame} threads an id map (raw id → created node) across the
    frames of a replay; a later load reusing a raw id simply overwrites
    the entry, which is exactly the binding its own relationships saw at
    original execution.  The loader itself applies the very frames it
    journals, so load and recovery share one code path. *)

open Cypher_graph
open Cypher_core
module Csv = Cypher_csv.Csv

type report = {
  nodes_created : int;
  rels_created : int;
  batches : int;  (** journal frames written *)
}

(** Raw CSV id → internal node id, threaded across the frames of one
    load (or one recovery replay). *)
type idmap = (string, Graph.node_id) Hashtbl.t

let create_idmap () : idmap = Hashtbl.create 1024
let default_batch_size = 10_000

(* Structured-error carrier for the load loop: lets the transaction body
   unwind through rollback before the error surfaces as a [result]. *)
exception Abort of Errors.t

(* ------------------------------------------------------------------ *)
(* Errors                                                             *)
(* ------------------------------------------------------------------ *)

let fail_at file line fmt =
  Printf.ksprintf
    (fun msg ->
      Errors.fail
        (Errors.Update_error (Printf.sprintf "bulk load (%s:%d): %s" file line msg)))
    fmt

let fail_file file fmt =
  Printf.ksprintf
    (fun msg ->
      Errors.fail
        (Errors.Update_error (Printf.sprintf "bulk load (%s): %s" file msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Frame encoding                                                     *)
(* ------------------------------------------------------------------ *)

let enc_opt s = if s = "" then "-" else Wal.pct_encode s

let enc_props (props : Props.t) =
  if Props.is_empty props then "-"
  else Wal.pct_encode (Dump.value_literal (Props.to_value props))

let dec_opt s =
  if s = "-" then Some "" else Wal.pct_decode s

let dec_props s : Props.t option =
  if s = "-" then Some Props.empty
  else
    match Wal.pct_decode s with
    | None -> None
    | Some txt -> (
        match Cypher_parser.Parser.parse_expr_string txt with
        | Error _ -> None
        | Ok e -> (
            try
              match
                Cypher_eval.Eval.eval
                  (Cypher_eval.Ctx.make Graph.empty Cypher_table.Record.empty)
                  e
              with
              | Value.Map m -> Some m
              | _ -> None
            with _ -> None))

let split_labels s = List.filter (fun l -> l <> "") (String.split_on_char ';' s)

let node_line ~id ~labels ~props =
  Printf.sprintf "N %s %s %s" (Wal.pct_encode id)
    (enc_opt (String.concat ";" labels))
    (enc_props props)

let rel_line ~src ~tgt ~ty ~props =
  Printf.sprintf "R %s %s %s %s" (Wal.pct_encode src) (Wal.pct_encode tgt)
    (Wal.pct_encode ty) (enc_props props)

(* ------------------------------------------------------------------ *)
(* Frame application (shared by load and recovery replay)             *)
(* ------------------------------------------------------------------ *)

(** [apply_frame ~ids g payload] applies one bulk frame to [g],
    recording created nodes in [ids] and resolving relationship
    endpoints through it.  Returns the new graph and the frame's net
    update counters (the journal checksum).  [Error] on a malformed
    line or an endpoint [ids] cannot resolve — during a load that is
    unreachable (frames are self-generated after validation); during
    recovery it means journal corruption the CRC did not see. *)
let apply_frame ~(ids : idmap) (g : Graph.t) (payload : string) :
    (Graph.t * Stats.t, string) result =
  let nodes_created = ref 0 in
  let rels_created = ref 0 in
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let decode what dec s =
    match dec s with Some v -> v | None -> bad "bad %s field %S" what s
  in
  try
    let g =
      List.fold_left
        (fun g line ->
          if line = "" then g
          else
            match String.split_on_char ' ' line with
            | [ "N"; id; labels; props ] ->
                let id = decode "id" Wal.pct_decode id in
                let labels = split_labels (decode "labels" dec_opt labels) in
                let props = decode "props" dec_props props in
                let nid, g = Graph.create_node ~labels ~props g in
                Hashtbl.replace ids id nid;
                incr nodes_created;
                g
            | [ "R"; src; tgt; ty; props ] ->
                let src = decode "src" Wal.pct_decode src in
                let tgt = decode "tgt" Wal.pct_decode tgt in
                let ty = decode "type" Wal.pct_decode ty in
                let props = decode "props" dec_props props in
                let resolve what raw =
                  match Hashtbl.find_opt ids raw with
                  | Some nid -> nid
                  | None -> bad "unresolved %s node id %S" what raw
                in
                let _, g =
                  Graph.create_rel ~src:(resolve "source" src)
                    ~tgt:(resolve "target" tgt) ~r_type:ty ~props g
                in
                incr rels_created;
                g
            | _ -> bad "malformed bulk frame line %S" line)
        g
        (String.split_on_char '\n' payload)
    in
    (* following the net-diff convention of [Stats]: properties and
       labels of created entities fold into the created counts *)
    let stats =
      {
        Stats.empty with
        Stats.nodes_created = !nodes_created;
        rels_created = !rels_created;
      }
    in
    Ok (g, stats)
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

(** A validated row, ready to frame. *)
type vnode = { vn_id : string; vn_labels : string list; vn_props : Props.t }
type vrel = { vr_src : string; vr_tgt : string; vr_ty : string; vr_props : Props.t }

let parse_csv file src =
  match Csv.rows_of_string src with
  | [] -> fail_file file "empty file (expected a header row)"
  | header :: rows -> (header, rows)
  | exception Csv.Csv_error e -> fail_at file e.Csv.line "%s" e.Csv.message

(** Positions of the required/special columns, plus [(column, position)]
    for the property columns. *)
let split_header file (line, header) ~required ~special =
  List.iter
    (fun c ->
      if not (List.mem c header) then
        fail_at file line "missing required column %S (header is %s)" c
          (String.concat "," header))
    required;
  let dup =
    List.find_opt
      (fun c -> List.length (List.filter (String.equal c) header) > 1)
      header
  in
  (match dup with
  | Some c -> fail_at file line "duplicate column %S" c
  | None -> ());
  List.mapi (fun i c -> (c, i)) header
  |> List.filter (fun (c, _) -> not (List.mem c special))

let field row i = List.nth row i

let pos header c =
  let rec go i = function
    | [] -> invalid_arg "pos"
    | h :: _ when h = c -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 header

let check_width file width (line, row) =
  let n = List.length row in
  if n <> width then
    fail_at file line "row has %d fields, header has %d" n width

let typed_props props_cols row : Props.t =
  Props.of_list
    (List.map (fun (c, i) -> (c, Csv.type_field (field row i))) props_cols)

let validate_nodes file src : vnode list =
  let header, rows = parse_csv file src in
  let hline, hcols = header in
  let props_cols =
    split_header file (hline, hcols) ~required:[ "id" ]
      ~special:[ "id"; "labels" ]
  in
  let id_i = pos hcols "id" in
  let labels_i = if List.mem "labels" hcols then Some (pos hcols "labels") else None in
  let width = List.length hcols in
  let seen = Hashtbl.create (List.length rows) in
  List.map
    (fun (line, row) ->
      check_width file width (line, row);
      let id = field row id_i in
      if id = "" then fail_at file line "empty node id";
      (match Hashtbl.find_opt seen id with
      | Some first ->
          fail_at file line "duplicate node id %S (first seen at line %d)" id
            first
      | None -> Hashtbl.add seen id line);
      {
        vn_id = id;
        vn_labels =
          (match labels_i with
          | None -> []
          | Some i -> split_labels (field row i));
        vn_props = typed_props props_cols row;
      })
    rows

let validate_rels file ~(node_ids : (string, int) Hashtbl.t) src : vrel list =
  let header, rows = parse_csv file src in
  let hline, hcols = header in
  let props_cols =
    split_header file (hline, hcols)
      ~required:[ "src"; "tgt"; "type" ]
      ~special:[ "src"; "tgt"; "type" ]
  in
  let src_i = pos hcols "src" in
  let tgt_i = pos hcols "tgt" in
  let ty_i = pos hcols "type" in
  let width = List.length hcols in
  List.map
    (fun (line, row) ->
      check_width file width (line, row);
      let s = field row src_i and t = field row tgt_i and ty = field row ty_i in
      if ty = "" then fail_at file line "empty relationship type";
      if not (Hashtbl.mem node_ids s) then
        fail_at file line "unknown source node id %S" s;
      if not (Hashtbl.mem node_ids t) then
        fail_at file line "unknown target node id %S" t;
      { vr_src = s; vr_tgt = t; vr_ty = ty; vr_props = typed_props props_cols row })
    rows

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

let chunks size l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 l

(** [load_strings session ~nodes ~rels] validates and applies the two
    CSV images.  [nodes_name]/[rels_name] label errors (default
    ["<nodes>"], ["<rels>"]). *)
let load_strings ?(batch_size = default_batch_size) ?(nodes_name = "<nodes>")
    ?(rels_name = "<rels>") (session : Session.t) ~(nodes : string)
    ~(rels : string) : (report, Errors.t) result =
  try
    if batch_size <= 0 then invalid_arg "Bulk.load_strings: batch_size";
    (* phase 1: validate everything before touching the graph *)
    let vnodes = validate_nodes nodes_name nodes in
    let node_ids = Hashtbl.create (List.length vnodes) in
    List.iteri (fun i n -> Hashtbl.add node_ids n.vn_id i) vnodes;
    let vrels = validate_rels rels_name ~node_ids rels in
    (* phase 2: frame in batches — all nodes before any relationship,
       so endpoint resolution never sees a forward reference *)
    let frames =
      List.map
        (fun batch ->
          String.concat "\n"
            (List.map
               (fun n ->
                 node_line ~id:n.vn_id ~labels:n.vn_labels ~props:n.vn_props)
               batch))
        (chunks batch_size vnodes)
      @ List.map
          (fun batch ->
            String.concat "\n"
              (List.map
                 (fun r ->
                   rel_line ~src:r.vr_src ~tgt:r.vr_tgt ~ty:r.vr_ty
                     ~props:r.vr_props)
                 batch))
          (chunks batch_size vrels)
    in
    (* phase 3: apply each frame and journal it, inside one transaction
       so a journal failure (e.g. a closed store) rolls everything back
       — and so the outermost commit flushes all frames with a single
       sink call, hence a single journal write *)
    Session.begin_tx session;
    let ids = create_idmap () in
    (try
       List.iter
         (fun payload ->
           match apply_frame ~ids (Session.graph session) payload with
           | Error m -> raise (Abort (Errors.Update_error ("bulk load: " ^ m)))
           | Ok (g', stats) -> (
               match Session.advance_bulk session ~src:payload ~stats g' with
               | Ok () -> ()
               | Error e -> raise (Abort e)))
         frames;
       match Session.commit session with
       | Ok () -> ()
       | Error m -> raise (Abort (Errors.Update_error ("bulk load: " ^ m)))
     with e ->
       (match Session.rollback session with _ -> ());
       raise e);
    Ok
      {
        nodes_created = List.length vnodes;
        rels_created = List.length vrels;
        batches = List.length frames;
      }
  with
  | Errors.Error e -> Error e
  | Abort e -> Error e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** [load_files session ~nodes_path ~rels_path] is {!load_strings} over
    files; errors cite the file paths. *)
let load_files ?batch_size (session : Session.t) ~nodes_path ~rels_path :
    (report, Errors.t) result =
  match (read_file nodes_path, read_file rels_path) with
  | nodes, rels ->
      load_strings ?batch_size ~nodes_name:nodes_path ~rels_name:rels_path
        session ~nodes ~rels
  | exception Sys_error m -> Error (Errors.Update_error ("bulk load: " ^ m))
