(** The write-ahead statement journal: an append-only file of framed
    records, one per successfully applied graph-changing statement.
    Each record carries the statement source text, the semantics it ran
    under, and its update counters as a semantic checksum for replay.

    Frame format (text): [%<payload-bytes> <crc32-hex>\n<payload>\n],
    payload = one metadata line + the statement source.  The CRC-32
    covers the payload; {!scan_string} accepts the longest valid prefix
    of whole records, so a crash-torn tail is detected, reported, and
    truncated away by recovery — never silently replayed. *)

open Cypher_graph
open Cypher_core

type record = {
  src : string;  (** statement source text *)
  stats : Stats.t;  (** update counters recorded at original execution *)
  mode : Config.mode;
  order : Config.order;
  match_mode : Config.match_mode;
  params : Value.t Cypher_util.Maps.Smap.t;
      (** parameter bindings the statement ran under (empty when none);
          encoded as a percent-encoded Cypher map literal in an optional
          [p=] metadata field, so pre-parameter journals still decode.
          Bindings must be storable values — a record whose bindings
          contain a graph entity cannot be encoded. *)
  kind : Session.journal_kind;
      (** how [src] replays: [`Statement] re-executes Cypher source
          through the [Api]; [`Bulk] applies a bulk-load frame via
          [Bulk.apply_frame].  Encoded as an optional [k=b] metadata
          field, so pre-bulk journals still decode. *)
}

(** Where and why a scan stopped before the end of the input. *)
type torn = {
  t_offset : int;  (** byte offset of the first unusable record *)
  t_reason : string;
}

(** [encode r] is the full frame for [r], header through trailing
    newline. *)
val encode : record -> string

(** Percent-encoding used for metadata values that must stay single-line
    and space-free (['%'], [' '], CR and LF become [%XX]).  Shared with
    the bulk loader's frame line format. *)
val pct_encode : string -> string

(** Inverse of {!pct_encode}; [None] on a malformed escape. *)
val pct_decode : string -> string option

(** [scan_string s] parses records from the front of [s]: the records of
    the longest valid prefix, the byte length of that prefix, and —
    unless the prefix is all of [s] — where and why the scan stopped.
    Never raises. *)
val scan_string : string -> record list * int * torn option

(** [read_file path] scans the whole journal file; a missing file is an
    empty journal. *)
val read_file : string -> record list * int * torn option

(** [truncate_file path n] cuts the journal back to its first [n] bytes
    (dropping a torn tail). *)
val truncate_file : string -> int -> unit

type writer

(** Writer-side counters: {!append} calls, records carried, fsyncs
    paid.  [records / fsyncs] is the group-commit amortization factor
    the server bench reports. *)
type writer_stats = { appends : int; records : int; fsyncs : int }

(** [open_writer ~durability path] opens [path] for appending, creating
    it if needed.  [durability] defaults to {!Config.Fsync}. *)
val open_writer : ?durability:Config.durability -> string -> writer

val writer_stats : writer -> writer_stats

(** [append w records] writes all [records] with a single [write] (a
    crash can only tear the tail), then — under [Fsync] durability —
    forces them to stable storage before returning. *)
val append : writer -> record list -> unit

val close_writer : writer -> unit

(** A journal record for a session journal entry. *)
val record_of_entry : Session.journal_entry -> record
