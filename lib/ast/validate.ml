(** Static validation of queries against a dialect.

    The same AST serves three dialects:

    - {!Cypher9}: the grammar of Figures 2–5.  Update patterns are
      restricted (CREATE takes tuples of *directed* patterns, MERGE takes
      a *single*, possibly undirected pattern), reading clauses may not
      follow update clauses without an intervening WITH (the demarcation
      rule of Section 4.4), and the [MERGE ALL]/[MERGE SAME] keywords do
      not exist.
    - {!Revised}: the streamlined grammar of Figure 10.  Clauses compose
      freely, CREATE and MERGE uniformly take tuples of directed
      patterns, and plain [MERGE] is no longer allowed — the user must
      choose [MERGE ALL] or [MERGE SAME] (Section 7).
    - {!Permissive}: anything the parser accepts, including the
      experimental [MERGE GROUPING]/[WEAK]/[COLLAPSE] spellings for the
      other Section 6 proposals.  Used by the experiment harness.

    Note: Figure 2 as printed does not derive a RETURN directly after
    update clauses, but Cypher 9 as shipped accepts e.g.
    [CREATE (n) RETURN n]; we follow the implementation and allow a final
    RETURN after updates in all dialects. *)

open Ast

type dialect = Cypher9 | Revised | Permissive

type error = { message : string }

let err fmt = Format.kasprintf (fun message -> Error { message }) fmt

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let rec iter_result f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      iter_result f rest

(* ------------------------------------------------------------------ *)
(* Pattern restrictions (Figure 5 / Figure 10)                        *)
(* ------------------------------------------------------------------ *)

let check_update_rel_pat ~clause ~directed (rp : rel_pat) =
  let* () =
    match rp.rp_types with
    | [ _ ] -> Ok ()
    | [] ->
        err "%s pattern: relationship must carry exactly one type" clause
    | _ :: _ :: _ ->
        err "%s pattern: relationship must carry exactly one type, not an \
             alternative"
          clause
  in
  let* () =
    match rp.rp_range with
    | None -> Ok ()
    | Some _ ->
        err "%s pattern: variable-length relationships are not allowed in \
             update patterns"
          clause
  in
  if directed && rp.rp_dir = Undirected then
    err "%s pattern: relationships must be directed" clause
  else Ok ()

let check_update_pattern ~clause ~directed (p : pattern) =
  iter_result
    (fun (rp, _) -> check_update_rel_pat ~clause ~directed rp)
    p.pat_steps

(* ------------------------------------------------------------------ *)
(* Clause-level checks                                                *)
(* ------------------------------------------------------------------ *)

(** The variables a clause brings into scope, folded over a clause
    sequence.  Only boundness is tracked (enough for the FOREACH
    shadowing check): patterns and UNWIND add their variables, a
    projection without [*] resets the scope to its output columns. *)
let scope_after scope = function
  | Match { patterns; _ } | Create patterns | Merge { patterns; _ } ->
      List.concat_map pattern_vars patterns @ scope
  | Unwind { alias; _ } -> alias :: scope
  | With proj | Return proj ->
      let aliases =
        List.filter_map
          (fun it ->
            match it.item_alias with
            | Some a -> Some a
            | None -> ( match it.item_expr with Var v -> Some v | _ -> None))
          proj.proj_items
      in
      if proj.proj_star then aliases @ scope else aliases
  | Set _ | Remove _ | Delete _ | Foreach _ -> scope

let rec check_clause dialect ~scope = function
  | Create ps ->
      iter_result (check_update_pattern ~clause:"CREATE" ~directed:true) ps
  | Merge { mode; patterns; _ } -> check_merge dialect mode patterns
  | Foreach { fe_var; fe_body; _ } ->
      (* the loop variable must be fresh: openCypher rejects shadowing
         an in-scope variable ("variable already declared"), and the
         engine would otherwise silently rebind it inside the body *)
      let* () =
        if List.mem fe_var scope then
          err "FOREACH: variable `%s` already declared" fe_var
        else Ok ()
      in
      let* () =
        iter_result
          (fun c ->
            if is_update_clause c then Ok ()
            else err "FOREACH body may contain only update clauses")
          fe_body
      in
      check_body dialect ~scope:(fe_var :: scope) fe_body
  | Match _ | Unwind _ | With _ | Return _ | Set _ | Remove _ | Delete _ ->
      Ok ()

(** Checks a clause sequence, threading the scope left to right. *)
and check_body dialect ~scope = function
  | [] -> Ok ()
  | c :: rest ->
      let* () = check_clause dialect ~scope c in
      check_body dialect ~scope:(scope_after scope c) rest

and check_merge dialect mode patterns =
  match (dialect, mode) with
  | Cypher9, Merge_legacy ->
      let* () =
        match patterns with
        | [ _ ] -> Ok ()
        | _ -> err "Cypher 9 MERGE takes a single pattern"
      in
      (* undirected relationships are allowed in Cypher 9 MERGE *)
      iter_result
        (check_update_pattern ~clause:"MERGE" ~directed:false)
        patterns
  | Cypher9, _ ->
      err "%s is not part of Cypher 9 (use plain MERGE)"
        (Pretty.merge_keyword mode)
  | Revised, Merge_legacy ->
      err
        "plain MERGE is no longer allowed; choose MERGE ALL or MERGE SAME \
         (Section 7)"
  | Revised, (Merge_all | Merge_same) ->
      iter_result (check_update_pattern ~clause:"MERGE" ~directed:true) patterns
  | Revised, (Merge_grouping | Merge_weak_collapse | Merge_collapse) ->
      err
        "%s is an experimental proposal; enable the Permissive dialect to \
         use it"
        (Pretty.merge_keyword mode)
  | Permissive, Merge_legacy ->
      iter_result (check_update_pattern ~clause:"MERGE" ~directed:false) patterns
  | Permissive, _ ->
      iter_result (check_update_pattern ~clause:"MERGE" ~directed:true) patterns

(* ------------------------------------------------------------------ *)
(* Clause sequencing                                                  *)
(* ------------------------------------------------------------------ *)

(** Cypher 9 (Figure 2): once an update clause has been seen, reading
    clauses require an intervening WITH; WITH resets the state. *)
let check_sequence_cypher9 clauses =
  let rec loop ~after_update = function
    | [] -> Ok ()
    | c :: rest -> (
        match c with
        | With _ -> loop ~after_update:false rest
        | Return _ ->
            if rest = [] then Ok ()
            else err "RETURN must be the final clause"
        | Match _ | Unwind _ ->
            if after_update then
              err
                "Cypher 9 requires WITH between update clauses and reading \
                 clauses (Section 4.4)"
            else loop ~after_update rest
        | Create _ | Set _ | Remove _ | Delete _ | Merge _ | Foreach _ ->
            loop ~after_update:true rest)
  in
  loop ~after_update:false clauses

(** Revised grammar (Figure 10): clauses compose freely; RETURN final. *)
let check_sequence_free clauses =
  let rec loop = function
    | [] -> Ok ()
    | Return _ :: rest ->
        if rest = [] then Ok () else err "RETURN must be the final clause"
    | _ :: rest -> loop rest
  in
  loop clauses

let check_nonempty clauses =
  if clauses = [] then err "empty query" else Ok ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let rec check_query dialect (q : query) =
  let* () = check_nonempty q.clauses in
  let* () =
    match dialect with
    | Cypher9 -> check_sequence_cypher9 q.clauses
    | Revised | Permissive -> check_sequence_free q.clauses
  in
  let* () = check_body dialect ~scope:[] q.clauses in
  match q.union with None -> Ok () | Some (_, q') -> check_query dialect q'

let validate dialect q =
  match check_query dialect q with
  | Ok () -> Ok q
  | Error e -> Error e.message
