(** Pretty-printing of the AST back to Cypher concrete syntax.

    The output re-parses to the same AST (a qcheck property in the test
    suite), which also makes it a convenient canonical form for
    diagnostics and the REPL. *)

open Ast

val pp_expr : Format.formatter -> expr -> unit
val pp_node_pat : Format.formatter -> node_pat -> unit
val pp_rel_pat : Format.formatter -> rel_pat -> unit
val pp_pattern : Format.formatter -> pattern -> unit
val pp_set_item : Format.formatter -> set_item -> unit
val pp_remove_item : Format.formatter -> remove_item -> unit

(** The concrete keyword of a merge mode (e.g. ["MERGE SAME"]). *)
val merge_keyword : merge_mode -> string

val pp_clause : Format.formatter -> clause -> unit
val pp_query : Format.formatter -> query -> unit
val query_to_string : query -> string
val expr_to_string : expr -> string
val clause_to_string : clause -> string
val pattern_to_string : pattern -> string
