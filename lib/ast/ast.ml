(** Abstract syntax of Cypher queries and updates.

    Covers the read–write language of the paper: the querying core of
    [13] (MATCH / WHERE / WITH / RETURN / UNWIND / UNION) and the update
    clauses of Figures 3–5 (SET / REMOVE / CREATE / DELETE / MERGE /
    FOREACH), together with the revised constructs of Figure 10
    (MERGE ALL / MERGE SAME with tuples of directed update patterns).

    The same AST serves both the Cypher 9 grammar and the revised
    grammar; {!Validate} checks the restrictions that distinguish them. *)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

type lit =
  | L_null
  | L_bool of bool
  | L_int of int
  | L_float of float
  | L_string of string

type binop = Add | Sub | Mul | Div | Mod | Pow
type cmpop = Eq | Neq | Lt | Le | Gt | Ge
type strop = Starts_with | Ends_with | Contains
type agg_kind = Count | Sum | Avg | Min | Max | Collect

type direction =
  | Out  (** [-[..]->] *)
  | In  (** [<-[..]-] *)
  | Undirected  (** [-[..]-] — reading patterns and Cypher 9 MERGE only *)

type expr =
  | Lit of lit
  | Var of string
  | Param of string  (** [$name] query parameter *)
  | Prop of expr * string  (** [e.key] *)
  | Has_labels of expr * string list  (** predicate [e:Label1:Label2] *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Cmp of cmpop * expr * expr
  | Bin of binop * expr * expr
  | Neg of expr  (** unary minus *)
  | Is_null of expr
  | Is_not_null of expr
  | List_lit of expr list
  | Map_lit of (string * expr) list
  | Index of expr * expr  (** [e[i]]: list indexing or map access *)
  | Slice of expr * expr option * expr option  (** [e[a..b]] *)
  | Str_op of strop * expr * expr
  | In_list of expr * expr  (** [e IN list] *)
  | Fn of string * expr list  (** scalar function call (name lowercased) *)
  | Agg of agg_kind * bool * expr option
      (** aggregate; the bool is DISTINCT; [None] is count-star *)
  | Case of case
  | List_comp of {
      comp_var : string;
      comp_source : expr;
      comp_where : expr option;
      comp_body : expr option;
    }  (** [[x IN list WHERE p | e]] *)
  | Quantifier of {
      q_kind : quantifier;
      q_var : string;
      q_source : expr;
      q_pred : expr;
    }  (** [all(x IN list WHERE p)] and friends, under ternary logic *)
  | Reduce of {
      red_acc : string;
      red_init : expr;
      red_var : string;
      red_source : expr;
      red_body : expr;
    }  (** [reduce(acc = init, x IN list | e)] *)

  | Pattern_pred of pattern list
      (** pattern predicate [exists((a)-[:T]->(b))]: true when the
          pattern tuple has an embedding extending the current record *)
  | Pattern_comp of {
      pc_pattern : pattern;
      pc_where : expr option;
      pc_body : expr;
    }  (** pattern comprehension [[(a)-[:T]->(b) WHERE p | e]] *)
  | Shortest_path of { sp_all : bool; sp_pattern : pattern }
      (** [shortestPath((a)-[:T*]->(b))] / [allShortestPaths(...)]:
          a shortest walk between two bound endpoints (or the list of
          all shortest walks) *)

and quantifier = Q_all | Q_any | Q_none | Q_single

and case = {
  case_operand : expr option;
  case_whens : (expr * expr) list;
  case_default : expr option;
}

(* ------------------------------------------------------------------ *)
(* Patterns (Figure 5)                                                *)
(* ------------------------------------------------------------------ *)

and node_pat = {
  np_var : string option;
  np_labels : string list;
  np_props : (string * expr) list;
}

and rel_pat = {
  rp_var : string option;
  rp_types : string list;  (** empty = any type (reading patterns only) *)
  rp_props : (string * expr) list;
  rp_dir : direction;
  rp_range : (int option * int option) option;
      (** variable-length [*min..max]; reading patterns only *)
}

(** A path pattern: a node followed by (relationship, node) steps,
    optionally named ([p = (...)-[...]->(...)]). *)
and pattern = {
  pat_var : string option;
  pat_start : node_pat;
  pat_steps : (rel_pat * node_pat) list;
}

(* ------------------------------------------------------------------ *)
(* Clauses (Figures 2–4 and 10)                                       *)
(* ------------------------------------------------------------------ *)

type sort_item = { sort_expr : expr; sort_ascending : bool }
type proj_item = { item_expr : expr; item_alias : string option }

type projection = {
  proj_distinct : bool;
  proj_star : bool;  (** [RETURN *] / [WITH *] *)
  proj_items : proj_item list;
  proj_order : sort_item list;
  proj_skip : expr option;
  proj_limit : expr option;
  proj_where : expr option;  (** [WITH ... WHERE p] *)
}

type set_item =
  | Set_prop of expr * string * expr  (** [SET e.k = e'] *)
  | Set_all_props of expr * expr  (** [SET e = map] — replaces ι *)
  | Set_merge_props of expr * expr  (** [SET e += map] *)
  | Set_labels of expr * string list  (** [SET e:L1:L2] *)

type remove_item =
  | Rem_prop of expr * string  (** [REMOVE e.k] *)
  | Rem_labels of expr * string list  (** [REMOVE e:L1:L2] *)

(** Which MERGE semantics a clause requests.

    [Merge_legacy] is Cypher 9's per-record match-or-create (reads its own
    writes; order-dependent — Section 4.3).  [Merge_all] and [Merge_same]
    are the adopted semantics of Section 7.  The remaining three are the
    other proposals of Section 6, accepted by the parser so that all five
    can be compared experimentally. *)
type merge_mode =
  | Merge_legacy
  | Merge_all
  | Merge_same
  | Merge_grouping
  | Merge_weak_collapse
  | Merge_collapse

type clause =
  | Match of { optional : bool; patterns : pattern list; where : expr option }
  | Unwind of { source : expr; alias : string }
  | With of projection
  | Return of projection
  | Create of pattern list
  | Set of set_item list
  | Remove of remove_item list
  | Delete of { detach : bool; targets : expr list }
  | Merge of {
      mode : merge_mode;
      patterns : pattern list;
      on_create : set_item list;
      on_match : set_item list;
    }
  | Foreach of { fe_var : string; fe_source : expr; fe_body : clause list }

(** A query is a clause sequence, optionally UNION[ALL]-ed with another. *)
type query = { clauses : clause list; union : (bool * query) option }

let single clauses = { clauses; union = None }

(* ------------------------------------------------------------------ *)
(* Convenience constructors (used by tests and examples)              *)
(* ------------------------------------------------------------------ *)

let node ?var ?(labels = []) ?(props = []) () =
  { np_var = var; np_labels = labels; np_props = props }

let rel ?var ?(types = []) ?(props = []) ?(dir = Out) ?range () =
  { rp_var = var; rp_types = types; rp_props = props; rp_dir = dir;
    rp_range = range }

let path ?var start steps = { pat_var = var; pat_start = start; pat_steps = steps }

let int_lit i = Lit (L_int i)
let str_lit s = Lit (L_string s)
let null_lit = Lit L_null

let default_projection =
  {
    proj_distinct = false;
    proj_star = false;
    proj_items = [];
    proj_order = [];
    proj_skip = None;
    proj_limit = None;
    proj_where = None;
  }

let return_vars vars =
  Return
    {
      default_projection with
      proj_items = List.map (fun v -> { item_expr = Var v; item_alias = None }) vars;
    }

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                 *)
(* ------------------------------------------------------------------ *)

(** [expr_has_agg e] detects aggregate functions anywhere in [e] that are
    not nested inside another aggregate; used to split projection items
    into grouping keys and aggregates. *)
let rec expr_has_agg = function
  | Agg _ -> true
  | Lit _ | Var _ | Param _ -> false
  | Prop (e, _) | Has_labels (e, _) | Not e | Neg e | Is_null e
  | Is_not_null e ->
      expr_has_agg e
  | And (a, b) | Or (a, b) | Xor (a, b) | Cmp (_, a, b) | Bin (_, a, b)
  | Index (a, b) | Str_op (_, a, b) | In_list (a, b) ->
      expr_has_agg a || expr_has_agg b
  | Slice (e, a, b) ->
      expr_has_agg e
      || Option.fold ~none:false ~some:expr_has_agg a
      || Option.fold ~none:false ~some:expr_has_agg b
  | List_lit es -> List.exists expr_has_agg es
  | Map_lit kvs -> List.exists (fun (_, e) -> expr_has_agg e) kvs
  | Fn (_, es) -> List.exists expr_has_agg es
  | Case { case_operand; case_whens; case_default } ->
      Option.fold ~none:false ~some:expr_has_agg case_operand
      || List.exists (fun (a, b) -> expr_has_agg a || expr_has_agg b) case_whens
      || Option.fold ~none:false ~some:expr_has_agg case_default
  | List_comp { comp_source; comp_where; comp_body; _ } ->
      expr_has_agg comp_source
      || Option.fold ~none:false ~some:expr_has_agg comp_where
      || Option.fold ~none:false ~some:expr_has_agg comp_body
  | Quantifier { q_source; q_pred; _ } ->
      expr_has_agg q_source || expr_has_agg q_pred
  | Pattern_pred patterns ->
      List.exists
        (fun p ->
          List.exists (fun (_, e) -> expr_has_agg e) p.pat_start.np_props
          || List.exists
               (fun (rp, np) ->
                 List.exists (fun (_, e) -> expr_has_agg e) rp.rp_props
                 || List.exists (fun (_, e) -> expr_has_agg e) np.np_props)
               p.pat_steps)
        patterns
  | Pattern_comp { pc_where; pc_body; _ } ->
      Option.fold ~none:false ~some:expr_has_agg pc_where
      || expr_has_agg pc_body
  | Shortest_path _ -> false
  | Reduce { red_init; red_source; red_body; _ } ->
      expr_has_agg red_init || expr_has_agg red_source
      || expr_has_agg red_body

(** Free variable occurrences of an expression, with duplicates:
    variables the expression reads that are not bound locally by a list
    comprehension, quantifier or [reduce].  Variables appearing in
    pattern positions (pattern predicates and comprehensions,
    [shortestPath]) are over-approximated as free.  Used by the match
    planner to decide whether an expression is evaluable under a given
    set of bindings — an over-approximation only costs planning
    opportunities, never correctness. *)
let expr_free_vars e =
  let opt bound acc go = function None -> acc | Some e -> go bound acc e in
  let rec go bound acc = function
    | Var v -> if List.mem v bound then acc else v :: acc
    | Lit _ | Param _ -> acc
    | Prop (e, _) | Has_labels (e, _) | Not e | Neg e | Is_null e
    | Is_not_null e ->
        go bound acc e
    | And (a, b) | Or (a, b) | Xor (a, b) | Cmp (_, a, b) | Bin (_, a, b)
    | Index (a, b) | Str_op (_, a, b) | In_list (a, b) ->
        go bound (go bound acc a) b
    | Slice (e, a, b) -> opt bound (opt bound (go bound acc e) go a) go b
    | List_lit es | Fn (_, es) -> List.fold_left (go bound) acc es
    | Map_lit kvs -> List.fold_left (fun acc (_, e) -> go bound acc e) acc kvs
    | Agg (_, _, eo) -> opt bound acc go eo
    | Case { case_operand; case_whens; case_default } ->
        let acc = opt bound acc go case_operand in
        let acc =
          List.fold_left
            (fun acc (a, b) -> go bound (go bound acc a) b)
            acc case_whens
        in
        opt bound acc go case_default
    | List_comp { comp_var; comp_source; comp_where; comp_body } ->
        let acc = go bound acc comp_source in
        let bound = comp_var :: bound in
        opt bound (opt bound acc go comp_where) go comp_body
    | Quantifier { q_var; q_source; q_pred; _ } ->
        go (q_var :: bound) (go bound acc q_source) q_pred
    | Reduce { red_acc; red_init; red_var; red_source; red_body } ->
        go
          (red_acc :: red_var :: bound)
          (go bound (go bound acc red_init) red_source)
          red_body
    | Pattern_pred ps -> List.fold_left (go_pattern bound) acc ps
    | Pattern_comp { pc_pattern; pc_where; pc_body } ->
        let acc = go_pattern bound acc pc_pattern in
        opt bound (go bound acc pc_body) go pc_where
    | Shortest_path { sp_pattern; _ } -> go_pattern bound acc sp_pattern
  and go_pattern bound acc (p : pattern) =
    (* variable names of the pattern count as free references; its
       property expressions are walked recursively *)
    let node_pat acc (np : node_pat) =
      let acc = Option.fold ~none:acc ~some:(fun v -> v :: acc) np.np_var in
      List.fold_left (fun acc (_, e) -> go bound acc e) acc np.np_props
    in
    let acc = node_pat acc p.pat_start in
    List.fold_left
      (fun acc ((rp : rel_pat), np) ->
        let acc = Option.fold ~none:acc ~some:(fun v -> v :: acc) rp.rp_var in
        let acc =
          List.fold_left (fun acc (_, e) -> go bound acc e) acc rp.rp_props
        in
        node_pat acc np)
      acc p.pat_steps
  in
  go [] [] e

(** Variables bound by a pattern (path, node and relationship names). *)
let pattern_vars (p : pattern) =
  let node_var np = Option.to_list np.np_var in
  let step_vars (rp, np) = Option.to_list rp.rp_var @ node_var np in
  Option.to_list p.pat_var @ node_var p.pat_start
  @ List.concat_map step_vars p.pat_steps

let is_update_clause = function
  | Create _ | Set _ | Remove _ | Delete _ | Merge _ | Foreach _ -> true
  | Match _ | Unwind _ | With _ | Return _ -> false

let is_reading_clause = function
  | Match _ | Unwind _ -> true
  | With _ | Return _ | Create _ | Set _ | Remove _ | Delete _ | Merge _
  | Foreach _ ->
      false
