(** Pretty-printing of the AST back to Cypher concrete syntax.

    The output re-parses to the same AST (a qcheck property in the test
    suite), which also makes it a convenient canonical form for
    diagnostics and the REPL. *)

open Ast

let pp_escaped ppf s = Fmt.pf ppf "'%s'" (Cypher_graph.Value.escape_string s)

let pp_lit ppf = function
  | L_null -> Fmt.string ppf "null"
  | L_bool b -> Fmt.bool ppf b
  | L_int i -> Fmt.int ppf i
  | L_float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
      else Fmt.float ppf f
  | L_string s -> pp_escaped ppf s

let binop_sym = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Pow -> "^"

let cmpop_sym = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let strop_sym = function
  | Starts_with -> "STARTS WITH"
  | Ends_with -> "ENDS WITH"
  | Contains -> "CONTAINS"

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Collect -> "collect"

(* Expressions are printed fully parenthesised below the comparison
   level; this avoids a precedence table and still round-trips. *)
let rec pp_expr ppf = function
  | Lit l -> pp_lit ppf l
  | Var v -> Fmt.string ppf v
  | Param p -> Fmt.pf ppf "$%s" p
  | Prop (e, k) -> Fmt.pf ppf "%a.%s" pp_atom e k
  | Has_labels (e, ls) ->
      Fmt.pf ppf "%a%s" pp_atom e
        (String.concat "" (List.map (fun l -> ":" ^ l) ls))
  | Not e -> Fmt.pf ppf "(NOT %a)" pp_atom e
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Xor (a, b) -> Fmt.pf ppf "(%a XOR %a)" pp_expr a pp_expr b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (cmpop_sym op) pp_expr b
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_sym op) pp_expr b
  | Neg e -> Fmt.pf ppf "(-%a)" pp_atom e
  | Is_null e -> Fmt.pf ppf "(%a IS NULL)" pp_expr e
  | Is_not_null e -> Fmt.pf ppf "(%a IS NOT NULL)" pp_expr e
  | List_lit es -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_expr) es
  | Map_lit kvs -> pp_map ppf kvs
  | Index (e, i) -> Fmt.pf ppf "%a[%a]" pp_atom e pp_expr i
  | Slice (e, a, b) ->
      Fmt.pf ppf "%a[%a..%a]" pp_atom e
        Fmt.(option pp_expr)
        a
        Fmt.(option pp_expr)
        b
  | Str_op (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (strop_sym op) pp_expr b
  | In_list (a, b) -> Fmt.pf ppf "(%a IN %a)" pp_expr a pp_expr b
  | Fn (name, args) ->
      Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp_expr) args
  | Agg (kind, distinct, arg) -> (
      match arg with
      | None -> Fmt.pf ppf "count(*)"
      | Some e ->
          Fmt.pf ppf "%s(%s%a)" (agg_name kind)
            (if distinct then "DISTINCT " else "")
            pp_expr e)
  | Case { case_operand; case_whens; case_default } ->
      Fmt.pf ppf "CASE";
      Option.iter (fun e -> Fmt.pf ppf " %a" pp_expr e) case_operand;
      List.iter
        (fun (w, t) -> Fmt.pf ppf " WHEN %a THEN %a" pp_expr w pp_expr t)
        case_whens;
      Option.iter (fun e -> Fmt.pf ppf " ELSE %a" pp_expr e) case_default;
      Fmt.pf ppf " END"
  | List_comp { comp_var; comp_source; comp_where; comp_body } ->
      Fmt.pf ppf "[%s IN %a" comp_var pp_expr comp_source;
      Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) comp_where;
      Option.iter (fun e -> Fmt.pf ppf " | %a" pp_expr e) comp_body;
      Fmt.pf ppf "]"
  | Quantifier { q_kind; q_var; q_source; q_pred } ->
      let kw =
        match q_kind with
        | Q_all -> "all"
        | Q_any -> "any"
        | Q_none -> "none"
        | Q_single -> "single"
      in
      Fmt.pf ppf "%s(%s IN %a WHERE %a)" kw q_var pp_expr q_source pp_expr
        q_pred
  | Reduce { red_acc; red_init; red_var; red_source; red_body } ->
      Fmt.pf ppf "reduce(%s = %a, %s IN %a | %a)" red_acc pp_expr red_init
        red_var pp_expr red_source pp_expr red_body
  | Pattern_pred patterns ->
      Fmt.pf ppf "exists(%a)"
        Fmt.(list ~sep:(any ", ") pp_pattern)
        patterns
  | Pattern_comp { pc_pattern; pc_where; pc_body } ->
      Fmt.pf ppf "[%a" pp_pattern pc_pattern;
      Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) pc_where;
      Fmt.pf ppf " | %a]" pp_expr pc_body
  | Shortest_path { sp_all; sp_pattern } ->
      Fmt.pf ppf "%s(%a)"
        (if sp_all then "allShortestPaths" else "shortestPath")
        pp_pattern sp_pattern

and pp_atom ppf e =
  match e with
  | Lit _ | Var _ | Param _ | List_lit _ | Map_lit _ | Fn _ | Agg _ | Prop _
  | Index _ ->
      pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

and pp_map ppf kvs =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (k, e) -> pf ppf "%s: %a" k pp_expr e))
    kvs

(* ------------------------------------------------------------------ *)
(* Patterns                                                           *)
(* ------------------------------------------------------------------ *)

and pp_node_pat ppf np =
  Fmt.pf ppf "(%s%s%s)"
    (Option.value ~default:"" np.np_var)
    (String.concat "" (List.map (fun l -> ":" ^ l) np.np_labels))
    (if np.np_props = [] then ""
     else Fmt.str " %a" (fun ppf -> pp_map ppf) np.np_props)

and pp_rel_pat ppf rp =
  let body ppf () =
    let name = Option.value ~default:"" rp.rp_var in
    let types =
      match rp.rp_types with
      | [] -> ""
      | ts -> ":" ^ String.concat "|" ts
    in
    let range =
      match rp.rp_range with
      | None -> ""
      | Some (lo, hi) ->
          let s = function None -> "" | Some n -> string_of_int n in
          Fmt.str "*%s..%s" (s lo) (s hi)
    in
    let props =
      if rp.rp_props = [] then ""
      else Fmt.str " %a" (fun ppf -> pp_map ppf) rp.rp_props
    in
    Fmt.pf ppf "[%s%s%s%s]" name types range props
  in
  match rp.rp_dir with
  | Out -> Fmt.pf ppf "-%a->" body ()
  | In -> Fmt.pf ppf "<-%a-" body ()
  | Undirected -> Fmt.pf ppf "-%a-" body ()

and pp_pattern ppf p =
  Option.iter (fun v -> Fmt.pf ppf "%s = " v) p.pat_var;
  pp_node_pat ppf p.pat_start;
  List.iter
    (fun (rp, np) -> Fmt.pf ppf "%a%a" pp_rel_pat rp pp_node_pat np)
    p.pat_steps

let pp_patterns ppf ps = Fmt.(list ~sep:(any ", ") pp_pattern) ppf ps

(* ------------------------------------------------------------------ *)
(* Clauses                                                            *)
(* ------------------------------------------------------------------ *)

let pp_set_item ppf = function
  | Set_prop (e, k, v) -> Fmt.pf ppf "%a.%s = %a" pp_atom e k pp_expr v
  | Set_all_props (e, v) -> Fmt.pf ppf "%a = %a" pp_atom e pp_expr v
  | Set_merge_props (e, v) -> Fmt.pf ppf "%a += %a" pp_atom e pp_expr v
  | Set_labels (e, ls) ->
      Fmt.pf ppf "%a%s" pp_atom e
        (String.concat "" (List.map (fun l -> ":" ^ l) ls))

let pp_remove_item ppf = function
  | Rem_prop (e, k) -> Fmt.pf ppf "%a.%s" pp_atom e k
  | Rem_labels (e, ls) ->
      Fmt.pf ppf "%a%s" pp_atom e
        (String.concat "" (List.map (fun l -> ":" ^ l) ls))

let pp_proj_item ppf { item_expr; item_alias } =
  match item_alias with
  | None -> pp_expr ppf item_expr
  | Some a -> Fmt.pf ppf "%a AS %s" pp_expr item_expr a

let pp_projection keyword ppf p =
  Fmt.pf ppf "%s %s" keyword (if p.proj_distinct then "DISTINCT " else "");
  if p.proj_star then (
    Fmt.string ppf "*";
    if p.proj_items <> [] then
      Fmt.pf ppf ", %a" Fmt.(list ~sep:(any ", ") pp_proj_item) p.proj_items)
  else Fmt.(list ~sep:(any ", ") pp_proj_item) ppf p.proj_items;
  if p.proj_order <> [] then
    Fmt.pf ppf " ORDER BY %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf s ->
            pf ppf "%a%s" pp_expr s.sort_expr
              (if s.sort_ascending then "" else " DESC")))
      p.proj_order;
  Option.iter (fun e -> Fmt.pf ppf " SKIP %a" pp_expr e) p.proj_skip;
  Option.iter (fun e -> Fmt.pf ppf " LIMIT %a" pp_expr e) p.proj_limit;
  Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) p.proj_where

let merge_keyword = function
  | Merge_legacy -> "MERGE"
  | Merge_all -> "MERGE ALL"
  | Merge_same -> "MERGE SAME"
  | Merge_grouping -> "MERGE GROUPING"
  | Merge_weak_collapse -> "MERGE WEAK"
  | Merge_collapse -> "MERGE COLLAPSE"

let rec pp_clause ppf = function
  | Match { optional; patterns; where } ->
      Fmt.pf ppf "%sMATCH %a" (if optional then "OPTIONAL " else "") pp_patterns
        patterns;
      Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) where
  | Unwind { source; alias } ->
      Fmt.pf ppf "UNWIND %a AS %s" pp_expr source alias
  | With p -> pp_projection "WITH" ppf p
  | Return p -> pp_projection "RETURN" ppf p
  | Create ps -> Fmt.pf ppf "CREATE %a" pp_patterns ps
  | Set items ->
      Fmt.pf ppf "SET %a" Fmt.(list ~sep:(any ", ") pp_set_item) items
  | Remove items ->
      Fmt.pf ppf "REMOVE %a" Fmt.(list ~sep:(any ", ") pp_remove_item) items
  | Delete { detach; targets } ->
      Fmt.pf ppf "%sDELETE %a"
        (if detach then "DETACH " else "")
        Fmt.(list ~sep:(any ", ") pp_expr)
        targets
  | Merge { mode; patterns; on_create; on_match } ->
      Fmt.pf ppf "%s %a" (merge_keyword mode) pp_patterns patterns;
      if on_create <> [] then
        Fmt.pf ppf " ON CREATE SET %a"
          Fmt.(list ~sep:(any ", ") pp_set_item)
          on_create;
      if on_match <> [] then
        Fmt.pf ppf " ON MATCH SET %a"
          Fmt.(list ~sep:(any ", ") pp_set_item)
          on_match
  | Foreach { fe_var; fe_source; fe_body } ->
      Fmt.pf ppf "FOREACH (%s IN %a | %a)" fe_var pp_expr fe_source
        Fmt.(list ~sep:(any " ") pp_clause)
        fe_body

let rec pp_query ppf q =
  Fmt.(list ~sep:(any "@ ") pp_clause) ppf q.clauses;
  match q.union with
  | None -> ()
  | Some (all, q') ->
      Fmt.pf ppf "@ UNION%s@ %a" (if all then " ALL" else "") pp_query q'

let query_to_string q = Fmt.str "@[<h>%a@]" pp_query q
let expr_to_string e = Fmt.str "%a" pp_expr e
let clause_to_string c = Fmt.str "@[<h>%a@]" pp_clause c
let pattern_to_string p = Fmt.str "%a" pp_pattern p
