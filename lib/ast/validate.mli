(** Static validation of queries against a dialect.

    The same AST serves three dialects:

    - {!Cypher9}: the grammar of Figures 2–5.  Update patterns are
      restricted (CREATE takes tuples of *directed* patterns, MERGE a
      *single*, possibly undirected pattern), reading clauses may not
      follow update clauses without an intervening WITH (Section 4.4),
      and [MERGE ALL]/[MERGE SAME] do not exist.
    - {!Revised}: the streamlined grammar of Figure 10.  Clauses compose
      freely, CREATE and MERGE uniformly take tuples of directed
      patterns, and plain [MERGE] is no longer allowed (Section 7).
    - {!Permissive}: anything the parser accepts, including the
      experimental [MERGE GROUPING]/[WEAK]/[COLLAPSE] spellings for the
      other Section 6 proposals. *)

type dialect = Cypher9 | Revised | Permissive

type error = { message : string }

(** [validate dialect q] checks [q] against [dialect]'s restrictions. *)
val validate : dialect -> Ast.query -> (Ast.query, string) result
