(** Built-in scalar functions.

    Functions are looked up by lowercase name; most follow Cypher's null
    discipline (a null argument yields null).  Entity inspection
    functions (id, labels, type, …) read the graph in the context.

    Implemented: id, labels, type, properties, keys, exists, startNode,
    endNode, nodes, relationships, length, size, head, last, tail,
    reverse, range, coalesce, toString, toInteger, toFloat, toBoolean,
    abs, sign, sqrt, exp, log, log10, floor, ceil, round, sin, cos,
    tan, asin, acos, atan, atan2, pi, e, toUpper, toLower, trim, ltrim,
    rtrim, left, right, substring, split, replace. *)

open Cypher_graph

(** String rendering used by [toString] and string concatenation:
    unquoted strings, Cypher syntax for everything else. *)
val display_string : Value.t -> string

(** [apply ctx name args] applies built-in [name] to evaluated [args].
    @raise Ctx.Error on unknown names or ill-typed arguments. *)
val apply : Ctx.t -> string -> Value.t list -> Value.t
