(** Built-in scalar functions.

    Functions are looked up by lowercase name; most follow Cypher's null
    discipline (a null argument yields null).  Entity inspection
    functions (id, labels, type, …) read the graph in the context. *)

open Cypher_graph

let type_name = function
  | Value.Null -> "null"
  | Value.Bool _ -> "boolean"
  | Value.Int _ -> "integer"
  | Value.Float _ -> "float"
  | Value.String _ -> "string"
  | Value.List _ -> "list"
  | Value.Map _ -> "map"
  | Value.Node _ -> "node"
  | Value.Rel _ -> "relationship"
  | Value.Path _ -> "path"

let bad_arg name v =
  Ctx.error "%s: unexpected argument of type %s" name (type_name v)

let wrong_arity name n = Ctx.error "%s: expected %d argument(s)" name n

(** String rendering used by [toString] and string concatenation:
    unquoted strings, Cypher syntax for everything else. *)
let rec display_string v =
  match v with
  | Value.String s -> s
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else string_of_float f
  | Value.Null -> "null"
  | Value.List l -> "[" ^ String.concat ", " (List.map display_string l) ^ "]"
  | Value.Map _ | Value.Node _ | Value.Rel _ | Value.Path _ ->
      Value.to_string v

let entity_props (ctx : Ctx.t) name v =
  match v with
  | Value.Node id -> Graph.node_props_of ctx.graph id
  | Value.Rel id -> Graph.rel_props_of ctx.graph id
  | Value.Map m -> m
  | v -> bad_arg name v

let the_rel (ctx : Ctx.t) name v =
  match v with
  | Value.Rel id -> (
      match Graph.rel ctx.graph id with
      | Some r -> r
      | None -> Ctx.error "%s: relationship %d has been deleted" name id)
  | v -> bad_arg name v

let float_fn name f = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Int i ] -> Value.Float (f (float_of_int i))
  | [ Value.Float x ] -> Value.Float (f x)
  | [ v ] -> bad_arg name v
  | _ -> wrong_arity name 1

let string_fn name f = function
  | [ Value.Null ] -> Value.Null
  | [ Value.String s ] -> Value.String (f s)
  | [ v ] -> bad_arg name v
  | _ -> wrong_arity name 1

(** [apply ctx name args] applies built-in [name] to evaluated [args]. *)
let apply (ctx : Ctx.t) name (args : Value.t list) : Value.t =
  match (name, args) with
  (* --- entity inspection ----------------------------------------- *)
  | "id", [ Value.Node id ] | "id", [ Value.Rel id ] -> Value.Int id
  | "id", [ Value.Null ] -> Value.Null
  | "id", [ v ] -> bad_arg name v
  | "labels", [ Value.Node id ] ->
      Value.List
        (List.map (fun l -> Value.String l) (Graph.labels_of ctx.graph id))
  | "labels", [ Value.Null ] -> Value.Null
  | "labels", [ v ] -> bad_arg name v
  | "type", [ Value.Null ] -> Value.Null
  | "type", [ v ] -> Value.String (the_rel ctx name v).Graph.r_type
  | "properties", [ Value.Null ] -> Value.Null
  | "properties", [ v ] -> Value.Map (entity_props ctx name v)
  | "keys", [ Value.Null ] -> Value.Null
  | "keys", [ v ] ->
      Value.List
        (List.map (fun k -> Value.String k) (Props.keys (entity_props ctx name v)))
  | "exists", [ Value.Null ] -> Value.Bool false
  | "exists", [ _ ] -> Value.Bool true
  | "startnode", [ Value.Null ] -> Value.Null
  | "startnode", [ v ] -> Value.Node (the_rel ctx name v).Graph.src
  | "endnode", [ Value.Null ] -> Value.Null
  | "endnode", [ v ] -> Value.Node (the_rel ctx name v).Graph.tgt
  (* --- path functions -------------------------------------------- *)
  | "nodes", [ Value.Path p ] ->
      Value.List (List.map (fun id -> Value.Node id) p.Value.path_nodes)
  | "nodes", [ Value.Null ] -> Value.Null
  | "nodes", [ v ] -> bad_arg name v
  | "relationships", [ Value.Path p ] ->
      Value.List (List.map (fun id -> Value.Rel id) p.Value.path_rels)
  | "relationships", [ Value.Null ] -> Value.Null
  | "relationships", [ v ] -> bad_arg name v
  | "length", [ Value.Path p ] -> Value.Int (List.length p.Value.path_rels)
  | "length", [ Value.Null ] -> Value.Null
  | "length", [ Value.String s ] -> Value.Int (String.length s)
  | "length", [ Value.List l ] -> Value.Int (List.length l)
  | "length", [ v ] -> bad_arg name v
  (* --- collections ------------------------------------------------ *)
  | "size", [ Value.Null ] -> Value.Null
  | "size", [ Value.List l ] -> Value.Int (List.length l)
  | "size", [ Value.String s ] -> Value.Int (String.length s)
  | "size", [ Value.Map m ] -> Value.Int (List.length (Props.bindings m))
  | "size", [ v ] -> bad_arg name v
  | "head", [ Value.Null ] -> Value.Null
  | "head", [ Value.List [] ] -> Value.Null
  | "head", [ Value.List (x :: _) ] -> x
  | "head", [ v ] -> bad_arg name v
  | "last", [ Value.Null ] -> Value.Null
  | "last", [ Value.List [] ] -> Value.Null
  | "last", [ Value.List l ] -> List.nth l (List.length l - 1)
  | "last", [ v ] -> bad_arg name v
  | "tail", [ Value.Null ] -> Value.Null
  | "tail", [ Value.List [] ] -> Value.List []
  | "tail", [ Value.List (_ :: rest) ] -> Value.List rest
  | "tail", [ v ] -> bad_arg name v
  | "reverse", [ Value.Null ] -> Value.Null
  | "reverse", [ Value.List l ] -> Value.List (List.rev l)
  | "reverse", [ Value.String s ] ->
      Value.String
        (String.init (String.length s) (fun i ->
             s.[String.length s - 1 - i]))
  | "reverse", [ v ] -> bad_arg name v
  | "range", [ Value.Int a; Value.Int b ] ->
      if b < a then Value.List []
      else Value.List (List.init (b - a + 1) (fun i -> Value.Int (a + i)))
  | "range", [ Value.Int a; Value.Int b; Value.Int step ] ->
      if step = 0 then Ctx.error "range: step must be non-zero"
      else
        let rec build acc x =
          if (step > 0 && x > b) || (step < 0 && x < b) then List.rev acc
          else build (Value.Int x :: acc) (x + step)
        in
        Value.List (build [] a)
  | "range", _ -> Ctx.error "range: expected integer arguments"
  (* --- coalescing and conversion ---------------------------------- *)
  | "coalesce", args -> (
      match List.find_opt (fun v -> not (Value.is_null v)) args with
      | Some v -> v
      | None -> Value.Null)
  | "tostring", [ Value.Null ] -> Value.Null
  | "tostring", [ v ] -> Value.String (display_string v)
  | "tointeger", [ Value.Null ] -> Value.Null
  | "tointeger", [ Value.Int i ] -> Value.Int i
  | "tointeger", [ Value.Float f ] -> Value.Int (int_of_float f)
  | "tointeger", [ Value.String s ] -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> Value.Int i
      | None -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> Value.Int (int_of_float f)
          | None -> Value.Null))
  | "tointeger", [ v ] -> bad_arg name v
  | "tofloat", [ Value.Null ] -> Value.Null
  | "tofloat", [ Value.Int i ] -> Value.Float (float_of_int i)
  | "tofloat", [ Value.Float f ] -> Value.Float f
  | "tofloat", [ Value.String s ] -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.Float f
      | None -> Value.Null)
  | "tofloat", [ v ] -> bad_arg name v
  | "toboolean", [ Value.Null ] -> Value.Null
  | "toboolean", [ Value.Bool b ] -> Value.Bool b
  | "toboolean", [ Value.String s ] -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | _ -> Value.Null)
  | "toboolean", [ v ] -> bad_arg name v
  (* --- numeric ----------------------------------------------------- *)
  | "abs", [ Value.Null ] -> Value.Null
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "abs", [ v ] -> bad_arg name v
  | "sign", [ Value.Null ] -> Value.Null
  | "sign", [ Value.Int i ] -> Value.Int (compare i 0)
  | "sign", [ Value.Float f ] -> Value.Int (compare f 0.)
  | "sign", [ v ] -> bad_arg name v
  | "sqrt", args -> float_fn name Float.sqrt args
  | "exp", args -> float_fn name Float.exp args
  | "log", args -> float_fn name Float.log args
  | "log10", args -> float_fn name Float.log10 args
  | "floor", args -> float_fn name Float.floor args
  | "ceil", args -> float_fn name Float.ceil args
  | "round", args -> float_fn name Float.round args
  | "sin", args -> float_fn name Float.sin args
  | "cos", args -> float_fn name Float.cos args
  | "tan", args -> float_fn name Float.tan args
  | "asin", args -> float_fn name Float.asin args
  | "acos", args -> float_fn name Float.acos args
  | "atan", args -> float_fn name Float.atan args
  | "atan2", [ Value.Null; _ ] | "atan2", [ _; Value.Null ] -> Value.Null
  | "atan2", [ y; x ] -> (
      let f = function
        | Value.Int i -> float_of_int i
        | Value.Float v -> v
        | v -> bad_arg name v
      in
      Value.Float (Float.atan2 (f y) (f x)))
  | "atan2", _ -> wrong_arity name 2
  | "pi", [] -> Value.Float Float.pi
  | "e", [] -> Value.Float (Float.exp 1.0)
  (* --- strings ------------------------------------------------------ *)
  | "toupper", args -> string_fn name String.uppercase_ascii args
  | "tolower", args -> string_fn name String.lowercase_ascii args
  | "trim", args -> string_fn name String.trim args
  | "ltrim", args ->
      string_fn name
        (fun s ->
          let n = String.length s in
          let rec first i = if i < n && s.[i] = ' ' then first (i + 1) else i in
          let i = first 0 in
          String.sub s i (n - i))
        args
  | "rtrim", args ->
      string_fn name
        (fun s ->
          let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
          let i = last (String.length s) in
          String.sub s 0 i)
        args
  | "left", [ Value.String s; Value.Int n ] ->
      Value.String (String.sub s 0 (min n (String.length s)))
  | "left", [ Value.Null; _ ] -> Value.Null
  | "left", _ -> Ctx.error "left: expected (string, integer)"
  | "right", [ Value.String s; Value.Int n ] ->
      let n = min n (String.length s) in
      Value.String (String.sub s (String.length s - n) n)
  | "right", [ Value.Null; _ ] -> Value.Null
  | "right", _ -> Ctx.error "right: expected (string, integer)"
  | "substring", [ Value.String s; Value.Int start ] ->
      let n = String.length s in
      let start = max 0 (min start n) in
      Value.String (String.sub s start (n - start))
  | "substring", [ Value.String s; Value.Int start; Value.Int len ] ->
      let n = String.length s in
      let start = max 0 (min start n) in
      let len = max 0 (min len (n - start)) in
      Value.String (String.sub s start len)
  | "substring", (Value.Null :: _) -> Value.Null
  | "substring", _ -> Ctx.error "substring: expected (string, integer[, integer])"
  | "split", [ Value.String s; Value.String sep ] ->
      if sep = "" then Ctx.error "split: empty separator"
      else
        let parts = ref [] in
        let buf = Buffer.create 16 in
        let slen = String.length sep in
        let i = ref 0 in
        while !i < String.length s do
          if
            !i + slen <= String.length s
            && String.sub s !i slen = sep
          then (
            parts := Buffer.contents buf :: !parts;
            Buffer.clear buf;
            i := !i + slen)
          else (
            Buffer.add_char buf s.[!i];
            incr i)
        done;
        parts := Buffer.contents buf :: !parts;
        Value.List (List.rev_map (fun s -> Value.String s) !parts)
  | "split", (Value.Null :: _) -> Value.Null
  | "split", _ -> Ctx.error "split: expected (string, string)"
  | "replace", [ Value.String s; Value.String from_s; Value.String to_s ] ->
      if from_s = "" then Value.String s
      else
        let buf = Buffer.create (String.length s) in
        let flen = String.length from_s in
        let i = ref 0 in
        while !i < String.length s do
          if !i + flen <= String.length s && String.sub s !i flen = from_s
          then (
            Buffer.add_string buf to_s;
            i := !i + flen)
          else (
            Buffer.add_char buf s.[!i];
            incr i)
        done;
        Value.String (Buffer.contents buf)
  | "replace", (Value.Null :: _) -> Value.Null
  | "replace", _ -> Ctx.error "replace: expected (string, string, string)"
  | name, args ->
      Ctx.error "unknown function %s/%d" name (List.length args)
