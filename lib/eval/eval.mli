(** Expression semantics [[e]]G,u (Section 8.1).

    Evaluation is pure: it reads the graph and the record (assignment)
    in the context and produces a value.  Failures raise
    {!Cypher_eval.Ctx.Error}, caught at the statement boundary. *)

open Cypher_graph
open Cypher_ast.Ast

(** Truth value of an arbitrary value in predicate position.
    @raise Ctx.Error on non-boolean, non-null values. *)
val truth : Value.t -> Tri.t

val of_truth : Tri.t -> Value.t
val lit_value : lit -> Value.t

(** Binary arithmetic with Cypher's null propagation and type rules
    (string and list concatenation under [+], integer division, float
    power). *)
val arith : binop -> Value.t -> Value.t -> Value.t

(** [eval ctx e] is [[e]]G,u for the graph and assignment in [ctx].
    Aggregates require a grouping context ({!Ctx.with_group}). *)
val eval : Ctx.t -> expr -> Value.t

(** [eval_truth ctx e] is the predicate value of [e] (for WHERE). *)
val eval_truth : Ctx.t -> expr -> Tri.t

(** Evaluates the property map of an update pattern; null values are
    dropped (creating a property as null stores nothing — the Example 5
    discipline). *)
val eval_props : Ctx.t -> (string * expr) list -> Props.t
