(** Evaluation context: the graph G and assignment u of [[e]]G,u, plus
    query parameters and (during projection) the rows of the current
    aggregation group. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table

type t = {
  graph : Graph.t;
  row : Record.t;
  params : Value.t Smap.t;
  group : Record.t list option;
      (** [Some rows] while evaluating aggregating projection items *)
  pattern_oracle : (t -> Cypher_ast.Ast.pattern list -> Record.t list) option;
      (** computes the embeddings of a pattern tuple extending the
          current record — the basis for pattern predicates such as
          [exists((a)-[:T]->(b))] and for pattern comprehensions;
          injected by the engine so the evaluator does not depend on
          the matcher *)
  shortest_oracle :
    (t -> all:bool -> Cypher_ast.Ast.pattern -> Value.t) option;
      (** computes shortestPath / allShortestPaths between bound
          endpoints; injected by the engine *)
}

val make :
  ?params:Value.t Smap.t ->
  ?pattern_oracle:(t -> Cypher_ast.Ast.pattern list -> Record.t list) ->
  ?shortest_oracle:(t -> all:bool -> Cypher_ast.Ast.pattern -> Value.t) ->
  Graph.t ->
  Record.t ->
  t
val with_row : t -> Record.t -> t
val with_group : t -> Record.t list -> t
val without_group : t -> t

(** [with_row_no_group ctx row] is
    [without_group (with_row ctx row)] in one allocation. *)
val with_row_no_group : t -> Record.t -> t

(** Evaluation failure (type errors, unknown variables, division by
    zero, …).  Caught at the statement boundary and surfaced as a typed
    error by the engine. *)
exception Error of string

(** [error fmt ...] raises {!Error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** A broken engine invariant, as opposed to a user-level evaluation
    failure.  Mapped to [Errors.Internal_error] at the statement
    boundary so a long-lived server reports it and survives. *)
exception Internal of string

(** [internal fmt ...] raises {!Internal} with a formatted message. *)
val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a
