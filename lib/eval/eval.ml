(** Expression semantics [[e]]G,u (Section 8.1).

    Evaluation is pure: it reads the graph and the record (assignment)
    in the context and produces a value.  Predicates follow Cypher's
    ternary logic; {!truth} converts a value to {!Cypher_graph.Tri.t}. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_ast.Ast

let error = Ctx.error

(** Truth value of an arbitrary value in predicate position. *)
let truth : Value.t -> Tri.t = function
  | Value.Bool true -> Tri.True
  | Value.Bool false -> Tri.False
  | Value.Null -> Tri.Unknown
  | v -> error "expected a boolean predicate, got %s" (Value.to_string v)

let of_truth : Tri.t -> Value.t = function
  | Tri.True -> Value.Bool true
  | Tri.False -> Value.Bool false
  | Tri.Unknown -> Value.Null

let lit_value = function
  | L_null -> Value.Null
  | L_bool b -> Value.Bool b
  | L_int i -> Value.Int i
  | L_float f -> Value.Float f
  | L_string s -> Value.String s

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                         *)
(* ------------------------------------------------------------------ *)

let arith op a b =
  match (op, a, b) with
  | _, Value.Null, _ | _, _, Value.Null -> Value.Null
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Add, Value.Float x, Value.Float y -> Value.Float (x +. y)
  | Add, Value.Int x, Value.Float y -> Value.Float (float_of_int x +. y)
  | Add, Value.Float x, Value.Int y -> Value.Float (x +. float_of_int y)
  | Add, Value.String x, (Value.String _ | Value.Int _ | Value.Float _ | Value.Bool _) ->
      Value.String (x ^ Functions.display_string b)
  | Add, (Value.Int _ | Value.Float _ | Value.Bool _), Value.String y ->
      Value.String (Functions.display_string a ^ y)
  | Add, Value.List x, Value.List y -> Value.List (x @ y)
  | Add, Value.List x, y -> Value.List (x @ [ y ])
  | Add, x, Value.List y -> Value.List (x :: y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Sub, Value.Float x, Value.Float y -> Value.Float (x -. y)
  | Sub, Value.Int x, Value.Float y -> Value.Float (float_of_int x -. y)
  | Sub, Value.Float x, Value.Int y -> Value.Float (x -. float_of_int y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Mul, Value.Float x, Value.Float y -> Value.Float (x *. y)
  | Mul, Value.Int x, Value.Float y -> Value.Float (float_of_int x *. y)
  | Mul, Value.Float x, Value.Int y -> Value.Float (x *. float_of_int y)
  | Div, Value.Int _, Value.Int 0 -> error "division by zero"
  | Div, Value.Int x, Value.Int y -> Value.Int (x / y)
  | Div, Value.Float x, Value.Float y -> Value.Float (x /. y)
  | Div, Value.Int x, Value.Float y -> Value.Float (float_of_int x /. y)
  | Div, Value.Float x, Value.Int y -> Value.Float (x /. float_of_int y)
  | Mod, Value.Int _, Value.Int 0 -> error "modulo by zero"
  | Mod, Value.Int x, Value.Int y -> Value.Int (x mod y)
  | Mod, Value.Float x, Value.Float y -> Value.Float (Float.rem x y)
  | Mod, Value.Int x, Value.Float y -> Value.Float (Float.rem (float_of_int x) y)
  | Mod, Value.Float x, Value.Int y -> Value.Float (Float.rem x (float_of_int y))
  | Pow, x, y -> (
      let f = function
        | Value.Int i -> float_of_int i
        | Value.Float f -> f
        | v -> error "cannot exponentiate %s" (Value.to_string v)
      in
      match (x, y) with
      | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
          Value.Float (Float.pow (f x) (f y))
      | _ -> error "cannot exponentiate non-numbers")
  | op, a, b ->
      error "type error: %s %s %s"
        (Value.to_string a)
        (match op with
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "/"
        | Mod -> "%"
        | Pow -> "^")
        (Value.to_string b)

(* ------------------------------------------------------------------ *)
(* Main recursion                                                     *)
(* ------------------------------------------------------------------ *)

let rec eval (ctx : Ctx.t) (e : expr) : Value.t =
  match e with
  | Lit l -> lit_value l
  | Var v -> (
      match Cypher_table.Record.find_opt ctx.row v with
      | Some x -> x
      | None -> error "variable `%s` is not defined" v)
  | Param p -> (
      match Smap.find_opt p ctx.params with
      | Some x -> x
      | None -> error "parameter $%s was not supplied" p)
  | Prop (e, key) -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | Value.Node id -> Props.get (Graph.node_props_of ctx.graph id) key
      | Value.Rel id -> Props.get (Graph.rel_props_of ctx.graph id) key
      | Value.Map m -> Props.get m key
      | v -> error "cannot access property .%s of %s" key (Value.to_string v))
  | Has_labels (e, labels) -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | Value.Node id ->
          Value.Bool (List.for_all (Graph.has_label ctx.graph id) labels)
      | v -> error "label predicate on non-node %s" (Value.to_string v))
  | Not e -> of_truth (Tri.neg (truth (eval ctx e)))
  | And (a, b) -> of_truth (Tri.conj (truth (eval ctx a)) (truth (eval ctx b)))
  | Or (a, b) -> of_truth (Tri.disj (truth (eval ctx a)) (truth (eval ctx b)))
  | Xor (a, b) -> of_truth (Tri.xor (truth (eval ctx a)) (truth (eval ctx b)))
  | Cmp (op, a, b) -> (
      let va = eval ctx a and vb = eval ctx b in
      match op with
      | Eq -> of_truth (Value.equal_tri va vb)
      | Neq -> of_truth (Tri.neg (Value.equal_tri va vb))
      | Lt | Le | Gt | Ge -> (
          match Value.compare_tri va vb with
          | Error () -> Value.Null
          | Ok c ->
              Value.Bool
                (match op with
                | Lt -> c < 0
                | Le -> c <= 0
                | Gt -> c > 0
                | Ge -> c >= 0
                | Eq | Neq -> assert false)))
  | Bin (op, a, b) -> arith op (eval ctx a) (eval ctx b)
  | Neg e -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> error "cannot negate %s" (Value.to_string v))
  | Is_null e -> Value.Bool (Value.is_null (eval ctx e))
  | Is_not_null e -> Value.Bool (not (Value.is_null (eval ctx e)))
  | List_lit es -> Value.List (List.map (eval ctx) es)
  | Map_lit kvs ->
      Value.Map
        (List.fold_left
           (fun m (k, e) -> Smap.add k (eval ctx e) m)
           Smap.empty kvs)
  | Index (e, i) -> (
      match (eval ctx e, eval ctx i) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.List l, Value.Int i ->
          let n = List.length l in
          let i = if i < 0 then n + i else i in
          if i < 0 || i >= n then Value.Null else List.nth l i
      | Value.Map m, Value.String k -> Props.get m k
      | (Value.Node id), Value.String k ->
          Props.get (Graph.node_props_of ctx.graph id) k
      | (Value.Rel id), Value.String k ->
          Props.get (Graph.rel_props_of ctx.graph id) k
      | v, i ->
          error "cannot index %s with %s" (Value.to_string v)
            (Value.to_string i))
  | Slice (e, lo, hi) -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | Value.List l ->
          let n = List.length l in
          let resolve default = function
            | None -> default
            | Some e -> (
                match eval ctx e with
                | Value.Int i -> if i < 0 then n + i else i
                | Value.Null -> default
                | v -> error "slice bound must be an integer, got %s"
                         (Value.to_string v))
          in
          let lo = max 0 (resolve 0 lo) and hi = min n (resolve n hi) in
          if hi <= lo then Value.List []
          else
            Value.List Cypher_util.Listx.(take (hi - lo) (drop lo l))
      | v -> error "cannot slice %s" (Value.to_string v))
  | Str_op (op, a, b) -> (
      match (eval ctx a, eval ctx b) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.String x, Value.String y ->
          let contains_sub s sub =
            let n = String.length s and m = String.length sub in
            let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
            m = 0 || loop 0
          in
          Value.Bool
            (match op with
            | Starts_with ->
                String.length y <= String.length x
                && String.sub x 0 (String.length y) = y
            | Ends_with ->
                String.length y <= String.length x
                && String.sub x (String.length x - String.length y)
                     (String.length y)
                   = y
            | Contains -> contains_sub x y)
      | v, w ->
          error "string predicate on %s and %s" (Value.to_string v)
            (Value.to_string w))
  | In_list (a, b) -> (
      let va = eval ctx a in
      match eval ctx b with
      | Value.Null -> Value.Null
      | Value.List l ->
          let combine acc x = Tri.disj acc (Value.equal_tri va x) in
          of_truth (List.fold_left combine Tri.False l)
      | v -> error "IN requires a list, got %s" (Value.to_string v))
  | Fn (name, args) -> Functions.apply ctx name (List.map (eval ctx) args)
  | Agg (kind, distinct, arg) -> eval_agg ctx kind distinct arg
  | Case { case_operand; case_whens; case_default } -> (
      let default () =
        match case_default with Some e -> eval ctx e | None -> Value.Null
      in
      match case_operand with
      | Some op_e ->
          let v = eval ctx op_e in
          let rec try_whens = function
            | [] -> default ()
            | (w, t) :: rest ->
                if Value.equal_tri v (eval ctx w) = Tri.True then eval ctx t
                else try_whens rest
          in
          try_whens case_whens
      | None ->
          let rec try_whens = function
            | [] -> default ()
            | (w, t) :: rest ->
                if truth (eval ctx w) = Tri.True then eval ctx t
                else try_whens rest
          in
          try_whens case_whens)
  | List_comp { comp_var; comp_source; comp_where; comp_body } -> (
      match eval ctx comp_source with
      | Value.Null -> Value.Null
      | Value.List l ->
          let per_elem x =
            let ctx' =
              { ctx with row = Cypher_table.Record.bind ctx.row comp_var x }
            in
            let keep =
              match comp_where with
              | None -> true
              | Some w -> truth (eval ctx' w) = Tri.True
            in
            if not keep then None
            else
              Some
                (match comp_body with None -> x | Some b -> eval ctx' b)
          in
          Value.List (List.filter_map per_elem l)
      | v -> error "list comprehension requires a list, got %s"
               (Value.to_string v))
  | Quantifier { q_kind; q_var; q_source; q_pred } -> (
      match eval ctx q_source with
      | Value.Null -> Value.Null
      | Value.List l ->
          let pred x =
            truth
              (eval
                 { ctx with row = Cypher_table.Record.bind ctx.row q_var x }
                 q_pred)
          in
          let ts = List.map pred l in
          let any = List.fold_left Tri.disj Tri.False ts in
          let all = List.fold_left Tri.conj Tri.True ts in
          of_truth
            (match q_kind with
            | Q_all -> all
            | Q_any -> any
            | Q_none -> Tri.neg any
            | Q_single ->
                (* exactly one true: more than one definite true is
                   false; unknowns make the count uncertain *)
                let trues =
                  List.length (List.filter (fun t -> t = Tri.True) ts)
                in
                let unknowns =
                  List.length (List.filter (fun t -> t = Tri.Unknown) ts)
                in
                if trues > 1 then Tri.False
                else if unknowns > 0 then Tri.Unknown
                else Tri.of_bool (trues = 1))
      | v -> error "quantifier requires a list, got %s" (Value.to_string v))
  | Reduce { red_acc; red_init; red_var; red_source; red_body } -> (
      match eval ctx red_source with
      | Value.Null -> Value.Null
      | Value.List l ->
          List.fold_left
            (fun acc x ->
              let row =
                Cypher_table.Record.bind
                  (Cypher_table.Record.bind ctx.row red_acc acc)
                  red_var x
              in
              eval { ctx with row } red_body)
            (eval ctx red_init) l
      | v -> error "reduce requires a list, got %s" (Value.to_string v))
  | Pattern_pred patterns -> (
      match ctx.pattern_oracle with
      | Some oracle -> Value.Bool (oracle ctx patterns <> [])
      | None ->
          error
            "pattern predicates are not available in this evaluation context")
  | Pattern_comp { pc_pattern; pc_where; pc_body } -> (
      match ctx.pattern_oracle with
      | Some oracle ->
          let embeddings = oracle ctx [ pc_pattern ] in
          let per_row row =
            let ctx' = { ctx with row } in
            let keep =
              match pc_where with
              | None -> true
              | Some w -> truth (eval ctx' w) = Tri.True
            in
            if keep then Some (eval ctx' pc_body) else None
          in
          Value.List (List.filter_map per_row embeddings)
      | None ->
          error
            "pattern comprehensions are not available in this evaluation \
             context")
  | Shortest_path { sp_all; sp_pattern } -> (
      match ctx.shortest_oracle with
      | Some oracle -> oracle ctx ~all:sp_all sp_pattern
      | None ->
          error "shortestPath is not available in this evaluation context")

(* ------------------------------------------------------------------ *)
(* Aggregates                                                         *)
(* ------------------------------------------------------------------ *)

and eval_agg (ctx : Ctx.t) kind distinct arg : Value.t =
  match ctx.group with
  | None -> error "aggregate function used outside RETURN/WITH"
  | Some rows -> (
      (* a bare-variable argument — the common count(x)/collect(x)
         shape — reads each row directly: same lookup and same error as
         the Var case of [eval], without allocating a per-row context.
         The lookup is layout-compiled against the first row
         ({!Cypher_table.Record.compile_find}), so a slot-row group
         reads each row by array probe instead of name resolution. *)
      let compiled_find v =
        match rows with
        | [] -> fun row -> Cypher_table.Record.find_opt row v
        | r0 :: _ -> Cypher_table.Record.compile_find r0 v
      in
      let per_row e =
        match e with
        | Var v ->
            let find = compiled_find v in
            List.map
              (fun row ->
                match find row with
                | Some x -> x
                | None -> error "variable `%s` is not defined" v)
              rows
        | e -> List.map (fun row -> eval (Ctx.with_row_no_group ctx row) e) rows
      in
      match (kind, arg) with
      | Count, None -> Value.Int (List.length rows)
      | _, None -> error "only count may be applied to *"
      | Count, Some (Var v) when not distinct ->
          (* counting a variable needs neither contexts nor a
             materialised value list *)
          let find = compiled_find v in
          Value.Int
            (List.fold_left
               (fun count row ->
                 match find row with
                 | Some x -> if Value.is_null x then count else count + 1
                 | None -> error "variable `%s` is not defined" v)
               0 rows)
      | kind, Some e -> (
          let values =
            List.filter (fun v -> not (Value.is_null v)) (per_row e)
          in
          let values =
            if distinct then
              List.sort_uniq Value.compare_total values
            else values
          in
          match kind with
          | Count -> Value.Int (List.length values)
          | Collect -> Value.List values
          | Sum ->
              List.fold_left (fun acc v -> arith Add acc v) (Value.Int 0) values
          | Avg -> (
              match values with
              | [] -> Value.Null
              | _ ->
                  let total =
                    List.fold_left
                      (fun acc v -> arith Add acc v)
                      (Value.Int 0) values
                  in
                  arith Div
                    (match total with
                    | Value.Int i -> Value.Float (float_of_int i)
                    | v -> v)
                    (Value.Int (List.length values)))
          | Min -> (
              match values with
              | [] -> Value.Null
              | v :: rest ->
                  List.fold_left
                    (fun acc v ->
                      if Value.compare_total v acc < 0 then v else acc)
                    v rest)
          | Max -> (
              match values with
              | [] -> Value.Null
              | v :: rest ->
                  List.fold_left
                    (fun acc v ->
                      if Value.compare_total v acc > 0 then v else acc)
                    v rest)))

(** [eval_truth ctx e] is the predicate value of [e] (for WHERE). *)
let eval_truth ctx e = truth (eval ctx e)

(** Evaluates the property map of an update pattern to a {!Props.t};
    null values are dropped (creating a property as null stores nothing —
    the Example 5 discipline). *)
let eval_props ctx (kvs : (string * expr) list) : Props.t =
  List.fold_left (fun acc (k, e) -> Props.set acc k (eval ctx e)) Props.empty kvs
