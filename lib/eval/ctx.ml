(** Evaluation context: the graph G and assignment u of [[e]]G,u, plus
    query parameters and (during projection) the rows of the current
    aggregation group. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table

type t = {
  graph : Graph.t;
  row : Record.t;
  params : Value.t Smap.t;
  group : Record.t list option;
      (** [Some rows] while evaluating aggregating projection items *)
  pattern_oracle : (t -> Cypher_ast.Ast.pattern list -> Record.t list) option;
      (** computes the embeddings of a pattern tuple extending the
          current record — the basis for pattern predicates such as
          [exists((a)-[:T]->(b))] and for pattern comprehensions;
          injected by the engine so the evaluator does not depend on
          the matcher *)
  shortest_oracle :
    (t -> all:bool -> Cypher_ast.Ast.pattern -> Value.t) option;
      (** computes shortestPath / allShortestPaths between bound
          endpoints; injected by the engine *)
}

let make ?(params = Smap.empty) ?pattern_oracle ?shortest_oracle graph row =
  { graph; row; params; group = None; pattern_oracle; shortest_oracle }

let with_row ctx row = { ctx with row }
let with_group ctx rows = { ctx with group = Some rows }
let without_group ctx = { ctx with group = None }

(** [with_row_no_group ctx row] is
    [without_group (with_row ctx row)] in one allocation — the
    per-group-row context of aggregate evaluation, built once per input
    row of every aggregating projection. *)
let with_row_no_group ctx row = { ctx with row; group = None }

(** Evaluation failure (type errors, unknown variables, division by
    zero, …).  Caught at the statement boundary and surfaced as a typed
    error by the engine. *)
exception Error of string

let error fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

(** A broken engine invariant (a guard admitted a shape its branch
    cannot handle).  Mapped to [Errors.Internal_error] at the statement
    boundary — distinct from {!Error} so user-level evaluation failures
    and engine bugs stay distinguishable to callers. *)
exception Internal of string

let internal fmt = Format.kasprintf (fun m -> raise (Internal m)) fmt
