(** The fuzzing driver: generate, run all ten oracles, shrink
    failures.

    One iteration derives a fresh splitmix64 stream from
    [seed + iteration], generates a (graph, statement) case and runs
    the round-trip, planner-equivalence, parallel-equivalence,
    divergence-classification, well-formedness, update-counter,
    durability, prepared-statement, backend-equivalence and
    concurrent-workload oracles ({!Oracles}).  The
    durability oracle extends the
    case with two more generated statements (a three-statement workload
    makes multi-record journals, so truncation sweeps cross record
    boundaries); the concurrent oracle generates 2–3 whole actor
    workloads and checks the server outcome against every serial order
    (linearizability).  Failures are shrunk with {!Shrink.minimize}
    under a predicate that reproduces the same oracle's failure, so the
    reported case is (locally) minimal — except concurrent failures,
    which thread interleaving makes nondeterministic; they are
    reported unshrunk. *)

module Graph = Cypher_graph.Graph
module Pretty = Cypher_ast.Pretty

type failure = {
  oracle : string;
  iteration : int;
  graph : Graph.t;
  query : Cypher_ast.Ast.query;
  detail : string;
}

type report = {
  seed : int;
  iterations : int;  (** cases run through each of the ten oracles *)
  agreements : int;  (** divergence-oracle runs where both regimes agree *)
  classified : (Oracles.category * int) list;  (** sanctioned divergences *)
  failures : failure list;  (** shrunk; empty on a clean run *)
}

let never_raises f = try f () with _ -> false

let run ?(seed = 0) ~count () =
  let failures = ref [] in
  let agreements = ref 0 in
  let counts = Hashtbl.create 8 in
  let bump cat =
    Hashtbl.replace counts cat (1 + Option.value ~default:0 (Hashtbl.find_opt counts cat))
  in
  let record ~oracle ~iteration ~fails g q detail =
    let fails g q = never_raises (fun () -> fails g q) in
    let g, q = if fails g q then Shrink.minimize ~fails g q else (g, q) in
    failures := { oracle; iteration; graph = g; query = q; detail } :: !failures
  in
  for i = 0 to count - 1 do
    let rng = Rng.make (seed + i) in
    let g = Gen.graph rng in
    let q = Gen.statement rng in
    (match Oracles.roundtrip q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"roundtrip" ~iteration:i
          ~fails:(fun _ q -> Result.is_error (Oracles.roundtrip q))
          g q detail);
    (match Oracles.planner_equivalence g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"planner" ~iteration:i
          ~fails:(fun g q -> Result.is_error (Oracles.planner_equivalence g q))
          g q detail);
    (match Oracles.parallel_equivalence g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"parallel" ~iteration:i
          ~fails:(fun g q ->
            Result.is_error (Oracles.parallel_equivalence g q))
          g q detail);
    (match Oracles.divergence g q with
    | Oracles.Agree -> incr agreements
    | Oracles.Classified cat -> bump cat
    | Oracles.Unclassified detail ->
        record ~oracle:"divergence" ~iteration:i
          ~fails:(fun g q ->
            match Oracles.divergence g q with
            | Oracles.Unclassified _ -> true
            | _ -> false)
          g q detail);
    (match Oracles.wellformed g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"wellformed" ~iteration:i
          ~fails:(fun g q -> Result.is_error (Oracles.wellformed g q))
          g q detail);
    (match Oracles.counters g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"counters" ~iteration:i
          ~fails:(fun g q -> Result.is_error (Oracles.counters g q))
          g q detail);
    (match Oracles.prepared g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"prepared" ~iteration:i
          ~fails:(fun g q -> Result.is_error (Oracles.prepared g q))
          g q detail);
    (match Oracles.backend_equivalence g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"backend" ~iteration:i
          ~fails:(fun g q ->
            Result.is_error (Oracles.backend_equivalence g q))
          g q detail);
    let extra = [ Gen.statement rng; Gen.statement rng ] in
    (match Oracles.durability ~extra g q with
    | Ok () -> ()
    | Error detail ->
        record ~oracle:"durability" ~iteration:i
          ~fails:(fun g q -> Result.is_error (Oracles.durability ~extra g q))
          g q detail);
    let actors = Gen.actors rng in
    match Oracles.concurrent g actors with
    | Ok () -> ()
    | Error detail ->
        (* thread interleaving makes reproduction nondeterministic:
           report the failing case unshrunk *)
        record ~oracle:"concurrent" ~iteration:i
          ~fails:(fun _ _ -> false)
          g q detail
  done;
  {
    seed;
    iterations = count;
    agreements = !agreements;
    classified =
      List.filter_map
        (fun cat ->
          match Hashtbl.find_opt counts cat with
          | Some n -> Some (cat, n)
          | None -> None)
        Oracles.all_categories;
    failures = List.rev !failures;
  }

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>[%s] iteration %d: %s@,statement: %s@,graph:@,%a@]" f.oracle
    f.iteration f.detail
    (Pretty.query_to_string f.query)
    Graph.pp f.graph

let pp_report ppf r =
  Fmt.pf ppf "@[<v>fuzz: seed %d, %d cases x 10 oracles@," r.seed r.iterations;
  Fmt.pf ppf "divergence oracle: %d agree, %d sanctioned divergences@,"
    r.agreements
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.classified);
  List.iter
    (fun (cat, n) ->
      Fmt.pf ppf "  %-18s %d@," (Oracles.category_name cat) n)
    r.classified;
  (match r.failures with
  | [] -> Fmt.pf ppf "no failures"
  | fs ->
      Fmt.pf ppf "%d FAILURE(S):@," (List.length fs);
      Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@,@,") pp_failure) fs);
  Fmt.pf ppf "@]"
