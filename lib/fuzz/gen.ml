(** Random generation of property graphs and Cypher statements.

    The generator is deliberately *closed over a small vocabulary*
    (labels A/B/C, relationship types T/U, integer keys k/x/id, string
    key s) so that random statements actually collide with random
    graphs: a MATCH stands a real chance of producing rows, a MERGE of
    matching something it did not just create, a SET of racing with
    another record.  A generator over fresh names would exercise almost
    nothing.

    Statements are generated against a *variable environment* so that
    every produced AST is scope-correct: SET/REMOVE/DELETE only target
    bound variables, WITH narrows the environment, FOREACH binds its
    element variable locally.  Type discipline is kept loose on purpose
    — properties are integers (and the occasional string), arithmetic
    stays on integer-valued keys — so that runs mostly exercise update
    semantics rather than dying in the expression evaluator.

    All randomness flows through {!Rng}; a (seed, iteration) pair fully
    determines the generated (graph, statement) case. *)

open Cypher_ast.Ast
module Graph = Cypher_graph.Graph
module Props = Cypher_graph.Props
module Value = Cypher_graph.Value

let labels = [| "A"; "B"; "C" |]
let rel_types = [| "T"; "U" |]
let int_keys = [| "k"; "x"; "id" |]

(* ------------------------------------------------------------------ *)
(* Graphs                                                             *)
(* ------------------------------------------------------------------ *)

let gen_node_props rng =
  let p = [] in
  let p = if Rng.chance rng 1 2 then ("k", Value.Int (Rng.range rng 0 3)) :: p else p in
  let p = if Rng.chance rng 1 3 then ("id", Value.Int (Rng.range rng 0 3)) :: p else p in
  let p =
    if Rng.chance rng 1 4 then ("s", Value.String (Rng.pick rng [| "a"; "b" |])) :: p
    else p
  in
  Props.of_list p

(** A small random graph: up to 6 nodes over labels A/B/C, up to 2n
    relationships of types T/U, integer properties drawn from a tiny
    value pool.  Half of the time the (A, id) property index is
    registered — before node creation (exercising incremental index
    maintenance) or after (exercising the build-from-existing path). *)
let graph rng =
  let n = Rng.range rng 0 6 in
  (* 0 = register the index first, 1 = register it last, 2 = no index *)
  let index_when = Rng.range rng 0 2 in
  let g = Graph.empty in
  let g = if index_when = 0 then Graph.add_prop_index ~label:"A" ~key:"id" g else g in
  let ids = ref [] in
  let g = ref g in
  for _ = 1 to n do
    let labs = List.filter (fun _ -> Rng.chance rng 1 2) [ "A"; "B"; "C" ] in
    let id, g' = Graph.create_node ~labels:labs ~props:(gen_node_props rng) !g in
    ids := id :: !ids;
    g := g'
  done;
  let ids = Array.of_list (List.rev !ids) in
  if Array.length ids > 0 then begin
    let m = Rng.range rng 0 (2 * n) in
    for _ = 1 to m do
      let src = Rng.pick rng ids and tgt = Rng.pick rng ids in
      let props =
        if Rng.chance rng 1 3 then Props.of_list [ ("k", Value.Int (Rng.range rng 0 3)) ]
        else Props.empty
      in
      let _, g' =
        Graph.create_rel ~src ~tgt ~r_type:(Rng.pick rng rel_types) ~props !g
      in
      g := g'
    done
  end;
  if index_when = 1 then Graph.add_prop_index ~label:"A" ~key:"id" !g else !g

(* ------------------------------------------------------------------ *)
(* Variable environments                                              *)
(* ------------------------------------------------------------------ *)

type env = {
  mutable nodes : string list;  (** bound node variables, oldest first *)
  mutable rels : string list;  (** bound relationship variables *)
  mutable scalars : string list;  (** bound scalar (integer) variables *)
  mutable next : int;  (** fresh-name counter *)
}

let new_env () = { nodes = []; rels = []; scalars = []; next = 0 }

let fresh env prefix =
  let i = env.next in
  env.next <- i + 1;
  Printf.sprintf "%s%d" prefix i

let fresh_node env =
  let v = fresh env "n" in
  env.nodes <- env.nodes @ [ v ];
  v

let fresh_rel env =
  let v = fresh env "r" in
  env.rels <- env.rels @ [ v ];
  v

let fresh_scalar env =
  let v = fresh env "u" in
  env.scalars <- env.scalars @ [ v ];
  v

let all_vars env = env.nodes @ env.rels @ env.scalars

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let small_int rng = Lit (L_int (Rng.range rng 0 4))
let a_label rng = Rng.pick rng labels
let an_int_key rng = Rng.pick rng int_keys

(** A scalar (integer-valued) expression readable under [ctx_nodes] and
    [ctx_scalars] — snapshots of the environment taken *before* the
    clause under construction, so that e.g. a CREATE's property
    expressions never read variables the same clause is introducing. *)
let value_expr rng ~ctx_nodes ~ctx_scalars =
  let prop_of v = Prop (Var v, an_int_key rng) in
  match Rng.range rng 0 5 with
  | 0 | 1 -> small_int rng
  | 2 when ctx_scalars <> [] -> Var (Rng.pick_list rng ctx_scalars)
  | (2 | 3 | 4) when ctx_nodes <> [] ->
      let p = prop_of (Rng.pick_list rng ctx_nodes) in
      if Rng.chance rng 1 3 then Bin (Add, p, small_int rng) else p
  | _ -> small_int rng

(** A WHERE predicate over the bound entity variables. *)
let predicate rng env =
  let entity_prop () =
    match (env.nodes, env.rels) with
    | [], [] -> Lit (L_int 0)
    | ns, rs ->
        let vars = ns @ rs in
        Prop (Var (Rng.pick_list rng vars), an_int_key rng)
  in
  let atom () =
    match Rng.range rng 0 4 with
    | 0 | 1 ->
        let op = Rng.pick rng [| Eq; Neq; Lt; Le; Gt; Ge |] in
        Cmp (op, entity_prop (), small_int rng)
    | 2 when env.nodes <> [] ->
        Has_labels (Var (Rng.pick_list rng env.nodes), [ a_label rng ])
    | 3 ->
        if Rng.bool rng then Is_null (entity_prop ())
        else Is_not_null (entity_prop ())
    | _ -> In_list (entity_prop (), List_lit [ small_int rng; small_int rng ])
  in
  match Rng.range rng 0 3 with
  | 0 -> And (atom (), atom ())
  | 1 -> Or (atom (), atom ())
  | 2 -> Not (atom ())
  | _ -> atom ()

(* ------------------------------------------------------------------ *)
(* Reading patterns (MATCH)                                           *)
(* ------------------------------------------------------------------ *)

let read_node_pat rng env =
  (* occasionally re-use an already-bound node variable: a join point *)
  if env.nodes <> [] && Rng.chance rng 1 6 then
    { np_var = Some (Rng.pick_list rng env.nodes); np_labels = []; np_props = [] }
  else
    let var = if Rng.chance rng 2 3 then Some (fresh_node env) else None in
    let labs = if Rng.chance rng 1 2 then [ a_label rng ] else [] in
    let props =
      if Rng.chance rng 1 4 then [ (an_int_key rng, small_int rng) ] else []
    in
    { np_var = var; np_labels = labs; np_props = props }

let read_rel_pat rng env =
  let dir = Rng.pick rng [| Out; In; Undirected |] in
  if Rng.chance rng 1 8 then
    (* variable-length step: anonymous, type-restricted, short range *)
    {
      rp_var = None;
      rp_types = [ Rng.pick rng rel_types ];
      rp_props = [];
      rp_dir = dir;
      rp_range = Some (Some 1, Some 2);
    }
  else
    let var = if Rng.chance rng 1 3 then Some (fresh_rel env) else None in
    let types = if Rng.chance rng 2 3 then [ Rng.pick rng rel_types ] else [] in
    let props =
      if Rng.chance rng 1 8 then [ ("k", small_int rng) ] else []
    in
    { rp_var = var; rp_types = types; rp_props = props; rp_dir = dir; rp_range = None }

let read_pattern rng env =
  let start = read_node_pat rng env in
  let n_steps = Rng.range rng 0 2 in
  let steps =
    List.init n_steps (fun _ ->
        let rp = read_rel_pat rng env in
        (rp, read_node_pat rng env))
  in
  { pat_var = None; pat_start = start; pat_steps = steps }

let gen_match rng env =
  let n_pats = if Rng.chance rng 1 4 then 2 else 1 in
  let patterns = List.init n_pats (fun _ -> read_pattern rng env) in
  let where =
    if (env.nodes <> [] || env.rels <> []) && Rng.chance rng 1 2 then
      Some (predicate rng env)
    else None
  in
  let optional = Rng.chance rng 1 6 in
  Match { optional; patterns; where }

(* ------------------------------------------------------------------ *)
(* Update patterns (CREATE / MERGE)                                   *)
(* ------------------------------------------------------------------ *)

let update_props rng ~ctx_nodes ~ctx_scalars =
  let n = Rng.range rng 0 2 in
  List.init n (fun _ -> (an_int_key rng, value_expr rng ~ctx_nodes ~ctx_scalars))

(** A node element of an update pattern: a bound anchor (endpoints
    only), a freshly named node, or an anonymous one. *)
let update_node_pat rng env ~ctx_nodes ~ctx_scalars ~anchor_ok =
  if anchor_ok && ctx_nodes <> [] && Rng.chance rng 1 4 then
    { np_var = Some (Rng.pick_list rng ctx_nodes); np_labels = []; np_props = [] }
  else
    let var = if Rng.chance rng 1 2 then Some (fresh_node env) else None in
    let labs = if Rng.chance rng 2 3 then [ a_label rng ] else [] in
    { np_var = var; np_labels = labs; np_props = update_props rng ~ctx_nodes ~ctx_scalars }

let update_rel_pat rng env ~ctx_nodes ~ctx_scalars =
  let var = if Rng.chance rng 1 4 then Some (fresh_rel env) else None in
  let props =
    if Rng.chance rng 1 4 then [ ("k", value_expr rng ~ctx_nodes ~ctx_scalars) ]
    else []
  in
  {
    rp_var = var;
    rp_types = [ Rng.pick rng rel_types ];
    rp_props = props;
    rp_dir = (if Rng.bool rng then Out else In);
    rp_range = None;
  }

let update_pattern rng env ~ctx_nodes ~ctx_scalars ~max_steps =
  let n_steps = Rng.range rng 0 max_steps in
  (* a bound variable may only anchor an endpoint, never stand alone as
     a single-node pattern (that would re-create a bound variable) *)
  let anchor_ok = n_steps > 0 in
  let start = update_node_pat rng env ~ctx_nodes ~ctx_scalars ~anchor_ok in
  let steps =
    List.init n_steps (fun _ ->
        let rp = update_rel_pat rng env ~ctx_nodes ~ctx_scalars in
        (rp, update_node_pat rng env ~ctx_nodes ~ctx_scalars ~anchor_ok))
  in
  { pat_var = None; pat_start = start; pat_steps = steps }

let gen_create rng env =
  let ctx_nodes = env.nodes and ctx_scalars = env.scalars in
  let n_pats = if Rng.chance rng 1 4 then 2 else 1 in
  Create
    (List.init n_pats (fun _ ->
         update_pattern rng env ~ctx_nodes ~ctx_scalars ~max_steps:2))

let gen_merge rng env =
  let ctx_nodes = env.nodes and ctx_scalars = env.scalars in
  let mode =
    match Rng.range rng 0 4 with
    | 0 | 1 -> Merge_all
    | 2 | 3 -> Merge_same
    | _ -> Merge_legacy
  in
  let n_pats =
    (* Cypher 9 plain MERGE takes a single pattern; keep the rewritten
       legacy runs of the divergence oracle parseable too *)
    if mode <> Merge_legacy && Rng.chance rng 1 4 then 2 else 1
  in
  let before = env.nodes @ env.rels in
  let patterns =
    List.init n_pats (fun _ ->
        update_pattern rng env ~ctx_nodes ~ctx_scalars ~max_steps:1)
  in
  (* ON CREATE / ON MATCH target the variables this MERGE introduced *)
  let introduced =
    List.filter (fun v -> not (List.mem v before))
      (List.concat_map pattern_vars patterns)
  in
  let on_set () =
    if introduced = [] || Rng.chance rng 1 2 then []
    else
      [ Set_prop (Var (Rng.pick_list rng introduced), "x",
                  value_expr rng ~ctx_nodes ~ctx_scalars) ]
  in
  Merge { mode; patterns; on_create = on_set (); on_match = on_set () }

(* ------------------------------------------------------------------ *)
(* SET / REMOVE / DELETE / FOREACH / UNWIND / WITH                    *)
(* ------------------------------------------------------------------ *)

let map_lit rng =
  let n = Rng.range rng 1 2 in
  Map_lit (List.init n (fun _ -> (an_int_key rng, small_int rng)))

let gen_set_item rng env =
  let ctx_nodes = env.nodes and ctx_scalars = env.scalars in
  let node () = Var (Rng.pick_list rng env.nodes) in
  match Rng.range rng 0 5 with
  | 0 | 1 when env.nodes <> [] ->
      Set_prop (node (), an_int_key rng, value_expr rng ~ctx_nodes ~ctx_scalars)
  | 2 when env.rels <> [] ->
      Set_prop (Var (Rng.pick_list rng env.rels), "k",
                value_expr rng ~ctx_nodes ~ctx_scalars)
  | 3 when env.nodes <> [] -> Set_labels (node (), [ a_label rng ])
  | 4 when env.nodes <> [] -> Set_merge_props (node (), map_lit rng)
  | _ when env.nodes <> [] -> Set_all_props (node (), map_lit rng)
  | _ ->
      Set_prop (Var (Rng.pick_list rng env.rels), "k",
                value_expr rng ~ctx_nodes ~ctx_scalars)

let gen_set rng env = Set (Rng.list rng (Rng.range rng 1 2) (fun rng -> gen_set_item rng env))

let gen_remove rng env =
  let item rng =
    let v = Var (Rng.pick_list rng env.nodes) in
    if Rng.bool rng then Rem_prop (v, an_int_key rng)
    else Rem_labels (v, [ a_label rng ])
  in
  Remove (Rng.list rng (Rng.range rng 1 2) item)

let gen_delete rng env =
  let candidates = env.nodes @ env.rels in
  let target = Var (Rng.pick_list rng candidates) in
  Delete { detach = Rng.bool rng; targets = [ target ] }

let gen_foreach rng env =
  let fe_var = fresh env "f" in
  let n = Rng.range rng 1 3 in
  let fe_source = List_lit (List.init n (fun _ -> small_int rng)) in
  let body =
    if env.nodes <> [] && Rng.bool rng then
      [ Set [ Set_prop (Var (Rng.pick_list rng env.nodes), "k", Var fe_var) ] ]
    else
      [
        Create
          [
            {
              pat_var = None;
              pat_start =
                { np_var = None; np_labels = [ a_label rng ];
                  np_props = [ ("k", Var fe_var) ] };
              pat_steps = [];
            };
          ];
      ]
  in
  Foreach { fe_var; fe_source; fe_body = body }

let gen_unwind rng env =
  let n = Rng.range rng 1 3 in
  let source = List_lit (List.init n (fun _ -> small_int rng)) in
  Unwind { source; alias = fresh_scalar env }

(** WITH: keep a non-empty random subset of the environment, optionally
    adding a count-star aggregate; the environment narrows accordingly. *)
let gen_with rng env =
  let vars = all_vars env in
  let kept = List.filter (fun _ -> Rng.chance rng 2 3) vars in
  let kept = if kept = [] then [ Rng.pick_list rng vars ] else kept in
  let items = List.map (fun v -> { item_expr = Var v; item_alias = None }) kept in
  let agg_alias =
    if Rng.chance rng 1 5 then Some (fresh env "c") else None
  in
  let items =
    match agg_alias with
    | None -> items
    | Some c -> items @ [ { item_expr = Agg (Count, false, None); item_alias = Some c } ]
  in
  env.nodes <- List.filter (fun v -> List.mem v kept) env.nodes;
  env.rels <- List.filter (fun v -> List.mem v kept) env.rels;
  env.scalars <-
    List.filter (fun v -> List.mem v kept) env.scalars
    @ Option.to_list agg_alias;
  let where =
    if Rng.chance rng 1 4 then Some (predicate rng env) else None
  in
  With
    {
      default_projection with
      proj_distinct = Rng.chance rng 1 4;
      proj_items = items;
      proj_where = where;
    }

(* ------------------------------------------------------------------ *)
(* RETURN                                                             *)
(* ------------------------------------------------------------------ *)

let gen_return rng env =
  let vars = all_vars env in
  if vars = [] || Rng.chance rng 1 4 then
    Return
      {
        default_projection with
        proj_items = [ { item_expr = Agg (Count, false, None); item_alias = Some "cnt" } ];
      }
  else
    let n = Rng.range rng 1 (min 2 (List.length vars)) in
    let chosen =
      (* distinct variables, in a shuffled order *)
      let shuffled = Rng.shuffle rng vars in
      List.filteri (fun i _ -> i < n) shuffled
    in
    let items =
      List.map
        (fun v ->
          if List.mem v env.nodes && Rng.chance rng 1 3 then
            { item_expr = Prop (Var v, an_int_key rng); item_alias = Some ("p_" ^ v) }
          else { item_expr = Var v; item_alias = None })
        chosen
    in
    let names =
      List.map
        (fun i ->
          match (i.item_alias, i.item_expr) with
          | Some a, _ -> a
          | None, Var v -> v
          | None, _ -> "?")
        items
    in
    let order =
      if Rng.chance rng 1 4 then
        [ { sort_expr = Var (Rng.pick_list rng names);
            sort_ascending = Rng.bool rng } ]
      else []
    in
    let skip =
      if Rng.chance rng 1 8 then Some (Lit (L_int (Rng.range rng 0 2))) else None
    in
    let limit =
      if Rng.chance rng 1 8 then Some (Lit (L_int (Rng.range rng 0 2))) else None
    in
    Return
      {
        default_projection with
        proj_distinct = Rng.chance rng 1 6;
        proj_items = items;
        proj_order = order;
        proj_skip = skip;
        proj_limit = limit;
      }

(* ------------------------------------------------------------------ *)
(* Whole statements                                                   *)
(* ------------------------------------------------------------------ *)

(** One random statement: an optional reading opener (MATCH / UNWIND),
    up to three middle clauses drawn from the full update repertoire
    (plus WITH and further MATCHes), and usually a final RETURN.  Always
    scope-correct and valid under the Permissive dialect. *)
let statement rng =
  let env = new_env () in
  let acc = ref [] in
  let add c = acc := c :: !acc in
  (match Rng.range rng 0 5 with
  | 0 | 1 | 2 -> add (gen_match rng env)
  | 3 -> add (gen_unwind rng env)
  | _ -> ());
  let n_mid = Rng.range rng 0 3 in
  for _ = 1 to n_mid do
    let has_entity = env.nodes <> [] || env.rels <> [] in
    let has_vars = all_vars env <> [] in
    let choices =
      [ `Create; `Create; `Merge; `Merge; `Foreach ]
      @ (if has_entity then [ `Set; `Set; `Delete ] else [])
      @ (if env.nodes <> [] then [ `Remove ] else [])
      @ (if has_vars then [ `With ] else [])
      @ [ `Match ]
    in
    match Rng.pick_list rng choices with
    | `Create -> add (gen_create rng env)
    | `Merge -> add (gen_merge rng env)
    | `Foreach -> add (gen_foreach rng env)
    | `Set -> add (gen_set rng env)
    | `Remove -> add (gen_remove rng env)
    | `Delete -> add (gen_delete rng env)
    | `With -> add (gen_with rng env)
    | `Match -> add (gen_match rng env)
  done;
  let clauses = List.rev !acc in
  let clauses = if clauses = [] then [ gen_create rng env ] else clauses in
  let has_update = List.exists is_update_clause clauses in
  let ends_with_with =
    match List.rev clauses with With _ :: _ -> true | _ -> false
  in
  let want_return = (not has_update) || ends_with_with || Rng.chance rng 3 4 in
  let clauses =
    if want_return then clauses @ [ gen_return rng env ] else clauses
  in
  { clauses; union = None }

(* ------------------------------------------------------------------ *)
(* Concurrent workloads (fuzz oracle 10)                              *)
(* ------------------------------------------------------------------ *)

(** One client of a concurrent workload: a single auto-commit statement
    or an explicit transaction of several statements. *)
type actor = Auto of query | Tx of query list

(** [actors rng] generates 2–3 concurrent clients (at most 3! = 6
    serial orders, so the linearizability oracle can check every
    permutation).  Statements come from the same closed vocabulary as
    {!statement}, so concurrent actors collide on the same labels,
    keys and entities — the interesting regime for a committer. *)
let actors rng : actor list =
  let n = Rng.range rng 2 3 in
  List.init n (fun _ ->
      if Rng.bool rng then Auto (statement rng)
      else Tx (List.init (Rng.range rng 1 3) (fun _ -> statement rng)))
