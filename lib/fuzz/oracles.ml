(** The cross-validation oracles run against every generated case.

    1. {!roundtrip}: pretty-print → re-parse → AST equality.  Guards
       the concrete syntax layer: every AST the generator can build must
       survive the printer/parser pair unchanged.
    2. {!planner_equivalence}: planner-on vs planner-off execution under
       the revised semantics.  Cost-guided planning may change row
       *order* but never the row *set* nor the result graph.
    3. {!divergence}: legacy (Cypher 9) vs revised (atomic) execution.
       The two semantics are allowed to differ — that difference is the
       paper's subject — but only in the sanctioned ways catalogued by
       {!category}.  An unclassifiable divergence is a bug in one of the
       two engines.
    4. {!wellformed}: after every successful update, the result graph
       must have no dangling relationship endpoints and all maintained
       secondary indexes (label, type, typed adjacency, property) must
       agree with a from-scratch {!Graph.rebuild}.
    5. {!parallel_equivalence}: parallelism-on vs parallelism-off
       execution.  Unlike the planner oracle, which tolerates row-order
       changes, the domain-pool fan-out performs an ordered gather, so
       the two runs must be {e byte-identical} — same rendered result
       table, same rendered graph, same error — not merely
       bag-equivalent.
    6. {!counters}: the statement update counters ({!Cypher_core.Stats})
       reported by a successful run must equal an independently computed
       structural diff of the input and output graphs, under both
       regimes.  The engine computes counters *inside* the update
       modules (net-of-cancellation identity tracking); the oracle
       recomputes them from the outside and the two must agree.
    7. {!durability}: crash-recovery fault injection.  The workload runs
       through a journaling session against an in-memory journal; the
       oracle then checks that (a) the snapshot image reloads
       isomorphically (dump round-trip), (b) full recovery reproduces
       the live graph, (c) replay of every record-count prefix lands on
       the corresponding statement-boundary graph, and (d) truncating
       the journal at {e every byte} and corrupting {e every byte}
       yields precisely-reported damage and recovery to a statement
       boundary — never a crash, never a silently different graph.
    8. {!prepared}: prepared-statement equivalence.  Every (eligible)
       literal of the statement is lifted into a [$p0..$pn] parameter
       binding; the rewritten text is compiled once with {!Api.prepare}
       and executed twice with the extracted bindings — the second
       execution reuses the statement's memoized match plans — and both
       executions must be byte-identical to the direct run (graph,
       table, counters, error). *)

open Cypher_ast.Ast
open Cypher_util.Maps
module Graph = Cypher_graph.Graph
module Props = Cypher_graph.Props
module Value = Cypher_graph.Value
module Iso = Cypher_graph.Iso
module Table = Cypher_table.Table
module Record = Cypher_table.Record
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors
module Pretty = Cypher_ast.Pretty
module Parser = Cypher_parser.Parser

(* ------------------------------------------------------------------ *)
(* Query inspection                                                   *)
(* ------------------------------------------------------------------ *)

type features = { has_set : bool; has_delete : bool; has_merge : bool }

let query_features q =
  let f = ref { has_set = false; has_delete = false; has_merge = false } in
  let rec clause = function
    | Set _ -> f := { !f with has_set = true }
    | Remove _ -> f := { !f with has_set = true }
    | Delete _ -> f := { !f with has_delete = true }
    | Merge { on_create; on_match; _ } ->
        f :=
          {
            !f with
            has_merge = true;
            has_set = !f.has_set || on_create <> [] || on_match <> [];
          }
    | Foreach { fe_body; _ } -> List.iter clause fe_body
    | Create _ | Match _ | Unwind _ | With _ | Return _ -> ()
  in
  let rec query q =
    List.iter clause q.clauses;
    Option.iter (fun (_, q') -> query q') q.union
  in
  query q;
  !f

let rec query_is_update q =
  List.exists is_update_clause q.clauses
  || Option.fold ~none:false ~some:(fun (_, q') -> query_is_update q') q.union

let rec has_skip_limit q =
  List.exists
    (function
      | With p | Return p -> p.proj_skip <> None || p.proj_limit <> None
      | _ -> false)
    q.clauses
  || Option.fold ~none:false ~some:(fun (_, q') -> has_skip_limit q') q.union

(** Rewrites every MERGE (of whatever flavour) to the legacy per-record
    match-or-create.  The divergence oracle compares the *same* pattern
    text under both semantic regimes; {!Cypher_core.Merge} dispatches on
    the clause's own mode, so the legacy run needs the clause rewritten,
    not just the configuration switched. *)
let rec legacy_clause = function
  | Merge m -> Merge { m with mode = Merge_legacy }
  | Foreach f -> Foreach { f with fe_body = List.map legacy_clause f.fe_body }
  | c -> c

let rec legacy_query q =
  {
    clauses = List.map legacy_clause q.clauses;
    union = Option.map (fun (all, q') -> (all, legacy_query q')) q.union;
  }

(* ------------------------------------------------------------------ *)
(* Error comparison                                                   *)
(* ------------------------------------------------------------------ *)

type error_kind =
  | K_parse
  | K_validation
  | K_eval
  | K_set_conflict
  | K_delete_dangling
  | K_statement_dangling
  | K_update
  | K_internal

let error_kind = function
  | Errors.Parse_error _ -> K_parse
  | Errors.Validation_error _ -> K_validation
  | Errors.Eval_error _ -> K_eval
  | Errors.Set_conflict _ -> K_set_conflict
  | Errors.Delete_dangling _ -> K_delete_dangling
  | Errors.Statement_dangling _ -> K_statement_dangling
  | Errors.Update_error _ -> K_update
  | Errors.Internal_error _ -> K_internal

let kind_name = function
  | K_parse -> "parse"
  | K_validation -> "validation"
  | K_eval -> "eval"
  | K_set_conflict -> "set-conflict"
  | K_delete_dangling -> "delete-dangling"
  | K_statement_dangling -> "statement-dangling"
  | K_update -> "update"
  | K_internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Configurations                                                     *)
(* ------------------------------------------------------------------ *)

(* All five oracles validate under Permissive: the generator emits the
   full repertoire (MERGE ALL / SAME and, after rewriting, legacy
   MERGE), and the comparison must isolate *semantic* differences, not
   dialect gatekeeping. *)
let legacy_config =
  { Config.cypher9 with dialect = Cypher_ast.Validate.Permissive;
    planner = Config.Off }

let revised_naive = { Config.permissive with planner = Config.Off }
let revised_planned = { Config.permissive with planner = Config.On }

let run config g q = Api.run_query ~config g q

(* ------------------------------------------------------------------ *)
(* Oracle 1: print/parse round-trip                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip q : (unit, string) result =
  let printed = Pretty.query_to_string q in
  match Parser.parse_string printed with
  | Error e ->
      Error
        (Printf.sprintf "re-parse of %S failed: %s" printed
           (Parser.error_to_string e))
  | Ok q' ->
      if q = q' then Ok ()
      else Error (Printf.sprintf "round-trip changed the AST of %S" printed)

(* ------------------------------------------------------------------ *)
(* Oracle 2: planner-on vs planner-off                                *)
(* ------------------------------------------------------------------ *)

let outcome_summary (o : Api.outcome) =
  Fmt.str "columns=[%s] rows=%d"
    (String.concat "," (Table.columns o.table))
    (Table.row_count o.table)

let planner_equivalence g q : (unit, string) result =
  let on = run revised_planned g q in
  let off = run revised_naive g q in
  match (on, off) with
  | Error e1, Error e2 ->
      if error_kind e1 = error_kind e2 then Ok ()
      else
        Error
          (Fmt.str "planner-on fails with %s but planner-off with %s"
             (kind_name (error_kind e1))
             (kind_name (error_kind e2)))
  | Ok _, Error e ->
      Error (Fmt.str "planner-off fails (%s) where planner-on succeeds"
               (Errors.to_string e))
  | Error e, Ok _ ->
      Error (Fmt.str "planner-on fails (%s) where planner-off succeeds"
               (Errors.to_string e))
  | Ok o1, Ok o2 ->
      if not (Iso.isomorphic o1.graph o2.graph) then
        Error "planner-on and planner-off result graphs are not isomorphic"
      else if query_is_update q || has_skip_limit q then
        (* created entity ids (and, under SKIP/LIMIT, the surviving tie
           rows) may legitimately differ; compare shapes *)
        if
          Table.columns o1.table = Table.columns o2.table
          && Table.row_count o1.table = Table.row_count o2.table
        then Ok ()
        else
          Error
            (Fmt.str "planner tables differ in shape: %s vs %s"
               (outcome_summary o1) (outcome_summary o2))
      else if Table.equal_as_bags o1.table o2.table then Ok ()
      else
        Error
          (Fmt.str "planner changed the result row set: %s vs %s"
             (outcome_summary o1) (outcome_summary o2))

(* ------------------------------------------------------------------ *)
(* Oracle 5: parallelism-on vs parallelism-off, byte-identical        *)
(* ------------------------------------------------------------------ *)

(** The parallel run must be indistinguishable from the serial one down
    to the byte: the pool's ordered gather reproduces the serial row
    order, update application is sequential in both runs (so entity ids
    match exactly), and a failing statement must fail with the very same
    error.  Chunking is forced down to single-element chunks so even the
    small tables typical of generated cases actually fan out. *)
let parallel_equivalence ?(match_mode = Config.Isomorphic) g q :
    (unit, string) result =
  let base = Config.with_match_mode match_mode Config.permissive in
  let serial = run (Config.with_parallelism 0 base) g q in
  let parallel =
    Cypher_util.Pool.with_chunk_min 1 (fun () ->
        run (Config.with_parallelism 4 base) g q)
  in
  match (serial, parallel) with
  | Error e1, Error e2 ->
      if Errors.to_string e1 = Errors.to_string e2 then Ok ()
      else
        Error
          (Fmt.str "parallel error differs: serial %S vs parallel %S"
             (Errors.to_string e1) (Errors.to_string e2))
  | Ok _, Error e ->
      Error (Fmt.str "parallel fails (%s) where serial succeeds"
               (Errors.to_string e))
  | Error e, Ok _ ->
      Error (Fmt.str "serial fails (%s) where parallel succeeds"
               (Errors.to_string e))
  | Ok o1, Ok o2 ->
      if Graph.to_string o1.graph <> Graph.to_string o2.graph then
        Error "parallel and serial result graphs are not byte-identical"
      else if Table.to_string o1.table <> Table.to_string o2.table then
        Error
          (Fmt.str "parallel and serial result tables differ: %s vs %s"
             (outcome_summary o1) (outcome_summary o2))
      else Ok ()

(* ------------------------------------------------------------------ *)
(* Oracle 6: update counters vs structural graph diff                 *)
(* ------------------------------------------------------------------ *)

(** Recomputes {!Cypher_core.Stats.t} from first principles: a
    structural diff of the input and output graphs, knowing nothing
    about what the statement did.  Entity ids are never reused (the
    store tombstones deletions), so id-set differences are exactly the
    creations/deletions; properties and labels of created entities are
    folded into the created counts, surviving entities contribute their
    net per-key changes.  This is deliberately redundant with the
    engine's own collection — the redundancy is the oracle. *)
let graph_diff (g_in : Graph.t) (g_out : Graph.t) : Cypher_core.Stats.t =
  let node_tbl = Hashtbl.create 16 and rel_tbl = Hashtbl.create 16 in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace node_tbl n.Graph.n_id n)
    (Graph.nodes g_in);
  List.iter (fun (r : Graph.rel) -> Hashtbl.replace rel_tbl r.Graph.r_id r)
    (Graph.rels g_in);
  let props_set = ref 0 and props_removed = ref 0 in
  let labels_added = ref 0 and labels_removed = ref 0 in
  let diff_props before after =
    let keys =
      List.sort_uniq compare
        (List.map fst (Props.bindings before) @ List.map fst (Props.bindings after))
    in
    List.iter
      (fun k ->
        let b = Props.get before k and a = Props.get after k in
        if not (Value.equal_strict b a) then
          if Value.is_null a then incr props_removed else incr props_set)
      keys
  in
  let nodes_created = ref 0 and nodes_deleted = ref 0 in
  List.iter
    (fun (n : Graph.node) ->
      match Hashtbl.find_opt node_tbl n.Graph.n_id with
      | None ->
          incr nodes_created;
          props_set := !props_set + List.length (Props.bindings n.Graph.n_props);
          labels_added := !labels_added + Sset.cardinal n.Graph.labels
      | Some old ->
          diff_props old.Graph.n_props n.Graph.n_props;
          labels_added :=
            !labels_added + Sset.cardinal (Sset.diff n.Graph.labels old.Graph.labels);
          labels_removed :=
            !labels_removed + Sset.cardinal (Sset.diff old.Graph.labels n.Graph.labels))
    (Graph.nodes g_out);
  List.iter
    (fun (n : Graph.node) ->
      if not (Graph.has_node g_out n.Graph.n_id) then incr nodes_deleted)
    (Graph.nodes g_in);
  let rels_created = ref 0 and rels_deleted = ref 0 in
  List.iter
    (fun (r : Graph.rel) ->
      match Hashtbl.find_opt rel_tbl r.Graph.r_id with
      | None ->
          incr rels_created;
          props_set := !props_set + List.length (Props.bindings r.Graph.r_props)
      | Some old -> diff_props old.Graph.r_props r.Graph.r_props)
    (Graph.rels g_out);
  List.iter
    (fun (r : Graph.rel) ->
      if not (Graph.has_rel g_out r.Graph.r_id) then incr rels_deleted)
    (Graph.rels g_in);
  {
    Cypher_core.Stats.empty with
    nodes_created = !nodes_created;
    nodes_deleted = !nodes_deleted;
    rels_created = !rels_created;
    rels_deleted = !rels_deleted;
    props_set = !props_set;
    props_removed = !props_removed;
    labels_added = !labels_added;
    labels_removed = !labels_removed;
  }

(** Oracle 6: the engine's update counters must equal the structural
    diff of the input and output graphs, under both the revised and the
    legacy regime, and [rows] must equal the output table's row count.
    A failing statement reports nothing to check. *)
let counters g q : (unit, string) result =
  let module Stats = Cypher_core.Stats in
  let check_one name config q =
    match Api.run_query_full ~config g q with
    | Error _ -> Ok ()
    | Ok r ->
        let stats = r.Api.r_stats in
        let diff = graph_diff g r.Api.r_graph in
        (* merge_* and rows are execution facts, invisible to the diff *)
        let expected =
          {
            diff with
            Stats.merge_matched = stats.Stats.merge_matched;
            merge_created = stats.Stats.merge_created;
            rows = stats.Stats.rows;
          }
        in
        if not (Stats.equal stats expected) then
          Error
            (Fmt.str "%s counters disagree with the graph diff: %s vs diff %s"
               name (Stats.to_string stats) (Stats.to_string expected))
        else if stats.Stats.rows <> Table.row_count r.Api.r_table then
          Error
            (Fmt.str "%s row counter %d but table has %d row(s)" name
               stats.Stats.rows
               (Table.row_count r.Api.r_table))
        else Ok ()
  in
  match check_one "revised" revised_planned q with
  | Error _ as e -> e
  | Ok () -> check_one "legacy" legacy_config (legacy_query q)

(* ------------------------------------------------------------------ *)
(* Oracle 3: legacy vs revised divergence classification              *)
(* ------------------------------------------------------------------ *)

(** The sanctioned ways the two semantics may differ — the paper's
    catalogue of legacy defects (Sections 3–5). *)
type category =
  | Set_race  (** per-record SET races; atomic run raises Set_conflict *)
  | Own_writes  (** legacy clauses re-read their own writes *)
  | Merge_interference  (** legacy MERGE matches what earlier records created *)
  | Dangling_delete  (** force-delete vs strict delete-with-check *)

let category_name = function
  | Set_race -> "set-race"
  | Own_writes -> "own-writes"
  | Merge_interference -> "merge-interference"
  | Dangling_delete -> "dangling-delete"

let all_categories = [ Set_race; Own_writes; Merge_interference; Dangling_delete ]

type divergence_outcome =
  | Agree
  | Classified of category
  | Unclassified of string

let divergence g q : divergence_outcome =
  let f = query_features q in
  let legacy = run legacy_config g (legacy_query q) in
  let revised = run revised_naive g q in
  let classify detail =
    match (legacy, revised) with
    | _, Error (Errors.Set_conflict _) -> Classified Set_race
    | Error (Errors.Statement_dangling _), _
    | _, Error (Errors.Delete_dangling _) ->
        Classified Dangling_delete
    | _ when f.has_delete -> Classified Dangling_delete
    | _ when f.has_merge -> Classified Merge_interference
    | _ when f.has_set -> Classified Own_writes
    | _ -> Unclassified detail
  in
  match (legacy, revised) with
  | Error e1, Error e2 when error_kind e1 = error_kind e2 -> Agree
  | Error e1, Error e2 ->
      classify
        (Fmt.str "legacy fails with %s, revised with %s"
           (kind_name (error_kind e1))
           (kind_name (error_kind e2)))
  | Ok _, Error e ->
      classify (Fmt.str "only revised fails: %s" (Errors.to_string e))
  | Error e, Ok _ ->
      classify (Fmt.str "only legacy fails: %s" (Errors.to_string e))
  | Ok o1, Ok o2 ->
      let same_graph = Iso.isomorphic o1.graph o2.graph in
      let same_table =
        if query_is_update q then
          (* created ids may differ between regimes even when the result
             is semantically the same; compare table shapes only *)
          Table.columns o1.table = Table.columns o2.table
          && Table.row_count o1.table = Table.row_count o2.table
        else Table.equal_as_bags o1.table o2.table
      in
      if same_graph && same_table then Agree
      else
        classify
          (Fmt.str "results differ (%s vs %s; graphs %s)"
             (outcome_summary o1) (outcome_summary o2)
             (if same_graph then "isomorphic" else "differ"))

(* ------------------------------------------------------------------ *)
(* Oracle 4: result-graph well-formedness and index agreement         *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let check b detail = if b then Ok () else Error (detail ())

let iter_check f l =
  List.fold_left (fun acc x -> let* () = acc in f x) (Ok ()) l

let ids_of_rels rels = List.map (fun (r : Graph.rel) -> r.Graph.r_id) rels

(** Compares every maintained index of [g] against [reference], a graph
    freshly rebuilt from [g]'s entity lists: any disagreement means the
    incremental maintenance of some index drifted during the update. *)
let indexes_agree (g : Graph.t) (reference : Graph.t) : (unit, string) result =
  let* () =
    check
      (Graph.label_histogram g = Graph.label_histogram reference)
      (fun () -> "label histogram disagrees with a from-scratch rebuild")
  in
  let* () =
    check
      (Graph.type_histogram g = Graph.type_histogram reference)
      (fun () -> "type histogram disagrees with a from-scratch rebuild")
  in
  let* () =
    iter_check
      (fun (l, _) ->
        check
          (Graph.nodes_with_label g l = Graph.nodes_with_label reference l)
          (fun () -> Fmt.str "label index for %s disagrees with rebuild" l))
      (Graph.label_histogram g)
  in
  let* () =
    iter_check
      (fun (ty, _) ->
        check
          (ids_of_rels (Graph.rels_with_type g ty)
          = ids_of_rels (Graph.rels_with_type reference ty))
          (fun () -> Fmt.str "type index for %s disagrees with rebuild" ty))
      (Graph.type_histogram g)
  in
  let types = List.map fst (Graph.type_histogram g) in
  let* () =
    iter_check
      (fun (n : Graph.node) ->
        let id = n.Graph.n_id in
        let* () =
          check
            (Iset.equal (Graph.out_rel_ids g id) (Graph.out_rel_ids reference id)
            && Iset.equal (Graph.in_rel_ids g id) (Graph.in_rel_ids reference id))
            (fun () -> Fmt.str "adjacency of node %d disagrees with rebuild" id)
        in
        iter_check
          (fun ty ->
            check
              (Iset.equal
                 (Graph.out_rel_ids_typed g id ty)
                 (Graph.out_rel_ids_typed reference id ty)
              && Iset.equal
                   (Graph.in_rel_ids_typed g id ty)
                   (Graph.in_rel_ids_typed reference id ty))
              (fun () ->
                Fmt.str "typed adjacency of node %d (:%s) disagrees with rebuild"
                  id ty))
          types)
      (Graph.nodes g)
  in
  (* property indexes: the maintained index must agree both with the
     rebuilt index and with a direct scan over the node list *)
  iter_check
    (fun (label, key) ->
      let probe_values =
        Value.Null :: Value.Int 12345
        :: List.filter_map
             (fun (n : Graph.node) ->
               match Props.get n.Graph.n_props key with
               | Value.Null -> None
               | v -> Some v)
             (Graph.nodes g)
      in
      iter_check
        (fun v ->
          let scanned =
            if Value.is_null v then []
            else
              List.filter_map
                (fun (n : Graph.node) ->
                  if
                    Sset.mem label n.Graph.labels
                    && Value.equal_strict (Props.get n.Graph.n_props key) v
                  then Some n.Graph.n_id
                  else None)
                (Graph.nodes g)
          in
          let maintained = Graph.nodes_with_prop g ~label ~key v in
          let rebuilt = Graph.nodes_with_prop reference ~label ~key v in
          let* () =
            check
              (maintained = Some scanned)
              (fun () ->
                Fmt.str "property index (%s,%s) at %s disagrees with a scan"
                  label key (Value.to_string v))
          in
          let* () =
            check (maintained = rebuilt) (fun () ->
                Fmt.str "property index (%s,%s) at %s disagrees with rebuild"
                  label key (Value.to_string v))
          in
          check
            (Graph.count_with_prop g ~label ~key v = Some (List.length scanned))
            (fun () ->
              Fmt.str "property index count (%s,%s) at %s is wrong" label key
                (Value.to_string v)))
        probe_values)
    (Graph.prop_index_keys g)

(* ------------------------------------------------------------------ *)
(* Oracle 7: durability / crash-recovery fault injection              *)
(* ------------------------------------------------------------------ *)

module Session = Cypher_core.Session
module Wal = Cypher_storage.Wal
module Snapshot = Cypher_storage.Snapshot
module Recovery = Cypher_storage.Recovery

let durability_config = { Config.permissive with parallelism = 0 }

(** [dump_roundtrip g] checks the {!Cypher_graph.Dump} contract directly:
    the snapshot image of [g] (indexes + dump script) reloads to an
    isomorphic graph with the same registered indexes. *)
let dump_roundtrip (g : Graph.t) : (unit, string) result =
  match Snapshot.parse (Snapshot.to_string g) with
  | Error e -> Error ("snapshot image does not reload: " ^ e)
  | Ok g' ->
      let* () =
        check (Iso.isomorphic g g') (fun () ->
            "snapshot reload is not isomorphic to the original graph")
      in
      check
        (Graph.prop_index_keys g = Graph.prop_index_keys g')
        (fun () -> "snapshot reload lost registered property indexes")

let corrupt_byte s i =
  String.mapi
    (fun j c -> if j = i then Char.chr ((Char.code c + 1) land 0xff) else c)
    s

(** Oracle 7.  Runs [q :: extra] through a journaling session on [g],
    journalling into an in-memory buffer, then fault-injects the
    snapshot image and the journal bytes exhaustively.  Every byte-level
    truncation and every single-byte corruption of the journal must be
    detected at the right offset and recover to a statement-boundary
    graph; every single-byte corruption of the snapshot must be
    rejected.  Nothing in the storage stack may raise. *)
let durability ?(extra = []) (g : Graph.t) q : (unit, string) result =
  let snapshot_img = Snapshot.to_string g in
  let* () = dump_roundtrip g in
  let* base =
    Result.map_error (fun e -> "snapshot image does not reload: " ^ e)
      (Snapshot.parse snapshot_img)
  in
  (* run the workload, journalling in memory; failed statements are part
     of the workload (they must journal nothing) *)
  let wal_buf = Buffer.create 256 in
  let session = Session.create ~config:durability_config g in
  Session.set_journal session
    (Some
       (fun entries ->
         List.iter
           (fun e -> Buffer.add_string wal_buf (Wal.encode (Wal.record_of_entry e)))
           entries));
  let boundaries = ref [ g ] in
  List.iter
    (fun q ->
      let before = Buffer.length wal_buf in
      (match Session.run_query session q with Ok _ | Error _ -> ());
      if Buffer.length wal_buf > before then
        boundaries := Session.graph session :: !boundaries)
    (q :: extra);
  let live = Session.graph session in
  let wal = Buffer.contents wal_buf in
  let len = String.length wal in
  let boundaries = Array.of_list (List.rev !boundaries) in
  let records, clean_len, torn0 = Wal.scan_string wal in
  let n = List.length records in
  let* () =
    check
      (torn0 = None && clean_len = len)
      (fun () -> "freshly written journal does not scan cleanly")
  in
  let* () =
    check
      (n = Array.length boundaries - 1)
      (fun () ->
        Fmt.str "journal has %d record(s) but the session journalled %d" n
          (Array.length boundaries - 1))
  in
  (* full recovery reproduces the live graph *)
  let* () =
    match Recovery.recover_strings ~snapshot:snapshot_img ~wal () with
    | Error e -> Error ("full recovery failed: " ^ e)
    | Ok r ->
        let* () =
          check (r.Recovery.torn = None) (fun () ->
              "full recovery reported a torn tail on an undamaged journal")
        in
        check
          (Iso.isomorphic r.Recovery.graph live)
          (fun () -> "recovered graph is not isomorphic to the live graph")
  in
  (* replay determinism: every record-count prefix lands exactly on the
     corresponding statement-boundary graph *)
  let* () =
    iter_check
      (fun k ->
        let prefix = List.filteri (fun i _ -> i < k) records in
        match Recovery.replay base prefix with
        | Error e -> Error (Fmt.str "replay of %d-record prefix failed: %s" k e)
        | Ok gk ->
            check
              (Iso.isomorphic gk boundaries.(k))
              (fun () ->
                Fmt.str
                  "replay of %d-record prefix is not isomorphic to the \
                   statement boundary"
                  k))
      (List.init (n + 1) Fun.id)
  in
  (* byte offset where record i starts; offsets.(n) = total length *)
  let offsets = Array.make (n + 1) 0 in
  List.iteri
    (fun i r -> offsets.(i + 1) <- offsets.(i) + String.length (Wal.encode r))
    records;
  let* () =
    check (offsets.(n) = len) (fun () -> "re-encoded records do not tile the journal")
  in
  (* the record a byte offset falls in *)
  let record_of_byte i =
    let k = ref 0 in
    while offsets.(!k + 1) <= i do incr k done;
    !k
  in
  (* truncation at every byte: the scan must keep exactly the whole
     records before the cut and report the tear at the right offset *)
  let* () =
    iter_check
      (fun cut ->
        let records', clean', torn' = Wal.scan_string (String.sub wal 0 cut) in
        (* records fully contained in the first [cut] bytes *)
        let k = ref 0 in
        while !k < n && offsets.(!k + 1) <= cut do incr k done;
        let k = !k in
        let boundary = offsets.(k) = cut in
        let* () =
          check
            (List.length records' = k)
            (fun () ->
              Fmt.str "truncation at %d kept %d record(s), expected %d" cut
                (List.length records') k)
        in
        let* () =
          check (clean' = offsets.(k)) (fun () ->
              Fmt.str "truncation at %d: clean prefix %d, expected %d" cut
                clean' offsets.(k))
        in
        match (torn', boundary) with
        | None, true -> Ok ()
        | Some t, false ->
            check (t.Wal.t_offset = offsets.(k)) (fun () ->
                Fmt.str "truncation at %d reported the tear at %d, expected %d"
                  cut t.Wal.t_offset offsets.(k))
        | None, false ->
            Error (Fmt.str "truncation at %d (mid-record) went unreported" cut)
        | Some t, true ->
            Error
              (Fmt.str
                 "truncation at %d (a record boundary) falsely reported: %s"
                 cut t.Wal.t_reason))
      (List.init len Fun.id)
  in
  (* corruption of every journal byte: records before the damaged one
     survive untouched, the damaged one is rejected at its offset *)
  let* () =
    iter_check
      (fun i ->
        let records', clean', torn' = Wal.scan_string (corrupt_byte wal i) in
        let k = record_of_byte i in
        let* () =
          check
            (List.length records' = k && clean' = offsets.(k))
            (fun () ->
              Fmt.str
                "corrupting byte %d kept %d record(s) / %d bytes, expected %d \
                 / %d"
                i (List.length records') clean' k offsets.(k))
        in
        match torn' with
        | Some t when t.Wal.t_offset = offsets.(k) -> Ok ()
        | Some t ->
            Error
              (Fmt.str "corrupting byte %d reported offset %d, expected %d" i
                 t.Wal.t_offset offsets.(k))
        | None -> Error (Fmt.str "corrupting byte %d went undetected" i))
      (List.init len Fun.id)
  in
  (* corruption of every snapshot byte must be rejected outright *)
  iter_check
    (fun i ->
      match Snapshot.parse (corrupt_byte snapshot_img i) with
      | Error _ -> Ok ()
      | Ok _ ->
          Error (Fmt.str "corrupting snapshot byte %d went undetected" i))
    (List.init (String.length snapshot_img) Fun.id)

(* ------------------------------------------------------------------ *)
(* Oracle 8: prepared-statement / parameter equivalence               *)
(* ------------------------------------------------------------------ *)

let value_of_lit = function
  | L_null -> Value.Null
  | L_bool b -> Value.Bool b
  | L_int i -> Value.Int i
  | L_float f -> Value.Float f
  | L_string s -> Value.String s

(** [parameterize q] lifts the literals of [q] out into parameter
    bindings [$p0..$pn], returning the rewritten query and the binding
    map.  Literals in unaliased projection items stay put — the auto
    column name is the printed expression, and [$p0] as a header would
    be an observable (and sanctioned) difference, not a bug. *)
let parameterize q =
  let bindings = ref Smap.empty in
  let counter = ref 0 in
  let bind l =
    let name = Printf.sprintf "p%d" !counter in
    incr counter;
    bindings := Smap.add name (value_of_lit l) !bindings;
    Param name
  in
  let rec expr = function
    | Lit l -> bind l
    | (Var _ | Param _) as e -> e
    | Prop (e, k) -> Prop (expr e, k)
    | Has_labels (e, ls) -> Has_labels (expr e, ls)
    | Not e -> Not (expr e)
    | And (a, b) -> And (expr a, expr b)
    | Or (a, b) -> Or (expr a, expr b)
    | Xor (a, b) -> Xor (expr a, expr b)
    | Cmp (op, a, b) -> Cmp (op, expr a, expr b)
    | Bin (op, a, b) -> Bin (op, expr a, expr b)
    | Neg e -> Neg (expr e)
    | Is_null e -> Is_null (expr e)
    | Is_not_null e -> Is_not_null (expr e)
    | List_lit es -> List_lit (List.map expr es)
    | Map_lit kvs -> Map_lit (List.map (fun (k, e) -> (k, expr e)) kvs)
    | Index (e, i) -> Index (expr e, expr i)
    | Slice (e, a, b) -> Slice (expr e, Option.map expr a, Option.map expr b)
    | Str_op (op, a, b) -> Str_op (op, expr a, expr b)
    | In_list (a, b) -> In_list (expr a, expr b)
    | Fn (f, es) -> Fn (f, List.map expr es)
    | Agg (k, d, e) -> Agg (k, d, Option.map expr e)
    | Case c ->
        Case
          {
            case_operand = Option.map expr c.case_operand;
            case_whens =
              List.map (fun (w, t) -> (expr w, expr t)) c.case_whens;
            case_default = Option.map expr c.case_default;
          }
    | List_comp c ->
        List_comp
          {
            c with
            comp_source = expr c.comp_source;
            comp_where = Option.map expr c.comp_where;
            comp_body = Option.map expr c.comp_body;
          }
    | Quantifier c ->
        Quantifier
          { c with q_source = expr c.q_source; q_pred = expr c.q_pred }
    | Reduce c ->
        Reduce
          {
            c with
            red_init = expr c.red_init;
            red_source = expr c.red_source;
            red_body = expr c.red_body;
          }
    | Pattern_pred ps -> Pattern_pred (List.map pattern ps)
    | Pattern_comp c ->
        Pattern_comp
          {
            pc_pattern = pattern c.pc_pattern;
            pc_where = Option.map expr c.pc_where;
            pc_body = expr c.pc_body;
          }
    | Shortest_path c ->
        Shortest_path { c with sp_pattern = pattern c.sp_pattern }
  and props ps = List.map (fun (k, e) -> (k, expr e)) ps
  and node_pat np = { np with np_props = props np.np_props }
  and rel_pat rp = { rp with rp_props = props rp.rp_props }
  and pattern p =
    {
      p with
      pat_start = node_pat p.pat_start;
      pat_steps =
        List.map (fun (r, n) -> (rel_pat r, node_pat n)) p.pat_steps;
    }
  in
  let set_item = function
    | Set_prop (e, k, v) -> Set_prop (expr e, k, expr v)
    | Set_all_props (e, v) -> Set_all_props (expr e, expr v)
    | Set_merge_props (e, v) -> Set_merge_props (expr e, expr v)
    | Set_labels (e, ls) -> Set_labels (expr e, ls)
  in
  let remove_item = function
    | Rem_prop (e, k) -> Rem_prop (expr e, k)
    | Rem_labels (e, ls) -> Rem_labels (expr e, ls)
  in
  let proj_item it =
    match it.item_alias with
    | None -> it (* would change the auto column name *)
    | Some _ -> { it with item_expr = expr it.item_expr }
  in
  let projection p =
    {
      p with
      proj_items = List.map proj_item p.proj_items;
      proj_order =
        List.map (fun s -> { s with sort_expr = expr s.sort_expr }) p.proj_order;
      proj_skip = Option.map expr p.proj_skip;
      proj_limit = Option.map expr p.proj_limit;
      proj_where = Option.map expr p.proj_where;
    }
  in
  let rec clause = function
    | Match m ->
        Match
          {
            m with
            patterns = List.map pattern m.patterns;
            where = Option.map expr m.where;
          }
    | Unwind u -> Unwind { u with source = expr u.source }
    | With p -> With (projection p)
    | Return p -> Return (projection p)
    | Create ps -> Create (List.map pattern ps)
    | Set items -> Set (List.map set_item items)
    | Remove items -> Remove (List.map remove_item items)
    | Delete d -> Delete { d with targets = List.map expr d.targets }
    | Merge m ->
        Merge
          {
            m with
            patterns = List.map pattern m.patterns;
            on_create = List.map set_item m.on_create;
            on_match = List.map set_item m.on_match;
          }
    | Foreach f ->
        Foreach
          {
            f with
            fe_source = expr f.fe_source;
            fe_body = List.map clause f.fe_body;
          }
  in
  let rec query q =
    {
      clauses = List.map clause q.clauses;
      union = Option.map (fun (all, q') -> (all, query q')) q.union;
    }
  in
  let q' = query q in
  (q', !bindings)

let result_summary (r : Cypher_core.Api.result) =
  Fmt.str "columns=[%s] rows=%d"
    (String.concat "," (Table.columns r.Api.r_table))
    (Table.row_count r.Api.r_table)

(** Oracle 8.  Lifts every (eligible) literal of the statement into a
    [$p0..$pn] binding, compiles the rewritten text once with
    {!Api.prepare}, executes it twice with the extracted bindings —
    the second execution is served by the prepared statement's plan
    memo — and requires both executions to be {e byte-identical} to the
    direct (literal) run: same rendered graph, same rendered table,
    same counters, same error.  This pins down the whole prepared
    pipeline at once: parameter evaluation, the strict pre-execution
    bound check, and plan reuse. *)
let prepared (g : Graph.t) q : (unit, string) result =
  let q', params = parameterize q in
  let src = Pretty.query_to_string q' in
  let direct = Api.run_query_full ~config:revised_planned g q in
  let compare_run ~label (run : (Api.result, Errors.t) result) =
    match (direct, run) with
    | Error e1, Error e2 ->
        if Errors.to_string e1 = Errors.to_string e2 then Ok ()
        else
          Error
            (Fmt.str "%s error differs: direct %S vs prepared %S" label
               (Errors.to_string e1) (Errors.to_string e2))
    | Ok _, Error e ->
        Error
          (Fmt.str "%s fails (%s) where the direct run succeeds" label
             (Errors.to_string e))
    | Error e, Ok _ ->
        Error
          (Fmt.str "direct run fails (%s) where %s succeeds"
             (Errors.to_string e) label)
    | Ok r1, Ok r2 ->
        if Graph.to_string r1.Api.r_graph <> Graph.to_string r2.Api.r_graph
        then Error (label ^ " result graph is not byte-identical")
        else if
          Table.to_string r1.Api.r_table <> Table.to_string r2.Api.r_table
        then
          Error
            (Fmt.str "%s result table differs: %s vs %s" label
               (result_summary r1) (result_summary r2))
        else if not (Cypher_core.Stats.equal r1.Api.r_stats r2.Api.r_stats)
        then
          Error
            (Fmt.str "%s counters differ: %s vs %s" label
               (Cypher_core.Stats.to_string r1.Api.r_stats)
               (Cypher_core.Stats.to_string r2.Api.r_stats))
        else Ok ()
  in
  match Api.prepare ~config:revised_planned src with
  | Error e -> (
      (* the rewrite cannot introduce a compile error the direct run
         does not have *)
      match direct with
      | Error e' when error_kind e = error_kind e' -> Ok ()
      | _ ->
          Error
            (Fmt.str "prepare of %S failed: %s" src (Errors.to_string e)))
  | Ok p -> (
      match compare_run ~label:"first execute" (Api.execute_full p params g) with
      | Error _ as e -> e
      | Ok () ->
          compare_run ~label:"second (memoized) execute"
            (Api.execute_full p params g))

let wellformed g q : (unit, string) result =
  match run revised_planned g q with
  | Error _ -> Ok () (* failed statements leave no result graph to audit *)
  | Ok o ->
      let g' = o.Api.graph in
      let* () =
        check (Graph.is_wellformed g') (fun () ->
            Fmt.str "result graph has %d dangling relationship(s)"
              (List.length (Graph.dangling_rels g')))
      in
      let reference =
        Graph.rebuild
          ~prop_indexes:(Graph.prop_index_keys g')
          ~next_id:(Graph.next_id g') ~tombs:(Graph.tombstones g')
          (Graph.nodes g') (Graph.rels g')
      in
      indexes_agree g' reference

(* ------------------------------------------------------------------ *)
(* Oracle 9: persistent vs compact backend, byte-identical            *)
(* ------------------------------------------------------------------ *)

(** The compact backend is a physical layout, not a semantics: CSR
    adjacency slices enumerate in relationship-id order exactly as the
    persistent maps do, so a run under [`Compact] must be
    indistinguishable from [`Persistent] down to the byte — same
    rendered graph, same rendered table, same counters, same error
    text.  Checked under both the revised-planned and the legacy
    regimes (the legacy mid-statement re-matching exercises the CSR
    invalidation path). *)
let backend_equivalence (g : Graph.t) q : (unit, string) result =
  let check_one ~label config q =
    let persistent =
      Api.run_query_full ~config:(Config.with_backend `Persistent config) g q
    in
    let compact =
      Api.run_query_full ~config:(Config.with_backend `Compact config) g q
    in
    match (persistent, compact) with
    | Error e1, Error e2 ->
        if Errors.to_string e1 = Errors.to_string e2 then Ok ()
        else
          Error
            (Fmt.str "%s backend error differs: persistent %S vs compact %S"
               label (Errors.to_string e1) (Errors.to_string e2))
    | Ok _, Error e ->
        Error
          (Fmt.str "%s compact fails (%s) where persistent succeeds" label
             (Errors.to_string e))
    | Error e, Ok _ ->
        Error
          (Fmt.str "%s persistent fails (%s) where compact succeeds" label
             (Errors.to_string e))
    | Ok r1, Ok r2 ->
        if Graph.to_string r1.Api.r_graph <> Graph.to_string r2.Api.r_graph
        then Error (label ^ " backend result graphs are not byte-identical")
        else if
          Table.to_string r1.Api.r_table <> Table.to_string r2.Api.r_table
        then
          Error
            (Fmt.str "%s backend result tables differ: %s vs %s" label
               (result_summary r1) (result_summary r2))
        else if not (Cypher_core.Stats.equal r1.Api.r_stats r2.Api.r_stats)
        then
          Error
            (Fmt.str "%s backend counters differ: %s vs %s" label
               (Cypher_core.Stats.to_string r1.Api.r_stats)
               (Cypher_core.Stats.to_string r2.Api.r_stats))
        else Ok ()
  in
  match check_one ~label:"revised" revised_planned q with
  | Error _ as e -> e
  | Ok () -> check_one ~label:"legacy" legacy_config (legacy_query q)

(* ------------------------------------------------------------------ *)
(* Oracle 10: concurrent workloads / linearizability                  *)
(* ------------------------------------------------------------------ *)

module Shared = Cypher_server.Shared
module Service = Cypher_server.Service

let concurrent_config = { Config.permissive with parallelism = 0 }

let permutations xs =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys -> (x :: y :: ys) :: List.map (fun r -> y :: r) (insert x ys)
  in
  List.fold_left (fun acc x -> List.concat_map (insert x) acc) [ [] ] xs

(* the serial reference: one actor after another, statements in order,
   statement-level skip-on-error — exactly the discipline the server's
   committer guarantees for whatever commit order actually happened *)
let serial_apply g actors =
  List.fold_left
    (fun g a ->
      let stmts = match a with Gen.Auto q -> [ q ] | Gen.Tx qs -> qs in
      List.fold_left
        (fun g q ->
          match Api.run_query ~config:concurrent_config g q with
          | Ok o -> o.Api.graph
          | Error _ -> g)
        g stmts)
    g actors

(** Oracle 10.  Runs the generated actors against one shared server
    state, each on its own thread through its own {!Service}
    connection, then checks (a) {e linearizability}: the final head is
    isomorphic to running the actors under {e some} serial order; and
    (b) {e durability}: replaying the WAL the group committer wrote —
    whose per-record counter checksums are validated by replay itself —
    reproduces the final head.  Thread interleaving makes runs
    nondeterministic, so failures are reported unshrunk. *)
let concurrent (g : Graph.t) (actors : Gen.actor list) : (unit, string) result
    =
  let wal_buf = Buffer.create 256 in
  let sink entries =
    List.iter
      (fun e -> Buffer.add_string wal_buf (Wal.encode (Wal.record_of_entry e)))
      entries
  in
  let shared = Shared.create ~sink g in
  let run_actor a () =
    let svc = Service.create ~config:concurrent_config shared in
    let send line = ignore (Service.handle svc line : string list) in
    match a with
    | Gen.Auto q -> send (Pretty.query_to_string q)
    | Gen.Tx qs ->
        send ":begin";
        List.iter (fun q -> send (Pretty.query_to_string q)) qs;
        send ":commit"
  in
  let threads = List.map (fun a -> Thread.create (run_actor a) ()) actors in
  List.iter Thread.join threads;
  let _, final = Shared.current shared in
  let* () =
    check
      (List.exists
         (fun perm -> Iso.isomorphic final (serial_apply g perm))
         (permutations actors))
      (fun () ->
        Fmt.str "final graph matches none of the %d serial orders of %d actors"
          (List.length (permutations actors))
          (List.length actors))
  in
  let wal = Buffer.contents wal_buf in
  let records, clean_len, torn = Wal.scan_string wal in
  let* () =
    check
      (torn = None && clean_len = String.length wal)
      (fun () -> "committer-written journal does not scan cleanly")
  in
  match Recovery.replay g records with
  | Error e -> Error ("replay of the committer's journal failed: " ^ e)
  | Ok g' ->
      check (Iso.isomorphic g' final) (fun () ->
          "journal replay is not isomorphic to the final head")
