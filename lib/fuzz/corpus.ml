(** Persistent regression corpus for the fuzzing oracles.

    A corpus entry is one [.cy] file: comment headers describing which
    oracle to run and how to set up the input graph, followed by the
    statement under test.

    {v
    // oracle: roundtrip | planner | parallel | divergence | wellformed
    //         | counters | dump | durability | eval | error
    // index: A id                     (zero or more; property indexes)
    // graph: CREATE (:A {k: 1})       (zero or more; setup statements)
    // match: homomorphic              ('parallel' oracle only; optional)
    // expect: eq=false                ('eval': rendered table;
    //                                  'error': expected error kind,
    //                                  e.g. validation or eval)
    MATCH (n:A) RETURN n.k = 1 AS eq
    v}

    Entries come from two sources: hand-written regressions (the Value
    comparison bugs of this PR fail on the pre-fix tree exactly through
    their entries here) and shrunk fuzzer failures appended by
    [fuzz_main -corpus].  The whole directory is replayed by tier-1. *)

module Graph = Cypher_graph.Graph
module Value = Cypher_graph.Value
module Table = Cypher_table.Table
module Record = Cypher_table.Record
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors
module Pretty = Cypher_ast.Pretty
open Cypher_ast.Ast

type oracle =
  | Roundtrip
  | Planner
  | Parallel
  | Divergence
  | Wellformed
  | Counters  (** update counters vs graph diff ({!Oracles.counters}) *)
  | Dump
      (** the setup graph must survive dump → reload isomorphically
          ({!Oracles.dump_roundtrip}); the statement runs first to let
          entries build adversarial graphs beyond plain CREATE *)
  | Durability
      (** journal + snapshot fault injection over the statement as a
          one-statement workload ({!Oracles.durability}) *)
  | Prepared
      (** literal-lifted prepare/execute must be byte-identical to the
          direct run ({!Oracles.prepared}) *)
  | Eval of string  (** expected canonical rendering of the result table *)
  | Expect_error of string
      (** the statement must fail, with this {!Oracles.kind_name} *)

type entry = {
  name : string;
  oracle : oracle;
  indexes : (string * string) list;  (** (label, key) property indexes *)
  setup : string list;  (** statements building the input graph *)
  homomorphic : bool;
      (** run the oracle under homomorphic matching (parallel oracle) *)
  statement : string;
}

(* ------------------------------------------------------------------ *)
(* Parsing and rendering                                              *)
(* ------------------------------------------------------------------ *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && is_space s.[!i] do incr i done;
  while !j > !i && is_space s.[!j - 1] do decr j done;
  String.sub s !i (!j - !i)

let header line =
  (* "// key: value" -> Some (key, value) *)
  let line = strip line in
  if String.length line < 2 || String.sub line 0 2 <> "//" then None
  else
    let rest = strip (String.sub line 2 (String.length line - 2)) in
    match String.index_opt rest ':' with
    | None -> None
    | Some i ->
        Some
          ( strip (String.sub rest 0 i),
            strip (String.sub rest (i + 1) (String.length rest - i - 1)) )

let parse_entry ~name text : (entry, string) result =
  let lines = String.split_on_char '\n' text in
  let oracle = ref None
  and indexes = ref []
  and setup = ref []
  and expect = ref None
  and homomorphic = ref false
  and body = ref [] in
  List.iter
    (fun line ->
      match header line with
      | Some ("oracle", v) -> oracle := Some v
      | Some ("index", v) -> (
          match String.split_on_char ' ' v |> List.filter (( <> ) "") with
          | [ label; key ] -> indexes := !indexes @ [ (label, key) ]
          | _ -> ())
      | Some ("graph", v) -> setup := !setup @ [ v ]
      | Some ("match", v) -> homomorphic := v = "homomorphic"
      | Some ("expect", v) -> expect := Some v
      | Some _ -> () (* unrecognised header: plain comment *)
      | None ->
          let line = strip line in
          if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "//")
          then body := !body @ [ line ])
    lines;
  let statement = String.concat "\n" !body in
  if statement = "" then Error (name ^ ": no statement body")
  else
    let entry oracle =
      Ok
        {
          name;
          oracle;
          indexes = !indexes;
          setup = !setup;
          homomorphic = !homomorphic;
          statement;
        }
    in
    match (!oracle, !expect) with
    | Some "roundtrip", _ -> entry Roundtrip
    | Some "planner", _ -> entry Planner
    | Some "parallel", _ -> entry Parallel
    | Some "divergence", _ -> entry Divergence
    | Some "wellformed", _ -> entry Wellformed
    | Some "counters", _ -> entry Counters
    | Some "dump", _ -> entry Dump
    | Some "durability", _ -> entry Durability
    | Some "prepared", _ -> entry Prepared
    | Some "eval", Some expected -> entry (Eval expected)
    | Some "eval", None -> Error (name ^ ": eval entry without // expect:")
    | Some "error", Some kind -> entry (Expect_error kind)
    | Some "error", None -> Error (name ^ ": error entry without // expect:")
    | Some o, _ -> Error (name ^ ": unknown oracle " ^ o)
    | None, _ -> Error (name ^ ": missing // oracle: header")

let oracle_keyword = function
  | Roundtrip -> "roundtrip"
  | Planner -> "planner"
  | Parallel -> "parallel"
  | Divergence -> "divergence"
  | Wellformed -> "wellformed"
  | Counters -> "counters"
  | Dump -> "dump"
  | Durability -> "durability"
  | Prepared -> "prepared"
  | Eval _ -> "eval"
  | Expect_error _ -> "error"

let render_entry e =
  let b = Buffer.create 256 in
  Buffer.add_string b ("// oracle: " ^ oracle_keyword e.oracle ^ "\n");
  List.iter
    (fun (l, k) -> Buffer.add_string b (Printf.sprintf "// index: %s %s\n" l k))
    e.indexes;
  List.iter (fun s -> Buffer.add_string b ("// graph: " ^ s ^ "\n")) e.setup;
  if e.homomorphic then Buffer.add_string b "// match: homomorphic\n";
  (match e.oracle with
  | Eval expected | Expect_error expected ->
      Buffer.add_string b ("// expect: " ^ expected ^ "\n")
  | _ -> ());
  Buffer.add_string b e.statement;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Graph serialisation (for appending shrunk fuzzer failures)         *)
(* ------------------------------------------------------------------ *)

let rec lit_of_value = function
  | Value.Int i -> Lit (L_int i)
  | Value.Float f -> Lit (L_float f)
  | Value.String s -> Lit (L_string s)
  | Value.Bool b -> Lit (L_bool b)
  | Value.List l -> List_lit (List.map lit_of_value l)
  | _ -> Lit L_null

let props_exprs props =
  List.map (fun (k, v) -> (k, lit_of_value v))
    (Cypher_graph.Props.bindings props)

(** Renders a graph as (indexes, setup statements): one CREATE binding
    every node to a variable [v<id>], then anchoring every relationship
    on those variables.  Entity ids are not preserved — corpus replays
    care about shapes, not identities. *)
let graph_to_setup g =
  let indexes = Graph.prop_index_keys g in
  let var id = Printf.sprintf "v%d" id in
  let node_pat (n : Graph.node) =
    {
      pat_var = None;
      pat_start =
        {
          np_var = Some (var n.Graph.n_id);
          np_labels = Cypher_util.Maps.Sset.elements n.Graph.labels;
          np_props = props_exprs n.Graph.n_props;
        };
      pat_steps = [];
    }
  in
  let anchor id = { np_var = Some (var id); np_labels = []; np_props = [] } in
  let rel_pat (r : Graph.rel) =
    {
      pat_var = None;
      pat_start = anchor r.Graph.src;
      pat_steps =
        [
          ( {
              rp_var = None;
              rp_types = [ r.Graph.r_type ];
              rp_props = props_exprs r.Graph.r_props;
              rp_dir = Out;
              rp_range = None;
            },
            anchor r.Graph.tgt );
        ];
    }
  in
  let patterns =
    List.map node_pat (Graph.nodes g) @ List.map rel_pat (Graph.rels g)
  in
  let setup =
    if patterns = [] then []
    else [ Pretty.query_to_string { clauses = [ Create patterns ]; union = None } ]
  in
  (indexes, setup)

let entry_of_failure ~name ~oracle ~graph ~query =
  let indexes, setup = graph_to_setup graph in
  { name; oracle; indexes; setup; homomorphic = false;
    statement = Pretty.query_to_string query }

(* ------------------------------------------------------------------ *)
(* Checking                                                           *)
(* ------------------------------------------------------------------ *)

(** Canonical one-line rendering of a result table: rows in table
    order, each as [col=value] pairs in column order.  Execution is
    deterministic, so the rendering is too. *)
let render_table t =
  let cols = Table.columns t in
  let row r =
    String.concat ", "
      (List.map (fun c -> c ^ "=" ^ Value.to_string (Record.find r c)) cols)
  in
  match Table.rows t with
  | [] -> "<no rows>"
  | rows -> String.concat " | " (List.map row rows)

let build_graph e : (Graph.t, string) result =
  let g =
    List.fold_left
      (fun g (label, key) -> Graph.add_prop_index ~label ~key g)
      Graph.empty e.indexes
  in
  List.fold_left
    (fun acc stmt ->
      Result.bind acc (fun g ->
          match Api.run_string ~config:Config.permissive g stmt with
          | Ok o -> Ok o.Api.graph
          | Error err ->
              Error
                (Printf.sprintf "%s: setup %S failed: %s" e.name stmt
                   (Errors.to_string err))))
    (Ok g) e.setup

(** Runs the entry's oracle; [Ok ()] means the regression holds. *)
let check e : (unit, string) result =
  let ( let* ) = Result.bind in
  let* g = build_graph e in
  match e.oracle with
  | Expect_error kind -> (
      (* parse/validation failures can be the expectation here, so this
         variant runs the raw text instead of pre-parsing it *)
      match Api.run_string ~config:Config.permissive g e.statement with
      | Ok _ ->
          Error
            (Printf.sprintf "%s: expected a %s error but the statement succeeded"
               e.name kind)
      | Error err ->
          let got = Oracles.kind_name (Oracles.error_kind err) in
          if got = kind then Ok ()
          else
            Error
              (Printf.sprintf "%s: expected a %s error but got %s: %s" e.name
                 kind got (Errors.to_string err)))
  | _ ->
  let* q =
    match Api.parse ~dialect:Cypher_ast.Validate.Permissive e.statement with
    | Ok q -> Ok q
    | Error err ->
        Error (Printf.sprintf "%s: statement does not parse: %s" e.name
                 (Errors.to_string err))
  in
  match e.oracle with
  | Expect_error _ -> assert false (* handled above *)
  | Roundtrip -> Oracles.roundtrip q
  | Planner -> Oracles.planner_equivalence g q
  | Parallel ->
      let match_mode =
        if e.homomorphic then Config.Homomorphic else Config.Isomorphic
      in
      Oracles.parallel_equivalence ~match_mode g q
  | Wellformed -> Oracles.wellformed g q
  | Counters -> Oracles.counters g q
  | Dump -> (
      (* run the statement to build the graph under test, then check the
         dump round-trip on the result *)
      match Api.run_query ~config:Config.permissive g q with
      | Error err ->
          Error (Printf.sprintf "%s: execution failed: %s" e.name
                   (Errors.to_string err))
      | Ok o -> Oracles.dump_roundtrip o.Api.graph)
  | Durability -> Oracles.durability g q
  | Prepared -> Oracles.prepared g q
  | Divergence -> (
      match Oracles.divergence g q with
      | Oracles.Agree | Oracles.Classified _ -> Ok ()
      | Oracles.Unclassified detail ->
          Error (e.name ^ ": unclassified divergence: " ^ detail))
  | Eval expected -> (
      match Api.run_query ~config:Config.permissive g q with
      | Error err ->
          Error (Printf.sprintf "%s: execution failed: %s" e.name
                   (Errors.to_string err))
      | Ok o ->
          let got = render_table o.Api.table in
          if got = expected then Ok ()
          else
            Error
              (Printf.sprintf "%s: expected %s but got %s" e.name expected got))

(* ------------------------------------------------------------------ *)
(* Files                                                              *)
(* ------------------------------------------------------------------ *)

let load_file path : (entry, string) result =
  let name = Filename.remove_extension (Filename.basename path) in
  let text = In_channel.with_open_text path In_channel.input_all in
  parse_entry ~name text

let load_dir dir : (entry, string) result list =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cy")
  |> List.sort compare
  |> List.map (fun f -> load_file (Filename.concat dir f))
