(** Greedy shrinking of failing (graph, statement) cases.

    Candidates only ever *remove* structure — a clause, a pattern, a
    pattern step, a property map, a projection decoration, a node or a
    relationship of the graph — so every chain of accepted candidates
    terminates.  Shrinking is fuel-bounded and keeps a candidate exactly
    when the caller's [fails] predicate still holds, so the final case
    fails for the same oracle as the original. *)

open Cypher_ast.Ast
module Graph = Cypher_graph.Graph

(* [l] with element [i] removed, for every [i]; only offered when the
   result is still meaningful for the construct (callers guard length). *)
let remove_each l = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l

let replace_each l cand_of =
  List.concat
    (List.mapi
       (fun i x ->
         List.map (fun x' -> List.mapi (fun j y -> if i = j then x' else y) l)
           (cand_of x))
       l)

(* ------------------------------------------------------------------ *)
(* Pattern and clause candidates                                      *)
(* ------------------------------------------------------------------ *)

let node_pat_candidates np =
  (if np.np_props <> [] then [ { np with np_props = [] } ] else [])
  @ if np.np_labels <> [] then [ { np with np_labels = [] } ] else []

let pattern_candidates p =
  (match List.rev p.pat_steps with
  | [] -> []
  | _ :: rest -> [ { p with pat_steps = List.rev rest } ])
  @ List.map (fun s -> { p with pat_start = s }) (node_pat_candidates p.pat_start)
  @ List.map
      (fun steps -> { p with pat_steps = steps })
      (replace_each p.pat_steps (fun (rp, np) ->
           (if rp.rp_props <> [] then [ ({ rp with rp_props = [] }, np) ] else [])
           @ List.map (fun np' -> (rp, np')) (node_pat_candidates np)))

let patterns_candidates ps =
  (if List.length ps > 1 then remove_each ps else [])
  @ replace_each ps pattern_candidates

let projection_candidates p =
  (if p.proj_order <> [] then [ { p with proj_order = [] } ] else [])
  @ (if p.proj_skip <> None then [ { p with proj_skip = None } ] else [])
  @ (if p.proj_limit <> None then [ { p with proj_limit = None } ] else [])
  @ (if p.proj_where <> None then [ { p with proj_where = None } ] else [])
  @ (if p.proj_distinct then [ { p with proj_distinct = false } ] else [])
  @
  if List.length p.proj_items > 1 then
    List.map (fun items -> { p with proj_items = items }) (remove_each p.proj_items)
  else []

let rec clause_candidates = function
  | Match m ->
      (if m.where <> None then [ Match { m with where = None } ] else [])
      @ (if m.optional then [ Match { m with optional = false } ] else [])
      @ List.map (fun ps -> Match { m with patterns = ps })
          (patterns_candidates m.patterns)
  | Create ps -> List.map (fun ps -> Create ps) (patterns_candidates ps)
  | Merge m ->
      (if m.on_create <> [] then [ Merge { m with on_create = [] } ] else [])
      @ (if m.on_match <> [] then [ Merge { m with on_match = [] } ] else [])
      @ List.map (fun ps -> Merge { m with patterns = ps })
          (patterns_candidates m.patterns)
  | Set items when List.length items > 1 ->
      List.map (fun items -> Set items) (remove_each items)
  | Remove items when List.length items > 1 ->
      List.map (fun items -> Remove items) (remove_each items)
  | Delete d ->
      (if d.detach then [ Delete { d with detach = false } ] else [])
      @
      if List.length d.targets > 1 then
        List.map (fun ts -> Delete { d with targets = ts }) (remove_each d.targets)
      else []
  | Foreach f ->
      (match f.fe_source with
      | List_lit es when List.length es > 1 ->
          List.map (fun es -> Foreach { f with fe_source = List_lit es })
            (remove_each es)
      | _ -> [])
      @ (if List.length f.fe_body > 1 then
           List.map (fun body -> Foreach { f with fe_body = body })
             (remove_each f.fe_body)
         else [])
      @ List.map (fun body -> Foreach { f with fe_body = body })
          (replace_each f.fe_body clause_candidates)
  | With p -> List.map (fun p -> With p) (projection_candidates p)
  | Return p -> List.map (fun p -> Return p) (projection_candidates p)
  | Unwind u -> (
      match u.source with
      | List_lit es when List.length es > 1 ->
          List.map (fun es -> Unwind { u with source = List_lit es })
            (remove_each es)
      | _ -> [])
  | Set _ | Remove _ -> []

let query_candidates q =
  (if List.length q.clauses > 1 then
     List.map (fun cs -> { q with clauses = cs }) (remove_each q.clauses)
   else [])
  @ List.map (fun cs -> { q with clauses = cs })
      (replace_each q.clauses clause_candidates)
  @ match q.union with Some (_, q') -> [ { q with union = None }; q' ] | None -> []

(* ------------------------------------------------------------------ *)
(* Graph candidates                                                   *)
(* ------------------------------------------------------------------ *)

let rebuild_like g nodes rels =
  Graph.rebuild
    ~prop_indexes:(Graph.prop_index_keys g)
    ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g) nodes rels

let graph_candidates g =
  let nodes = Graph.nodes g and rels = Graph.rels g in
  let without_rel (r : Graph.rel) =
    rebuild_like g nodes
      (List.filter (fun (r' : Graph.rel) -> r'.Graph.r_id <> r.Graph.r_id) rels)
  in
  let without_node (n : Graph.node) =
    let id = n.Graph.n_id in
    rebuild_like g
      (List.filter (fun (n' : Graph.node) -> n'.Graph.n_id <> id) nodes)
      (List.filter
         (fun (r : Graph.rel) -> r.Graph.src <> id && r.Graph.tgt <> id)
         rels)
  in
  List.map without_rel rels @ List.map without_node nodes

(* ------------------------------------------------------------------ *)
(* Fixed-point minimisation                                           *)
(* ------------------------------------------------------------------ *)

(** [minimize ~fails g q] greedily applies the first failing candidate
    until none remains (or the fuel runs out), first on the statement,
    then on the graph, then once more on the statement (a smaller graph
    can unlock further statement shrinks). *)
let minimize ~fails g q =
  let fuel = ref 600 in
  let try_cand pred cands =
    List.find_opt (fun c -> decr fuel; !fuel >= 0 && pred c) cands
  in
  let rec shrink_q g q =
    if !fuel <= 0 then q
    else
      match try_cand (fun q' -> fails g q') (query_candidates q) with
      | Some q' -> shrink_q g q'
      | None -> q
  in
  let rec shrink_g g q =
    if !fuel <= 0 then g
    else
      match try_cand (fun g' -> fails g' q) (graph_candidates g) with
      | Some g' -> shrink_g g' q
      | None -> g
  in
  let q = shrink_q g q in
  let g = shrink_g g q in
  let q = shrink_q g q in
  (g, q)
