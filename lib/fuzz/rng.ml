(** Deterministic seeded PRNG (splitmix64).

    The fuzzing subsystem must be reproducible: a failing case is fully
    identified by its iteration seed, so a reported failure can be
    replayed, shrunk and turned into a corpus entry.  [Random] is
    avoided on purpose — its state is global and its stream is not
    stable across OCaml versions; splitmix64 is 12 lines and its output
    is pinned forever. *)

type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

(** Derives an independent generator; the child stream does not overlap
    the parent's continuation. *)
let split t =
  { state = Int64.logxor t.state 0x9e3779b97f4a7c15L }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* drop two bits: OCaml's native ints are 63-bit, so a 63-bit logical
     shift result can still wrap negative through [Int64.to_int] *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(** [chance t num den] is true with probability num/den. *)
let chance t num den = int t den < num

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | l -> List.nth l (int t (List.length l))

(** A list of [n] elements drawn from [f]. *)
let list t n f = List.init n (fun _ -> f t)

(** Shuffles a list (Fisher–Yates on an array copy). *)
let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
