(** Lexical tokens.

    Keywords are not distinguished at the lexical level: Cypher keywords
    are case-insensitive and may appear as identifiers (labels, property
    keys), so the parser decides from context whether an {!Ident} is a
    keyword. *)

type kind =
  | Ident of string  (** identifier or (case-insensitive) keyword *)
  | Int of int
  | Float of float
  | Str of string
  | Param of string  (** [$name] *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Comma
  | Dot
  | Dotdot
  | Pipe
  | Plus
  | Pluseq
  | Minus
  | Star
  | Slash
  | Percent
  | Caret
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Arrow  (** [->] *)
  | Larrow  (** [<-] *)
  | Eof

type t = { kind : kind; line : int; col : int }

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int i -> Printf.sprintf "integer %d" i
  | Float f -> Printf.sprintf "float %g" f
  | Str s -> Printf.sprintf "string %S" s
  | Param s -> Printf.sprintf "parameter $%s" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Colon -> "':'"
  | Semi -> "';'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Dotdot -> "'..'"
  | Pipe -> "'|'"
  | Plus -> "'+'"
  | Pluseq -> "'+='"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Caret -> "'^'"
  | Eq -> "'='"
  | Neq -> "'<>'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Arrow -> "'->'"
  | Larrow -> "'<-'"
  | Eof -> "end of input"

(** Case-insensitive keyword test. *)
let is_kw kind kw =
  match kind with
  | Ident s -> String.uppercase_ascii s = kw
  | _ -> false
