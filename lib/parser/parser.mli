(** Recursive-descent parser for Cypher.

    Parses the union of the Cypher 9 grammar (Figures 2–5) and the
    revised grammar (Figure 10); dialect-specific restrictions are
    enforced afterwards by {!Cypher_ast.Validate}.  In addition to
    [MERGE ALL] and [MERGE SAME], the experimental spellings
    [MERGE GROUPING], [MERGE WEAK] and [MERGE COLLAPSE] are accepted for
    the remaining Section 6 proposals. *)

type error = { message : string; line : int; col : int }

val error_to_string : error -> string

(** [parse_string src] parses one query (a trailing [;] is allowed). *)
val parse_string : string -> (Cypher_ast.Ast.query, error) result

(** Statement prefix: [EXPLAIN] renders the execution plan without
    running the statement; [PROFILE] runs it and reports per-clause row
    counts and wall-time alongside the plan. *)
type prefix = Plain | Explain | Profile

(** [parse_statement src] parses one statement, recognising an optional
    [EXPLAIN] / [PROFILE] prefix (a trailing [;] is allowed). *)
val parse_statement :
  string -> (prefix * Cypher_ast.Ast.query, error) result

(** [parse_statement_params src] is {!parse_statement} plus the list of
    [$name] parameters the statement references, each with the (line,
    column) of its first occurrence, in first-occurrence order. *)
val parse_statement_params :
  string ->
  (prefix * Cypher_ast.Ast.query * (string * (int * int)) list, error) result

(** [parse_program src] parses a [;]-separated sequence of queries. *)
val parse_program : string -> (Cypher_ast.Ast.query list, error) result

(** [parse_statements src] parses a [;]-separated sequence of
    statements, each with an optional [EXPLAIN] / [PROFILE] prefix. *)
val parse_statements :
  string -> ((prefix * Cypher_ast.Ast.query) list, error) result

(** [parse_expr_string src] parses a standalone expression. *)
val parse_expr_string : string -> (Cypher_ast.Ast.expr, error) result
