(** Hand-written lexer for Cypher.

    Supports identifiers (plus backtick-quoted identifiers), integer and
    float literals, single- and double-quoted strings with escapes,
    [$param] parameters, comments, and the punctuation of the grammars
    in Figures 2–5 and 10. *)

type error = { message : string; line : int; col : int }

val error_to_string : error -> string

(** [tokenize src] lexes a whole source string into a token list ending
    with {!Token.Eof}. *)
val tokenize : string -> (Token.t list, error) result
