(** Recursive-descent parser for Cypher.

    Parses the union of the Cypher 9 grammar (Figures 2–5) and the revised
    grammar (Figure 10); dialect-specific restrictions are enforced
    afterwards by {!Cypher_ast.Validate}.  In addition to [MERGE ALL] and
    [MERGE SAME], the experimental spellings [MERGE GROUPING],
    [MERGE WEAK] and [MERGE COLLAPSE] are accepted for the remaining
    Section 6 proposals (Permissive dialect only). *)

open Cypher_ast.Ast

type error = { message : string; line : int; col : int }

let error_to_string e =
  Printf.sprintf "parse error at line %d, column %d: %s" e.line e.col e.message

exception Parse_error of error

type state = {
  toks : Token.t array;
  mutable idx : int;
  mutable params : (string * (int * int)) list;
      (* every [$name] occurrence with its source position, in reverse
         token order; harvested by [parse_statement_params] *)
}

let make_state toks = { toks = Array.of_list toks; idx = 0; params = [] }

let cur st = st.toks.(st.idx)
let cur_kind st = (cur st).Token.kind

let peek_kind st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).Token.kind else Token.Eof

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fail st fmt =
  let tok = cur st in
  Format.kasprintf
    (fun message ->
      raise (Parse_error { message; line = tok.Token.line; col = tok.Token.col }))
    fmt

let expect st kind =
  if cur_kind st = kind then advance st
  else
    fail st "expected %s but found %s" (Token.describe kind)
      (Token.describe (cur_kind st))

let at_kw st kw = Token.is_kw (cur_kind st) kw
let peek_kw st n kw = Token.is_kw (peek_kind st n) kw

let eat_kw st kw =
  if at_kw st kw then (
    advance st;
    true)
  else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail st "expected keyword %s but found %s" kw
      (Token.describe (cur_kind st))

let expect_ident st =
  match cur_kind st with
  | Token.Ident s ->
      advance st;
      s
  | k -> fail st "expected an identifier but found %s" (Token.describe k)

(* Keywords that may not be used as bare variable names: those that can
   start a clause or an expression construct, or that the projection
   machinery consumes positionally (DISTINCT).  Contextual keywords such
   as ORDER, SKIP, LIMIT, ON, STARTS, CONTAINS remain valid variable
   names — the paper's own Section 4.2 query binds a relationship to
   [order]. *)
let clause_keywords =
  [
    "MATCH"; "OPTIONAL"; "WHERE"; "RETURN"; "WITH"; "UNWIND"; "CREATE"; "SET";
    "REMOVE"; "DELETE"; "DETACH"; "MERGE"; "FOREACH"; "UNION"; "AS"; "AND";
    "OR"; "XOR"; "NOT"; "WHEN"; "THEN"; "ELSE"; "END"; "CASE"; "DISTINCT";
    "IN"; "IS"; "EXPLAIN"; "PROFILE";
  ]

let is_reserved s = List.mem (String.uppercase_ascii s) clause_keywords

let agg_of_name s =
  match String.lowercase_ascii s with
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "collect" -> Some Collect
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_xor st in
  if at_kw st "OR" then (
    advance st;
    Or (lhs, parse_or st))
  else lhs

and parse_xor st =
  let lhs = parse_and st in
  if at_kw st "XOR" then (
    advance st;
    Xor (lhs, parse_xor st))
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if at_kw st "AND" then (
    advance st;
    And (lhs, parse_and st))
  else lhs

and parse_not st =
  if at_kw st "NOT" then (
    advance st;
    Not (parse_not st))
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_add_sub st in
  let rec loop lhs =
    match cur_kind st with
    | Token.Eq ->
        advance st;
        loop (Cmp (Eq, lhs, parse_add_sub st))
    | Token.Neq ->
        advance st;
        loop (Cmp (Neq, lhs, parse_add_sub st))
    | Token.Lt ->
        advance st;
        loop (Cmp (Lt, lhs, parse_add_sub st))
    | Token.Le ->
        advance st;
        loop (Cmp (Le, lhs, parse_add_sub st))
    | Token.Gt ->
        advance st;
        loop (Cmp (Gt, lhs, parse_add_sub st))
    | Token.Ge ->
        advance st;
        loop (Cmp (Ge, lhs, parse_add_sub st))
    | Token.Ident _ when at_kw st "IS" ->
        advance st;
        if eat_kw st "NOT" then (
          expect_kw st "NULL";
          loop (Is_not_null lhs))
        else (
          expect_kw st "NULL";
          loop (Is_null lhs))
    | Token.Ident _ when at_kw st "IN" ->
        advance st;
        loop (In_list (lhs, parse_add_sub st))
    | Token.Ident _ when at_kw st "STARTS" ->
        advance st;
        expect_kw st "WITH";
        loop (Str_op (Starts_with, lhs, parse_add_sub st))
    | Token.Ident _ when at_kw st "ENDS" ->
        advance st;
        expect_kw st "WITH";
        loop (Str_op (Ends_with, lhs, parse_add_sub st))
    | Token.Ident _ when at_kw st "CONTAINS" ->
        advance st;
        loop (Str_op (Contains, lhs, parse_add_sub st))
    | _ -> lhs
  in
  loop lhs

and parse_add_sub st =
  let lhs = parse_mul_div st in
  let rec loop lhs =
    match cur_kind st with
    | Token.Plus ->
        advance st;
        loop (Bin (Add, lhs, parse_mul_div st))
    | Token.Minus ->
        advance st;
        loop (Bin (Sub, lhs, parse_mul_div st))
    | _ -> lhs
  in
  loop lhs

and parse_mul_div st =
  let lhs = parse_pow st in
  let rec loop lhs =
    match cur_kind st with
    | Token.Star ->
        advance st;
        loop (Bin (Mul, lhs, parse_pow st))
    | Token.Slash ->
        advance st;
        loop (Bin (Div, lhs, parse_pow st))
    | Token.Percent ->
        advance st;
        loop (Bin (Mod, lhs, parse_pow st))
    | _ -> lhs
  in
  loop lhs

and parse_pow st =
  let lhs = parse_unary st in
  match cur_kind st with
  | Token.Caret ->
      advance st;
      Bin (Pow, lhs, parse_pow st)
  | _ -> lhs

and parse_unary st =
  match cur_kind st with
  | Token.Minus -> (
      advance st;
      (* fold negation of numeric literals so that -59 is a literal *)
      match parse_unary st with
      | Lit (L_int i) -> Lit (L_int (-i))
      | Lit (L_float f) -> Lit (L_float (-.f))
      | e -> Neg e)
  | Token.Plus ->
      advance st;
      parse_unary st
  | _ -> parse_postfix st

(** Postfix chain: property access, indexing, slicing, label predicate. *)
and parse_postfix st =
  let atom = parse_atom st in
  let rec loop e =
    match cur_kind st with
    | Token.Dot ->
        advance st;
        let key = expect_ident st in
        loop (Prop (e, key))
    | Token.Lbracket ->
        advance st;
        (* distinguish slice [a..b] from index [i] *)
        if cur_kind st = Token.Dotdot then (
          advance st;
          if cur_kind st = Token.Rbracket then (
            advance st;
            loop (Slice (e, None, None)))
          else
            let hi = parse_expr st in
            expect st Token.Rbracket;
            loop (Slice (e, None, Some hi)))
        else
          let first = parse_expr st in
          if cur_kind st = Token.Dotdot then (
            advance st;
            if cur_kind st = Token.Rbracket then (
              advance st;
              loop (Slice (e, Some first, None)))
            else
              let hi = parse_expr st in
              expect st Token.Rbracket;
              loop (Slice (e, Some first, Some hi)))
          else (
            expect st Token.Rbracket;
            loop (Index (e, first)))
    | Token.Colon ->
        (* label predicate e:L1:L2 *)
        let rec labels acc =
          if cur_kind st = Token.Colon then (
            advance st;
            let l = expect_ident st in
            labels (l :: acc))
          else List.rev acc
        in
        let ls = labels [] in
        loop (Has_labels (e, ls))
    | _ -> e
  in
  loop atom

and parse_atom st =
  match cur_kind st with
  | Token.Int i ->
      advance st;
      Lit (L_int i)
  | Token.Float f ->
      advance st;
      Lit (L_float f)
  | Token.Str s ->
      advance st;
      Lit (L_string s)
  | Token.Param p ->
      let tok = cur st in
      st.params <- (p, (tok.Token.line, tok.Token.col)) :: st.params;
      advance st;
      Param p
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Lbrace -> Map_lit (parse_map_body st)
  | Token.Lbracket -> parse_list_or_comprehension st
  | Token.Ident _ when at_kw st "NULL" ->
      advance st;
      Lit L_null
  | Token.Ident _ when at_kw st "TRUE" ->
      advance st;
      Lit (L_bool true)
  | Token.Ident _ when at_kw st "FALSE" ->
      advance st;
      Lit (L_bool false)
  | Token.Ident _ when at_kw st "CASE" -> parse_case st
  | Token.Ident name
    when peek_kind st 1 = Token.Lparen && not (is_reserved name) ->
      advance st;
      advance st;
      parse_call st name
  | Token.Ident name ->
      if is_reserved name then
        fail st "unexpected keyword %s in expression" name
      else (
        advance st;
        Var name)
  | k -> fail st "expected an expression but found %s" (Token.describe k)

and parse_call st name =
  (* after the opening parenthesis *)
  let quantifier_of_name =
    match String.lowercase_ascii name with
    | "all" -> Some Q_all
    | "any" -> Some Q_any
    | "none" -> Some Q_none
    | "single" -> Some Q_single
    | _ -> None
  in
  let looks_like_binder () =
    (* x IN ... distinguishes quantifiers/reduce from plain calls *)
    match cur_kind st with
    | Token.Ident v -> (not (is_reserved v)) && peek_kw st 1 "IN"
    | _ -> false
  in
  match agg_of_name name with
  | None
    when (String.lowercase_ascii name = "shortestpath"
         || String.lowercase_ascii name = "allshortestpaths")
         && cur_kind st = Token.Lparen ->
      let sp_all = String.lowercase_ascii name = "allshortestpaths" in
      let sp_pattern = parse_pattern st in
      expect st Token.Rparen;
      Shortest_path { sp_all; sp_pattern }
  | None
    when String.lowercase_ascii name = "exists" && cur_kind st = Token.Lparen
    ->
      (* exists( (..)-[..]->(..) [, ...] ): a pattern predicate.  The
         value form exists(n.prop) starts with an identifier, never with
         '(' — so the opening parenthesis disambiguates. *)
      let patterns = parse_pattern_list st in
      expect st Token.Rparen;
      Pattern_pred patterns
  | Some Count when cur_kind st = Token.Star ->
      advance st;
      expect st Token.Rparen;
      Agg (Count, false, None)
  | Some kind ->
      let distinct = eat_kw st "DISTINCT" in
      let arg = parse_expr st in
      expect st Token.Rparen;
      Agg (kind, distinct, Some arg)
  | None when quantifier_of_name <> None && looks_like_binder () ->
      let q_kind = Option.get quantifier_of_name in
      let q_var = expect_ident st in
      expect_kw st "IN";
      let q_source = parse_expr st in
      expect_kw st "WHERE";
      let q_pred = parse_expr st in
      expect st Token.Rparen;
      Quantifier { q_kind; q_var; q_source; q_pred }
  | None
    when String.lowercase_ascii name = "reduce"
         && (match (cur_kind st, peek_kind st 1) with
            | Token.Ident v, Token.Eq -> not (is_reserved v)
            | _ -> false) ->
      let red_acc = expect_ident st in
      expect st Token.Eq;
      let red_init = parse_expr st in
      expect st Token.Comma;
      let red_var = expect_ident st in
      expect_kw st "IN";
      let red_source = parse_expr st in
      expect st Token.Pipe;
      let red_body = parse_expr st in
      expect st Token.Rparen;
      Reduce { red_acc; red_init; red_var; red_source; red_body }
  | None ->
      let rec args acc =
        if cur_kind st = Token.Rparen then (
          advance st;
          List.rev acc)
        else
          let e = parse_expr st in
          if cur_kind st = Token.Comma then (
            advance st;
            args (e :: acc))
          else (
            expect st Token.Rparen;
            List.rev (e :: acc))
      in
      let args = args [] in
      Fn (String.lowercase_ascii name, args)

and parse_case st =
  advance st (* CASE *);
  let operand =
    if at_kw st "WHEN" then None else Some (parse_expr st)
  in
  let rec whens acc =
    if eat_kw st "WHEN" then (
      let w = parse_expr st in
      expect_kw st "THEN";
      let t = parse_expr st in
      whens ((w, t) :: acc))
    else List.rev acc
  in
  let case_whens = whens [] in
  if case_whens = [] then fail st "CASE requires at least one WHEN branch";
  let case_default = if eat_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Case { case_operand = operand; case_whens; case_default }

and parse_list_or_comprehension st =
  expect st Token.Lbracket;
  if cur_kind st = Token.Rbracket then (
    advance st;
    List_lit [])
  else if cur_kind st = Token.Lparen then (
    (* could be a pattern comprehension [(a)-[:T]->(b) WHERE p | e] or a
       parenthesised expression starting a list literal; try the pattern
       first and backtrack on failure *)
    let saved = st.idx in
    match parse_pattern_comprehension st with
    | Some e -> e
    | None ->
        st.idx <- saved;
        parse_list_items st)
  else
    (* [x IN e ...] is a comprehension when an identifier is followed by IN *)
    match cur_kind st with
    | Token.Ident v when (not (is_reserved v)) && peek_kw st 1 "IN" ->
        advance st;
        advance st;
        let comp_source = parse_expr st in
        let comp_where =
          if eat_kw st "WHERE" then Some (parse_expr st) else None
        in
        let comp_body =
          if cur_kind st = Token.Pipe then (
            advance st;
            Some (parse_expr st))
          else None
        in
        expect st Token.Rbracket;
        List_comp { comp_var = v; comp_source; comp_where; comp_body }
    | _ -> parse_list_items st

(** Remaining elements of a plain list literal (after '['). *)
and parse_list_items st =
  let rec items acc =
    let e = parse_expr st in
    if cur_kind st = Token.Comma then (
      advance st;
      items (e :: acc))
    else (
      expect st Token.Rbracket;
      List.rev (e :: acc))
  in
  List_lit (items [])

(** Attempts to parse [pattern (WHERE p)? | e ] (after '[').  Returns
    [None] — leaving the caller to backtrack — when the bracket content
    is not a pattern comprehension.  A genuine comprehension requires at
    least one relationship step and the '|' separator, which is what
    distinguishes it from a parenthesised expression. *)
and parse_pattern_comprehension st =
  match
    let p = parse_pattern st in
    if p.pat_steps = [] then None
    else
      let pc_where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
      if cur_kind st <> Token.Pipe then None
      else begin
        advance st;
        let pc_body = parse_expr st in
        expect st Token.Rbracket;
        Some (Pattern_comp { pc_pattern = p; pc_where; pc_body })
      end
  with
  | result -> result
  | exception Parse_error _ -> None

and parse_map_body st =
  expect st Token.Lbrace;
  if cur_kind st = Token.Rbrace then (
    advance st;
    [])
  else
    let rec pairs acc =
      let key = expect_ident st in
      expect st Token.Colon;
      let v = parse_expr st in
      if cur_kind st = Token.Comma then (
        advance st;
        pairs ((key, v) :: acc))
      else (
        expect st Token.Rbrace;
        List.rev ((key, v) :: acc))
    in
    pairs []

(* ------------------------------------------------------------------ *)
(* Patterns                                                           *)
(* ------------------------------------------------------------------ *)

and parse_node_pat st =
  expect st Token.Lparen;
  let np_var =
    match cur_kind st with
    | Token.Ident v when not (is_reserved v) ->
        advance st;
        Some v
    | _ -> None
  in
  let rec labels acc =
    if cur_kind st = Token.Colon then (
      advance st;
      let l = expect_ident st in
      labels (l :: acc))
    else List.rev acc
  in
  let np_labels = labels [] in
  let np_props = if cur_kind st = Token.Lbrace then parse_map_body st else [] in
  expect st Token.Rparen;
  { np_var; np_labels; np_props }

(** Parses the bracketed core of a relationship pattern:
    an optional name, optional type alternatives, optional range,
    optional property map. *)
and parse_rel_detail st =
  let rp_var =
    match cur_kind st with
    | Token.Ident v when not (is_reserved v) ->
        advance st;
        Some v
    | _ -> None
  in
  let rp_types =
    if cur_kind st = Token.Colon then (
      advance st;
      let rec types acc =
        let t = expect_ident st in
        if cur_kind st = Token.Pipe then (
          advance st;
          (* allow the :A|:B spelling as well as :A|B *)
          if cur_kind st = Token.Colon then advance st;
          types (t :: acc))
        else List.rev (t :: acc)
      in
      types [])
    else []
  in
  let rp_range =
    if cur_kind st = Token.Star then (
      advance st;
      match cur_kind st with
      | Token.Int lo -> (
          advance st;
          if cur_kind st = Token.Dotdot then (
            advance st;
            match cur_kind st with
            | Token.Int hi ->
                advance st;
                Some (Some lo, Some hi)
            | _ -> Some (Some lo, None))
          else Some (Some lo, Some lo))
      | Token.Dotdot -> (
          advance st;
          match cur_kind st with
          | Token.Int hi ->
              advance st;
              Some (None, Some hi)
          | _ -> Some (None, None))
      | _ -> Some (None, None))
    else None
  in
  let rp_props = if cur_kind st = Token.Lbrace then parse_map_body st else [] in
  (rp_var, rp_types, rp_range, rp_props)

(** Parses one relationship step.  Entry token is either [<-] or [-]. *)
and parse_rel_pat st =
  match cur_kind st with
  | Token.Larrow ->
      advance st;
      let rp_var, rp_types, rp_range, rp_props =
        if cur_kind st = Token.Lbracket then (
          advance st;
          let d = parse_rel_detail st in
          expect st Token.Rbracket;
          d)
        else (None, [], None, [])
      in
      expect st Token.Minus;
      { rp_var; rp_types; rp_props; rp_dir = In; rp_range }
  | Token.Minus -> (
      advance st;
      let rp_var, rp_types, rp_range, rp_props =
        if cur_kind st = Token.Lbracket then (
          advance st;
          let d = parse_rel_detail st in
          expect st Token.Rbracket;
          d)
        else (None, [], None, [])
      in
      match cur_kind st with
      | Token.Arrow ->
          advance st;
          { rp_var; rp_types; rp_props; rp_dir = Out; rp_range }
      | Token.Minus ->
          advance st;
          { rp_var; rp_types; rp_props; rp_dir = Undirected; rp_range }
      | k ->
          fail st "expected '->' or '-' to close relationship pattern, found %s"
            (Token.describe k))
  | k -> fail st "expected a relationship pattern but found %s" (Token.describe k)

and parse_pattern st =
  let pat_var =
    match (cur_kind st, peek_kind st 1) with
    | Token.Ident v, Token.Eq when not (is_reserved v) ->
        advance st;
        advance st;
        Some v
    | _ -> None
  in
  let pat_start = parse_node_pat st in
  let rec steps acc =
    match cur_kind st with
    | Token.Minus | Token.Larrow ->
        let rp = parse_rel_pat st in
        let np = parse_node_pat st in
        steps ((rp, np) :: acc)
    | _ -> List.rev acc
  in
  let pat_steps = steps [] in
  { pat_var; pat_start; pat_steps }

and parse_pattern_list st =
  let rec loop acc =
    let p = parse_pattern st in
    if cur_kind st = Token.Comma then (
      advance st;
      loop (p :: acc))
    else List.rev (p :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Clauses                                                            *)
(* ------------------------------------------------------------------ *)

let parse_set_item st =
  let lhs = parse_postfix st in
  match (lhs, cur_kind st) with
  | Has_labels (e, ls), _ -> Set_labels (e, ls)
  | Prop (e, k), Token.Eq ->
      advance st;
      Set_prop (e, k, parse_expr st)
  | e, Token.Eq ->
      advance st;
      Set_all_props (e, parse_expr st)
  | e, Token.Pluseq ->
      advance st;
      Set_merge_props (e, parse_expr st)
  | _, k ->
      fail st "malformed SET item: expected '=', '+=' or labels, found %s"
        (Token.describe k)

let parse_set_items st =
  let rec loop acc =
    let item = parse_set_item st in
    if cur_kind st = Token.Comma then (
      advance st;
      loop (item :: acc))
    else List.rev (item :: acc)
  in
  loop []

let parse_remove_item st =
  let lhs = parse_postfix st in
  match lhs with
  | Has_labels (e, ls) -> Rem_labels (e, ls)
  | Prop (e, k) -> Rem_prop (e, k)
  | _ -> fail st "malformed REMOVE item: expected e.key or e:Label"

let parse_projection st ~with_where =
  let proj_distinct = eat_kw st "DISTINCT" in
  let proj_star, proj_items =
    if cur_kind st = Token.Star then (
      advance st;
      if cur_kind st = Token.Comma then (
        advance st;
        let rec items acc =
          let item_expr = parse_expr st in
          let item_alias =
            if eat_kw st "AS" then Some (expect_ident st) else None
          in
          let item = { item_expr; item_alias } in
          if cur_kind st = Token.Comma then (
            advance st;
            items (item :: acc))
          else List.rev (item :: acc)
        in
        (true, items []))
      else (true, []))
    else
      let rec items acc =
        let item_expr = parse_expr st in
        let item_alias =
          if eat_kw st "AS" then Some (expect_ident st) else None
        in
        let item = { item_expr; item_alias } in
        if cur_kind st = Token.Comma then (
          advance st;
          items (item :: acc))
        else List.rev (item :: acc)
      in
      (false, items [])
  in
  let proj_order =
    if at_kw st "ORDER" then (
      advance st;
      expect_kw st "BY";
      let rec sorts acc =
        let sort_expr = parse_expr st in
        let sort_ascending =
          if at_kw st "DESC" || at_kw st "DESCENDING" then (
            advance st;
            false)
          else if at_kw st "ASC" || at_kw st "ASCENDING" then (
            advance st;
            true)
          else true
        in
        let s = { sort_expr; sort_ascending } in
        if cur_kind st = Token.Comma then (
          advance st;
          sorts (s :: acc))
        else List.rev (s :: acc)
      in
      sorts [])
    else []
  in
  let proj_skip = if eat_kw st "SKIP" then Some (parse_expr st) else None in
  let proj_limit = if eat_kw st "LIMIT" then Some (parse_expr st) else None in
  let proj_where =
    if with_where && eat_kw st "WHERE" then Some (parse_expr st) else None
  in
  { proj_distinct; proj_star; proj_items; proj_order; proj_skip; proj_limit;
    proj_where }

let merge_mode_of_word st =
  match cur_kind st with
  | Token.Ident s when peek_kind st 1 <> Token.Eq -> (
      match String.uppercase_ascii s with
      | "ALL" ->
          advance st;
          Merge_all
      | "SAME" ->
          advance st;
          Merge_same
      | "GROUPING" ->
          advance st;
          Merge_grouping
      | "WEAK" ->
          advance st;
          Merge_weak_collapse
      | "COLLAPSE" ->
          advance st;
          Merge_collapse
      | _ -> Merge_legacy)
  | _ -> Merge_legacy

let rec parse_clause st : clause =
  if at_kw st "OPTIONAL" then (
    advance st;
    expect_kw st "MATCH";
    parse_match st ~optional:true)
  else if eat_kw st "MATCH" then parse_match st ~optional:false
  else if eat_kw st "UNWIND" then (
    let source = parse_expr st in
    expect_kw st "AS";
    let alias = expect_ident st in
    Unwind { source; alias })
  else if eat_kw st "WITH" then With (parse_projection st ~with_where:true)
  else if eat_kw st "RETURN" then Return (parse_projection st ~with_where:false)
  else if eat_kw st "CREATE" then Create (parse_pattern_list st)
  else if eat_kw st "SET" then Set (parse_set_items st)
  else if eat_kw st "REMOVE" then (
    let rec loop acc =
      let item = parse_remove_item st in
      if cur_kind st = Token.Comma then (
        advance st;
        loop (item :: acc))
      else List.rev (item :: acc)
    in
    Remove (loop []))
  else if at_kw st "DETACH" then (
    advance st;
    expect_kw st "DELETE";
    parse_delete st ~detach:true)
  else if eat_kw st "DELETE" then parse_delete st ~detach:false
  else if eat_kw st "MERGE" then parse_merge st
  else if eat_kw st "FOREACH" then parse_foreach st
  else fail st "expected a clause but found %s" (Token.describe (cur_kind st))

and parse_match st ~optional =
  let patterns = parse_pattern_list st in
  let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
  Match { optional; patterns; where }

and parse_delete st ~detach =
  let rec loop acc =
    let e = parse_expr st in
    if cur_kind st = Token.Comma then (
      advance st;
      loop (e :: acc))
    else List.rev (e :: acc)
  in
  Delete { detach; targets = loop [] }

and parse_merge st =
  let mode = merge_mode_of_word st in
  let patterns = parse_pattern_list st in
  let rec subclauses on_create on_match =
    if at_kw st "ON" then (
      advance st;
      if eat_kw st "CREATE" then (
        expect_kw st "SET";
        let items = parse_set_items st in
        subclauses (on_create @ items) on_match)
      else if eat_kw st "MATCH" then (
        expect_kw st "SET";
        let items = parse_set_items st in
        subclauses on_create (on_match @ items))
      else fail st "expected CREATE or MATCH after ON")
    else (on_create, on_match)
  in
  let on_create, on_match = subclauses [] [] in
  Merge { mode; patterns; on_create; on_match }

and parse_foreach st =
  expect st Token.Lparen;
  let fe_var = expect_ident st in
  expect_kw st "IN";
  let fe_source = parse_expr st in
  expect st Token.Pipe;
  let rec body acc =
    if cur_kind st = Token.Rparen then List.rev acc
    else body (parse_clause st :: acc)
  in
  let fe_body = body [] in
  expect st Token.Rparen;
  Foreach { fe_var; fe_source; fe_body }

(* ------------------------------------------------------------------ *)
(* Queries and statements                                             *)
(* ------------------------------------------------------------------ *)

let at_clause_start st =
  List.exists (at_kw st)
    [ "MATCH"; "OPTIONAL"; "UNWIND"; "WITH"; "RETURN"; "CREATE"; "SET";
      "REMOVE"; "DELETE"; "DETACH"; "MERGE"; "FOREACH" ]

let rec parse_query st : query =
  let rec clauses acc =
    if at_clause_start st then clauses (parse_clause st :: acc)
    else List.rev acc
  in
  let cs = clauses [] in
  if cs = [] then fail st "expected a query";
  if at_kw st "UNION" then (
    advance st;
    let all = eat_kw st "ALL" in
    let q' = parse_query st in
    { clauses = cs; union = Some (all, q') })
  else { clauses = cs; union = None }

let parse_statement_end st =
  match cur_kind st with
  | Token.Semi ->
      advance st;
      true
  | Token.Eof -> false
  | k -> fail st "unexpected %s after query" (Token.describe k)

(** [parse_string src] parses one query (a trailing [;] is allowed). *)
let parse_string src : (query, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let q = parse_query st in
        let _ = parse_statement_end st in
        if cur_kind st <> Token.Eof then
          fail st "unexpected %s after query" (Token.describe (cur_kind st));
        Ok q
      with Parse_error e -> Error e)

(** [parse_program src] parses a [;]-separated sequence of queries. *)
let parse_program src : (query list, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let rec loop acc =
          if cur_kind st = Token.Eof then List.rev acc
          else if cur_kind st = Token.Semi then (
            advance st;
            loop acc)
          else
            let q = parse_query st in
            let _ = parse_statement_end st in
            loop (q :: acc)
        in
        Ok (loop [])
      with Parse_error e -> Error e)

(** Statement prefix: [EXPLAIN] renders the execution plan without
    running the statement; [PROFILE] runs it and reports per-clause row
    counts and wall-time alongside the plan. *)
type prefix = Plain | Explain | Profile

(** [parse_statement src] parses one statement, recognising an optional
    [EXPLAIN] / [PROFILE] prefix before the query proper. *)
let parse_statement src : (prefix * query, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let prefix =
          if eat_kw st "EXPLAIN" then Explain
          else if eat_kw st "PROFILE" then Profile
          else Plain
        in
        let q = parse_query st in
        let _ = parse_statement_end st in
        if cur_kind st <> Token.Eof then
          fail st "unexpected %s after query" (Token.describe (cur_kind st));
        Ok (prefix, q)
      with Parse_error e -> Error e)

(** [parse_statement_params src] is {!parse_statement} plus the list of
    [$name] parameters the statement references, each with the source
    position (line, column) of its first occurrence, in first-occurrence
    order. *)
let parse_statement_params src :
    (prefix * query * (string * (int * int)) list, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let prefix =
          if eat_kw st "EXPLAIN" then Explain
          else if eat_kw st "PROFILE" then Profile
          else Plain
        in
        let q = parse_query st in
        let _ = parse_statement_end st in
        if cur_kind st <> Token.Eof then
          fail st "unexpected %s after query" (Token.describe (cur_kind st));
        let params =
          List.fold_left
            (fun acc (name, pos) ->
              if List.mem_assoc name acc then acc else (name, pos) :: acc)
            []
            (List.rev st.params)
        in
        Ok (prefix, q, List.rev params)
      with Parse_error e -> Error e)

(** [parse_statements src] parses a [;]-separated sequence of
    statements, recognising the [EXPLAIN] / [PROFILE] prefix on each
    (the script-file counterpart of {!parse_statement}). *)
let parse_statements src : ((prefix * query) list, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let rec loop acc =
          if cur_kind st = Token.Eof then List.rev acc
          else if cur_kind st = Token.Semi then (
            advance st;
            loop acc)
          else
            let prefix =
              if eat_kw st "EXPLAIN" then Explain
              else if eat_kw st "PROFILE" then Profile
              else Plain
            in
            let q = parse_query st in
            let _ = parse_statement_end st in
            loop ((prefix, q) :: acc)
        in
        Ok (loop [])
      with Parse_error e -> Error e)

(** [parse_expr_string src] parses a standalone expression (tests). *)
let parse_expr_string src : (expr, error) result =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok toks -> (
      let st = make_state toks in
      try
        let e = parse_expr st in
        if cur_kind st <> Token.Eof then
          fail st "unexpected %s after expression"
            (Token.describe (cur_kind st));
        Ok e
      with Parse_error e -> Error e)
