(** Lexical tokens.

    Keywords are not distinguished at the lexical level: Cypher keywords
    are case-insensitive and may appear as identifiers (labels, property
    keys), so the parser decides from context whether an {!kind.Ident}
    is a keyword. *)

type kind =
  | Ident of string  (** identifier or (case-insensitive) keyword *)
  | Int of int
  | Float of float
  | Str of string
  | Param of string  (** [$name] *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Comma
  | Dot
  | Dotdot
  | Pipe
  | Plus
  | Pluseq
  | Minus
  | Star
  | Slash
  | Percent
  | Caret
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Arrow  (** [->] *)
  | Larrow  (** [<-] *)
  | Eof

type t = { kind : kind; line : int; col : int }

(** Human-readable token description for error messages. *)
val describe : kind -> string

(** Case-insensitive keyword test against an uppercase keyword name. *)
val is_kw : kind -> string -> bool
