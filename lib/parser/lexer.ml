(** Hand-written lexer for Cypher.

    Supports identifiers (plus backtick-quoted identifiers), integer and
    float literals, single- and double-quoted strings with escapes,
    [$param] parameters, comments ([// ...] and [/* ... */]), and the
    punctuation of the grammars in Figures 2–5 and 10. *)

type error = { message : string; line : int; col : int }

let error_to_string e =
  Printf.sprintf "lexical error at line %d, column %d: %s" e.line e.col
    e.message

exception Lex_error of error

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let fail st message = raise (Lex_error { message; line = st.line; col = st.col })

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec loop () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> fail st "unterminated comment"
        | _ ->
            advance st;
            loop ()
      in
      loop ();
      skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_backtick_ident st =
  advance st (* opening backtick *);
  let buf = Buffer.create 8 in
  let rec loop () =
    match peek st with
    | Some '`' when peek2 st = Some '`' ->
        (* doubled backtick: a literal backtick inside the identifier *)
        Buffer.add_char buf '`';
        advance st;
        advance st;
        loop ()
    | Some '`' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
    | None -> fail st "unterminated backtick identifier"
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  let is_float =
    match peek st with
    | Some ('e' | 'E') ->
        advance st;
        (match peek st with
        | Some ('+' | '-') -> advance st
        | _ -> ());
        if not (match peek st with Some c -> is_digit c | None -> false) then
          fail st "malformed float exponent";
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> is_float
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then Token.Float (float_of_string text)
  else
    (* [int_of_string] raises on literals beyond [max_int] (the lexer
       only ever sees the unsigned digits; unary minus is the parser's),
       which must surface as a lexical error, not an exception *)
    match int_of_string_opt text with
    | Some n -> Token.Int n
    | None -> fail st (Printf.sprintf "integer literal %s out of range" text)

let lex_string st quote =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some c when c = quote -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            loop ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            loop ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance st;
            loop ()
        | Some 'b' ->
            Buffer.add_char buf '\b';
            advance st;
            loop ()
        | Some 'f' ->
            Buffer.add_char buf '\012';
            advance st;
            loop ()
        | Some 'u' ->
            advance st;
            let hex_digit () =
              match peek st with
              | Some c when c >= '0' && c <= '9' ->
                  advance st;
                  Char.code c - Char.code '0'
              | Some c when c >= 'a' && c <= 'f' ->
                  advance st;
                  Char.code c - Char.code 'a' + 10
              | Some c when c >= 'A' && c <= 'F' ->
                  advance st;
                  Char.code c - Char.code 'A' + 10
              | _ -> fail st "\\u escape expects four hex digits"
            in
            let code =
              let a = hex_digit () in
              let b = hex_digit () in
              let c = hex_digit () in
              let d = hex_digit () in
              (((a * 16) + b) * 16 + c) * 16 + d
            in
            if not (Uchar.is_valid code) then
              fail st (Printf.sprintf "\\u%04x is not a valid code point" code);
            Buffer.add_utf_8_uchar buf (Uchar.of_int code);
            loop ()
        | Some ('\\' | '\'' | '"' as c) ->
            Buffer.add_char buf c;
            advance st;
            loop ()
        | Some c -> fail st (Printf.sprintf "unknown escape '\\%c'" c)
        | None -> fail st "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let next_kind st : Token.kind =
  match peek st with
  | None -> Token.Eof
  | Some c -> (
      match c with
      | c when is_ident_start c -> Token.Ident (lex_ident st)
      | '`' -> Token.Ident (lex_backtick_ident st)
      | c when is_digit c -> lex_number st
      | '\'' | '"' -> Token.Str (lex_string st c)
      | '$' ->
          advance st;
          if not (match peek st with Some c -> is_ident_start c | None -> false)
          then fail st "expected parameter name after '$'";
          Token.Param (lex_ident st)
      | '(' -> advance st; Token.Lparen
      | ')' -> advance st; Token.Rparen
      | '[' -> advance st; Token.Lbracket
      | ']' -> advance st; Token.Rbracket
      | '{' -> advance st; Token.Lbrace
      | '}' -> advance st; Token.Rbrace
      | ':' -> advance st; Token.Colon
      | ';' -> advance st; Token.Semi
      | ',' -> advance st; Token.Comma
      | '|' -> advance st; Token.Pipe
      | '*' -> advance st; Token.Star
      | '/' -> advance st; Token.Slash
      | '%' -> advance st; Token.Percent
      | '^' -> advance st; Token.Caret
      | '.' ->
          advance st;
          if peek st = Some '.' then (advance st; Token.Dotdot) else Token.Dot
      | '+' ->
          advance st;
          if peek st = Some '=' then (advance st; Token.Pluseq) else Token.Plus
      | '-' ->
          advance st;
          if peek st = Some '>' then (advance st; Token.Arrow) else Token.Minus
      | '=' -> advance st; Token.Eq
      | '<' -> (
          advance st;
          match peek st with
          | Some '=' -> advance st; Token.Le
          | Some '>' -> advance st; Token.Neq
          | Some '-' -> advance st; Token.Larrow
          | _ -> Token.Lt)
      | '>' ->
          advance st;
          if peek st = Some '=' then (advance st; Token.Ge) else Token.Gt
      | c -> fail st (Printf.sprintf "unexpected character %C" c))

(** [tokenize src] lexes a whole source string into a token list ending
    with {!Token.Eof}. *)
let tokenize src : (Token.t list, error) result =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_ws st;
    let line = st.line and col = st.col in
    let kind = next_kind st in
    let tok = { Token.kind; line; col } in
    match kind with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> loop (tok :: acc)
  in
  try Ok (loop []) with Lex_error e -> Error e
