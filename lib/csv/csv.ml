(** CSV substrate.

    The paper motivates MERGE by bulk import: "a graph database may be
    initially populated by importing data from a relational database or
    a CSV file" (Section 6), and Example 3's assumption of a
    pre-populated driving table "reflects the way in which a graph
    database may be initially populated".  This module provides that
    import path: an RFC-4180-style reader and conversion of rows to
    driving tables, with automatic typing (integers, floats, booleans,
    null for empty fields). *)

open Cypher_graph
open Cypher_table

type error = { message : string; line : int }

let error_to_string e = Printf.sprintf "CSV error at line %d: %s" e.line e.message

exception Csv_error of error

(** [rows_of_string src] splits CSV text into rows of raw string
    fields, each paired with the 1-based line its first field starts on
    (quoted fields may span lines, so row index and line number
    diverge).  Handles quoted fields (with embedded commas, newlines and
    doubled quotes) and both LF and CRLF line endings. *)
let rows_of_string src : (int * string list) list =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let row_line = ref 1 in
  let n = String.length src in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := (!row_line, List.rev !fields) :: !rows;
    fields := [];
    (* the terminating newline was already counted, so [line] is where
       the next row starts *)
    row_line := !line
  in
  let rec plain i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then flush_row ())
    else
      match src.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\r' when i + 1 < n && src.[i + 1] = '\n' ->
          incr line;
          flush_row ();
          plain (i + 2)
      | '\n' ->
          incr line;
          flush_row ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted ~open_line:!line (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted ~open_line i =
    if i >= n then
      (* report the line the quote opened on, not the line the scan for
         a closing quote ran out of input at — the opening quote is
         where the malformation is *)
      raise
        (Csv_error
           {
             message =
               Printf.sprintf
                 "unterminated quoted field (quote opened at line %d)"
                 open_line;
             line = open_line;
           })
    else
      match src.[i] with
      | '"' when i + 1 < n && src.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted ~open_line (i + 2)
      | '"' -> plain (i + 1)
      | '\n' ->
          incr line;
          Buffer.add_char buf '\n';
          quoted ~open_line (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted ~open_line (i + 1)
  in
  plain 0;
  List.rev !rows

(** [parse_string src] is {!rows_of_string} without the line numbers. *)
let parse_string src : string list list = List.map snd (rows_of_string src)

(** Types a raw field: empty → null; integer / float / boolean literals
    are recognised; anything else is a string. *)
let type_field s : Value.t =
  if s = "" then Value.Null
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> (
            match String.lowercase_ascii s with
            | "true" -> Value.Bool true
            | "false" -> Value.Bool false
            | "null" -> Value.Null
            | _ -> Value.String s))

(** [table_of_string ~typed src] reads CSV text whose first row is the
    header and produces a driving table (one column per header field).
    With [typed = false] all fields stay strings (empty still null). *)
let table_of_string ?(typed = true) src : Table.t =
  match parse_string src with
  | [] -> Table.unit
  | header :: rows ->
      let convert s =
        if typed then type_field s
        else if s = "" then Value.Null
        else Value.String s
      in
      let to_record i fields =
        if List.length fields <> List.length header then
          raise
            (Csv_error
               {
                 message =
                   Printf.sprintf "row has %d fields, header has %d"
                     (List.length fields) (List.length header);
                 line = i + 2;
               })
        else
          List.fold_left2
            (fun r k v -> Record.bind r k (convert v))
            Record.empty header fields
      in
      Table.make header (List.mapi to_record rows)

let table_of_file ?typed path : Table.t =
  let ic = open_in path in
  let content =
    (* the channel must not leak when reading (or the length probe)
       raises — e.g. the file shrinking underneath us *)
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  table_of_string ?typed content

(** [to_string table] renders a driving table back to CSV (strings are
    quoted when needed; null becomes the empty field). *)
let to_string (t : Table.t) : string =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let field = function
    | Value.Null -> ""
    | Value.String s -> quote s
    | v -> quote (Value.to_string v)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map quote (Table.columns t)));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let cells =
        List.map (fun c -> field (Record.find r c)) (Table.columns t)
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    (Table.rows t);
  Buffer.contents buf
