(** CSV substrate.

    The paper motivates MERGE by bulk import: "a graph database may be
    initially populated by importing data from a relational database or
    a CSV file" (Section 6).  This module provides that import path: an
    RFC-4180-style reader and conversion of rows to driving tables, with
    automatic typing (integers, floats, booleans, null for empty
    fields). *)

open Cypher_graph
open Cypher_table

type error = { message : string; line : int }

val error_to_string : error -> string

exception Csv_error of error

(** [parse_string src] splits CSV text into rows of raw string fields.
    Handles quoted fields (with embedded commas, newlines, CRLF and
    doubled quotes) and both LF and CRLF line endings.
    @raise Csv_error on malformed input; an unterminated quoted field at
    end of input reports the line its opening quote is on. *)
val parse_string : string -> string list list

(** [rows_of_string src] is {!parse_string} with each row paired with
    the 1-based line its first field starts on (quoted fields may span
    lines, so row index and line number diverge) — the substrate for
    import-error reporting that points at the offending file line.
    @raise Csv_error like {!parse_string}. *)
val rows_of_string : string -> (int * string list) list

(** Types a raw field: empty or [null] → null; integer / float /
    boolean literals are recognised; anything else is a string. *)
val type_field : string -> Value.t

(** [table_of_string ~typed src] reads CSV text whose first row is the
    header and produces a driving table (one column per header field).
    With [typed = false] all fields stay strings (empty still null).
    @raise Csv_error on ragged rows. *)
val table_of_string : ?typed:bool -> string -> Table.t

val table_of_file : ?typed:bool -> string -> Table.t

(** [to_string table] renders a driving table back to CSV (strings are
    quoted when needed; null becomes the empty field). *)
val to_string : Table.t -> string
