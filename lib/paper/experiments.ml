(** The paper's reproducible artefacts, E1–E10 (see DESIGN.md §4).

    Each experiment runs the paper's exact workload and checks the
    outcome against the figure or described behaviour, mechanically
    (graph isomorphism, error matching, or value comparison).  The
    reports drive [bin/experiments.ml] and EXPERIMENTS.md; the test
    suite asserts that every experiment passes. *)

open Cypher_graph
open Cypher_table
open Cypher_core
open Cypher_ast.Ast

type report = {
  id : string;
  title : string;
  paper_claim : string;
  observed : string;
  passed : bool;
}

let report id title paper_claim (passed, observed) =
  { id; title; paper_claim; observed; passed }

let graph_summary g =
  Printf.sprintf "%d nodes, %d relationships" (Graph.node_count g)
    (Graph.rel_count g)

let check_iso ~expected g =
  if Iso.isomorphic expected g then (true, graph_summary g ^ " (isomorphic to figure)")
  else
    ( false,
      Printf.sprintf "%s, NOT isomorphic to figure:\n%s" (graph_summary g)
        (Graph.to_string g) )

let run_ok config g src =
  match Api.run_string ~config g src with
  | Ok o -> o
  | Error e -> raise (Errors.Error e)

(* ------------------------------------------------------------------ *)
(* E1: Queries (1)-(4) on the Figure 1 marketplace                    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let g0 = (run_ok Config.revised Graph.empty Fixtures.figure1_setup).Api.graph in
  let built_ok = Iso.isomorphic g0 Fixtures.figure1_graph in
  (* Query (1): exactly one vendor, cStore *)
  let q1 = run_ok Config.revised g0 Fixtures.query1 in
  let q1_ok =
    Table.row_count q1.Api.table = 1
    &&
    match Record.find (List.hd (Table.rows q1.Api.table)) "v" with
    | Value.Node id ->
        Value.equal_strict
          (Props.get (Graph.node_props_of g0 id) "name")
          (Value.String "cStore")
    | _ -> false
  in
  (* Queries (2) and (3): insert p4 and evolve it into a smartphone *)
  let g2 = (run_ok Config.revised g0 Fixtures.query2).Api.graph in
  let q2_ok =
    Graph.node_count g2 = 7
    && Graph.rel_count g2 = 6
    && Graph.fold_nodes
         (fun n acc -> acc || Cypher_util.Maps.Sset.mem "New_Product" n.Graph.labels)
         g2 false
  in
  let g3 = (run_ok Config.revised g2 Fixtures.query3).Api.graph in
  let smartphone =
    Graph.fold_nodes
      (fun n acc ->
        if
          Value.equal_strict (Props.get n.Graph.n_props "name")
            (Value.String "smartphone")
        then Some n
        else acc)
      g3 None
  in
  let q3_ok =
    match smartphone with
    | Some n ->
        Cypher_util.Maps.Sset.elements n.Graph.labels = [ "Product" ]
        && Value.equal_strict (Props.get n.Graph.n_props "id") (Value.Int 120)
    | None -> false
  in
  (* a plain DELETE of the ordered product must fail... *)
  let strict_delete_fails =
    match Api.run_string ~config:Config.revised g3 "MATCH (p:Product {id: 120}) DELETE p" with
    | Error (Errors.Delete_dangling _) -> true
    | _ -> false
  in
  (* ...while Query (4) (DETACH DELETE) restores the original graph *)
  let g4 = (run_ok Config.revised g3 Fixtures.query4).Api.graph in
  let q4_ok = Iso.isomorphic g4 Fixtures.figure1_graph in
  let passed = built_ok && q1_ok && q2_ok && q3_ok && strict_delete_fails && q4_ok in
  report "E1" "Queries (1)-(4) on the Figure 1 marketplace"
    "Query 1 returns vendor cStore once; CREATE/SET/REMOVE evolve p4; plain \
     DELETE of an ordered product fails; DETACH DELETE restores Figure 1"
    ( passed,
      Printf.sprintf
        "figure1 built=%b q1=%b create=%b set/remove=%b strict-delete-errors=%b \
         detach-delete=%b"
        built_ok q1_ok q2_ok q3_ok strict_delete_fails q4_ok )

(* ------------------------------------------------------------------ *)
(* E2: Query (5) — MERGE creates v2 for the tablet                    *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let g0 = (run_ok Config.revised Graph.empty Fixtures.figure1_setup).Api.graph in
  (* legacy MERGE under Cypher 9 *)
  let legacy = run_ok Config.cypher9 g0 Fixtures.query5_legacy in
  (* revised MERGE SAME under the new dialect *)
  let revised =
    run_ok Config.revised g0
      "MATCH (p:Product) MERGE SAME (p)<-[:OFFERS]-(v:Vendor) RETURN p, v"
  in
  let expected =
    (* Figure 1 + dashed additions: new vendor v2 offering the tablet *)
    let v2, g = Graph.create_node ~labels:[ "Vendor" ] g0 in
    let tablet =
      Graph.fold_nodes
        (fun n acc ->
          if Value.equal_strict (Props.get n.Graph.n_props "name") (Value.String "tablet")
          then Some n.Graph.n_id
          else acc)
        g None
    in
    let _, g =
      Graph.create_rel ~src:v2 ~tgt:(Option.get tablet) ~r_type:"OFFERS" g
    in
    g
  in
  let ok_l, obs_l = check_iso ~expected legacy.Api.graph in
  let ok_r, obs_r = check_iso ~expected revised.Api.graph in
  let rows_ok =
    Table.row_count legacy.Api.table = 3 && Table.row_count revised.Api.table = 3
  in
  report "E2" "Query (5): MERGE pairs every product with a vendor"
    "p1, p2 match vendor v1; p3 gets a fresh vendor v2 with an :OFFERS \
     relationship (dashed part of Figure 1); three result rows"
    ( ok_l && ok_r && rows_ok,
      Printf.sprintf "legacy: %s; revised: %s; both return 3 rows=%b" obs_l
        obs_r rows_ok )

(* ------------------------------------------------------------------ *)
(* E3: Example 1 — the SET swap                                       *)
(* ------------------------------------------------------------------ *)

let product_ids g =
  Graph.fold_nodes
    (fun n acc ->
      match Props.get n.Graph.n_props "name" with
      | Value.String name -> (name, Props.get n.Graph.n_props "id") :: acc
      | _ -> acc)
    g []

let e3 () =
  let g0 = (run_ok Config.revised Graph.empty Fixtures.figure1_setup).Api.graph in
  let atomic = (run_ok Config.revised g0 Fixtures.example1_swap).Api.graph in
  let legacy = (run_ok Config.cypher9 g0 Fixtures.example1_swap).Api.graph in
  let id_of g name = List.assoc name (product_ids g) in
  let atomic_swapped =
    Value.equal_strict (id_of atomic "laptop") (Value.Int 85)
    && Value.equal_strict (id_of atomic "tablet") (Value.Int 125)
  in
  let legacy_stuck =
    Value.equal_strict (id_of legacy "laptop") (Value.Int 85)
    && Value.equal_strict (id_of legacy "tablet") (Value.Int 85)
  in
  report "E3" "Example 1: SET id swap"
    "Legacy SET behaves like two sequential SETs (both products end with \
     id 85); atomic SET swaps the ids as an experienced SQL programmer \
     expects"
    ( atomic_swapped && legacy_stuck,
      Printf.sprintf "atomic: laptop=%s tablet=%s; legacy: laptop=%s tablet=%s"
        (Value.to_string (id_of atomic "laptop"))
        (Value.to_string (id_of atomic "tablet"))
        (Value.to_string (id_of legacy "laptop"))
        (Value.to_string (id_of legacy "tablet")) )

(* ------------------------------------------------------------------ *)
(* E4: Example 2 — ambiguous SET must abort                           *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let g0 = (run_ok Config.revised Graph.empty Fixtures.figure1_setup).Api.graph in
  let atomic = Api.run_string ~config:Config.revised g0 Fixtures.example2_ambiguous in
  let legacy = Api.run_string ~config:Config.cypher9 g0 Fixtures.example2_ambiguous in
  let atomic_errors =
    match atomic with Error (Errors.Set_conflict _) -> true | _ -> false
  in
  let legacy_silent = match legacy with Ok _ -> true | Error _ -> false in
  report "E4" "Example 2: conflicting SET on dirty data"
    "Two products share id 125 with different names; the revised SET \
     aborts with an error, while legacy SET silently picks an \
     order-dependent winner"
    ( atomic_errors && legacy_silent,
      Printf.sprintf "atomic errors=%b (%s); legacy goes through=%b"
        atomic_errors
        (match atomic with Error e -> Errors.to_string e | Ok _ -> "no error")
        legacy_silent )

(* ------------------------------------------------------------------ *)
(* E5: Section 4.2 — manipulating deleted entities                    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let g0 = Fixtures.deleted_node_graph in
  let legacy = Api.run_string ~config:Config.cypher9 g0 Fixtures.deleted_node_query in
  let legacy_ok, legacy_obs =
    match legacy with
    | Ok o -> (
        (* the query "goes through without an error and returns an empty
           node without any labels or properties" *)
        match Table.rows o.Api.table with
        | [ row ] -> (
            match Record.find row "user" with
            | Value.Node id ->
                let empty_node =
                  Graph.labels_of o.Api.graph id = []
                  && Props.is_empty (Graph.node_props_of o.Api.graph id)
                in
                ( empty_node && Graph.node_count o.Api.graph = 1,
                  Printf.sprintf
                    "legacy returns node %d, labels=[] props={} -> empty node; \
                     graph keeps only the product"
                    id )
            | v -> (false, "legacy returned " ^ Value.to_string v))
        | _ -> (false, "legacy returned wrong number of rows"))
    | Error e -> (false, "legacy errored: " ^ Errors.to_string e)
  in
  let revised = Api.run_string ~config:Config.revised g0 Fixtures.deleted_node_query in
  let revised_ok, revised_obs =
    match revised with
    | Error (Errors.Delete_dangling _) ->
        (true, "revised DELETE aborts: dangling relationship")
    | Error e -> (false, "revised errored differently: " ^ Errors.to_string e)
    | Ok _ -> (false, "revised went through (should have aborted)")
  in
  report "E5" "Section 4.2: DELETE then SET on the deleted node"
    "Legacy: the statement succeeds, traverses an illegal graph state and \
     returns an 'empty node'; revised: the first DELETE aborts because the \
     :ORDERED relationship would dangle"
    (legacy_ok && revised_ok, legacy_obs ^ "; " ^ revised_obs)

(* ------------------------------------------------------------------ *)
(* E6: Example 3 / Figure 6 — legacy MERGE is order-dependent         *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let run order =
    fst
      (Runner.run_merge_mode
         (Config.with_order order Config.cypher9)
         ~mode:Merge_legacy Fixtures.example3_merge
         (Fixtures.example3_graph, Fixtures.example3_table))
  in
  let top_down = run Config.Forward in
  let bottom_up = run Config.Reverse in
  let ok_b, obs_b = check_iso ~expected:Fixtures.figure6b top_down in
  let ok_a, obs_a = check_iso ~expected:Fixtures.figure6a bottom_up in
  let differ = not (Iso.isomorphic top_down bottom_up) in
  report "E6" "Example 3: legacy MERGE reads its own writes"
    "Processing the table top-down yields Figure 6b (4 relationships: the \
     third record matches); bottom-up yields Figure 6a (6 relationships); \
     the two results differ — nondeterminism"
    ( ok_a && ok_b && differ,
      Printf.sprintf "top-down: %s; bottom-up: %s; results differ=%b" obs_b
        obs_a differ )

(* ------------------------------------------------------------------ *)
(* E7: Example 4 — every proposed semantics is order-independent      *)
(* ------------------------------------------------------------------ *)

let proposal_modes =
  [
    ("ALL", Merge_all);
    ("GROUPING", Merge_grouping);
    ("WEAK", Merge_weak_collapse);
    ("COLLAPSE", Merge_collapse);
    ("SAME", Merge_same);
  ]

let e7 () =
  let results =
    List.map
      (fun (name, mode) ->
        let run order =
          fst
            (Runner.run_merge_mode
               (Config.with_order order Config.permissive)
               ~mode Fixtures.example3_merge
               (Fixtures.example3_graph, Fixtures.example3_table))
        in
        let base = run Config.Forward in
        let stable =
          List.for_all
            (fun order -> Iso.isomorphic base (run order))
            Runner.probe_orders
        in
        let expected =
          match mode with
          | Merge_all | Merge_grouping -> Fixtures.figure6a
          | _ -> Fixtures.figure6b
        in
        let shape_ok = Iso.isomorphic expected base in
        (name, stable, shape_ok))
      proposal_modes
  in
  let passed = List.for_all (fun (_, s, k) -> s && k) results in
  report "E7" "Example 4: determinism of the proposed MERGE semantics"
    "All five proposals are invariant under driving-table reordering; \
     Atomic and Grouping yield Figure 6a, the collapse variants yield the \
     minimal Figure 6b"
    ( passed,
      String.concat "; "
        (List.map
           (fun (name, stable, shape) ->
             Printf.sprintf "%s: order-independent=%b figure=%b" name stable
               shape)
           results) )

(* ------------------------------------------------------------------ *)
(* E8: Example 5 / Figure 7 — duplicates and nulls                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let run mode =
    fst
      (Runner.run_merge_mode Config.permissive ~mode Fixtures.example5_merge
         (Graph.empty, Fixtures.example5_table))
  in
  let checks =
    [
      ("ALL", Merge_all, Fixtures.figure7a);
      ("GROUPING", Merge_grouping, Fixtures.figure7b);
      ("WEAK", Merge_weak_collapse, Fixtures.figure7c);
      ("COLLAPSE", Merge_collapse, Fixtures.figure7c);
      ("SAME", Merge_same, Fixtures.figure7c);
    ]
  in
  let results =
    List.map
      (fun (name, mode, expected) ->
        let ok, obs = check_iso ~expected (run mode) in
        (name, ok, obs))
      checks
  in
  report "E8" "Example 5: MERGE variants on the cid/pid table with nulls"
    "Atomic creates 12 nodes (Figure 7a); Grouping 8 (Figure 7b); all \
     collapse variants yield the 4-node graph of Figure 7c with a single \
     null-id product"
    ( List.for_all (fun (_, ok, _) -> ok) results,
      String.concat "; "
        (List.map (fun (name, _, obs) -> name ^ ": " ^ obs) results) )

(* ------------------------------------------------------------------ *)
(* E9: Example 6 / Figure 8 — cross-position node collapse            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let run mode =
    fst
      (Runner.run_merge_mode Config.permissive ~mode Fixtures.example6_merge
         (Graph.empty, Fixtures.example6_table))
  in
  let checks =
    [
      ("ALL", Merge_all, Fixtures.figure8a);
      ("GROUPING", Merge_grouping, Fixtures.figure8a);
      ("WEAK", Merge_weak_collapse, Fixtures.figure8a);
      ("COLLAPSE", Merge_collapse, Fixtures.figure8b);
      ("SAME", Merge_same, Fixtures.figure8b);
    ]
  in
  let results =
    List.map
      (fun (name, mode, expected) ->
        let ok, obs = check_iso ~expected (run mode) in
        (name, ok, obs))
      checks
  in
  report "E9" "Example 6: user 98 buys and sells"
    "Weak Collapse keeps two :User{id:98} nodes (Figure 8a) because they \
     sit at different pattern positions; Collapse and Strong Collapse \
     combine them (Figure 8b)"
    ( List.for_all (fun (_, ok, _) -> ok) results,
      String.concat "; "
        (List.map (fun (name, _, obs) -> name ^ ": " ^ obs) results) )

(* ------------------------------------------------------------------ *)
(* E10: Example 7 / Figure 9 — relationship collapse and the          *)
(*      match-after-merge anomaly                                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let run mode =
    fst
      (Runner.run_merge_mode Config.permissive ~mode Fixtures.example7_merge
         (Fixtures.example7_graph, Fixtures.example7_table))
  in
  let checks =
    [
      ("ALL", Merge_all, Fixtures.figure9a);
      ("GROUPING", Merge_grouping, Fixtures.figure9a);
      ("WEAK", Merge_weak_collapse, Fixtures.figure9a);
      ("COLLAPSE", Merge_collapse, Fixtures.figure9a);
      ("SAME", Merge_same, Fixtures.figure9b);
    ]
  in
  let results =
    List.map
      (fun (name, mode, expected) ->
        let ok, obs = check_iso ~expected (run mode) in
        (name, ok, obs))
      checks
  in
  (* after Strong Collapse, re-matching the merged pattern finds nothing
     under Cypher's single-edge-traversal semantics *)
  let strong = run Merge_same in
  let rematch =
    match Api.run_string ~config:Config.revised strong Fixtures.example7_match with
    | Ok o -> Table.row_count o.Api.table
    | Error _ -> -1
  in
  let weak = run Merge_collapse in
  let rematch_weak =
    match Api.run_string ~config:Config.revised weak Fixtures.example7_match with
    | Ok o -> Table.row_count o.Api.table
    | Error _ -> -1
  in
  let figures_ok = List.for_all (fun (_, ok, _) -> ok) results in
  report "E10" "Example 7: clickstream MERGE and match-after-merge"
    "Only Strong Collapse merges the two p1→p2 :TO edges (Figure 9b); \
     re-matching the merged pattern then returns no matches under \
     relationship-isomorphic semantics, while Collapse's graph (Figure 9a) \
     still matches"
    ( figures_ok && rematch = 0 && rematch_weak > 0,
      Printf.sprintf "%s; re-match rows: strong=%d collapse=%d"
        (String.concat "; " (List.map (fun (name, _, obs) -> name ^ ": " ^ obs) results))
        rematch rematch_weak )

(* ------------------------------------------------------------------ *)
(* E11: the paper's planned extension — homomorphism-based matching    *)
(* ------------------------------------------------------------------ *)

(** Section 6 (after Example 7): "if instead of the current Cypher
    matching semantics one would use matching based on graph
    homomorphisms, then for each of the above versions of merge, first
    merging a pattern and then matching it will result in a positive
    match.  [...] For them, Strong Collapse will be a very natural
    choice." *)
let e11 () =
  let homo = Config.with_match_mode Config.Homomorphic Config.permissive in
  let merged mode =
    fst
      (Runner.run_merge_mode Config.permissive ~mode Fixtures.example7_merge
         (Fixtures.example7_graph, Fixtures.example7_table))
  in
  let rematch config g =
    match Api.run_string ~config g Fixtures.example7_match with
    | Ok o -> Table.row_count o.Api.table
    | Error _ -> -1
  in
  let modes =
    [
      ("ALL", Merge_all); ("GROUPING", Merge_grouping);
      ("WEAK", Merge_weak_collapse); ("COLLAPSE", Merge_collapse);
      ("SAME", Merge_same);
    ]
  in
  let results =
    List.map
      (fun (name, mode) ->
        let g = merged mode in
        (name, rematch Config.permissive g, rematch homo g))
      modes
  in
  (* under isomorphic matching only SAME fails to re-match; under
     homomorphic matching every version re-matches positively *)
  let passed =
    List.for_all
      (fun (name, iso, homo_rows) ->
        homo_rows > 0 && if name = "SAME" then iso = 0 else iso > 0)
      results
  in
  report "E11"
    "Section 6 extension: homomorphism-based matching after MERGE"
    "Under homomorphism-based matching, merge-then-match is a positive \
     match for every version of MERGE — making Strong Collapse 'a very \
     natural choice' for that regime"
    ( passed,
      String.concat "; "
        (List.map
           (fun (name, iso, homo_rows) ->
             Printf.sprintf "%s: iso-rematch=%d homo-rematch=%d" name iso
               homo_rows)
           results) )

let all () =
  [ e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 ();
    e11 () ]

let pp_report ppf r =
  Fmt.pf ppf "[%s] %s — %s@.  paper : %s@.  found : %s@."
    (if r.passed then "PASS" else "FAIL")
    r.id r.title r.paper_claim r.observed
