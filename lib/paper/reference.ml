(** A naive reference implementation of MERGE ALL and MERGE SAME,
    transcribed as directly as possible from the formal definitions of
    Section 8.2 — used for differential testing of the production
    implementation in [cypher_core].

    Differences from the production code are deliberate:
    - instantiation is written independently (no sharing with
      [Cypher_core.Create] / [Cypher_core.Merge]);
    - the collapsibility quotient is computed by pairwise comparison and
      union-find over *all* created entities (Definitions 1 and 2,
      checked literally), not by canonical-key grouping;
    - no position bookkeeping, no label-index shortcuts.

    Only the two adopted semantics (Section 7) are covered; the weaker
    proposals are position-dependent refinements tested against the
    figures instead. *)

open Cypher_util.Maps
open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
module Ctx = Cypher_eval.Ctx
module Eval = Cypher_eval.Eval
module Matcher = Cypher_matcher.Matcher

let ctx g row = Ctx.make g row

(* ------------------------------------------------------------------ *)
(* [[CREATE π]] — naive per-record instantiation                      *)
(* ------------------------------------------------------------------ *)

let create_instance g0 g row (patterns : pattern list) =
  let fresh_nodes = ref [] in
  let fresh_rels = ref [] in
  let node_of g row (np : node_pat) =
    match np.np_var with
    | Some v when Record.mem row v -> (
        match Record.find row v with
        | Value.Node id -> (g, row, id)
        | v ->
            Cypher_core.Errors.update_error
              "reference: bound merge variable is not a node: %s"
              (Value.to_string v))
    | _ ->
        let props =
          List.fold_left
            (fun acc (k, e) -> Props.set acc k (Eval.eval (ctx g0 row) e))
            Props.empty np.np_props
        in
        let id, g = Graph.create_node ~labels:np.np_labels ~props g in
        fresh_nodes := id :: !fresh_nodes;
        let row =
          match np.np_var with
          | Some v -> Record.bind row v (Value.Node id)
          | None -> row
        in
        (g, row, id)
  in
  List.fold_left
    (fun (g, row) (p : pattern) ->
      let g, row, start = node_of g row p.pat_start in
      let g, row, _ =
        List.fold_left
          (fun (g, row, prev) ((rp : rel_pat), np) ->
            let g, row, next = node_of g row np in
            let src, tgt =
              match rp.rp_dir with
              | In -> (next, prev)
              | Out | Undirected -> (prev, next)
            in
            let r_type = List.hd rp.rp_types in
            let props =
              List.fold_left
                (fun acc (k, e) -> Props.set acc k (Eval.eval (ctx g0 row) e))
                Props.empty rp.rp_props
            in
            let id, g = Graph.create_rel ~src ~tgt ~r_type ~props g in
            fresh_rels := id :: !fresh_rels;
            let row =
              match rp.rp_var with
              | Some v -> Record.bind row v (Value.Rel id)
              | None -> row
            in
            (g, row, next))
          (g, row, start) p.pat_steps
      in
      (g, row))
    (g, row) patterns
  |> fun (g, row) -> (g, row, !fresh_nodes, !fresh_rels)

(* ------------------------------------------------------------------ *)
(* [[MERGE ALL π]](G, T)                                              *)
(* ------------------------------------------------------------------ *)

(** Returns the result pair plus the sets of created entities (needed by
    the quotient). *)
let merge_all_full (g : Graph.t) (t : Table.t) (patterns : pattern list) =
  (* T_match = [[MATCH π]](G, T); T_fail = unmatched records *)
  let t_match, t_fail =
    List.fold_left
      (fun (ms, fs) row ->
        match Matcher.match_patterns (ctx g row) patterns with
        | [] -> (ms, row :: fs)
        | extensions -> (List.rev_append extensions ms, fs))
      ([], []) (Table.rows t)
  in
  let t_match = List.rev t_match and t_fail = List.rev t_fail in
  (* (G_create, T_create) = [[CREATE π]](G, T_fail) *)
  let g', t_create_rev, new_nodes, new_rels =
    List.fold_left
      (fun (g', rows, ns, rs) row ->
        let g', row', ns', rs' = create_instance g g' row patterns in
        (g', row' :: rows, ns' @ ns, rs' @ rs))
      (g, [], [], []) t_fail
  in
  let columns = Table.columns t @ List.concat_map pattern_vars patterns in
  let table = Table.make columns (t_match @ List.rev t_create_rev) in
  (g', table, Iset.of_list new_nodes, Iset.of_list new_rels)

let merge_all g t patterns =
  let g', table, _, _ = merge_all_full g t patterns in
  (g', table)

(* ------------------------------------------------------------------ *)
(* Collapsibility and the quotient — pairwise, with union-find        *)
(* ------------------------------------------------------------------ *)

module Uf = struct
  type t = (int, int) Hashtbl.t

  let create ids : t =
    let tbl = Hashtbl.create 64 in
    List.iter (fun id -> Hashtbl.replace tbl id id) ids;
    tbl

  let rec find (uf : t) x =
    let p = Hashtbl.find uf x in
    if p = x then x
    else begin
      let root = find uf p in
      Hashtbl.replace uf x root;
      root
    end

  (** Union keeping the smaller id as representative. *)
  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then
      if ra < rb then Hashtbl.replace uf rb ra else Hashtbl.replace uf ra rb
end

(** Definition 1, checked literally on a pair of nodes. *)
let nodes_collapsible g' new_nodes n1 n2 =
  let a = Graph.node_exn g' n1 and b = Graph.node_exn g' n2 in
  Sset.equal a.Graph.labels b.Graph.labels
  && Props.equal a.Graph.n_props b.Graph.n_props
  && ((Iset.mem n1 new_nodes && Iset.mem n2 new_nodes) || n1 = n2)

(** Definition 2, given the node classes. *)
let rels_collapsible g' new_rels node_rep r1 r2 =
  let a = Graph.rel_exn g' r1 and b = Graph.rel_exn g' r2 in
  String.equal a.Graph.r_type b.Graph.r_type
  && Props.equal a.Graph.r_props b.Graph.r_props
  && node_rep a.Graph.src = node_rep b.Graph.src
  && node_rep a.Graph.tgt = node_rep b.Graph.tgt
  && ((Iset.mem r1 new_rels && Iset.mem r2 new_rels) || r1 = r2)

(** [[MERGE SAME π]] = the quotient of the MERGE ALL result. *)
let merge_same g t patterns =
  let g', table, new_nodes, new_rels = merge_all_full g t patterns in
  (* node classes *)
  let node_ids = Graph.node_ids g' in
  let nuf = Uf.create node_ids in
  List.iter
    (fun n1 ->
      List.iter
        (fun n2 ->
          if n1 < n2 && nodes_collapsible g' new_nodes n1 n2 then
            Uf.union nuf n1 n2)
        node_ids)
    node_ids;
  let node_rep id = Uf.find nuf id in
  (* relationship classes (after node classes) *)
  let rel_ids = Graph.rel_ids g' in
  let ruf = Uf.create rel_ids in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if r1 < r2 && rels_collapsible g' new_rels node_rep r1 r2 then
            Uf.union ruf r1 r2)
        rel_ids)
    rel_ids;
  let rel_rep id = Uf.find ruf id in
  (* build G'' from representatives *)
  let nodes =
    List.filter (fun (n : Graph.node) -> node_rep n.Graph.n_id = n.Graph.n_id)
      (Graph.nodes g')
  in
  let rels =
    List.filter_map
      (fun (r : Graph.rel) ->
        if rel_rep r.Graph.r_id = r.Graph.r_id then
          Some
            { r with Graph.src = node_rep r.Graph.src; tgt = node_rep r.Graph.tgt }
        else None)
      (Graph.rels g')
  in
  let g'' =
    Graph.rebuild ~next_id:(Graph.next_id g') ~tombs:(Graph.tombstones g')
      nodes rels
  in
  (* T'' replaces every occurrence of x by [x] *)
  let table'' =
    Table.map
      (Record.map_values (fun v ->
           match v with
           | Value.Node id -> Value.Node (node_rep id)
           | Value.Rel id -> Value.Rel (rel_rep id)
           | v -> v))
      table
  in
  (g'', table'')
