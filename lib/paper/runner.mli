(** Helpers to run paper experiments: executing a single (usually MERGE)
    clause against an explicit graph–driving-table pair, the situation
    all of the paper's Section 6 examples are stated in. *)

open Cypher_graph
open Cypher_table
open Cypher_core

(** [parse_clause src] parses a one-clause statement permissively.
    @raise Failure on parse errors or multi-clause input. *)
val parse_clause : string -> Cypher_ast.Ast.clause

(** [run_clause config src (g, t)] executes the clause denoted by [src]
    on the given graph–table pair. *)
val run_clause :
  Config.t -> string -> Graph.t * Table.t -> Graph.t * Table.t

(** [run_merge_mode config ~mode src (g, t)] executes the MERGE clause
    in [src] overriding its semantics with [mode] — this is how the
    harness compares all five proposals on the same query text. *)
val run_merge_mode :
  Config.t -> mode:Cypher_ast.Ast.merge_mode -> string ->
  Graph.t * Table.t -> Graph.t * Table.t

(** Driving-table orders used to probe order (in)dependence. *)
val probe_orders : Config.order list
