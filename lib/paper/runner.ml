(** Helpers to run paper experiments: executing a single (usually MERGE)
    clause against an explicit graph–driving-table pair, the situation
    all of the paper's Section 6 examples are stated in. *)

open Cypher_graph
open Cypher_table
open Cypher_core
module Validate = Cypher_ast.Validate

(** [parse_clause src] parses a one-clause statement permissively.
    @raise Errors.Error on parse/validation failure (the structured
    error is preserved for callers that match on it). *)
let parse_clause src : Cypher_ast.Ast.clause =
  match Api.parse ~dialect:Validate.Permissive src with
  | Error e -> Errors.fail e
  | Ok q -> (
      match q.Cypher_ast.Ast.clauses with
      | [ c ] -> c
      | _ -> Errors.fail (Errors.Validation_error "expected a single clause"))

(** [run_clause config src (g, t)] executes the clause denoted by [src]
    on the given graph–table pair. *)
let run_clause config src (g, t) : Graph.t * Table.t =
  Engine.exec_clause config ~stats:Stats.null (g, t) (parse_clause src)

(** [run_merge_mode config ~mode src (g, t)] executes the MERGE clause in
    [src] but overriding its semantics with [mode] — this is how the
    harness compares all five proposals on the same query text. *)
let run_merge_mode config ~mode src (g, t) : Graph.t * Table.t =
  match parse_clause src with
  | Cypher_ast.Ast.Merge { patterns; on_create; on_match; _ } ->
      Merge.run config ~stats:Stats.null (g, t) ~mode ~patterns ~on_create
        ~on_match
  | _ -> Errors.fail (Errors.Validation_error "expected a MERGE clause")

(** All driving-table orders used to probe order dependence. *)
let probe_orders = [ Config.Forward; Config.Reverse; Config.Seeded 1; Config.Seeded 42 ]
