(** A naive reference implementation of MERGE ALL and MERGE SAME,
    transcribed as directly as possible from the formal definitions of
    Section 8.2 — used for differential testing of the production
    implementation in [cypher_core].

    Instantiation is independent code; the collapsibility quotient is
    computed by pairwise application of Definitions 1 and 2 with
    union-find, not by canonical-key grouping. *)

open Cypher_graph
open Cypher_table

(** [[MERGE ALL π]](G, T), per the displayed equation of Section 8.2. *)
val merge_all :
  Graph.t -> Table.t -> Cypher_ast.Ast.pattern list -> Graph.t * Table.t

(** [[MERGE SAME π]](G, T): the quotient of the MERGE ALL result. *)
val merge_same :
  Graph.t -> Table.t -> Cypher_ast.Ast.pattern list -> Graph.t * Table.t
