(** The paper's reproducible artefacts, E1–E11 (see DESIGN.md §4).

    Each experiment runs the paper's exact workload and checks the
    outcome against the figure or described behaviour, mechanically
    (graph isomorphism, error matching, or value comparison).  The
    reports drive [bin/experiments.ml] and EXPERIMENTS.md; the test
    suite asserts that every experiment passes. *)

type report = {
  id : string;
  title : string;
  paper_claim : string;  (** what the paper states should happen *)
  observed : string;  (** what this implementation produced *)
  passed : bool;
}

val e1 : unit -> report
(** Queries (1)–(4) on the Figure 1 marketplace. *)

val e2 : unit -> report
(** Query (5): MERGE pairs every product with a vendor. *)

val e3 : unit -> report
(** Example 1: the SET id swap. *)

val e4 : unit -> report
(** Example 2: conflicting SET on dirty data. *)

val e5 : unit -> report
(** Section 4.2: DELETE then SET on the deleted node. *)

val e6 : unit -> report
(** Example 3 / Figure 6: legacy MERGE order dependence. *)

val e7 : unit -> report
(** Example 4: determinism of all five proposed MERGE semantics. *)

val e8 : unit -> report
(** Example 5 / Figure 7: duplicates and nulls. *)

val e9 : unit -> report
(** Example 6 / Figure 8: cross-position node collapse. *)

val e10 : unit -> report
(** Example 7 / Figure 9: relationship collapse and match-after-merge. *)

val e11 : unit -> report
(** Section 6 extension: homomorphism-based matching after MERGE. *)

(** All experiments, in order. *)
val all : unit -> report list

val pp_report : Format.formatter -> report -> unit
