(** Fixtures: every graph, driving table and query the paper uses in its
    worked examples, plus builders for the expected result graphs of
    Figures 6–9.  Shared by the test suite, the experiment harness
    ([bin/experiments.ml]) and the benchmarks. *)

open Cypher_graph
open Cypher_table

let i n = Value.Int n
let s v = Value.String v

(** [build nodes rels] constructs a graph from declarative specs:
    [nodes] is a list of (labels, props) — node k is the k-th entry —
    and [rels] is a list of (src index, type, tgt index). *)
let build nodes rels : Graph.t =
  let g, ids =
    List.fold_left
      (fun (g, ids) (labels, props) ->
        let id, g = Graph.create_node ~labels ~props:(Props.of_list props) g in
        (g, id :: ids))
      (Graph.empty, []) nodes
  in
  let ids = Array.of_list (List.rev ids) in
  List.fold_left
    (fun g (src, r_type, tgt) ->
      let _, g = Graph.create_rel ~src:ids.(src) ~tgt:ids.(tgt) ~r_type g in
      g)
    g rels

(* ------------------------------------------------------------------ *)
(* Figure 1: the online marketplace                                   *)
(* ------------------------------------------------------------------ *)

(** Cypher building the solid-line part of Figure 1. *)
let figure1_setup =
  "CREATE (v1:Vendor {id: 60, name: 'cStore'}),\n\
  \       (p1:Product {id: 125, name: 'laptop'}),\n\
  \       (p2:Product {id: 125, name: 'notebook'}),\n\
  \       (p3:Product {id: 85, name: 'tablet'}),\n\
  \       (u1:User {id: 89, name: 'Bob'}),\n\
  \       (u2:User {id: 99, name: 'Jane'}),\n\
  \       (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2),\n\
  \       (u1)-[:ORDERED]->(p1), (u2)-[:ORDERED]->(p2),\n\
  \       (u2)-[:ORDERED]->(p3)"

(** The same graph built directly (for comparing against). *)
let figure1_graph =
  build
    [
      ([ "Vendor" ], [ ("id", i 60); ("name", s "cStore") ]);
      ([ "Product" ], [ ("id", i 125); ("name", s "laptop") ]);
      ([ "Product" ], [ ("id", i 125); ("name", s "notebook") ]);
      ([ "Product" ], [ ("id", i 85); ("name", s "tablet") ]);
      ([ "User" ], [ ("id", i 89); ("name", s "Bob") ]);
      ([ "User" ], [ ("id", i 99); ("name", s "Jane") ]);
    ]
    [
      (0, "OFFERS", 1); (0, "OFFERS", 2); (4, "ORDERED", 1); (5, "ORDERED", 2);
      (5, "ORDERED", 3);
    ]

(** Queries (1)–(5) of Sections 2–3, verbatim. *)
let query1 =
  "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)\n\
   WHERE p.name = 'laptop'\n\
   RETURN v"

let query2 =
  "MATCH (u:User {id: 89})\n\
   CREATE (u)-[:ORDERED]->(:New_Product {id: 0})"

let query3 =
  "MATCH (p:New_Product {id: 0})\n\
   SET p:Product, p.id = 120, p.name = 'smartphone'\n\
   REMOVE p:New_Product"

let query4 = "MATCH (p:Product {id: 120})\nDETACH DELETE p"

let query5_legacy =
  "MATCH (p:Product)\nMERGE (p)<-[:OFFERS]-(v:Vendor)\nRETURN p, v"

(* ------------------------------------------------------------------ *)
(* Example 1 and 2: SET                                               *)
(* ------------------------------------------------------------------ *)

let example1_swap =
  "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'})\n\
   SET p1.id = p2.id, p2.id = p1.id"

let example1_sequential =
  "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'})\n\
   SET p1.id = p2.id\n\
   SET p2.id = p1.id"

let example2_ambiguous =
  "MATCH (p1:Product {id: 85}), (p2:Product {id: 125})\n\
   SET p1.name = p2.name"

(* ------------------------------------------------------------------ *)
(* Section 4.2: the deleted-node query                                *)
(* ------------------------------------------------------------------ *)

let deleted_node_query =
  "MATCH (user)-[order:ORDERED]->(product)\n\
   DELETE user\n\
   SET user.id = 999\n\
   DELETE order\n\
   RETURN user"

(** A one-user one-order graph on which the above runs cleanly. *)
let deleted_node_graph =
  build
    [
      ([ "User" ], [ ("id", i 89) ]);
      ([ "Product" ], [ ("id", i 125) ]);
    ]
    [ (0, "ORDERED", 1) ]

(* ------------------------------------------------------------------ *)
(* Example 3 / Figures 6a, 6b                                         *)
(* ------------------------------------------------------------------ *)

(** Nodes carry a name property so result graphs are rigid under
    isomorphism (the paper's figures label them u1, u2, p, v1, v2). *)
let example3_graph =
  build
    [
      ([], [ ("name", s "u1") ]);
      ([], [ ("name", s "u2") ]);
      ([], [ ("name", s "p") ]);
      ([], [ ("name", s "v1") ]);
      ([], [ ("name", s "v2") ]);
    ]
    []

(** The driving table of Example 3 over the graph above; node values
    refer to [example3_graph] by creation order. *)
let example3_table =
  let row user product vendor =
    Record.of_list
      [
        ("user", Value.Node user); ("product", Value.Node product);
        ("vendor", Value.Node vendor);
      ]
  in
  Table.make [ "user"; "product"; "vendor" ]
    [ row 0 2 3; row 1 2 4; row 0 2 4 ]

let example3_merge = "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)"

let fig6_nodes =
  [
    ([], [ ("name", s "u1") ]);
    ([], [ ("name", s "u2") ]);
    ([], [ ("name", s "p") ]);
    ([], [ ("name", s "v1") ]);
    ([], [ ("name", s "v2") ]);
  ]

(** Figure 6a: all three records created their paths. *)
let figure6a =
  build fig6_nodes
    [
      (0, "ORDERED", 2); (3, "OFFERS", 2);
      (1, "ORDERED", 2); (4, "OFFERS", 2);
      (0, "ORDERED", 2); (4, "OFFERS", 2);
    ]

(** Figure 6b: the third record matched what the first two created. *)
let figure6b =
  build fig6_nodes
    [
      (0, "ORDERED", 2); (3, "OFFERS", 2);
      (1, "ORDERED", 2); (4, "OFFERS", 2);
    ]

(* ------------------------------------------------------------------ *)
(* Example 5 / Figures 7a, 7b, 7c                                     *)
(* ------------------------------------------------------------------ *)

let example5_merge = "MERGE (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"

let example5_table =
  let row cid pid date =
    Record.of_list [ ("cid", cid); ("pid", pid); ("date", date) ]
  in
  Table.make [ "cid"; "pid"; "date" ]
    [
      row (i 98) (i 125) (s "2018-06-23");
      row (i 98) (i 125) (s "2018-07-06");
      row (i 98) Value.Null Value.Null;
      row (i 98) Value.Null Value.Null;
      row (i 99) (i 125) (s "2018-03-11");
      row (i 99) Value.Null Value.Null;
    ]

let user id = ([ "User" ], [ ("id", i id) ])
let product id = ([ "Product" ], [ ("id", i id) ])
let product_nul = ([ "Product" ], [])

(** Figure 7a (Atomic / MERGE ALL): one pair per record — 12 nodes. *)
let figure7a =
  build
    [
      user 98; product 125;
      user 98; product 125;
      user 98; product_nul;
      user 98; product_nul;
      user 99; product 125;
      user 99; product_nul;
    ]
    [
      (0, "ORDERED", 1); (2, "ORDERED", 3); (4, "ORDERED", 5);
      (6, "ORDERED", 7); (8, "ORDERED", 9); (10, "ORDERED", 11);
    ]

(** Figure 7b (Grouping): one pair per distinct cid/pid — 8 nodes. *)
let figure7b =
  build
    [ user 98; product 125; user 98; product_nul; user 99; product 125;
      user 99; product_nul ]
    [ (0, "ORDERED", 1); (2, "ORDERED", 3); (4, "ORDERED", 5); (6, "ORDERED", 7) ]

(** Figure 7c (all collapse variants): 98, 99, 125 and the null product. *)
let figure7c =
  build
    [ user 98; user 99; product 125; product_nul ]
    [
      (0, "ORDERED", 2); (0, "ORDERED", 3); (1, "ORDERED", 2); (1, "ORDERED", 3);
    ]

(* ------------------------------------------------------------------ *)
(* Example 6 / Figures 8a, 8b                                         *)
(* ------------------------------------------------------------------ *)

let example6_merge =
  "MERGE (:User {id: bid})-[:ORDERED]->(:Product {id: pid})\n\
   <-[:OFFERS]-(:User {id: sid})"

let example6_table =
  let row bid pid sid =
    Record.of_list [ ("bid", i bid); ("pid", i pid); ("sid", i sid) ]
  in
  Table.make [ "bid"; "pid"; "sid" ] [ row 98 125 97; row 99 85 98 ]

(** Figure 8a (Atomic / Grouping / Weak Collapse): two :User{id:98}
    nodes, one per pattern position. *)
let figure8a =
  build
    [ user 98; product 125; user 97; user 99; product 85; user 98 ]
    [
      (0, "ORDERED", 1); (2, "OFFERS", 1); (3, "ORDERED", 4); (5, "OFFERS", 4);
    ]

(** Figure 8b (Collapse / Strong Collapse): the 98s merge. *)
let figure8b =
  build
    [ user 98; product 125; user 97; user 99; product 85 ]
    [
      (0, "ORDERED", 1); (2, "OFFERS", 1); (3, "ORDERED", 4); (0, "OFFERS", 4);
    ]

(* ------------------------------------------------------------------ *)
(* Example 7 / Figures 9a, 9b                                         *)
(* ------------------------------------------------------------------ *)

(** Four product pages previously looked up in the graph. *)
let example7_graph =
  build
    [
      ([ "Product" ], [ ("name", s "p1") ]);
      ([ "Product" ], [ ("name", s "p2") ]);
      ([ "Product" ], [ ("name", s "p3") ]);
      ([ "Product" ], [ ("name", s "p4") ]);
    ]
    []

let example7_table =
  Table.make
    [ "a"; "b"; "c"; "d"; "e"; "tgt" ]
    [
      Record.of_list
        [
          ("a", Value.Node 0); ("b", Value.Node 1); ("c", Value.Node 2);
          ("d", Value.Node 0); ("e", Value.Node 1); ("tgt", Value.Node 3);
        ];
    ]

let example7_merge =
  "MERGE (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)"

let example7_match =
  "MATCH (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)\n\
   RETURN a"

let fig9_nodes =
  [
    ([ "Product" ], [ ("name", s "p1") ]);
    ([ "Product" ], [ ("name", s "p2") ]);
    ([ "Product" ], [ ("name", s "p3") ]);
    ([ "Product" ], [ ("name", s "p4") ]);
  ]

(** Figure 9a: both p1→p2 :TO edges survive (5 relationships). *)
let figure9a =
  build fig9_nodes
    [
      (0, "TO", 1); (1, "TO", 2); (2, "TO", 0); (0, "TO", 1); (1, "BOUGHT", 3);
    ]

(** Figure 9b (Strong Collapse): the two p1→p2 edges collapse. *)
let figure9b =
  build fig9_nodes
    [ (0, "TO", 1); (1, "TO", 2); (2, "TO", 0); (1, "BOUGHT", 3) ]

(* ------------------------------------------------------------------ *)
(* Synthetic workload generators (benchmarks)                         *)
(* ------------------------------------------------------------------ *)

(** [marketplace_graph ~vendors ~products ~users ~orders_per_user]
    generates a larger Figure-1-style graph deterministically. *)
let marketplace_graph ~vendors ~products ~users ~orders_per_user : Graph.t =
  let nodes =
    List.init vendors (fun k ->
        ([ "Vendor" ], [ ("id", i k); ("name", s (Printf.sprintf "vendor%d" k)) ]))
    @ List.init products (fun k ->
          ( [ "Product" ],
            [ ("id", i (1000 + k)); ("name", s (Printf.sprintf "product%d" k)) ] ))
    @ List.init users (fun k ->
          ([ "User" ], [ ("id", i (100000 + k)); ("name", s (Printf.sprintf "user%d" k)) ]))
  in
  let product_idx k = vendors + (k mod products) in
  let rels =
    List.concat_map
      (fun k -> [ (k mod vendors, "OFFERS", product_idx k) ])
      (List.init products (fun k -> k))
    @ List.concat_map
        (fun u ->
          List.init orders_per_user (fun o ->
              ( vendors + products + u,
                "ORDERED",
                product_idx ((u * orders_per_user) + o) )))
        (List.init users (fun k -> k))
  in
  build nodes rels

(** [orders_table n] generates an Example-5-style driving table with
    duplicates and nulls sprinkled deterministically. *)
let orders_table n : Table.t =
  let row k =
    let cid = i (90 + (k mod 7)) in
    let pid = if k mod 5 = 3 then Value.Null else i (100 + (k mod 11)) in
    let date = if k mod 5 = 3 then Value.Null else s (Printf.sprintf "2018-%02d-%02d" (1 + (k mod 12)) (1 + (k mod 28))) in
    Record.of_list [ ("cid", cid); ("pid", pid); ("date", date) ]
  in
  Table.make [ "cid"; "pid"; "date" ] (List.init n row)
