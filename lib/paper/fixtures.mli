(** Fixtures: every graph, driving table and query the paper uses in its
    worked examples, plus builders for the expected result graphs of
    Figures 6–9.  Shared by the test suite, the experiment harness
    ([bin/experiments.ml]) and the benchmarks. *)

open Cypher_graph
open Cypher_table

(** [build nodes rels] constructs a graph from declarative specs:
    [nodes] is a list of (labels, props) — node k is the k-th entry, with
    id k — and [rels] is a list of (src index, type, tgt index). *)
val build :
  (string list * (string * Value.t) list) list ->
  (int * string * int) list ->
  Graph.t

(** {1 Figure 1: the online marketplace} *)

(** Cypher building the solid-line part of Figure 1. *)
val figure1_setup : string

(** The same graph built directly (for comparing against). *)
val figure1_graph : Graph.t

(** Queries (1)–(5) of Sections 2–3, verbatim. *)

val query1 : string
val query2 : string
val query3 : string
val query4 : string
val query5_legacy : string

(** {1 Examples 1 and 2: SET} *)

val example1_swap : string
val example1_sequential : string
val example2_ambiguous : string

(** {1 Section 4.2: the deleted-node query} *)

val deleted_node_query : string

(** A one-user one-order graph on which the above runs cleanly. *)
val deleted_node_graph : Graph.t

(** {1 Example 3 / Figures 6a, 6b} *)

(** Five relationship-less nodes named u1, u2, p, v1, v2. *)
val example3_graph : Graph.t

(** The driving table of Example 3; node values refer to
    {!example3_graph} by creation order. *)
val example3_table : Table.t

val example3_merge : string

(** Figure 6a: all three records created their paths. *)
val figure6a : Graph.t

(** Figure 6b: the third record matched what the first two created. *)
val figure6b : Graph.t

(** {1 Example 5 / Figures 7a, 7b, 7c} *)

val example5_merge : string

(** The six-row cid/pid/date table with duplicates and nulls. *)
val example5_table : Table.t

val figure7a : Graph.t
val figure7b : Graph.t
val figure7c : Graph.t

(** {1 Example 6 / Figures 8a, 8b} *)

val example6_merge : string
val example6_table : Table.t
val figure8a : Graph.t
val figure8b : Graph.t

(** {1 Example 7 / Figures 9a, 9b} *)

(** Four product pages previously looked up in the graph. *)
val example7_graph : Graph.t

(** The one-row clickstream trail a–e plus tgt. *)
val example7_table : Table.t

val example7_merge : string
val example7_match : string
val figure9a : Graph.t
val figure9b : Graph.t

(** {1 Synthetic workload generators (benchmarks)} *)

(** [marketplace_graph ~vendors ~products ~users ~orders_per_user]
    generates a larger Figure-1-style graph deterministically. *)
val marketplace_graph :
  vendors:int -> products:int -> users:int -> orders_per_user:int -> Graph.t

(** [orders_table n] generates an Example-5-style driving table with
    duplicates and nulls sprinkled deterministically. *)
val orders_table : int -> Table.t
