(** Shared map and set instantiations used across all layers. *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(** [smap_of_list l] builds a string map from an association list; later
    bindings shadow earlier ones. *)
let smap_of_list l =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l

(** [smap_equal eq m1 m2] compares two string maps for equality of their
    bindings using [eq] on values. *)
let smap_equal eq m1 m2 = Smap.equal eq m1 m2

(** [sset_of_list l] builds a string set from a list. *)
let sset_of_list = Sset.of_list
