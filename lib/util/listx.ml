(** List helpers not present in the standard library. *)

(** [take n l] is the first [n] elements of [l] (or all of [l] if shorter). *)
let rec take n l =
  match (n, l) with
  | n, _ when n <= 0 -> []
  | _, [] -> []
  | n, x :: rest -> x :: take (n - 1) rest

(** [drop n l] is [l] without its first [n] elements. *)
let rec drop n l =
  match (n, l) with
  | n, l when n <= 0 -> l
  | _, [] -> []
  | n, _ :: rest -> drop (n - 1) rest

(** [group_by key l] groups consecutive-or-not elements of [l] by [key],
    preserving first-occurrence order of groups and element order within
    each group.  Keys are compared with polymorphic equality, so they must
    be simple structural values. *)
let group_by key l =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let add x =
    let k = key x in
    match Hashtbl.find_opt tbl k with
    | None ->
        Hashtbl.add tbl k (ref [ x ]);
        order := k :: !order
    | Some r -> r := x :: !r
  in
  List.iter add l;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

(** [index_of p l] is the index of the first element satisfying [p]. *)
let index_of p l =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if p x then Some i else loop (i + 1) rest
  in
  loop 0 l

(** [interleave sep l] places [sep] between consecutive elements. *)
let rec interleave sep = function
  | [] -> []
  | [ x ] -> [ x ]
  | x :: rest -> x :: sep :: interleave sep rest

(** [all_distinct cmp l] checks that no two elements of [l] are equal
    under the ordering [cmp]. *)
let all_distinct cmp l =
  let sorted = List.sort cmp l in
  let rec loop = function
    | a :: (b :: _ as rest) -> if cmp a b = 0 then false else loop rest
    | [ _ ] | [] -> true
  in
  loop sorted

(** [permutation_of_seed seed l] is a deterministic pseudo-random
    permutation of [l] derived from [seed]; used to exercise
    order-(in)dependence of update semantics. *)
let permutation_of_seed seed l =
  let arr = Array.of_list l in
  let n = Array.length arr in
  let state = ref (seed lxor 0x9e3779b9) in
  let next_int bound =
    (* xorshift-style step; quality is irrelevant, determinism is not. *)
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s land max_int;
    !state mod bound
  in
  for i = n - 1 downto 1 do
    let j = next_int (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
