(** List helpers not present in the standard library. *)

(** [take n l] is the first [n] elements of [l] (or all of [l] if
    shorter). *)
val take : int -> 'a list -> 'a list

(** [drop n l] is [l] without its first [n] elements. *)
val drop : int -> 'a list -> 'a list

(** [group_by key l] groups elements of [l] by [key], preserving
    first-occurrence order of groups and element order within each
    group.  Keys are compared with structural equality. *)
val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list

(** [index_of p l] is the index of the first element satisfying [p]. *)
val index_of : ('a -> bool) -> 'a list -> int option

(** [interleave sep l] places [sep] between consecutive elements. *)
val interleave : 'a -> 'a list -> 'a list

(** [all_distinct cmp l] checks that no two elements of [l] are equal
    under the ordering [cmp]. *)
val all_distinct : ('a -> 'a -> int) -> 'a list -> bool

(** [permutation_of_seed seed l] is a deterministic pseudo-random
    permutation of [l] derived from [seed]; used to exercise
    order-(in)dependence of update semantics. *)
val permutation_of_seed : int -> 'a list -> 'a list
