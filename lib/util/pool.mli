(** A fixed-size pool of OCaml 5 domains for chunked fan-out over lists.

    The pool serves the engine's read-only row fan-outs (MATCH
    expansion, WHERE filtering, UNWIND/projection row mapping, MERGE
    candidate enumeration): the driving table is chunked, chunks are
    evaluated on worker domains, and the per-chunk results are
    concatenated back {e in input order}, so a parallel run is
    byte-identical to a serial one whenever the per-element function is
    pure — which the revised semantics guarantees for read phases (every
    clause reads the immutable input graph, never its own writes).

    Worker domains are spawned lazily on first parallel use and reused
    for the lifetime of the process; the calling domain always works on
    chunks itself, so [parallelism] counts the caller, and [n]-way
    fan-out spawns at most [n - 1] workers (hard-capped at
    {!max_workers}).  Exceptions raised inside a chunk are caught on the
    worker, and — after all chunks have finished — re-raised on the
    calling domain with their original backtrace.  When several chunks
    fail, the exception of the earliest chunk in input order wins, which
    is exactly the exception a serial run would have raised first.

    Nested calls from inside a worker fall back to the serial path, so
    the pool can never deadlock on its own job queue. *)

(** [recommended ()] is [Domain.recommended_domain_count ()]: the
    hardware-sized default for a parallelism knob. *)
val recommended : unit -> int

(** Hard cap on spawned worker domains (callers beyond this share). *)
val max_workers : int

(** Minimum number of elements per chunk (and the serial-fallback
    threshold: inputs shorter than this never fan out).  Mutable so
    tests and oracles can force adversarial chunking; use
    {!with_chunk_min} for scoped overrides. *)
val default_chunk_min : int ref

(** [with_chunk_min n f] runs [f ()] with {!default_chunk_min} set to
    [n], restoring the previous value afterwards (even on exceptions). *)
val with_chunk_min : int -> (unit -> 'a) -> 'a

(** [map_chunks ~parallelism f xs] is [List.map f xs], evaluated in
    chunks across at most [parallelism] domains.  Serial fast path when
    [parallelism <= 1], when [xs] is shorter than [?chunk_min]
    (default {!default_chunk_min}), or when called from a worker. *)
val map_chunks :
  ?chunk_min:int -> parallelism:int -> ('a -> 'b) -> 'a list -> 'b list

(** [concat_map_chunks ~parallelism f xs] is [List.concat_map f xs]
    under the same chunking and gather discipline as {!map_chunks}. *)
val concat_map_chunks :
  ?chunk_min:int -> parallelism:int -> ('a -> 'b list) -> 'a list -> 'b list

(** [filter_chunks ~parallelism p xs] is [List.filter p xs] under the
    same chunking and gather discipline as {!map_chunks}. *)
val filter_chunks :
  ?chunk_min:int -> parallelism:int -> ('a -> bool) -> 'a list -> 'a list

(** A single job submitted to the pool — the concurrent server uses
    this to run read statements on worker domains while connection
    threads block on sockets. *)
type 'a task

(** [submit ~parallelism f] schedules [f ()] on a pool worker.  Runs
    [f] inline (before returning) when [parallelism <= 1] or when
    called from a worker — a worker blocking on another worker's job
    could deadlock the queue. *)
val submit : parallelism:int -> (unit -> 'a) -> 'a task

(** [await t] blocks until the job finishes; returns its value or
    re-raises its exception with the original backtrace. *)
val await : 'a task -> 'a
