(** Shared map and set instantiations used across all layers. *)

module Smap : Map.S with type key = string
module Sset : Set.S with type elt = string
module Imap : Map.S with type key = int
module Iset : Set.S with type elt = int

(** [smap_of_list l] builds a string map from an association list; later
    bindings shadow earlier ones. *)
val smap_of_list : (string * 'a) list -> 'a Smap.t

(** [smap_equal eq m1 m2] compares two string maps for equality of their
    bindings using [eq] on values. *)
val smap_equal : ('a -> 'a -> bool) -> 'a Smap.t -> 'a Smap.t -> bool

val sset_of_list : string list -> Sset.t
