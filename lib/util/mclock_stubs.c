/* Monotonic wall-clock for PROFILE timing.

   The opam switch baked into the build image has no mtime package, so
   the nanosecond monotonic clock comes straight from clock_gettime.
   CLOCK_MONOTONIC is immune to NTP jumps, which is exactly what
   per-clause interval timing needs. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value cypher_mclock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
