(** Monotonic clock (nanoseconds since an arbitrary epoch).

    Used by the PROFILE machinery for per-clause wall-time: intervals
    between two {!now_ns} readings are meaningful; absolute values are
    not. *)

val now_ns : unit -> int64

(** [span_ns f] runs [f] and returns its result with the elapsed
    monotonic nanoseconds. *)
val span_ns : (unit -> 'a) -> 'a * int64

(** Renders a nanosecond interval for humans: ["412ns"], ["3.2us"],
    ["1.8ms"], ["2.4s"]. *)
val pp_ns : int64 -> string
