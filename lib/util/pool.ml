(** Fixed-size domain pool with ordered, deterministic gather.

    Concurrency structure: one global job queue guarded by one mutex.
    Workers loop forever popping jobs; a fan-out call enqueues one job
    per chunk except the first, runs the first chunk itself, then helps
    drain the queue until its own chunks are all done.  Per-call state
    (the result slots and the remaining-chunk counter) is shared with
    workers only under the global mutex, which gives the necessary
    happens-before edges; the input list and everything reachable from
    it is read-only during the call.

    Determinism does not depend on scheduling: results land in an array
    indexed by chunk position and are concatenated in index order, and
    when chunks fail the earliest failed chunk's exception is re-raised
    — the same exception a serial left-to-right run raises first. *)

let recommended () = Domain.recommended_domain_count ()
let max_workers = 15
let default_chunk_min = ref 16

let with_chunk_min n f =
  let saved = !default_chunk_min in
  default_chunk_min := max 1 n;
  Fun.protect ~finally:(fun () -> default_chunk_min := saved) f

(* ------------------------------------------------------------------ *)
(* Worker pool                                                        *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let work_available = Condition.create ()
let jobs : (unit -> unit) Queue.t = Queue.create ()
let spawned = ref 0

(* set on worker domains: nested fan-out from inside a job must run
   serially, otherwise a worker could block waiting for jobs that only
   blocked workers would run *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let worker () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock lock;
    while Queue.is_empty jobs do
      Condition.wait work_available lock
    done;
    let job = Queue.pop jobs in
    Mutex.unlock lock;
    job ();
    loop ()
  in
  loop ()

(* workers are daemons: they block on the queue between calls and die
   with the process *)
let ensure_workers n =
  let n = min n max_workers in
  if !spawned < n then begin
    Mutex.lock lock;
    while !spawned < n do
      incr spawned;
      ignore (Domain.spawn worker : unit Domain.t)
    done;
    Mutex.unlock lock
  end

(* ------------------------------------------------------------------ *)
(* Chunked fan-out                                                    *)
(* ------------------------------------------------------------------ *)

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

(** Splits [xs] into consecutive chunks of [size] (the last may be
    shorter), preserving element order. *)
let split_chunks size xs =
  let rec take n acc xs =
    if n = 0 then (List.rev acc, xs)
    else match xs with [] -> (List.rev acc, []) | x :: r -> take (n - 1) (x :: acc) r
  in
  let rec loop acc xs =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let chunk, rest = take size [] xs in
        loop (chunk :: acc) rest
  in
  loop [] xs

(** Runs [f] over every chunk, in parallel, and returns the per-chunk
    results in chunk order. *)
let run_chunks (f : 'a list -> 'b) (chunks : 'a list array) : 'b array =
  let n = Array.length chunks in
  let slots = Array.make n Pending in
  let remaining = ref n in
  let all_done = Condition.create () in
  let job i () =
    let r =
      try Done (f chunks.(i))
      with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock lock;
    slots.(i) <- r;
    decr remaining;
    if !remaining = 0 then Condition.broadcast all_done;
    Mutex.unlock lock
  in
  Mutex.lock lock;
  for i = 1 to n - 1 do
    Queue.add (job i) jobs
  done;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  job 0 ();
  (* help drain the queue, then wait for in-flight chunks *)
  let rec help () =
    Mutex.lock lock;
    if !remaining = 0 then Mutex.unlock lock
    else
      match Queue.take_opt jobs with
      | Some j ->
          Mutex.unlock lock;
          j ();
          help ()
      | None ->
          while !remaining > 0 do
            Condition.wait all_done lock
          done;
          Mutex.unlock lock
  in
  help ();
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    slots

(** The generic entry point: [per_chunk] turns one chunk into one
    result list; per-chunk outputs are concatenated in input order.
    [serial] must equal running [per_chunk] on the whole input — both
    [List.map]/[List.concat_map]/[List.filter] distribute over
    concatenation, which is what makes the gather byte-identical. *)
let run_ordered ?chunk_min ~parallelism (per_chunk : 'a list -> 'b list)
    (xs : 'a list) : 'b list =
  let chunk_min = max 1 (Option.value ~default:!default_chunk_min chunk_min) in
  if parallelism <= 1 || Domain.DLS.get in_worker then per_chunk xs
  else
    let len = List.length xs in
    if len < 2 * chunk_min then per_chunk xs
    else begin
      (* more chunks than domains smooths skewed per-row costs; the
         cap keeps per-chunk scheduling overhead bounded *)
      let target = parallelism * 4 in
      let size = max chunk_min ((len + target - 1) / target) in
      let chunks = Array.of_list (split_chunks size xs) in
      if Array.length chunks <= 1 then per_chunk xs
      else begin
        ensure_workers (parallelism - 1);
        let results = run_chunks per_chunk chunks in
        List.concat (Array.to_list results)
      end
    end

(* ------------------------------------------------------------------ *)
(* Single-job submission (the server's read executor)                 *)
(* ------------------------------------------------------------------ *)

type 'a task_state =
  | T_pending
  | T_done of 'a
  | T_failed of exn * Printexc.raw_backtrace

type 'a task = { mutable state : 'a task_state; signal : Condition.t }

(** [submit ~parallelism f] runs [f ()] on a pool worker and returns a
    task to {!await}.  The serial fast path ([parallelism <= 1], or a
    call from inside a worker — a worker blocking on another worker's
    job could deadlock the queue) runs [f] inline before returning, so
    [await] never blocks in that case. *)
let submit ~parallelism (f : unit -> 'a) : 'a task =
  let t = { state = T_pending; signal = Condition.create () } in
  let run () =
    let r =
      try T_done (f ()) with e -> T_failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock lock;
    t.state <- r;
    Condition.broadcast t.signal;
    Mutex.unlock lock
  in
  if parallelism <= 1 || Domain.DLS.get in_worker then run ()
  else begin
    ensure_workers (parallelism - 1);
    Mutex.lock lock;
    Queue.add run jobs;
    Condition.broadcast work_available;
    Mutex.unlock lock
  end;
  t

(** [await t] blocks until [t]'s job has finished, then returns its
    result (re-raising its exception with the original backtrace). *)
let await (t : 'a task) : 'a =
  Mutex.lock lock;
  while (match t.state with T_pending -> true | _ -> false) do
    Condition.wait t.signal lock
  done;
  let s = t.state in
  Mutex.unlock lock;
  match s with
  | T_done v -> v
  | T_failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | T_pending -> assert false

let map_chunks ?chunk_min ~parallelism f xs =
  run_ordered ?chunk_min ~parallelism (List.map f) xs

let concat_map_chunks ?chunk_min ~parallelism f xs =
  run_ordered ?chunk_min ~parallelism (List.concat_map f) xs

let filter_chunks ?chunk_min ~parallelism p xs =
  run_ordered ?chunk_min ~parallelism (List.filter p) xs
