(** Monotonic clock — see mclock.mli.  The implementation is a C stub
    over [clock_gettime(CLOCK_MONOTONIC)]; no external package needed. *)

external now_ns : unit -> int64 = "cypher_mclock_now_ns"

let span_ns f =
  let t0 = now_ns () in
  let x = f () in
  (x, Int64.sub (now_ns ()) t0)

let pp_ns ns =
  let ns = Int64.to_float ns in
  if ns < 1_000. then Printf.sprintf "%.0fns" ns
  else if ns < 1_000_000. then Printf.sprintf "%.1fus" (ns /. 1_000.)
  else if ns < 1_000_000_000. then Printf.sprintf "%.1fms" (ns /. 1_000_000.)
  else Printf.sprintf "%.2fs" (ns /. 1_000_000_000.)
