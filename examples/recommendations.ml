(** Recommendations: a larger marketplace session.

    Generates a synthetic Figure-1-style marketplace (the paper's
    running domain), then runs an analytics-and-update session on it:
    co-purchase recommendations via 2-hop matching and aggregation, a
    denormalisation step with MERGE SAME, and a dump of the enriched
    graph.

      dune exec examples/recommendations.exe
*)

open Cypher_graph
open Cypher_core
open Cypher_paper

let banner title = Fmt.pr "@.=== %s ===@." title

let run session src =
  Fmt.pr "@.> %s@." src;
  match Session.run session src with
  | Ok r ->
      Fmt.pr "%a@." Cypher_table.Table.pp r.Api.r_table;
      if Stats.contains_updates r.Api.r_stats then
        Fmt.pr "%s@." (Stats.footer r.Api.r_stats);
      r.Api.r_table
  | Error e -> failwith (Errors.to_string e)

let () =
  let g =
    Fixtures.marketplace_graph ~vendors:4 ~products:12 ~users:20
      ~orders_per_user:3
  in
  banner "Generated marketplace";
  Fmt.pr "%d nodes, %d relationships@." (Graph.node_count g) (Graph.rel_count g);

  let session = Session.create ~config:Config.revised g in

  banner "Top products by orders";
  ignore
    (run session
       "MATCH (u:User)-[:ORDERED]->(p:Product)\n\
        RETURN p.name AS product, count(*) AS orders\n\
        ORDER BY orders DESC, product LIMIT 5");

  banner "Co-purchase recommendations (2-hop)";
  ignore
    (run session
       "MATCH (me:User)-[:ORDERED]->(p:Product)<-[:ORDERED]-(peer:User),\n\
       \      (peer)-[:ORDERED]->(rec:Product)\n\
        WHERE me.name = 'user0' AND NOT rec.name = p.name\n\
        RETURN rec.name AS recommendation, count(DISTINCT peer) AS peers\n\
        ORDER BY peers DESC, recommendation LIMIT 3");

  banner "Denormalise: materialise RECOMMENDED edges with MERGE SAME";
  ignore
    (run session
       "MATCH (me:User)-[:ORDERED]->(p:Product)<-[:ORDERED]-(peer:User),\n\
       \      (peer)-[:ORDERED]->(rec:Product)\n\
        WHERE NOT rec.name = p.name\n\
        MERGE SAME (me)-[:RECOMMENDED]->(rec)\n\
        RETURN count(*) AS pairs");
  ignore
    (run session
       "MATCH (:User)-[r:RECOMMENDED]->(:Product) RETURN count(r) AS edges");

  banner "Transactional what-if: drop a vendor, inspect, roll back";
  Session.begin_tx session;
  ignore
    (run session
       "MATCH (v:Vendor {name: 'vendor0'}) DETACH DELETE v RETURN count(*) AS dropped");
  ignore
    (run session
       "MATCH (p:Product) WHERE NOT exists((:Vendor)-[:OFFERS]->(p))\n\
        RETURN count(p) AS unoffered_products");
  (match Session.rollback session with
  | Ok () -> Fmt.pr "rolled back@."
  | Error m -> failwith m);
  ignore
    (run session "MATCH (v:Vendor) RETURN count(v) AS vendors");

  banner "Dump (first lines)";
  let dump = Dump.to_cypher (Session.graph session) in
  String.split_on_char '\n' dump
  |> Cypher_util.Listx.take 6
  |> List.iter print_endline;
  Fmt.pr "... (%d characters total)@." (String.length dump)
