(** A guided tour of every Section 4 problem — run under the legacy
    Cypher 9 semantics to exhibit the bug, then under the revised
    semantics to show the fix.

      dune exec examples/semantics_tour.exe
*)

open Cypher_graph
open Cypher_core
open Cypher_paper

let banner title = Fmt.pr "@.━━━ %s ━━━@." title

let show config g src =
  Fmt.pr "@.> %s@." src;
  match Api.run_string ~config g src with
  | Ok o ->
      Fmt.pr "%a@." Cypher_table.Table.pp o.Api.table;
      Some o.Api.graph
  | Error e ->
      Fmt.pr "ERROR: %s@." (Errors.to_string e);
      None

let marketplace () =
  match Api.run_string ~config:Config.revised Graph.empty Fixtures.figure1_setup with
  | Ok o -> o.Api.graph
  | Error e -> failwith (Errors.to_string e)

let () =
  banner "Problem 1 — SET is not simultaneous (Example 1)";
  let g = marketplace () in
  Fmt.pr "The laptop and tablet ids were switched at data entry.@.";
  ignore
    (show Config.cypher9 g
       "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'})\n\
        SET p1.id = p2.id, p2.id = p1.id\n\
        WITH p1, p2 RETURN p1.id, p2.id");
  Fmt.pr "Legacy: both end as 85 — the swap silently failed.@.";
  ignore
    (show Config.revised g
       "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'})\n\
        SET p1.id = p2.id, p2.id = p1.id\n\
        RETURN p1.id, p2.id");
  Fmt.pr "Revised: all right-hand sides evaluate against the input graph;\n\
          the ids swap (Section 7).@.";

  banner "Problem 2 — ambiguous SET picks a silent winner (Example 2)";
  Fmt.pr "Two products share id 125 with different names.@.";
  ignore
    (show Config.cypher9 g
       "MATCH (p1:Product {id: 85}), (p2:Product {id: 125})\n\
        SET p1.name = p2.name WITH p1 RETURN p1.name");
  Fmt.pr "Legacy: an arbitrary winner. Revised:@.";
  ignore
    (show Config.revised g
       "MATCH (p1:Product {id: 85}), (p2:Product {id: 125})\n\
        SET p1.name = p2.name RETURN p1.name");
  Fmt.pr "The clause aborts — there is no right answer to pick.@.";

  banner "Problem 3 — manipulating deleted entities (Section 4.2)";
  let g2 = Fixtures.deleted_node_graph in
  ignore (show Config.cypher9 g2 Fixtures.deleted_node_query);
  Fmt.pr
    "Legacy: the statement succeeds and RETURNs an 'empty node'; between\n\
     the two DELETEs the graph held a dangling relationship.@.";
  ignore (show Config.revised g2 Fixtures.deleted_node_query);
  Fmt.pr "Revised: the DELETE aborts — the :ORDERED relationship would dangle.@.";

  banner "Problem 4 — MERGE reads its own writes (Example 3 / Figure 6)";
  Fmt.pr "Driving table:@.%a@." Cypher_table.Table.pp Fixtures.example3_table;
  let run order =
    fst
      (Runner.run_merge_mode
         (Config.with_order order Config.cypher9)
         ~mode:Cypher_ast.Ast.Merge_legacy Fixtures.example3_merge
         (Fixtures.example3_graph, Fixtures.example3_table))
  in
  let fwd = run Config.Forward and rev = run Config.Reverse in
  Fmt.pr "@.Legacy, top-down   (%d rels):@.%a@." (Graph.rel_count fwd) Graph.pp fwd;
  Fmt.pr "@.Legacy, bottom-up  (%d rels):@.%a@." (Graph.rel_count rev) Graph.pp rev;
  Fmt.pr "@.Same unordered table, different graphs — nondeterminism.@.";
  let same =
    fst
      (Runner.run_merge_mode Config.permissive ~mode:Cypher_ast.Ast.Merge_same
         Fixtures.example3_merge
         (Fixtures.example3_graph, Fixtures.example3_table))
  in
  Fmt.pr "@.MERGE SAME (any order):@.%a@." Graph.pp same;
  Fmt.pr "@.The revised semantics matches against the input graph and\n\
          collapses equal creations: one deterministic result (Section 7).@."
