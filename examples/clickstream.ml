(** Clickstream: the paper's Example 7 / Figure 9.

    A customer browses product pages p1 → p2 → p3 → p1 → p2 and then
    buys p4; the search-and-purchase trail is merged into the graph.
    Collapse and Strong Collapse differ on the repeated p1→p2 hop, and
    Strong Collapse triggers the match-after-merge anomaly the paper
    uses to motivate homomorphism-based matching.

      dune exec examples/clickstream.exe
*)

open Cypher_graph
open Cypher_ast.Ast
open Cypher_core
open Cypher_paper

let banner title = Fmt.pr "@.=== %s ===@." title

let () =
  banner "Products previously looked up in the graph";
  Fmt.pr "%a@." Graph.pp Fixtures.example7_graph;

  banner "The clickstream driving table (one purchase trail)";
  Fmt.pr "%a@." Cypher_table.Table.pp Fixtures.example7_table;

  banner "The merge statement";
  Fmt.pr "%s@." Fixtures.example7_merge;

  let run mode =
    fst
      (Runner.run_merge_mode Config.permissive ~mode Fixtures.example7_merge
         (Fixtures.example7_graph, Fixtures.example7_table))
  in

  banner "Collapse semantics (Figure 9a): both p1->p2 hops survive";
  let collapse = run Merge_collapse in
  Fmt.pr "%a@." Graph.pp collapse;

  banner "Strong Collapse / MERGE SAME (Figure 9b): the hops fuse";
  let same = run Merge_same in
  Fmt.pr "%a@." Graph.pp same;

  banner "Match-after-merge";
  Fmt.pr "%s@.@." Fixtures.example7_match;
  let count g =
    match Api.run_string ~config:Config.revised g Fixtures.example7_match with
    | Ok o -> Cypher_table.Table.row_count o.Api.table
    | Error e -> failwith (Errors.to_string e)
  in
  Fmt.pr "rows on the Collapse graph        : %d@." (count collapse);
  Fmt.pr "rows on the Strong Collapse graph : %d@." (count same);
  Fmt.pr
    "@.Under Cypher's relationship-isomorphic matching the merged pattern@.\
     no longer matches its own Strong Collapse output — each relationship@.\
     pattern must bind a distinct relationship, but the two :TO hops from@.\
     p1 to p2 are now a single edge.  With homomorphism-based matching@.\
     (planned for later Cypher versions, Section 6) it would match.@."
