(** Bulk import: the workload that motivates MERGE (Sections 5–6).

    "MERGE is often used to populate a graph based on a table that has
    been produced by importing from a relational database or a CSV
    file."  This example loads a CSV of orders into a driving table and
    populates an empty graph with every MERGE semantics, showing why the
    revised MERGE SAME gives the import users actually expect — and how
    legacy MERGE silently depends on row order.

      dune exec examples/bulk_import.exe [orders.csv]
*)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
open Cypher_core
open Cypher_paper

let fallback_csv =
  "cid,pid,date\n98,125,2018-06-23\n98,125,2018-07-06\n98,,\n98,,\n\
   99,125,2018-03-11\n99,,\n"

let load_table () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "examples/data/orders.csv"
  in
  if Sys.file_exists path then begin
    Fmt.pr "Loading %s@." path;
    Cypher_csv.Csv.table_of_file path
  end
  else begin
    Fmt.pr "No %s found; using the paper's Example 5 table@." path;
    Cypher_csv.Csv.table_of_string fallback_csv
  end

let merge_query = "MERGE (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"

let import mode table =
  fst (Runner.run_merge_mode Config.permissive ~mode merge_query (Graph.empty, table))

let summarize name g =
  Fmt.pr "  %-10s -> %3d nodes, %3d relationships@." name (Graph.node_count g)
    (Graph.rel_count g)

let () =
  let table = load_table () in
  Fmt.pr "Driving table (%d rows):@.%a@.@." (Table.row_count table) Table.pp table;

  Fmt.pr "Importing the same table under every MERGE semantics:@.";
  List.iter
    (fun (name, mode) -> summarize name (import mode table))
    [
      ("ALL", Merge_all);
      ("GROUPING", Merge_grouping);
      ("WEAK", Merge_weak_collapse);
      ("COLLAPSE", Merge_collapse);
      ("SAME", Merge_same);
    ];

  (* legacy MERGE depends on row order *)
  let legacy order =
    fst
      (Runner.run_merge_mode
         (Config.with_order order Config.cypher9)
         ~mode:Merge_legacy merge_query (Graph.empty, table))
  in
  let forward = legacy Config.Forward and reverse = legacy Config.Reverse in
  Fmt.pr "@.Legacy MERGE, forward vs reverse row order:@.";
  summarize "forward" forward;
  summarize "reverse" reverse;
  if Iso.isomorphic forward reverse then
    Fmt.pr "  (this table happens to be order-insensitive)@."
  else Fmt.pr "  NONDETERMINISM: the two orders give different graphs!@.";

  (* The recommended two-phase import (Section 5: "it is a common
     practice to input nodes first and relationships later"): merge the
     nodes, then MATCH them and merge only the relationship between the
     bound endpoints.  Rows with null ids drop out at the MATCH, exactly
     as a real import wants. *)
  Fmt.pr "@.Two-phase import with MERGE SAME (nodes first, then edges):@.";
  let users = Table.project [ "cid" ] table in
  let products = Table.project [ "pid" ] table in
  let g = Graph.empty in
  let g, _ = Runner.run_merge_mode Config.revised ~mode:Merge_same
      "MERGE (:User {id: cid})" (g, users) in
  let g, _ = Runner.run_merge_mode Config.revised ~mode:Merge_same
      "MERGE (:Product {id: pid})" (g, products) in
  let g, matched = Runner.run_clause Config.revised
      "MATCH (u:User {id: cid}), (p:Product {id: pid})" (g, table) in
  let g, _ = Runner.run_merge_mode Config.revised ~mode:Merge_same
      "MERGE (u)-[:ORDERED]->(p)" (g, matched) in
  summarize "two-phase" g;
  Fmt.pr "@.Resulting graph:@.%a@." Graph.pp g;

  (* and now query it through the normal API *)
  match
    Api.run_string ~config:Config.revised g
      "MATCH (u:User)-[:ORDERED]->(p:Product)\n\
       RETURN u.id AS user, count(*) AS orders ORDER BY user"
  with
  | Ok o -> Fmt.pr "@.Orders per user:@.%a@." Table.pp o.Api.table
  | Error e -> Fmt.epr "error: %s@." (Errors.to_string e)
