(** Quickstart: the online-marketplace of the paper's Section 2–3.

    Builds the Figure 1 property graph, then runs the paper's Queries
    (1)–(5) through the public API, printing each result table and the
    evolving graph.  Run with:

      dune exec examples/quickstart.exe
*)

open Cypher_graph
open Cypher_core

let banner title = Fmt.pr "@.=== %s ===@." title

let show_outcome { Api.graph; table } =
  Fmt.pr "%a@." Cypher_table.Table.pp table;
  graph

let run config g (title, src) =
  banner title;
  Fmt.pr "%s@.@." src;
  match Api.run_string ~config g src with
  | Ok outcome -> show_outcome outcome
  | Error e ->
      Fmt.pr "error: %s@." (Errors.to_string e);
      g

let () =
  banner "Building the Figure 1 marketplace graph";
  let setup =
    "CREATE (v1:Vendor {id: 60, name: 'cStore'}),\n\
    \       (p1:Product {id: 125, name: 'laptop'}),\n\
    \       (p2:Product {id: 125, name: 'notebook'}),\n\
    \       (p3:Product {id: 85, name: 'tablet'}),\n\
    \       (u1:User {id: 89, name: 'Bob'}),\n\
    \       (u2:User {id: 99, name: 'Jane'}),\n\
    \       (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2),\n\
    \       (u1)-[:ORDERED]->(p1), (u2)-[:ORDERED]->(p2),\n\
    \       (u2)-[:ORDERED]->(p3)"
  in
  let g =
    match Api.run_string ~config:Config.revised Graph.empty setup with
    | Ok o -> o.Api.graph
    | Error e -> failwith (Errors.to_string e)
  in
  Fmt.pr "%a@." Graph.pp g;

  let g =
    List.fold_left (run Config.revised) g
      [
        ( "Query (1): vendors offering a laptop and another product",
          "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)\n\
           WHERE p.name = 'laptop'\n\
           RETURN v.name" );
        ( "Query (2): Bob orders a new product",
          "MATCH (u:User {id: 89})\n\
           CREATE (u)-[:ORDERED]->(:New_Product {id: 0})\n\
           RETURN count(*) AS created" );
        ( "Query (3): the new product becomes a smartphone",
          "MATCH (p:New_Product {id: 0})\n\
           SET p:Product, p.id = 120, p.name = 'smartphone'\n\
           REMOVE p:New_Product\n\
           RETURN p.id, p.name" );
        ( "A plain DELETE fails while the product is still ordered",
          "MATCH (p:Product {id: 120}) DELETE p" );
        ( "Query (4): DETACH DELETE removes it together with its order",
          "MATCH (p:Product {id: 120}) DETACH DELETE p RETURN count(*) AS gone" );
        ( "Query (5): every product gets a vendor (MERGE SAME)",
          "MATCH (p:Product)\n\
           MERGE SAME (p)<-[:OFFERS]-(v:Vendor)\n\
           RETURN p.name, id(v) AS vendor_id" );
      ]
  in

  banner "Aggregation: orders per user";
  let g =
    run Config.revised g
      ( "orders per user",
        "MATCH (u:User)-[:ORDERED]->(p)\n\
         RETURN u.name AS user, count(*) AS orders, collect(p.name) AS items\n\
         ORDER BY orders DESC" )
  in

  banner "Final graph";
  Fmt.pr "%a@." Graph.pp g
