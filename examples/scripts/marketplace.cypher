// The Figure 1 marketplace, as a shell script:
//   dune exec bin/cypher_shell.exe -- -f examples/scripts/marketplace.cypher -i
CREATE (v1:Vendor {id: 60, name: 'cStore'}),
       (p1:Product {id: 125, name: 'laptop'}),
       (p2:Product {id: 125, name: 'notebook'}),
       (p3:Product {id: 85, name: 'tablet'}),
       (u1:User {id: 89, name: 'Bob'}),
       (u2:User {id: 99, name: 'Jane'}),
       (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2),
       (u1)-[:ORDERED]->(p1), (u2)-[:ORDERED]->(p2),
       (u2)-[:ORDERED]->(p3);

// Query (1): vendors offering a laptop and a second product
MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
WHERE p.name = 'laptop'
RETURN v.name;

// Query (5), revised: give every product a vendor
MATCH (p:Product)
MERGE SAME (p)<-[:OFFERS]-(v:Vendor)
RETURN p.name, id(v) AS vendor;

// orders per user
MATCH (u:User)-[:ORDERED]->(p)
RETURN u.name AS user, count(*) AS orders, collect(p.name) AS items
ORDER BY orders DESC;
