(** Reruns every paper experiment (E1–E10) and prints a PASS/FAIL report;
    the source of EXPERIMENTS.md. *)

let () =
  let reports = Cypher_paper.Experiments.all () in
  List.iter (fun r -> Fmt.pr "%a@." Cypher_paper.Experiments.pp_report r) reports;
  let failed = List.filter (fun r -> not r.Cypher_paper.Experiments.passed) reports in
  Fmt.pr "== %d/%d experiments reproduce the paper ==@."
    (List.length reports - List.length failed)
    (List.length reports);
  if failed <> [] then exit 1
