(** The network front door: a concurrent multi-session Cypher server.

    {v
    cypher_server [--port N] [--host A] [--db DIR] [--no-fsync]
                  [--readers N] [--no-group-commit]
    v}

    Protocol: newline-delimited text, one request per line (a Cypher
    statement or a [:]-command), each answered by payload lines plus an
    [OK rows=<n> version=<v>] / [ERR <msg>] terminator — try it with
    [printf 'CREATE (:A)\n:quit\n' | nc 127.0.0.1 <port>].

    With [--db DIR] every committed transaction write-aheads to the
    directory's journal before publishing (group commit: one fsync per
    concurrent batch); without it the server runs in memory. *)

open Cypher_core
open Cypher_server

let usage =
  "cypher_server [--port N] [--host A] [--db DIR] [--no-fsync] [--readers N] \
   [--no-group-commit]"

let () =
  (* server allocation profile: statement execution and response
     rendering allocate short-lived values at a high rate across many
     connections, and the default 256k-word minor heap drives minor
     collections into the committer's serial section.  A 8M-word minor
     heap keeps them out of the commit path. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let port = ref 0 in
  let host = ref "127.0.0.1" in
  let db = ref None in
  let fsync = ref true in
  let readers = ref (Cypher_util.Pool.recommended ()) in
  let batching = ref true in
  let spec =
    [
      ("--port", Arg.Set_int port, "N listen port (default: ephemeral)");
      ("--host", Arg.String (fun h -> host := h), "A bind address (default 127.0.0.1)");
      ( "--db",
        Arg.String (fun d -> db := Some d),
        "DIR durable database directory (omit to run in memory)" );
      ( "--no-fsync",
        Arg.Clear fsync,
        " buffered journal writes (no fsync per commit batch)" );
      ( "--readers",
        Arg.Set_int readers,
        "N domain-pool width for read statements (default: cores)" );
      ( "--no-group-commit",
        Arg.Clear batching,
        " flush every commit on its own (baseline mode)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let config =
    let c = Config.revised in
    { c with Config.durability = (if !fsync then Config.Fsync else Config.Buffered) }
  in
  let graph, sink =
    match !db with
    | None -> (Cypher_graph.Graph.empty, None)
    | Some dir -> (
        match Cypher_storage.Store.open_db ~config dir with
        | Error m ->
            Printf.eprintf "cypher_server: %s\n%!" m;
            exit 1
        | Ok (store, session) ->
            let r = Cypher_storage.Store.recovery store in
            Printf.printf "%s\n%!" (Cypher_storage.Recovery.describe r);
            ( Session.graph session,
              Some (Cypher_storage.Store.append_entries store) ))
  in
  let shared = Shared.create ~batching:!batching ?sink graph in
  let make_service () = Service.create ~readers:!readers ~config shared in
  match Server.start ~host:!host ~port:!port ~make_service () with
  | Error m ->
      Printf.eprintf "cypher_server: %s\n%!" m;
      exit 1
  | Ok server ->
      Printf.printf "listening on %s:%d\n%!" !host (Server.port server);
      Server.wait server
