(** An interactive shell and batch runner for the Cypher engine.

    Usage:
      cypher_shell                          # REPL, revised semantics
      cypher_shell --semantics legacy      # Cypher 9 behaviour
      cypher_shell -f script.cypher        # run a ;-separated script
      cypher_shell -f setup.cypher -i      # script, then drop into REPL
      cypher_shell --db PATH               # durable: journal + snapshots

    REPL commands (everything else is executed as Cypher):
      :help                 show this help
      :quit                 exit
      :graph                print the current graph
      :stats                node/relationship counts
      :stats on|off         toggle the per-statement counters footer
      :clear                reset to the empty graph
      :dot FILE             write the graph as Graphviz DOT
      :save FILE            write the graph as a Cypher dump
      :load FILE            run a ;-separated Cypher script
      :begin | :commit | :rollback   transaction control
      :compact              fold the journal into a snapshot (--db only)
      :semantics MODE       legacy | revised | permissive
      :order MODE           forward | reverse | seed:N  (legacy clauses)
      :param NAME = EXPR    bind $NAME for subsequent statements
      :params               list the current parameter bindings
      :params clear         drop all parameter bindings
*)

open Cypher_graph
open Cypher_core
module Store = Cypher_storage.Store
module Recovery = Cypher_storage.Recovery

type state = {
  session : Session.t;
  store : Store.t option;  (** present when opened with [--db] *)
  mutable show_stats : bool;
}

let print_table t =
  if Cypher_table.Table.columns t = [] then
    Fmt.pr "(%d row(s), no columns)@." (Cypher_table.Table.row_count t)
  else Fmt.pr "%a@.(%d row(s))@." Cypher_table.Table.pp t
         (Cypher_table.Table.row_count t)

let print_result st (r : Api.result) =
  (match r.Api.r_plan with Some plan -> Fmt.pr "%s@." plan | None -> ());
  (match r.Api.r_profile with
  | Some entries -> Fmt.pr "%a@." Stats.pp_profile entries
  | None -> ());
  (* EXPLAIN produces no table worth printing *)
  if r.Api.r_profile <> None || r.Api.r_plan = None then
    print_table r.Api.r_table;
  if st.show_stats && Stats.contains_updates r.Api.r_stats then
    Fmt.pr "%s@." (Stats.footer r.Api.r_stats)

let run_statement st src =
  (match Session.run st.session src with
  | Ok r -> print_result st r
  | Error e -> Fmt.epr "error: %s@." (Errors.to_string e));
  st

let semantics_of_string = function
  | "legacy" -> Some Config.cypher9
  | "revised" -> Some Config.revised
  | "permissive" -> Some Config.permissive
  | _ -> None

let order_of_string s =
  match s with
  | "forward" -> Some Config.Forward
  | "reverse" -> Some Config.Reverse
  | _ ->
      if String.length s > 5 && String.sub s 0 5 = "seed:" then
        Option.map
          (fun n -> Config.Seeded n)
          (int_of_string_opt (String.sub s 5 (String.length s - 5)))
      else None

(* Parameter values must survive a journal round-trip, so graph
   entities — whose identity is meaningless outside the session that
   produced them — are rejected at binding time. *)
let rec storable (v : Value.t) =
  match v with
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _
    ->
      true
  | Value.List vs -> List.for_all storable vs
  | Value.Map m -> Cypher_util.Maps.Smap.for_all (fun _ v -> storable v) m
  | Value.Node _ | Value.Rel _ | Value.Path _ -> false

(* [:param n = e] evaluates [e] as a standalone Cypher expression —
   against the current graph and bindings, so [:param big = $small * 10]
   works — and binds the result for every later statement. *)
let set_param st name expr_src =
  match Cypher_parser.Parser.parse_expr_string expr_src with
  | Error e ->
      Fmt.epr "error: %s@." (Cypher_parser.Parser.error_to_string e);
      st
  | Ok expr -> (
      let config = Session.config st.session in
      let ctx =
        Cypher_eval.Ctx.make ~params:config.Config.params
          (Session.graph st.session) Cypher_table.Record.empty
      in
      match Cypher_eval.Eval.eval ctx expr with
      | exception Cypher_eval.Ctx.Error m ->
          Fmt.epr "error: %s@." m;
          st
      | exception Errors.Error e ->
          Fmt.epr "error: %s@." (Errors.to_string e);
          st
      | v ->
          if not (storable v) then begin
            Fmt.epr
              "error: $%s: graph entities cannot be parameter values@." name;
            st
          end
          else begin
            Session.set_config st.session (Config.with_param name v config);
            Fmt.pr "$%s = %s@." name (Value.to_string v);
            st
          end)

let print_params st =
  let params = (Session.config st.session).Config.params in
  if Cypher_util.Maps.Smap.is_empty params then
    print_endline "no parameters bound"
  else
    Cypher_util.Maps.Smap.iter
      (fun name v -> Fmt.pr "$%s = %s@." name (Value.to_string v))
      params

let help_text =
  ":help :quit :graph :stats [on|off] :clear :dot FILE :save FILE :load FILE \
   :begin :commit :rollback :compact :semantics legacy|revised|permissive \
   :order forward|reverse|seed:N :param NAME = EXPR :params [clear] — \
   prefix a statement with EXPLAIN or PROFILE to see its plan"

(* A failed file write (unwritable path, full disk, dangling graph that
   cannot be dumped) must report and leave the REPL running, not kill
   it. *)
let write_file file content =
  match
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc (content ()))
  with
  | () -> Fmt.pr "wrote %s@." file
  | exception Sys_error m -> Fmt.epr "error: %s@." m
  | exception Invalid_argument m -> Fmt.epr "error: %s@." m

(* [:clear] on a durable session persists the cleared state immediately
   (empty snapshot, empty journal); otherwise the dropped statements
   would come back on the next open. *)
let compact st =
  match st.store with
  | None -> Fmt.epr "error: no database open (start with --db PATH)@."
  | Some store -> (
      match Store.compact store st.session with
      | Ok () -> Fmt.pr "compacted %s@." (Store.dir store)
      | Error m -> Fmt.epr "error: %s@." m)

(* Scripts ([-f] and [:load]) are processed line-by-line like the REPL:
   a line starting with [:] between statements is a shell command — so
   [:param] bindings set in a script govern the statements after them —
   and everything else accumulates until a trailing [;].  Mutually
   recursive because commands include [:load] and scripts include
   commands. *)
let rec run_chunk st src =
  if String.trim src = "" then st
  else begin
    (match Session.run st.session src with
    | Ok r -> print_result st r
    | Error e -> (
        (* a chunk may pack several ;-separated statements on one
           line — fall back to the multi-statement parser *)
        match Cypher_parser.Parser.parse_statements src with
        | Ok ((_ :: _ :: _) as statements) ->
            List.iter
              (fun (prefix, q) ->
                match Session.run_query ~prefix st.session q with
                | Ok r -> print_result st r
                | Error e -> Fmt.epr "error: %s@." (Errors.to_string e))
              statements
        | _ -> Fmt.epr "error: %s@." (Errors.to_string e)));
    st
  end

and run_script st src =
  let buf = Buffer.create 256 in
  let flush st =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    run_chunk st text
  in
  let rec go st = function
    | [] -> flush st
    | line :: rest ->
        let trimmed = String.trim line in
        if
          String.length trimmed > 0
          && trimmed.[0] = ':'
          && String.trim (Buffer.contents buf) = ""
        then begin
          Buffer.clear buf;
          match handle_command st trimmed with
          | Some st -> go st rest
          | None -> st (* :quit ends the script *)
        end
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if
            String.length trimmed > 0
            && trimmed.[String.length trimmed - 1] = ';'
          then go (flush st) rest
          else go st rest
        end
  in
  go st (String.split_on_char '\n' src)

and load_file st path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> run_script st src
  | exception Sys_error m ->
      Fmt.epr "error: %s@." m;
      st

and handle_command st line =
  match String.split_on_char ' ' (String.trim line) with
  | [ ":help" ] ->
      print_endline help_text;
      Some st
  | [ ":quit" ] | [ ":q" ] -> None
  | [ ":graph" ] ->
      Fmt.pr "%a@." Graph.pp (Session.graph st.session);
      Some st
  | [ ":stats" ] ->
      let g = Session.graph st.session in
      Fmt.pr "%d node(s), %d relationship(s)%s%s@." (Graph.node_count g)
        (Graph.rel_count g)
        (if Graph.is_wellformed g then ""
         else " — WARNING: dangling relationships present")
        (if Session.in_transaction st.session then
           Printf.sprintf " — in transaction (depth %d)"
             (Session.depth st.session)
         else "");
      List.iter
        (fun (l, n) -> Fmt.pr "  :%s %d@." l n)
        (Graph.label_histogram g);
      List.iter
        (fun (ty, n) -> Fmt.pr "  -[:%s]- %d@." ty n)
        (Graph.type_histogram g);
      Some st
  | [ ":stats"; ("on" | "off") as v ] ->
      st.show_stats <- v = "on";
      Fmt.pr "statement counters footer: %s@." v;
      Some st
  | [ ":clear" ] ->
      Session.reset st.session;
      print_endline "graph cleared";
      if st.store <> None then compact st;
      Some st
  | [ ":dot"; file ] ->
      write_file file (fun () -> Dot.to_dot (Session.graph st.session));
      Some st
  | [ ":save"; file ] ->
      write_file file (fun () -> Dump.to_cypher (Session.graph st.session));
      Some st
  | [ ":compact" ] ->
      compact st;
      Some st
  | [ ":load"; file ] -> Some (load_file st file)
  | [ ":begin" ] ->
      Session.begin_tx st.session;
      Fmt.pr "transaction started (depth %d)@." (Session.depth st.session);
      Some st
  | [ ":commit" ] ->
      (match Session.commit st.session with
      | Ok () -> print_endline "committed"
      | Error m -> Fmt.epr "error: %s@." m);
      Some st
  | [ ":rollback" ] ->
      (match Session.rollback st.session with
      | Ok () -> print_endline "rolled back"
      | Error m -> Fmt.epr "error: %s@." m);
      Some st
  | [ ":semantics"; mode ] -> (
      match semantics_of_string mode with
      | Some config ->
          Fmt.pr "semantics: %s@." mode;
          Session.set_config st.session
            { config with Config.order = (Session.config st.session).Config.order };
          Some st
      | None ->
          Fmt.epr "unknown semantics %S (legacy | revised | permissive)@." mode;
          Some st)
  | [ ":params" ] ->
      print_params st;
      Some st
  | [ ":params"; "clear" ] ->
      Session.set_config st.session
        (Config.with_params Cypher_util.Maps.Smap.empty
           (Session.config st.session));
      print_endline "parameters cleared";
      Some st
  (* Split on the first [=] of the raw line, not on the space-split
     tokens — the expression may contain significant whitespace. *)
  | ":param" :: _ -> (
      let text = String.trim (String.sub line 6 (String.length line - 6)) in
      match String.index_opt text '=' with
      | None ->
          Fmt.epr "usage: :param NAME = EXPRESSION@.";
          Some st
      | Some i ->
          let name =
            let n = String.trim (String.sub text 0 i) in
            if String.length n > 0 && n.[0] = '$' then
              String.sub n 1 (String.length n - 1)
            else n
          in
          let expr_src =
            String.trim (String.sub text (i + 1) (String.length text - i - 1))
          in
          if name = "" || expr_src = "" then begin
            Fmt.epr "usage: :param NAME = EXPRESSION@.";
            Some st
          end
          else Some (set_param st name expr_src))
  | [ ":order"; mode ] -> (
      match order_of_string mode with
      | Some order ->
          Session.set_config st.session
            (Config.with_order order (Session.config st.session));
          Some st
      | None ->
          Fmt.epr "unknown order %S (forward | reverse | seed:N)@." mode;
          Some st)
  | _ ->
      Fmt.epr "unknown command; %s@." help_text;
      Some st

let repl st =
  let buf = Buffer.create 256 in
  let rec loop st =
    if Buffer.length buf = 0 then print_string "cypher> "
    else print_string "   ...> ";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if Buffer.length buf = 0 && String.length trimmed > 0
           && trimmed.[0] = ':'
        then
          match handle_command st trimmed with
          | Some st -> loop st
          | None -> ()
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if String.length trimmed > 0
             && trimmed.[String.length trimmed - 1] = ';'
          then begin
            let src = Buffer.contents buf in
            Buffer.clear buf;
            loop (run_statement st src)
          end
          else loop st
        end
  in
  print_endline "Cypher shell — :help for commands, statements end with ';'";
  loop st

(* ------------------------------------------------------------------ *)
(* Command line                                                       *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let semantics_arg =
  let doc = "Update semantics: $(b,legacy) (Cypher 9), $(b,revised) (the paper's proposal) or $(b,permissive)." in
  Arg.(value & opt string "revised" & info [ "semantics"; "s" ] ~docv:"MODE" ~doc)

let order_arg =
  let doc = "Record order for legacy clauses: $(b,forward), $(b,reverse) or $(b,seed:N)." in
  Arg.(value & opt string "forward" & info [ "order" ] ~docv:"ORDER" ~doc)

let file_arg =
  let doc = "Run the ;-separated Cypher statements in $(docv) before anything else." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let interactive_arg =
  let doc = "Drop into the REPL after running $(b,--file)." in
  Arg.(value & flag & info [ "i"; "interactive" ] ~doc)

let db_arg =
  let doc =
    "Open (creating if needed) the durable database at $(docv): every \
     graph-changing statement is write-ahead journalled, and the graph is \
     recovered from snapshot + journal on startup."
  in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"PATH" ~doc)

let no_fsync_arg =
  let doc = "Leave journal flushing to the OS instead of fsyncing every \
             commit (faster, loses the durability guarantee)." in
  Arg.(value & flag & info [ "no-fsync" ] ~doc)

let main semantics order file interactive db no_fsync =
  match (semantics_of_string semantics, order_of_string order) with
  | None, _ ->
      Fmt.epr "unknown semantics %S@." semantics;
      1
  | _, None ->
      Fmt.epr "unknown order %S@." order;
      1
  | Some config, Some ord -> (
      let config = Config.with_order ord config in
      let config =
        if no_fsync then Config.with_durability Config.Buffered config
        else config
      in
      let opened =
        match db with
        | None -> Ok (None, Session.create ~config Graph.empty)
        | Some dir -> (
            match Store.open_db ~config dir with
            | Ok (store, session) ->
                Fmt.pr "%s: %s@." dir (Recovery.describe (Store.recovery store));
                Ok (Some store, session)
            | Error m -> Error m)
      in
      match opened with
      | Error m ->
          Fmt.epr "error: %s@." m;
          1
      | Ok (store, session) ->
          let st = { session; store; show_stats = true } in
          let st = match file with None -> st | Some f -> load_file st f in
          if file = None || interactive then repl st;
          Option.iter Store.close store;
          0)

let cmd =
  let doc = "Interactive shell for the Cypher update-semantics engine" in
  let info = Cmd.info "cypher_shell" ~doc in
  Cmd.v info
    Term.(
      const main $ semantics_arg $ order_arg $ file_arg $ interactive_arg
      $ db_arg $ no_fsync_arg)

let () = exit (Cmd.eval' cmd)
