(* Command-line driver for the fuzzing/cross-validation subsystem.

   Runs [n] generated cases through all ten oracles (round-trip,
   planner equivalence, parallel-vs-serial byte equivalence,
   legacy/revised divergence classification, result-graph
   well-formedness, update counters vs graph diff, durability
   fault injection, prepared-statement equivalence,
   persistent-vs-compact backend byte equivalence, concurrent-workload
   linearizability) and exits non-zero
   on any failure.  With
   [-corpus DIR], shrunk failures are appended as replayable corpus
   entries.  Wired to the [@fuzz] dune alias; [@par] runs the
   parallel oracle alone over the pinned seeds. *)

module Fuzz = Cypher_fuzz.Fuzz
module Corpus = Cypher_fuzz.Corpus

let () =
  let count = ref 1000 in
  let seed = ref 2026 in
  let corpus_dir = ref "" in
  let dump = ref false in
  let oracle_only = ref "" in
  let spec =
    [
      ("-n", Arg.Set_int count, "COUNT cases per oracle (default 1000)");
      ("-seed", Arg.Set_int seed, "SEED base seed (default 2026)");
      ( "-corpus",
        Arg.Set_string corpus_dir,
        "DIR append shrunk failures as corpus entries to DIR" );
      ( "-dump",
        Arg.Set dump,
        " print the generated cases without running the oracles" );
      ( "-oracle",
        Arg.Set_string oracle_only,
        "NAME run only one oracle \
         (roundtrip|planner|parallel|divergence|wellformed|counters|durability|prepared|backend|concurrent)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz_main [-n COUNT] [-seed SEED] [-corpus DIR] [-dump]";
  if !dump then (
    for i = 0 to !count - 1 do
      let rng = Cypher_fuzz.Rng.make (!seed + i) in
      let g = Cypher_fuzz.Gen.graph rng in
      let q = Cypher_fuzz.Gen.statement rng in
      Fmt.pr "-- seed %d --@.%a@.%s@." (!seed + i)
        Cypher_graph.Graph.pp g
        (Cypher_ast.Pretty.query_to_string q);
      let actors = Cypher_fuzz.Gen.actors rng in
      List.iteri
        (fun j (a : Cypher_fuzz.Gen.actor) ->
          match a with
          | Cypher_fuzz.Gen.Auto q ->
              Fmt.pr "actor %d (auto): %s@." j
                (Cypher_ast.Pretty.query_to_string q)
          | Cypher_fuzz.Gen.Tx qs ->
              Fmt.pr "actor %d (tx):@." j;
              List.iter
                (fun q ->
                  Fmt.pr "  %s@." (Cypher_ast.Pretty.query_to_string q))
                qs)
        actors
    done;
    exit 0);
  (if !oracle_only <> "" then (
     let module Oracles = Cypher_fuzz.Oracles in
     let fails = ref 0 in
     for i = 0 to !count - 1 do
       let rng = Cypher_fuzz.Rng.make (!seed + i) in
       let g = Cypher_fuzz.Gen.graph rng in
       let q = Cypher_fuzz.Gen.statement rng in
       let outcome =
         match !oracle_only with
         | "roundtrip" -> Result.map_error (fun e -> e) (Oracles.roundtrip q)
         | "planner" -> Oracles.planner_equivalence g q
         | "parallel" -> Oracles.parallel_equivalence g q
         | "divergence" -> (
             match Oracles.divergence g q with
             | Oracles.Agree -> Ok ()
             | Oracles.Classified c -> Ok (ignore (Oracles.category_name c))
             | Oracles.Unclassified d -> Error d)
         | "wellformed" -> Oracles.wellformed g q
         | "counters" -> Oracles.counters g q
         | "durability" ->
             let extra =
               [ Cypher_fuzz.Gen.statement rng; Cypher_fuzz.Gen.statement rng ]
             in
             Oracles.durability ~extra g q
         | "prepared" -> Oracles.prepared g q
         | "backend" -> Oracles.backend_equivalence g q
         | "concurrent" ->
             let actors = Cypher_fuzz.Gen.actors rng in
             Oracles.concurrent g actors
         | o -> raise (Arg.Bad ("unknown oracle " ^ o))
       in
       match outcome with
       | Ok () -> ()
       | Error d ->
           incr fails;
           Fmt.pr "seed %d: FAIL %s@.statement: %s@." (!seed + i) d
             (Cypher_ast.Pretty.query_to_string q)
     done;
     Fmt.pr "oracle %s: %d cases from seed %d, %d failure(s)@." !oracle_only
       !count !seed !fails;
     exit (if !fails = 0 then 0 else 1)));
  let report = Fuzz.run ~seed:!seed ~count:!count () in
  Fmt.pr "%a@." Fuzz.pp_report report;
  match report.Fuzz.failures with
  | [] -> ()
  | failures ->
      if !corpus_dir <> "" then
        List.iter
          (fun (f : Fuzz.failure) ->
            let oracle =
              match f.Fuzz.oracle with
              | "roundtrip" -> Corpus.Roundtrip
              | "planner" -> Corpus.Planner
              | "divergence" -> Corpus.Divergence
              | "counters" -> Corpus.Counters
              | "durability" -> Corpus.Durability
              | "prepared" -> Corpus.Prepared
              | _ -> Corpus.Wellformed
            in
            let name =
              Printf.sprintf "fuzz_%s_seed%d_%d" f.Fuzz.oracle !seed
                f.Fuzz.iteration
            in
            let entry =
              Corpus.entry_of_failure ~name ~oracle ~graph:f.Fuzz.graph
                ~query:f.Fuzz.query
            in
            let path = Filename.concat !corpus_dir (name ^ ".cy") in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Corpus.render_entry entry));
            Fmt.pr "wrote %s@." path)
          failures;
      exit 1
