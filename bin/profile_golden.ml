(* Golden-output suite for EXPLAIN / PROFILE (the [@profile] alias).

   Runs a fixed sequence of prefixed statements on a deterministic graph
   and prints the rendered plans, per-clause row counts and counters
   footers.  Wall-times are scrubbed (they are the one nondeterministic
   part of a PROFILE), so the output is byte-stable and diffed against
   profile_golden.expected. *)

open Cypher_graph
open Cypher_core

let config = Config.with_parallelism 0 Config.revised

let scrubbed_profile entries =
  let width =
    List.fold_left
      (fun w (e : Stats.profile_entry) -> max w (String.length e.Stats.pf_clause))
      6 entries
  in
  Printf.printf "%-*s %8s %10s\n" width "clause" "rows" "time";
  List.iter
    (fun (e : Stats.profile_entry) ->
      Printf.printf "%-*s %8d %10s\n" width e.Stats.pf_clause e.Stats.pf_rows
        "<scrubbed>")
    entries

let run g src =
  Printf.printf "> %s\n" src;
  match Api.run_string_full ~config g src with
  | Error e ->
      Printf.printf "error: %s\n\n" (Errors.to_string e);
      g
  | Ok r ->
      (match r.Api.r_plan with Some plan -> print_endline plan | None -> ());
      (match r.Api.r_profile with
      | Some entries -> scrubbed_profile entries
      | None -> ());
      if Stats.contains_updates r.Api.r_stats then
        print_endline (Stats.footer r.Api.r_stats);
      print_newline ();
      r.Api.r_graph

let () =
  let g = Graph.add_prop_index ~label:"Product" ~key:"sku" Graph.empty in
  let g =
    (Api.run_exn ~config g
       "CREATE (v1:Vendor {name: 'acme'}), (v2:Vendor {name: 'apex'}), \
        (p1:Product {sku: 1}), (p2:Product {sku: 2}), (p3:Product {sku: 3}), \
        (u1:User {name: 'ada'}), (u2:User {name: 'bob'}), \
        (u3:User {name: 'cyd'}), (u4:User {name: 'dan'}), \
        (p1)-[:OF]->(v1), (p2)-[:OF]->(v1), (p3)-[:OF]->(v2), \
        (u1)-[:ORDERED]->(p1), (u2)-[:ORDERED]->(p1), \
        (u3)-[:ORDERED]->(p2), (u4)-[:ORDERED]->(p3)")
      .Api.graph
  in
  let g =
    List.fold_left run g
      [
        "EXPLAIN MATCH (u:User)-[:ORDERED]->(p)-[:OF]->(v:Vendor) RETURN \
         u.name, v.name";
        "EXPLAIN MATCH (p:Product {sku: 3}) RETURN p";
        "EXPLAIN MATCH (a)-[:ORDERED]->(b) WHERE b.sku = 1 RETURN a";
        "EXPLAIN CREATE (:Vendor {name: 'zenith'})";
        "EXPLAIN MATCH (u:User) RETURN u.name AS name UNION MATCH (v:Vendor) \
         RETURN v.name AS name";
        "PROFILE MATCH (u:User)-[:ORDERED]->(p:Product) SET p.popular = true \
         RETURN count(*) AS orders";
        "PROFILE MATCH (p:Product {sku: 2}) DETACH DELETE p";
        "PROFILE UNWIND [1, 2, 3] AS i CREATE (:Batch {n: i})";
        "PROFILE MERGE ALL (v:Vendor {name: 'acme'}) RETURN v.name";
      ]
  in
  ignore g
