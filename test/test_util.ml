(** Shared helpers for the test suite. *)

open Cypher_graph
open Cypher_table
open Cypher_core

let value_testable : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal_strict

let tri_testable : Tri.t Alcotest.testable = Alcotest.testable Tri.pp Tri.equal

let record_testable : Record.t Alcotest.testable =
  Alcotest.testable Record.pp Record.equal

let graph_iso_testable : Graph.t Alcotest.testable =
  Alcotest.testable Graph.pp Iso.isomorphic

let case name f = Alcotest.test_case name `Quick f

(** [contains_substring s sub] is true when [sub] occurs in [s]. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(** Runs a statement, failing the test on error. *)
let run ?(config = Config.revised) graph src =
  match Api.run_string ~config graph src with
  | Ok o -> o
  | Error e -> Alcotest.failf "query failed: %s\nquery: %s" (Errors.to_string e) src

let run_graph ?config graph src = (run ?config graph src).Api.graph
let run_table ?config graph src = (run ?config graph src).Api.table

(** Runs a statement and asserts it fails, returning the error. *)
let run_err ?(config = Config.revised) graph src : Errors.t =
  match Api.run_string ~config graph src with
  | Ok _ -> Alcotest.failf "query unexpectedly succeeded: %s" src
  | Error e -> e

(** Builds a graph from Cypher CREATE statements. *)
let graph_of src = run_graph Graph.empty src

(** The single values of a one-column result table. *)
let column t name = List.map (fun r -> Record.find r name) (Table.rows t)

let first_cell t =
  match Table.rows t with
  | row :: _ -> (
      match Table.columns t with
      | c :: _ -> Record.find row c
      | [] -> Alcotest.fail "result table has no columns")
  | [] -> Alcotest.fail "result table has no rows"

(** Asserts the table has exactly the given number of rows. *)
let check_rows name n t = Alcotest.(check int) name n (Table.row_count t)

let check_value name expected actual =
  Alcotest.check value_testable name expected actual

let vint n = Value.Int n
let vstr s = Value.String s
let vbool b = Value.Bool b
let vnull = Value.Null
let vlist l = Value.List l
