(** The property-graph store: construction, adjacency, deletion flavours,
    tombstones and the dangling-relationship diagnostics. *)

open Cypher_graph
open Test_util

let two_nodes_one_rel () =
  let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
  let b, g = Graph.create_node ~labels:[ "B" ] g in
  let r, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
  (g, a, b, r)

let suite =
  [
    case "create_node assigns fresh ids" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        Alcotest.(check bool) "distinct" true (a <> b);
        Alcotest.(check int) "count" 2 (Graph.node_count g));
    case "labels and properties are stored" (fun () ->
        let props = Props.of_list [ ("x", vint 7) ] in
        let a, g = Graph.create_node ~labels:[ "L1"; "L2" ] ~props Graph.empty in
        Alcotest.(check (list string)) "labels" [ "L1"; "L2" ] (Graph.labels_of g a);
        check_value "prop" (vint 7) (Props.get (Graph.node_props_of g a) "x"));
    case "create_rel wires adjacency" (fun () ->
        let g, a, b, r = two_nodes_one_rel () in
        Alcotest.(check int) "out degree a" 1 (List.length (Graph.out_rels g a));
        Alcotest.(check int) "in degree b" 1 (List.length (Graph.in_rels g b));
        Alcotest.(check int) "rel id" r (List.hd (Graph.out_rels g a)).Graph.r_id);
    case "create_rel rejects missing endpoints" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        Alcotest.check_raises "missing target"
          (Invalid_argument "Graph.create_rel: no target node 99") (fun () ->
            ignore (Graph.create_rel ~src:a ~tgt:99 ~r_type:"T" g)));
    case "strict remove_node refuses attached relationships" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        match Graph.remove_node g a with
        | Ok _ -> Alcotest.fail "should have refused"
        | Error attached ->
            Alcotest.(check (list int)) "attached" [ r ]
              (List.map (fun (x : Graph.rel) -> x.Graph.r_id) attached));
    case "strict remove_node succeeds after removing the relationship" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_rel g r in
        match Graph.remove_node g a with
        | Ok g ->
            Alcotest.(check int) "one node left" 1 (Graph.node_count g);
            Alcotest.(check bool) "wellformed" true (Graph.is_wellformed g)
        | Error _ -> Alcotest.fail "should have succeeded");
    case "force removal leaves dangling relationships" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_node_force g a in
        Alcotest.(check bool) "not wellformed" false (Graph.is_wellformed g);
        Alcotest.(check (list int)) "dangling" [ r ]
          (List.map (fun (x : Graph.rel) -> x.Graph.r_id) (Graph.dangling_rels g)));
    case "detach removal deletes incident relationships" (fun () ->
        let g, a, _, _ = two_nodes_one_rel () in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check int) "nodes" 1 (Graph.node_count g);
        Alcotest.(check int) "rels" 0 (Graph.rel_count g);
        Alcotest.(check bool) "wellformed" true (Graph.is_wellformed g));
    case "deleted entities leave tombstones" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_rel g r in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check bool) "node tomb" true (Graph.is_tombstoned g a);
        Alcotest.(check bool) "rel tomb" true (Graph.is_tombstoned g r);
        Alcotest.(check (list string)) "labels read as empty" []
          (Graph.labels_of g a));
    case "ids are never reused after deletion" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let g = Graph.remove_node_detach g a in
        let b, _ = Graph.create_node g in
        Alcotest.(check bool) "fresh id" true (b <> a));
    case "property update flavours" (fun () ->
        let a, g = Graph.create_node ~props:(Props.of_list [ ("x", vint 1); ("y", vint 2) ]) Graph.empty in
        let g = Graph.set_node_prop g a "x" (vint 10) in
        check_value "set" (vint 10) (Props.get (Graph.node_props_of g a) "x");
        let g = Graph.merge_node_props g a (Props.of_list [ ("z", vint 3) ]) in
        check_value "merged keeps y" (vint 2) (Props.get (Graph.node_props_of g a) "y");
        check_value "merged adds z" (vint 3) (Props.get (Graph.node_props_of g a) "z");
        let g = Graph.replace_node_props g a (Props.of_list [ ("only", vint 9) ]) in
        Alcotest.(check (list string)) "replace" [ "only" ]
          (Props.keys (Graph.node_props_of g a)));
    case "label add and remove" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let g = Graph.add_label g a "B" in
        Alcotest.(check (list string)) "added" [ "A"; "B" ] (Graph.labels_of g a);
        let g = Graph.remove_label g a "A" in
        Alcotest.(check (list string)) "removed" [ "B" ] (Graph.labels_of g a));
    case "setting a property to null removes it" (fun () ->
        let a, g = Graph.create_node ~props:(Props.of_list [ ("x", vint 1) ]) Graph.empty in
        let g = Graph.set_node_prop g a "x" vnull in
        Alcotest.(check bool) "gone" true
          (Props.is_empty (Graph.node_props_of g a)));
    case "rebuild reconstructs adjacency" (fun () ->
        let g, a, b, _ = two_nodes_one_rel () in
        let g2 =
          Graph.rebuild ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g)
            (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check int) "out degree preserved" 1
          (List.length (Graph.out_rels g2 a));
        Alcotest.(check int) "in degree preserved" 1
          (List.length (Graph.in_rels g2 b));
        Alcotest.check graph_iso_testable "isomorphic" g g2);
    case "label index follows creation and label updates" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let b, g = Graph.create_node ~labels:[ "A"; "B" ] g in
        Alcotest.(check (list int)) "A" [ a; b ] (Graph.nodes_with_label g "A");
        Alcotest.(check (list int)) "B" [ b ] (Graph.nodes_with_label g "B");
        let g = Graph.add_label g a "B" in
        Alcotest.(check (list int)) "B grows" [ a; b ] (Graph.nodes_with_label g "B");
        let g = Graph.remove_label g b "A" in
        Alcotest.(check (list int)) "A shrinks" [ a ] (Graph.nodes_with_label g "A");
        Alcotest.(check (list int)) "unknown label" []
          (Graph.nodes_with_label g "Zzz"));
    case "label index follows deletion and rebuild" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let _b, g = Graph.create_node ~labels:[ "A" ] g in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check int) "one left" 1
          (List.length (Graph.nodes_with_label g "A"));
        let g2 =
          Graph.rebuild ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g)
            (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check int) "index rebuilt" 1
          (List.length (Graph.nodes_with_label g2 "A")));
    case "self-loop counts once in incident rels" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let _, g = Graph.create_rel ~src:a ~tgt:a ~r_type:"SELF" g in
        Alcotest.(check int) "incident" 1 (List.length (Graph.incident_rels g a));
        Alcotest.(check int) "degree" 1 (Graph.degree g a));
  ]

let histogram_tests =
  [
    case "label and type histograms" (fun () ->
        let g =
          graph_of
            "CREATE (:A), (:A:B), (:B)-[:T]->(:C), (:C)-[:T]->(:A), \
             (:X)-[:U]->(:X)"
        in
        Alcotest.(check (list (pair string int)))
          "labels"
          [ ("A", 3); ("B", 2); ("C", 2); ("X", 2) ]
          (Graph.label_histogram g);
        Alcotest.(check (list (pair string int)))
          "types" [ ("T", 2); ("U", 1) ] (Graph.type_histogram g));
    case "histograms of the empty graph are empty" (fun () ->
        Alcotest.(check (list (pair string int))) "labels" []
          (Graph.label_histogram Graph.empty);
        Alcotest.(check (list (pair string int))) "types" []
          (Graph.type_histogram Graph.empty));
  ]

let suite = suite @ histogram_tests
