(** The property-graph store: construction, adjacency, deletion flavours,
    tombstones and the dangling-relationship diagnostics. *)

open Cypher_graph
open Test_util

let two_nodes_one_rel () =
  let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
  let b, g = Graph.create_node ~labels:[ "B" ] g in
  let r, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
  (g, a, b, r)

let suite =
  [
    case "create_node assigns fresh ids" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        Alcotest.(check bool) "distinct" true (a <> b);
        Alcotest.(check int) "count" 2 (Graph.node_count g));
    case "labels and properties are stored" (fun () ->
        let props = Props.of_list [ ("x", vint 7) ] in
        let a, g = Graph.create_node ~labels:[ "L1"; "L2" ] ~props Graph.empty in
        Alcotest.(check (list string)) "labels" [ "L1"; "L2" ] (Graph.labels_of g a);
        check_value "prop" (vint 7) (Props.get (Graph.node_props_of g a) "x"));
    case "create_rel wires adjacency" (fun () ->
        let g, a, b, r = two_nodes_one_rel () in
        Alcotest.(check int) "out degree a" 1 (List.length (Graph.out_rels g a));
        Alcotest.(check int) "in degree b" 1 (List.length (Graph.in_rels g b));
        Alcotest.(check int) "rel id" r (List.hd (Graph.out_rels g a)).Graph.r_id);
    case "create_rel rejects missing endpoints" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        Alcotest.check_raises "missing target"
          (Invalid_argument "Graph.create_rel: no target node 99") (fun () ->
            ignore (Graph.create_rel ~src:a ~tgt:99 ~r_type:"T" g)));
    case "strict remove_node refuses attached relationships" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        match Graph.remove_node g a with
        | Ok _ -> Alcotest.fail "should have refused"
        | Error attached ->
            Alcotest.(check (list int)) "attached" [ r ]
              (List.map (fun (x : Graph.rel) -> x.Graph.r_id) attached));
    case "strict remove_node succeeds after removing the relationship" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_rel g r in
        match Graph.remove_node g a with
        | Ok g ->
            Alcotest.(check int) "one node left" 1 (Graph.node_count g);
            Alcotest.(check bool) "wellformed" true (Graph.is_wellformed g)
        | Error _ -> Alcotest.fail "should have succeeded");
    case "force removal leaves dangling relationships" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_node_force g a in
        Alcotest.(check bool) "not wellformed" false (Graph.is_wellformed g);
        Alcotest.(check (list int)) "dangling" [ r ]
          (List.map (fun (x : Graph.rel) -> x.Graph.r_id) (Graph.dangling_rels g)));
    case "detach removal deletes incident relationships" (fun () ->
        let g, a, _, _ = two_nodes_one_rel () in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check int) "nodes" 1 (Graph.node_count g);
        Alcotest.(check int) "rels" 0 (Graph.rel_count g);
        Alcotest.(check bool) "wellformed" true (Graph.is_wellformed g));
    case "deleted entities leave tombstones" (fun () ->
        let g, a, _, r = two_nodes_one_rel () in
        let g = Graph.remove_rel g r in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check bool) "node tomb" true (Graph.is_tombstoned g a);
        Alcotest.(check bool) "rel tomb" true (Graph.is_tombstoned g r);
        Alcotest.(check (list string)) "labels read as empty" []
          (Graph.labels_of g a));
    case "ids are never reused after deletion" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let g = Graph.remove_node_detach g a in
        let b, _ = Graph.create_node g in
        Alcotest.(check bool) "fresh id" true (b <> a));
    case "property update flavours" (fun () ->
        let a, g = Graph.create_node ~props:(Props.of_list [ ("x", vint 1); ("y", vint 2) ]) Graph.empty in
        let g = Graph.set_node_prop g a "x" (vint 10) in
        check_value "set" (vint 10) (Props.get (Graph.node_props_of g a) "x");
        let g = Graph.merge_node_props g a (Props.of_list [ ("z", vint 3) ]) in
        check_value "merged keeps y" (vint 2) (Props.get (Graph.node_props_of g a) "y");
        check_value "merged adds z" (vint 3) (Props.get (Graph.node_props_of g a) "z");
        let g = Graph.replace_node_props g a (Props.of_list [ ("only", vint 9) ]) in
        Alcotest.(check (list string)) "replace" [ "only" ]
          (Props.keys (Graph.node_props_of g a)));
    case "label add and remove" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let g = Graph.add_label g a "B" in
        Alcotest.(check (list string)) "added" [ "A"; "B" ] (Graph.labels_of g a);
        let g = Graph.remove_label g a "A" in
        Alcotest.(check (list string)) "removed" [ "B" ] (Graph.labels_of g a));
    case "setting a property to null removes it" (fun () ->
        let a, g = Graph.create_node ~props:(Props.of_list [ ("x", vint 1) ]) Graph.empty in
        let g = Graph.set_node_prop g a "x" vnull in
        Alcotest.(check bool) "gone" true
          (Props.is_empty (Graph.node_props_of g a)));
    case "rebuild reconstructs adjacency" (fun () ->
        let g, a, b, _ = two_nodes_one_rel () in
        let g2 =
          Graph.rebuild ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g)
            (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check int) "out degree preserved" 1
          (List.length (Graph.out_rels g2 a));
        Alcotest.(check int) "in degree preserved" 1
          (List.length (Graph.in_rels g2 b));
        Alcotest.check graph_iso_testable "isomorphic" g g2);
    case "label index follows creation and label updates" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let b, g = Graph.create_node ~labels:[ "A"; "B" ] g in
        Alcotest.(check (list int)) "A" [ a; b ] (Graph.nodes_with_label g "A");
        Alcotest.(check (list int)) "B" [ b ] (Graph.nodes_with_label g "B");
        let g = Graph.add_label g a "B" in
        Alcotest.(check (list int)) "B grows" [ a; b ] (Graph.nodes_with_label g "B");
        let g = Graph.remove_label g b "A" in
        Alcotest.(check (list int)) "A shrinks" [ a ] (Graph.nodes_with_label g "A");
        Alcotest.(check (list int)) "unknown label" []
          (Graph.nodes_with_label g "Zzz"));
    case "label index follows deletion and rebuild" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let _b, g = Graph.create_node ~labels:[ "A" ] g in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check int) "one left" 1
          (List.length (Graph.nodes_with_label g "A"));
        let g2 =
          Graph.rebuild ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g)
            (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check int) "index rebuilt" 1
          (List.length (Graph.nodes_with_label g2 "A")));
    case "self-loop counts once in incident rels" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let _, g = Graph.create_rel ~src:a ~tgt:a ~r_type:"SELF" g in
        Alcotest.(check int) "incident" 1 (List.length (Graph.incident_rels g a));
        Alcotest.(check int) "degree" 1 (Graph.degree g a));
  ]

let histogram_tests =
  [
    case "label and type histograms" (fun () ->
        let g =
          graph_of
            "CREATE (:A), (:A:B), (:B)-[:T]->(:C), (:C)-[:T]->(:A), \
             (:X)-[:U]->(:X)"
        in
        Alcotest.(check (list (pair string int)))
          "labels"
          [ ("A", 3); ("B", 2); ("C", 2); ("X", 2) ]
          (Graph.label_histogram g);
        Alcotest.(check (list (pair string int)))
          "types" [ ("T", 2); ("U", 1) ] (Graph.type_histogram g));
    case "histograms of the empty graph are empty" (fun () ->
        Alcotest.(check (list (pair string int))) "labels" []
          (Graph.label_histogram Graph.empty);
        Alcotest.(check (list (pair string int))) "types" []
          (Graph.type_histogram Graph.empty));
  ]

let rel_ids rels = List.map (fun (r : Graph.rel) -> r.Graph.r_id) rels

let typed_adjacency_tests =
  [
    case "typed adjacency buckets by relationship type" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        let c, g = Graph.create_node g in
        let t1, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let _u, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"U" g in
        let t2, g = Graph.create_rel ~src:a ~tgt:c ~r_type:"T" g in
        Alcotest.(check (list int))
          "out T in id order" [ t1; t2 ]
          (rel_ids (Graph.out_rels_typed g a "T"));
        Alcotest.(check (list int))
          "in T at b" [ t1 ]
          (rel_ids (Graph.in_rels_typed g b "T"));
        Alcotest.(check int) "out degree T" 2 (Graph.out_degree_typed g a "T");
        Alcotest.(check int) "out degree U" 1 (Graph.out_degree_typed g a "U");
        Alcotest.(check (list int))
          "unknown type is empty" []
          (rel_ids (Graph.out_rels_typed g a "Z")));
    case "typed self-loop is incident once" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let r, g = Graph.create_rel ~src:a ~tgt:a ~r_type:"SELF" g in
        Alcotest.(check (list int))
          "incident" [ r ]
          (rel_ids (Graph.incident_rels_typed g a "SELF")));
    case "typed adjacency follows relationship removal" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        let t1, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let t2, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let g = Graph.remove_rel g t1 in
        Alcotest.(check (list int))
          "t1 gone" [ t2 ]
          (rel_ids (Graph.out_rels_typed g a "T"));
        Alcotest.(check int) "type index count" 1 (Graph.type_count g "T"));
    case "typed adjacency follows detaching node removal" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        let c, g = Graph.create_node g in
        let _, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let t2, g = Graph.create_rel ~src:a ~tgt:c ~r_type:"T" g in
        let g = Graph.remove_node_detach g b in
        Alcotest.(check (list int))
          "only the c edge" [ t2 ]
          (rel_ids (Graph.out_rels_typed g a "T"));
        Alcotest.(check (list int))
          "b bucket empty" []
          (rel_ids (Graph.in_rels_typed g b "T")));
    case "rebuild reconstructs the typed adjacency" (fun () ->
        let a, g = Graph.create_node Graph.empty in
        let b, g = Graph.create_node g in
        let t, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let g' =
          Graph.rebuild ~next_id:(Graph.next_id g)
            ~tombs:(Graph.tombstones g) (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check (list int))
          "same bucket" [ t ]
          (rel_ids (Graph.out_rels_typed g' a "T"));
        Alcotest.(check int) "type count" 1 (Graph.type_count g' "T"));
  ]

let prop_index_tests =
  let user k v g =
    let id, g =
      Graph.create_node ~labels:[ "User" ]
        ~props:(Props.of_list [ (k, v) ])
        g
    in
    (id, g)
  in
  [
    case "add_prop_index covers pre-existing nodes" (fun () ->
        let a, g = user "id" (vint 7) Graph.empty in
        let b, g = user "id" (vint 7) g in
        let _, g = user "id" (vint 8) g in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        Alcotest.(check bool)
          "registered" true
          (Graph.has_prop_index g ~label:"User" ~key:"id");
        Alcotest.(check (option (list int)))
          "bucket 7" (Some [ a; b ])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7));
        Alcotest.(check (option int))
          "cardinality" (Some 2)
          (Graph.count_with_prop g ~label:"User" ~key:"id" (vint 7)));
    case "unregistered lookups answer None, null answers empty" (fun () ->
        let _, g = user "id" (vint 7) Graph.empty in
        Alcotest.(check (option (list int)))
          "no index" None
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7));
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        Alcotest.(check (option (list int)))
          "null never matches" (Some [])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" Value.Null));
    case "index equates numerically equal Int and Float keys" (fun () ->
        let a, g = user "id" (vint 7) Graph.empty in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        Alcotest.(check (option (list int)))
          "float probe" (Some [ a ])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (Value.Float 7.0)));
    case "index follows SET and REMOVE of the property" (fun () ->
        let a, g = user "id" (vint 7) Graph.empty in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        let g = Graph.set_node_prop g a "id" (vint 9) in
        Alcotest.(check (option (list int)))
          "old bucket empty" (Some [])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7));
        Alcotest.(check (option (list int)))
          "new bucket" (Some [ a ])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 9));
        let g = Graph.remove_node_prop g a "id" in
        Alcotest.(check (option (list int)))
          "removed" (Some [])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 9)));
    case "index follows label addition and removal" (fun () ->
        let a, g = Graph.create_node ~props:(Props.of_list [ ("id", vint 7) ]) Graph.empty in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        Alcotest.(check (option (list int)))
          "unlabelled node absent" (Some [])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7));
        let g = Graph.add_label g a "User" in
        Alcotest.(check (option (list int)))
          "joins on add_label" (Some [ a ])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7));
        let g = Graph.remove_label g a "User" in
        Alcotest.(check (option (list int)))
          "leaves on remove_label" (Some [])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7)));
    case "index follows node deletion" (fun () ->
        let a, g = user "id" (vint 7) Graph.empty in
        let b, g = user "id" (vint 7) g in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        let g = Graph.remove_node_detach g a in
        Alcotest.(check (option (list int)))
          "survivor only" (Some [ b ])
          (Graph.nodes_with_prop g ~label:"User" ~key:"id" (vint 7)));
    case "rebuild re-registers the requested indexes" (fun () ->
        let a, g = user "id" (vint 7) Graph.empty in
        let g = Graph.add_prop_index ~label:"User" ~key:"id" g in
        let g' =
          Graph.rebuild
            ~prop_indexes:(Graph.prop_index_keys g)
            ~next_id:(Graph.next_id g) ~tombs:(Graph.tombstones g)
            (Graph.nodes g) (Graph.rels g)
        in
        Alcotest.(check (list (pair string string)))
          "keys survive" [ ("User", "id") ] (Graph.prop_index_keys g');
        Alcotest.(check (option (list int)))
          "bucket rebuilt" (Some [ a ])
          (Graph.nodes_with_prop g' ~label:"User" ~key:"id" (vint 7)));
  ]

let suite = suite @ histogram_tests @ typed_adjacency_tests @ prop_index_tests
