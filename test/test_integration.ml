(** End-to-end integration scenarios: multi-statement programs through
    the public API, CSV import pipelines, parameters, and mixed
    read–write sessions. *)

open Cypher_graph
open Cypher_table
open Test_util
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let run_program ?(config = Config.revised) g src =
  match Api.run_program ~config g src with
  | Ok result -> result
  | Error e -> Alcotest.failf "program failed: %s" (Errors.to_string e)

let social_network_setup =
  "CREATE (ada:Person {name: 'Ada', born: 1815}),\n\
  \       (alan:Person {name: 'Alan', born: 1912}),\n\
  \       (grace:Person {name: 'Grace', born: 1906}),\n\
  \       (ada)-[:KNOWS {since: 1830}]->(alan),\n\
  \       (alan)-[:KNOWS {since: 1936}]->(grace),\n\
  \       (grace)-[:KNOWS {since: 1940}]->(ada);"

let suite =
  [
    case "social network lifecycle" (fun () ->
        let program =
          social_network_setup
          ^ "MATCH (p:Person) RETURN count(*) AS people;\n\
             MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.born < b.born \
             RETURN a.name AS elder, b.name AS younger ORDER BY elder;\n\
             MATCH (p:Person {name: 'Alan'}) SET p:Pioneer, p.field = \
             'computing';\n\
             MATCH (p:Pioneer) RETURN p.name, p.field;\n\
             MATCH (a:Person {name: 'Ada'})-[k:KNOWS]->() DELETE k;\n\
             MATCH (a:Person)-[:KNOWS]->() RETURN count(*) AS remaining;"
        in
        let g, tables = run_program Graph.empty program in
        Alcotest.(check int) "statements" 7 (List.length tables);
        check_value "three people" (vint 3) (first_cell (List.nth tables 1));
        (* only Ada(1815) -> Alan(1912) satisfies a.born < b.born *)
        check_value "one elder pair" (vint 1)
          (Value.Int (Table.row_count (List.nth tables 2)));
        check_value "pioneer" (vstr "Alan")
          (Record.find (List.hd (Table.rows (List.nth tables 4))) "p.name");
        check_value "two knows left" (vint 2) (first_cell (List.nth tables 6));
        Alcotest.(check int) "graph intact" 3 (Graph.node_count g));
    case "csv to graph to report pipeline" (fun () ->
        let table =
          Cypher_csv.Csv.table_of_string
            "name,dept,salary\nada,eng,120\nalan,eng,110\ngrace,nav,130\n"
        in
        (* drive the table through a MERGE, then query normally *)
        let g, _ =
          Cypher_paper.Runner.run_merge_mode Config.revised
            ~mode:Cypher_ast.Ast.Merge_same
            "MERGE (:Employee {name: name})-[:IN]->(:Dept {name: dept})"
            (Graph.empty, table)
        in
        let t =
          run_table g
            "MATCH (e:Employee)-[:IN]->(d:Dept) RETURN d.name AS dept, \
             count(*) AS headcount ORDER BY dept"
        in
        Alcotest.(check (list value_testable)) "depts" [ vstr "eng"; vstr "nav" ]
          (column t "dept");
        Alcotest.(check (list value_testable)) "counts" [ vint 2; vint 1 ]
          (column t "headcount"));
    case "parameters flow through statements" (fun () ->
        let config =
          Config.(
            with_param "who" (vstr "Ada") (with_param "year" (vint 1815) revised))
        in
        let g =
          run_graph ~config Graph.empty
            "CREATE (:Person {name: $who, born: $year})"
        in
        let t =
          run_table ~config g "MATCH (p:Person {name: $who}) RETURN p.born"
        in
        check_value "born" (vint 1815) (first_cell t));
    case "error stops a program and reports position" (fun () ->
        match
          Api.run_program ~config:Config.revised Graph.empty
            "CREATE (:A); THIS IS NOT CYPHER; CREATE (:B);"
        with
        | Error (Errors.Parse_error _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
        | Ok _ -> Alcotest.fail "should have failed");
    case "semantics differ end to end on the same program" (fun () ->
        let program =
          "CREATE (:P {name: 'a', v: 1}), (:P {name: 'b', v: 2});\n\
           MATCH (x:P {name: 'a'}), (y:P {name: 'b'}) SET x.v = y.v, y.v = x.v;\n\
           MATCH (p:P) RETURN p.name AS n, p.v AS v ORDER BY n;"
        in
        let _, legacy = run_program ~config:Config.cypher9 Graph.empty program in
        let _, revised = run_program ~config:Config.revised Graph.empty program in
        let vs tables = column (List.nth tables 2) "v" in
        Alcotest.(check (list value_testable)) "legacy overwrites"
          [ vint 2; vint 2 ] (vs legacy);
        Alcotest.(check (list value_testable)) "revised swaps"
          [ vint 2; vint 1 ] (vs revised));
    case "mixed read-write statement with aggregation" (fun () ->
        let o =
          run Graph.empty
            "UNWIND range(1, 6) AS x CREATE (n:N {v: x}) WITH n WHERE n.v % 2 \
             = 0 SET n:Even WITH count(*) AS evens MATCH (e:Even) RETURN \
             evens, count(e) AS relabeled"
        in
        let row = List.hd (Table.rows o.Api.table) in
        check_value "evens" (vint 3) (Record.find row "evens");
        check_value "relabeled" (vint 3) (Record.find row "relabeled"));
    case "merge all then merge same interplay" (fun () ->
        (* ALL creates duplicates; a later SAME matches them all and
           creates nothing *)
        let g, tables =
          run_program Graph.empty
            "UNWIND [1, 1] AS x MERGE ALL (:K {v: x});\n\
             UNWIND [1, 1] AS x MERGE SAME (:K {v: x});\n\
             MATCH (k:K) RETURN count(*) AS n;"
        in
        ignore g;
        check_value "still two" (vint 2) (first_cell (List.nth tables 2)));
    case "foreach-driven denormalisation" (fun () ->
        let o =
          run Graph.empty
            "CREATE (o:Order {items: ['a', 'b', 'c']}) WITH o FOREACH (i IN \
             o.items | CREATE (o)-[:HAS]->(:Item {sku: i})) WITH o MATCH \
             (o)-[:HAS]->(i) RETURN count(i) AS items"
        in
        check_value "three items" (vint 3) (first_cell o.Api.table));
    case "union across semantics boundaries" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [1, 2] AS x RETURN x UNION UNWIND [2, 3] AS x RETURN x"
        in
        Alcotest.(check (list value_testable)) "distinct union"
          [ vint 1; vint 2; vint 3 ] (column t "x"));
    case "dot export contains every entity" (fun () ->
        let g = graph_of "CREATE (:A {x: 1})-[:T]->(:B)" in
        let dot = Dot.to_dot g in
        List.iter
          (fun needle ->
            let contains s sub =
              let n = String.length s and m = String.length sub in
              let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
              m = 0 || loop 0
            in
            Alcotest.(check bool) needle true (contains dot needle))
          [ "digraph"; ":A"; ":B"; ":T"; "x = 1"; "->" ]);
  ]
