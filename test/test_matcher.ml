(** Pattern matching: embeddings, relationship isomorphism, direction,
    variable-length paths, bound variables, OPTIONAL MATCH. *)

open Cypher_graph
open Test_util

let chain = graph_of "CREATE (:A {k: 1})-[:T]->(:B {k: 2})-[:T]->(:C {k: 3})"

let suite =
  [
    case "node matching filters by label and property" (fun () ->
        check_rows "by label" 1 (run_table chain "MATCH (n:B) RETURN n");
        check_rows "by property" 1 (run_table chain "MATCH (n {k: 2}) RETURN n");
        check_rows "label and property mismatch" 0
          (run_table chain "MATCH (n:B {k: 3}) RETURN n");
        check_rows "unlabeled matches everything" 3
          (run_table chain "MATCH (n) RETURN n"));
    case "null-valued pattern properties never match" (fun () ->
        check_rows "null" 0 (run_table chain "MATCH (n {k: null}) RETURN n"));
    case "direction is respected" (fun () ->
        check_rows "out" 2 (run_table chain "MATCH (a)-[:T]->(b) RETURN a");
        check_rows "in" 2 (run_table chain "MATCH (a)<-[:T]-(b) RETURN a");
        check_rows "undirected counts both ends" 4
          (run_table chain "MATCH (a)-[:T]-(b) RETURN a"));
    case "type filtering" (fun () ->
        let g = graph_of "CREATE (:A)-[:X]->(:B), (:A)-[:Y]->(:B)" in
        check_rows "x only" 1 (run_table g "MATCH ()-[r:X]->() RETURN r");
        check_rows "alternative" 2 (run_table g "MATCH ()-[r:X|Y]->() RETURN r");
        check_rows "any" 2 (run_table g "MATCH ()-[r]->() RETURN r"));
    case "two-step pattern" (fun () ->
        check_rows "path" 1 (run_table chain "MATCH (a:A)-[:T]->(b)-[:T]->(c:C) RETURN a"));
    case "relationship isomorphism within a pattern" (fun () ->
        (* a single relationship cannot play two pattern positions *)
        let g = graph_of "CREATE (:A)-[:T]->(:B)" in
        check_rows "needs two distinct rels" 0
          (run_table g "MATCH (a)-[r1:T]->(b), (c)-[r2:T]->(d) RETURN a");
        let g2 = graph_of "CREATE (:A)-[:T]->(:B), (:A)-[:T]->(:B)" in
        check_rows "two rels give two assignments" 2
          (run_table g2 "MATCH (a)-[r1:T]->(b), (c)-[r2:T]->(d) RETURN a"));
    case "undirected traversal cannot reuse one edge both ways" (fun () ->
        let g = graph_of "CREATE (a:A)-[:T]->(a2:A)" in
        check_rows "no double traversal" 0
          (run_table g "MATCH (x)-[:T]-(y)-[:T]-(z) RETURN x"));
    case "the paper's loop example is finite" (fun () ->
        (* MATCH (v)-[*]->(v) on a single loop: edge-distinctness bounds
           the walk (Section 2) *)
        let g = graph_of "CREATE (v:V)-[:T]->(v2:V), (v2)-[:T]->(v)" in
        ignore g;
        let loop = graph_of "CREATE (v:V) WITH v CREATE (v)-[:T]->(v)" in
        check_rows "single loop traversed once" 1
          (run_table loop "MATCH (v)-[*]->(v) RETURN v"));
    case "variable-length ranges" (fun () ->
        check_rows "*1..2 from a" 2
          (run_table chain "MATCH (a:A)-[:T*1..2]->(b) RETURN b");
        check_rows "*2 exactly" 1 (run_table chain "MATCH (a:A)-[:T*2]->(b) RETURN b");
        check_rows "*0.. includes the node itself" 3
          (run_table chain "MATCH (a:A)-[:T*0..]->(b) RETURN b"));
    case "variable-length binds the relationship list" (fun () ->
        let t = run_table chain "MATCH (a:A)-[rs:T*2]->(c) RETURN size(rs) AS n" in
        check_value "two rels" (vint 2) (first_cell t));
    case "named paths expose nodes and relationships" (fun () ->
        let t =
          run_table chain
            "MATCH p = (a:A)-[:T]->(b)-[:T]->(c) RETURN size(nodes(p)) AS n, \
             size(relationships(p)) AS r, length(p) AS l"
        in
        let row = List.hd (Cypher_table.Table.rows t) in
        check_value "nodes" (vint 3) (Cypher_table.Record.find row "n");
        check_value "rels" (vint 2) (Cypher_table.Record.find row "r");
        check_value "length" (vint 2) (Cypher_table.Record.find row "l"));
    case "bound variables anchor subsequent matches" (fun () ->
        check_rows "anchored" 1
          (run_table chain "MATCH (a:A) MATCH (a)-[:T]->(b) RETURN b"));
    case "repeated variable within a pattern forces equality" (fun () ->
        let g = graph_of "CREATE (a:A)-[:T]->(:B)-[:T]->(a2:A)" in
        ignore g;
        let loop = graph_of "CREATE (a:A) WITH a CREATE (a)-[:T]->(:B) WITH a MATCH (b:B) CREATE (b)-[:T]->(a)" in
        check_rows "cycle found" 1
          (run_table loop "MATCH (x:A)-[:T]->(:B)-[:T]->(x) RETURN x"));
    case "property predicates may reference earlier bindings" (fun () ->
        let g = graph_of "CREATE (:A {k: 1})-[:T]->(:B {k: 1}), (:A {k: 2})-[:T]->(:B {k: 9})" in
        check_rows "correlated" 1
          (run_table g "MATCH (a:A) MATCH (b:B {k: a.k}) RETURN b"));
    case "multiple patterns form a join" (fun () ->
        check_rows "cartesian product of label matches" 1
          (run_table chain "MATCH (a:A), (c:C), (b:B) MATCH (a)-[:T]->(x) RETURN x");
        (* two B-labelled nodes → cartesian doubles the rows *)
        let g = graph_of "CREATE (:A), (:B), (:B)" in
        check_rows "cartesian" 2 (run_table g "MATCH (a:A), (b:B) RETURN a, b"));
    case "optional match pads with nulls" (fun () ->
        let t = run_table chain "MATCH (c:C) OPTIONAL MATCH (c)-[:T]->(x) RETURN c, x" in
        check_rows "one row" 1 t;
        check_value "x is null" vnull
          (Cypher_table.Record.find (List.hd (Cypher_table.Table.rows t)) "x"));
    case "optional match keeps matches when they exist" (fun () ->
        let t = run_table chain "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(x) RETURN x" in
        check_rows "one row" 1 t;
        Alcotest.(check bool) "x bound" true
          (Cypher_table.Record.find (List.hd (Cypher_table.Table.rows t)) "x" <> vnull));
    case "optional match with where" (fun () ->
        let t =
          run_table chain
            "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(x) WHERE x.k > 99 RETURN x"
        in
        check_value "filtered to null" vnull (first_cell t));
    case "where filters with ternary logic" (fun () ->
        let g = graph_of "CREATE (:P {age: 20}), (:P {age: 30}), (:P)" in
        (* the ageless node gives null > 25 = unknown, dropped *)
        check_rows "only true survives" 1
          (run_table g "MATCH (p:P) WHERE p.age > 25 RETURN p"));
    case "match on empty graph yields nothing" (fun () ->
        check_rows "empty" 0 (run_table Graph.empty "MATCH (n) RETURN n"));
    case "self-loop matching" (fun () ->
        let g = graph_of "CREATE (v:V) WITH v CREATE (v)-[:T]->(v)" in
        check_rows "directed" 1 (run_table g "MATCH (a)-[:T]->(a) RETURN a");
        check_rows "undirected self-loop matches once" 1
          (run_table g "MATCH (a)-[:T]-(b) RETURN a"));
    case "multi-pattern fold covers one, two and three patterns" (fun () ->
        (* regression for the match_patterns_rev fold whose empty-list
           arm is now a structured internal error: the guarded public
           shapes (1..3 comma patterns, shared and disjoint variables)
           must keep producing exact cross-product row counts *)
        check_rows "one" 3 (run_table chain "MATCH (n) RETURN n");
        check_rows "two disjoint" 9
          (run_table chain "MATCH (n), (m) RETURN n, m");
        check_rows "three disjoint" 27
          (run_table chain "MATCH (n), (m), (o) RETURN n");
        check_rows "three with shared variables" 2
          (run_table chain "MATCH (a)-[:T]->(b), (b), (a) RETURN a, b"));
  ]
