(** Observability layer: update counters, EXPLAIN / PROFILE, and the
    structured errors the layer depends on. *)

open Cypher_graph
open Test_util
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors
module Stats = Cypher_core.Stats
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let stats ?config g src =
  match Api.run_string_full ?config g src with
  | Ok r -> r.Api.r_stats
  | Error e -> Alcotest.failf "query failed: %s" (Errors.to_string e)

let check_counts name st ~expect =
  List.iter
    (fun (label, got, want) ->
      Alcotest.(check int) (name ^ ": " ^ label) want got)
    [
      ("nodes_created", st.Stats.nodes_created, expect.Stats.nodes_created);
      ("nodes_deleted", st.Stats.nodes_deleted, expect.Stats.nodes_deleted);
      ("rels_created", st.Stats.rels_created, expect.Stats.rels_created);
      ("rels_deleted", st.Stats.rels_deleted, expect.Stats.rels_deleted);
      ("props_set", st.Stats.props_set, expect.Stats.props_set);
      ("props_removed", st.Stats.props_removed, expect.Stats.props_removed);
      ("labels_added", st.Stats.labels_added, expect.Stats.labels_added);
      ("labels_removed", st.Stats.labels_removed, expect.Stats.labels_removed);
    ]

let counter_tests =
  [
    case "create counts nodes, rels, props and labels" (fun () ->
        let st = stats Graph.empty "CREATE (:A {x: 1, y: 2})-[:T {w: 3}]->(:B)" in
        check_counts "create" st
          ~expect:
            {
              Stats.empty with
              nodes_created = 2;
              rels_created = 1;
              props_set = 3;
              labels_added = 2;
            });
    case "create-then-delete in one statement nets to zero" (fun () ->
        let st =
          stats Graph.empty "CREATE (n:Tmp {x: 1}) WITH n DETACH DELETE n"
        in
        Alcotest.(check bool) "no updates" false (Stats.contains_updates st));
    case "set back to the original value counts nothing" (fun () ->
        let g = graph_of "CREATE (:A {x: 1})" in
        let st = stats g "MATCH (a:A) SET a.x = 2 SET a.x = 1" in
        Alcotest.(check bool) "no updates" false (Stats.contains_updates st));
    case "set twice counts once" (fun () ->
        let g = graph_of "CREATE (:A {x: 1})" in
        let st = stats g "MATCH (a:A) SET a.x = 2 SET a.x = 3" in
        check_counts "double set" st ~expect:{ Stats.empty with props_set = 1 });
    case "remove and re-add a label counts nothing" (fun () ->
        let g = graph_of "CREATE (:A:B)" in
        let st = stats g "MATCH (a:A) REMOVE a:B SET a:B" in
        Alcotest.(check bool) "no updates" false (Stats.contains_updates st));
    case "delete folds the victim's props and labels into the delete"
      (fun () ->
        let g = graph_of "CREATE (:A:B {x: 1, y: 2})" in
        let st = stats g "MATCH (a:A) DETACH DELETE a" in
        check_counts "delete" st ~expect:{ Stats.empty with nodes_deleted = 1 });
    case "detach delete counts severed relationships" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B), (:C)-[:U]->(:A2)" in
        let st = stats g "MATCH (a:A) DETACH DELETE a" in
        check_counts "detach" st
          ~expect:{ Stats.empty with nodes_deleted = 1; rels_deleted = 1 });
    case "merge reports matched vs created" (fun () ->
        let g = graph_of "CREATE (:V {k: 1})" in
        let st = stats g "UNWIND [1, 2] AS i MERGE ALL (:V {k: i})" in
        Alcotest.(check int) "matched" 1 st.Stats.merge_matched;
        Alcotest.(check int) "created" 1 st.Stats.merge_created;
        Alcotest.(check int) "one new node" 1 st.Stats.nodes_created);
    case "rows mirrors the output table" (fun () ->
        let st = stats Graph.empty "UNWIND [1, 2, 3] AS i RETURN i" in
        Alcotest.(check int) "rows" 3 st.Stats.rows);
    case "disabled collection yields empty stats" (fun () ->
        let config = Config.with_stats false Config.revised in
        let st = stats ~config Graph.empty "CREATE (:A {x: 1})" in
        Alcotest.(check bool) "all zero" true (Stats.equal st Stats.empty));
    case "footer phrasing" (fun () ->
        Alcotest.(check string)
          "no changes" "(no changes)" (Stats.footer Stats.empty);
        let st =
          { Stats.empty with nodes_created = 2; props_set = 3; labels_added = 1 }
        in
        Alcotest.(check string)
          "created" "Created 2 nodes, set 3 properties, added 1 label"
          (Stats.footer st));
  ]

let explain_tests =
  [
    case "EXPLAIN renders a plan and does not execute" (fun () ->
        let g = graph_of "CREATE (:A), (:A), (:B)" in
        match Api.run_string_full g "EXPLAIN MATCH (a:A) CREATE (:C)" with
        | Error e -> Alcotest.failf "explain failed: %s" (Errors.to_string e)
        | Ok r ->
            Alcotest.(check bool) "plan present" true (r.Api.r_plan <> None);
            Alcotest.(check bool) "no profile" true (r.Api.r_profile = None);
            Alcotest.(check int) "graph untouched" 3
              (Graph.node_count r.Api.r_graph);
            let plan = Option.get r.Api.r_plan in
            Alcotest.(check bool) "mentions the label index" true
              (contains ~sub:"label index :A" plan));
    case "PROFILE executes and reports per-clause rows" (fun () ->
        let g = graph_of "CREATE (:A), (:A)" in
        match
          Api.run_string_full g "PROFILE MATCH (a:A) SET a.x = 1 RETURN a.x"
        with
        | Error e -> Alcotest.failf "profile failed: %s" (Errors.to_string e)
        | Ok r ->
            let entries = Option.get r.Api.r_profile in
            Alcotest.(check int) "three clauses" 3 (List.length entries);
            Alcotest.(check (list int))
              "row counts" [ 2; 2; 2 ]
              (List.map (fun e -> e.Stats.pf_rows) entries);
            Alcotest.(check bool) "times are non-negative" true
              (List.for_all (fun e -> e.Stats.pf_ns >= 0L) entries);
            Alcotest.(check int) "props counted" 2 r.Api.r_stats.Stats.props_set);
    case "EXPLAIN without planner reports naive enumeration" (fun () ->
        let g = graph_of "CREATE (:A)" in
        let config = Config.with_planner Config.Off Config.revised in
        match Api.run_string_full ~config g "EXPLAIN MATCH (a:A) RETURN a" with
        | Error e -> Alcotest.failf "explain failed: %s" (Errors.to_string e)
        | Ok r ->
            let plan = Option.get r.Api.r_plan in
            Alcotest.(check bool) "planner off noted" true
              (contains ~sub:"planner off" plan));
  ]

let error_tests =
  [
    case "UNWIND on a non-list is a structured eval error" (fun () ->
        match run_err Graph.empty "UNWIND 42 AS x RETURN x" with
        | Errors.Eval_error m ->
            Alcotest.(check bool) "message" true
              (contains ~sub:"Type mismatch: expected List" m)
        | e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e));
    case "UNWIND NULL yields no rows, not an error" (fun () ->
        let t = run_table Graph.empty "UNWIND null AS x RETURN x" in
        Alcotest.(check int) "no rows" 0 (Cypher_table.Table.row_count t));
    case "run_exn raises the structured exception" (fun () ->
        match Api.run_exn Graph.empty "UNWIND 42 AS x RETURN x" with
        | exception Errors.Error (Errors.Eval_error _) -> ()
        | exception e ->
            Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
        | _ -> Alcotest.fail "expected run_exn to raise");
    case "FOREACH shadowing an in-scope variable is rejected" (fun () ->
        match run_err Graph.empty "MATCH (x) FOREACH (x IN [1] | SET x.k = 1)" with
        | Errors.Validation_error m ->
            Alcotest.(check bool) "names the variable" true
              (contains ~sub:"already declared" m)
        | e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e));
    case "FOREACH with a fresh variable still validates" (fun () ->
        let g =
          run_graph Graph.empty
            "FOREACH (i IN [1, 2] | CREATE (:N {v: i}))"
        in
        Alcotest.(check int) "created" 2 (Graph.node_count g));
    case "nested FOREACH can shadow nothing but reuse sibling names"
      (fun () ->
        (* two sibling FOREACHes may both use [i]; nesting may not *)
        let g =
          run_graph Graph.empty
            "FOREACH (i IN [1] | CREATE (:A {v: i})) FOREACH (i IN [2] | \
             CREATE (:B {v: i}))"
        in
        Alcotest.(check int) "both ran" 2 (Graph.node_count g);
        match
          run_err Graph.empty
            "FOREACH (i IN [1] | FOREACH (i IN [2] | CREATE (:N)))"
        with
        | Errors.Validation_error _ -> ()
        | e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e));
  ]

let suite = counter_tests @ explain_tests @ error_tests
