// Self-loops and parallel edges of the same type must each survive a
// dump round-trip (a naive per-pair dump collapses the parallels).
// oracle: dump
// graph: CREATE (a:A)-[:T {k: 1}]->(a), (a)-[:T {k: 2}]->(b:B), (a)-[:T {k: 3}]->(b)
CREATE (c:C)-[:T]->(c)
