// max_int (2^62 - 1) is below the float 2^62, but float_of_int max_int
// rounds up to exactly 2^62, collapsing the strict inequality.
// Regression for the Value.num_compare fix.
// oracle: eval
// expect: lt=true, eq=false
RETURN 4611686018427387903 < 4611686018427387904.0 AS lt, 4611686018427387903 = 4611686018427387904.0 AS eq
