// After a DETACH DELETE, the label / type / adjacency / property
// indexes must all agree with a from-scratch rebuild, and no dangling
// endpoints may remain.
// oracle: wellformed
// index: A id
// graph: CREATE (:A {id: 1})-[:T]->(:A {id: 2})
MATCH (n:A {id: 1}) DETACH DELETE n
