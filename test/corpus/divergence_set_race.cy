// The canonical per-record SET race (paper Example 2): every m receives
// x from each matched n.  Legacy last-writer-wins; the atomic semantics
// raises Set_conflict.  The divergence must classify as set-race.
// oracle: divergence
// graph: CREATE (:A {k: 1}), (:A {k: 2})
MATCH (n:A), (m:A) SET m.x = n.k
