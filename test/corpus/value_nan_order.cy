// The global sort order must still place NaN deterministically (below
// every other number) even though = treats it as unequal to itself.
// oracle: eval
// expect: v=nan | v=0.5 | v=1.0
UNWIND [1.0, 0.0 / 0.0, 0.5] AS v RETURN v ORDER BY v
