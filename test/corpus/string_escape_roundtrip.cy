// String literals with control characters and \uXXXX escapes must
// survive the print -> re-parse round trip.  Regression for the
// lexer/pretty escape extension.
// oracle: roundtrip
RETURN 'tab\tnl\ncr\rbs\bff\fvt\u000b accé eur€' AS s
