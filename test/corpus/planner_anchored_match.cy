// Cost-guided planning (index anchor selection, hop orientation) may
// reorder rows but must never change the result row set.
// oracle: planner
// index: A id
// graph: CREATE (:A {id: 1})-[:T]->(:B {k: 2}), (:A {id: 2})
MATCH (a:A {id: 1})-[r:T]->(b) RETURN b.k AS bk
