// Dumps must escape quotes, backslashes and control characters so the
// snapshot script reparses to the same string values (the pre-fix dump
// emitted raw control bytes and broke the round-trip).
// oracle: dump
// graph: CREATE (:A {q: 'it\'s', bs: 'a\\b', nl: 'x\ny', tab: 'a\tb'})
MATCH (a:A) SET a.more = a.q + '\n' + a.bs
