// Float properties must dump reparse-exactly: 0.1 and 1/3 need full
// precision, integral floats must stay floats (3.0, not 3), and large
// magnitudes must not fall into int syntax.
// oracle: dump
// graph: CREATE (:A {tenth: 0.1, intish: 3.0, big: 1e20})
MATCH (a:A) SET a.third = 1.0 / 3.0, a.neg = -0.0
