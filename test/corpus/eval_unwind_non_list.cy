// Regression: UNWIND of a non-list, non-null operand must fail with a
// structured eval error ("Type mismatch: expected List"), not treat the
// scalar as a singleton list.  On the pre-fix tree this statement
// succeeded with one row.
// oracle: error
// expect: eval
UNWIND 42 AS x RETURN x
