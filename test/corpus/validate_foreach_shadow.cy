// Regression: a FOREACH loop variable shadowing an in-scope variable
// must be rejected at validation ("variable already declared").  On the
// pre-fix tree the engine silently rebound the variable inside the body
// and this statement succeeded.
// oracle: error
// graph: CREATE (:A {k: 1})
// expect: validation
MATCH (x:A) FOREACH (x IN [1, 2] | CREATE (:B {v: x}))
