// Exact int/float comparison beyond 2^53: going through float_of_int
// rounds 2^53 + 1 onto 2^53.0, making these compare equal (and the
// strict comparison fail).  Regression for the Value.num_compare fix.
// oracle: eval
// expect: eq=false, gt=true
RETURN 9007199254740993 = 9007199254740992.0 AS eq, 9007199254740993 > 9007199254740992.0 AS gt
