// NaN is unequal to everything under the = operator, including itself;
// comparing via the total sort order wrongly yields nan = nan.
// Regression for the Value.equal_tri NaN fix.
// oracle: eval
// expect: eq=false, ne=true, eqi=false
RETURN 0.0 / 0.0 = 0.0 / 0.0 AS eq, 0.0 / 0.0 <> 1.0 AS ne, 0.0 / 0.0 = 1 AS eqi
