// MERGE self-interference (paper Section 4.3): the legacy per-record
// merge reads its own writes, so the second record matches what the
// first created (one node); MERGE ALL evaluates every record against
// the input graph (two nodes).  Must classify as merge-interference.
// oracle: divergence
UNWIND [1, 2] AS u MERGE ALL (:A {id: 0})
