// Undirected traversal of a self-loop: the matcher's trickiest row
// expansion (the loop is reachable from both endpoints but a single
// relationship may bind only once per embedding).  The chunked
// fan-out must reproduce the serial embedding order byte for byte.
// oracle: parallel
// graph: CREATE (a:A {k: 1})-[:T]->(a), (a)-[:T]->(:B {k: 2}), (:A {k: 3})
MATCH (x)-[r:T]-(y) RETURN x.k AS xk, y.k AS yk
