// OPTIONAL MATCH pads non-matching rows with nulls in place, so the
// output interleaves expanded rows and padded rows.  Parallel chunk
// boundaries must not disturb where the padded rows land: the gather
// has to preserve the per-input-row positions exactly.
// oracle: parallel
// graph: CREATE (:A {k: 1})-[:T]->(:B {k: 10}), (:A {k: 2}), (:A {k: 3})-[:T]->(:B {k: 30})
MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b:B) RETURN a.k AS ak, b.k AS bk
