// Homomorphic matching drops relationship-uniqueness bookkeeping, so
// a 2-hop pattern may reuse one relationship for both hops and the
// embedding count differs from the isomorphic run.  The parallel
// fan-out must agree with serial under this mode too — the used-rel
// bookkeeping is per-embedding state, never shared across rows.
// oracle: parallel
// match: homomorphic
// graph: CREATE (a:A {k: 1})-[:T]->(b:B {k: 2}), (b)-[:T]->(a), (b)-[:T]->(:B {k: 3})
MATCH (x)-[:T]->(y)-[:T]->(z) RETURN x.k AS xk, y.k AS yk, z.k AS zk
