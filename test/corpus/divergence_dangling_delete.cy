// Deleting a node with an attached relationship (paper Section 4.2):
// legacy force-deletes and only notices the dangling relationship at
// statement end; the revised semantics refuses up front.  The
// divergence must classify as dangling-delete.
// oracle: divergence
// graph: CREATE (:A)-[:T]->(:B)
MATCH (n:A) DELETE n
