// The durability oracle end to end on a representative update: journal
// the statement, then recover from every snapshot/journal truncation
// and corruption point — the recovered graph must stay isomorphic to
// the live one at every statement boundary.
// oracle: durability
// index: A id
// graph: CREATE (:A {id: 1})-[:T]->(:A {id: 2}), (:B {s: 'it\'s'})
MATCH (a:A {id: 1}) SET a.touched = true
