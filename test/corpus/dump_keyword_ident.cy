// Keyword-shaped labels, property keys and relationship types, plus
// identifiers that need backtick quoting (spaces, leading digits):
// the dump of the result graph must reload to an isomorphic graph.
// oracle: dump
// graph: CREATE (:`MATCH` {`create`: 1})-[:`odd type`]->(:`123start` {`a b`: 2})
MATCH (m:`MATCH`) SET m.`return` = 3
