(** The durable storage layer: WAL framing, torn-write matrix, snapshot
    files, recovery, the session journal sink, and [Store.open_db]. *)

open Cypher_graph
open Test_util
module Session = Cypher_core.Session
module Config = Cypher_core.Config
module Stats = Cypher_core.Stats
module Wal = Cypher_storage.Wal
module Snapshot = Cypher_storage.Snapshot
module Recovery = Cypher_storage.Recovery
module Store = Cypher_storage.Store

let tmpdir () =
  let path = Filename.temp_file "cypher_store" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ok_or_fail = function Ok x -> x | Error m -> Alcotest.fail m

let run_ok s src =
  match Session.run s src with
  | Ok r -> r
  | Error e ->
      Alcotest.failf "session run failed: %s" (Cypher_core.Errors.to_string e)

let record ?(mode = Config.Atomic) ?(order = Config.Forward)
    ?(match_mode = Config.Isomorphic) ?(stats = Stats.empty)
    ?(params = Cypher_util.Maps.Smap.empty) src =
  { Wal.src; stats; mode; order; match_mode; params; kind = `Statement }

let some_stats =
  {
    Stats.empty with
    Stats.nodes_created = 2;
    rels_created = 1;
    props_set = 3;
    rows = 7;
  }

(* ------------------------------------------------------------------ *)
(* WAL framing                                                        *)
(* ------------------------------------------------------------------ *)

let wal_tests =
  [
    case "records round-trip through encode/scan" (fun () ->
        let rs =
          [
            record ~stats:some_stats "CREATE (:A {k: 1})";
            record ~mode:Config.Legacy ~order:(Config.Seeded 42)
              ~match_mode:Config.Homomorphic
              "MATCH (n)\nSET n.k = 2";
            record "MATCH (n) DETACH DELETE n";
          ]
        in
        let bytes = String.concat "" (List.map Wal.encode rs) in
        let rs', clean, torn = Wal.scan_string bytes in
        Alcotest.(check bool) "no tear" true (torn = None);
        Alcotest.(check int) "clean length" (String.length bytes) clean;
        Alcotest.(check int) "count" 3 (List.length rs');
        List.iter2
          (fun (a : Wal.record) (b : Wal.record) ->
            Alcotest.(check string) "src" a.Wal.src b.Wal.src;
            Alcotest.(check bool) "stats" true (Stats.equal a.Wal.stats b.Wal.stats);
            Alcotest.(check bool) "config tag" true
              (a.Wal.mode = b.Wal.mode && a.Wal.order = b.Wal.order
             && a.Wal.match_mode = b.Wal.match_mode))
          rs rs');
    case "empty input scans to the empty journal" (fun () ->
        Alcotest.(check bool) "empty" true (Wal.scan_string "" = ([], 0, None)));
    case "torn-write matrix: every truncation point of a 3-record journal"
      (fun () ->
        let rs =
          [
            record "CREATE (:A)";
            record ~stats:some_stats "CREATE (:B {s: 'it''s'})";
            record "MATCH (a:A)\nDELETE a";
          ]
        in
        let frames = List.map Wal.encode rs in
        let bytes = String.concat "" frames in
        (* byte offset of the end of each record *)
        let ends =
          let off = ref 0 in
          List.map (fun f -> off := !off + String.length f; !off) frames
        in
        for cut = 0 to String.length bytes - 1 do
          let kept, clean, torn = Wal.scan_string (String.sub bytes 0 cut) in
          let full = List.length (List.filter (fun b -> b <= cut) ends) in
          Alcotest.(check int)
            (Printf.sprintf "records at cut %d" cut)
            full (List.length kept);
          if cut = 0 || List.mem cut ends then
            Alcotest.(check bool)
              (Printf.sprintf "no tear at boundary %d" cut)
              true (torn = None)
          else (
            Alcotest.(check bool)
              (Printf.sprintf "tear reported at cut %d" cut)
              true (torn <> None);
            Alcotest.(check int)
              (Printf.sprintf "tear offset at cut %d" cut)
              clean
              (match torn with Some t -> t.Wal.t_offset | None -> -1))
        done);
    case "single-byte corruption never yields a record" (fun () ->
        let r = record ~stats:some_stats "CREATE (:A {k: 1})-[:T]->(:B)" in
        let bytes = Wal.encode r in
        for i = 0 to String.length bytes - 1 do
          let damaged =
            String.mapi
              (fun j c ->
                if j = i then Char.chr ((Char.code c + 1) land 0xff) else c)
              bytes
          in
          match Wal.scan_string damaged with
          | [], _, Some _ -> ()
          | kept, _, torn ->
              Alcotest.failf
                "corrupting byte %d: %d record(s) kept, torn=%s" i
                (List.length kept)
                (match torn with Some t -> t.Wal.t_reason | None -> "none")
        done);
    case "writer appends and read_file scans them back" (fun () ->
        with_tmpdir (fun dir ->
            let path = Filename.concat dir "j.wal" in
            let w = Wal.open_writer ~durability:Config.Fsync path in
            Wal.append w [ record "CREATE (:A)" ];
            Wal.append w [ record "CREATE (:B)"; record "CREATE (:C)" ];
            Wal.close_writer w;
            let rs, _, torn = Wal.read_file path in
            Alcotest.(check bool) "clean" true (torn = None);
            Alcotest.(check (list string)) "sources"
              [ "CREATE (:A)"; "CREATE (:B)"; "CREATE (:C)" ]
              (List.map (fun (r : Wal.record) -> r.Wal.src) rs)));
    case "read_file on a missing path is the empty journal" (fun () ->
        Alcotest.(check bool) "empty" true
          (Wal.read_file "/nonexistent/journal.wal" = ([], 0, None)));
  ]

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

let snapshot_tests =
  [
    case "snapshot round-trips a graph with a property index" (fun () ->
        let g =
          Graph.add_prop_index ~label:"A" ~key:"id"
            (graph_of
               "CREATE (:A {id: 1, s: 'x'})-[:T {w: 2.5}]->(:B), (:C)")
        in
        let g' = ok_or_fail (Snapshot.parse (Snapshot.to_string g)) in
        Alcotest.check graph_iso_testable "isomorphic" g g';
        Alcotest.(check bool) "index preserved" true
          (Graph.prop_index_keys g' = [ ("A", "id") ]));
    case "snapshot of the empty graph round-trips" (fun () ->
        let g' = ok_or_fail (Snapshot.parse (Snapshot.to_string Graph.empty)) in
        Alcotest.(check int) "no nodes" 0 (Graph.node_count g'));
    case "snapshot body corruption is rejected" (fun () ->
        let img = Snapshot.to_string (graph_of "CREATE (:A {k: 1})") in
        let i = String.index img '\n' + 3 in
        let damaged =
          String.mapi (fun j c -> if j = i then 'Z' else c) img
        in
        match Snapshot.parse damaged with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "corrupt snapshot accepted");
    case "non-snapshot content is rejected" (fun () ->
        match Snapshot.parse "CREATE (:A);\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted as snapshot");
    case "write/read through a file" (fun () ->
        with_tmpdir (fun dir ->
            let path = Filename.concat dir "snap.cy" in
            let g = graph_of "CREATE (:A)-[:T]->(:B)" in
            Snapshot.write path g;
            (match Snapshot.read path with
            | Ok (Some g') -> Alcotest.check graph_iso_testable "iso" g g'
            | Ok None -> Alcotest.fail "snapshot missing"
            | Error m -> Alcotest.fail m);
            Alcotest.(check bool) "no tmp litter" false
              (Sys.file_exists (path ^ ".tmp"))));
    case "read on a missing path is Ok None" (fun () ->
        Alcotest.(check bool) "none" true
          (Snapshot.read "/nonexistent/snap.cy" = Ok None));
  ]

(* ------------------------------------------------------------------ *)
(* Session journal sink                                               *)
(* ------------------------------------------------------------------ *)

let sink_into log =
  Some (fun entries -> log := !log @ entries)

let srcs log = List.map (fun e -> e.Session.je_src) !log

let session_journal_tests =
  [
    case "statements outside a transaction journal immediately" (fun () ->
        let log = ref [] in
        let s = Session.create Graph.empty in
        Session.set_journal s (sink_into log);
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "MATCH (n) RETURN n");
        ignore (run_ok s "CREATE (:B)");
        Alcotest.(check (list string)) "updates only"
          [ "CREATE (:A)"; "CREATE (:B)" ] (srcs log));
    case "a transaction journals once, at the outermost commit" (fun () ->
        let log = ref [] in
        let s = Session.create Graph.empty in
        Session.set_journal s (sink_into log);
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:A)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:B)");
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "inner commit flushes nothing" 0
          (List.length !log);
        ignore (run_ok s "CREATE (:C)");
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check (list string)) "statement order preserved"
          [ "CREATE (:A)"; "CREATE (:B)"; "CREATE (:C)" ]
          (srcs log));
    case "rollback journals nothing" (fun () ->
        let log = ref [] in
        let s = Session.create Graph.empty in
        Session.set_journal s (sink_into log);
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:A)");
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "empty journal" 0 (List.length !log);
        Alcotest.(check int) "graph rolled back" 0
          (Graph.node_count (Session.graph s)));
    case "inner rollback drops only the inner entries" (fun () ->
        let log = ref [] in
        let s = Session.create Graph.empty in
        Session.set_journal s (sink_into log);
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Keep)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Drop)");
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check (list string)) "outer entry survives"
          [ "CREATE (:Keep)" ] (srcs log));
    case "write-ahead: a failing sink blocks the statement" (fun () ->
        let s = Session.create Graph.empty in
        Session.set_journal s (Some (fun _ -> failwith "disk full"));
        (match Session.run s "CREATE (:A)" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "statement succeeded past a failing journal");
        Alcotest.(check int) "graph did not advance" 0
          (Graph.node_count (Session.graph s)));
    case "a failing sink at commit rolls the transaction back" (fun () ->
        let s = Session.create Graph.empty in
        Session.set_journal s (Some (fun _ -> failwith "disk full"));
        Session.begin_tx s;
        (* buffered: the sink is not touched yet, so this succeeds *)
        ignore (run_ok s "CREATE (:A)");
        (match Session.commit s with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "commit succeeded past a failing journal");
        Alcotest.(check int) "rolled back" 0
          (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "tx closed" false (Session.in_transaction s));
    case "a failing sink rolls back a nested transaction stack" (fun () ->
        (* entries buffered at depth 2 fold into depth 1 at the inner
           commit; only the outermost commit touches the sink, and its
           failure must unwind the whole stack to the pre-begin graph *)
        let s = Session.create Graph.empty in
        Session.set_journal s (Some (fun _ -> failwith "disk full"));
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Outer)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Inner)");
        (match Session.commit s with
        | Ok () -> () (* inner commit only folds entries outward *)
        | Error m -> Alcotest.failf "inner commit touched the sink: %s" m);
        Alcotest.(check bool) "still in tx" true (Session.in_transaction s);
        (match Session.commit s with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "outer commit succeeded past a failing sink");
        Alcotest.(check int) "both levels rolled back" 0
          (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "tx closed" false (Session.in_transaction s));
  ]

(* ------------------------------------------------------------------ *)
(* Store / recovery end to end                                        *)
(* ------------------------------------------------------------------ *)

let open_ok ?config dir = ok_or_fail (Store.open_db ?config dir)

let store_tests =
  [
    case "open_db on a fresh directory recovers the empty graph" (fun () ->
        with_tmpdir (fun dir ->
            let db = Filename.concat dir "db" in
            let store, session = open_ok db in
            Alcotest.(check int) "empty" 0
              (Graph.node_count (Session.graph session));
            Alcotest.(check int) "nothing replayed" 0
              (Store.recovery store).Recovery.replayed;
            Store.close store));
    case "journal-only reopen reproduces the live graph" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            ignore (run_ok session "CREATE (:A {k: 1})-[:T]->(:B)");
            ignore (run_ok session "MATCH (a:A) SET a.k = 2");
            let live = Session.graph session in
            Store.close store;
            let store2, session2 = open_ok dir in
            Alcotest.check graph_iso_testable "iso" live
              (Session.graph session2);
            Alcotest.(check int) "both statements replayed" 2
              (Store.recovery store2).Recovery.replayed;
            Store.close store2));
    case "snapshot + journal reopen equals journal-only reopen" (fun () ->
        with_tmpdir (fun dir ->
            let plain = Filename.concat dir "plain" in
            let compacted = Filename.concat dir "compacted" in
            let stmts =
              [
                "CREATE (:A {id: 1})-[:T]->(:B)";
                "CREATE (:C {s: 'x'})";
                "MATCH (a:A) SET a.id = 9";
                "MATCH (c:C) DETACH DELETE c";
              ]
            in
            let build dir ~compact_after =
              let store, session = open_ok dir in
              List.iteri
                (fun i src ->
                  ignore (run_ok session src);
                  if Some i = compact_after then
                    ok_or_fail (Store.compact store session))
                stmts;
              let live = Session.graph session in
              Store.close store;
              live
            in
            let live_plain = build plain ~compact_after:None in
            let live_comp = build compacted ~compact_after:(Some 1) in
            Alcotest.check graph_iso_testable "same live graph" live_plain
              live_comp;
            let s1, g1 = open_ok plain and s2, g2 = open_ok compacted in
            Alcotest.(check bool) "compacted store loaded a snapshot" true
              (Store.recovery s2).Recovery.snapshot_loaded;
            Alcotest.(check int) "compacted store replays the tail only" 2
              (Store.recovery s2).Recovery.replayed;
            Alcotest.check graph_iso_testable "recoveries agree"
              (Session.graph g1) (Session.graph g2);
            Alcotest.check graph_iso_testable "and match the live graph"
              live_plain (Session.graph g1);
            Store.close s1;
            Store.close s2));
    case "compact empties the journal and survives reopen" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            ignore (run_ok session "CREATE (:A), (:B)");
            ok_or_fail (Store.compact store session);
            Alcotest.(check bool) "journal emptied" true
              (Wal.read_file (Filename.concat dir "journal.wal") = ([], 0, None));
            ignore (run_ok session "CREATE (:C)");
            let live = Session.graph session in
            Store.close store;
            let store2, session2 = open_ok dir in
            Alcotest.check graph_iso_testable "iso" live (Session.graph session2);
            Store.close store2));
    case "compact is refused mid-transaction" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            Session.begin_tx session;
            (match Store.compact store session with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "compacted inside a transaction");
            Store.close store));
    case "a torn journal tail is reported and truncated on open" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            ignore (run_ok session "CREATE (:A)");
            ignore (run_ok session "CREATE (:B)");
            Store.close store;
            let wal_path = Filename.concat dir "journal.wal" in
            let intact = (Unix.stat wal_path).Unix.st_size in
            let oc = open_out_gen [ Open_append ] 0o644 wal_path in
            output_string oc "%39 deadbeef\nm=atomic o=fwd x=iso s=0,0";
            close_out oc;
            let store2, session2 = open_ok dir in
            let r = Store.recovery store2 in
            Alcotest.(check bool) "tear reported" true (r.Recovery.torn <> None);
            Alcotest.(check int) "replayed up to the tear" 2 r.Recovery.replayed;
            Alcotest.(check int) "both nodes present" 2
              (Graph.node_count (Session.graph session2));
            Alcotest.(check int) "file truncated back" intact
              (Unix.stat wal_path).Unix.st_size;
            Store.close store2));
    case "uncommitted transactions are invisible to recovery" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            ignore (run_ok session "CREATE (:Durable)");
            Session.begin_tx session;
            ignore (run_ok session "CREATE (:Lost)");
            (* simulate a crash: close without commit *)
            Store.close store;
            let store2, session2 = open_ok dir in
            Alcotest.(check int) "only the committed statement" 1
              (Graph.node_count (Session.graph session2));
            Store.close store2));
    case "a corrupt snapshot fails open_db loudly" (fun () ->
        with_tmpdir (fun dir ->
            let store, session = open_ok dir in
            ignore (run_ok session "CREATE (:A)");
            ok_or_fail (Store.compact store session);
            Store.close store;
            let snap = Filename.concat dir "snapshot.cy" in
            let img = In_channel.with_open_text snap In_channel.input_all in
            Out_channel.with_open_text snap (fun oc ->
                Out_channel.output_string oc (img ^ "CREATE (:Sneaky);\n"));
            match Store.open_db dir with
            | Error _ -> ()
            | Ok (store2, _) ->
                Store.close store2;
                Alcotest.fail "tampered snapshot accepted"));
    case "open_db on a file path fails" (fun () ->
        with_tmpdir (fun dir ->
            let path = Filename.concat dir "afile" in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc "not a directory");
            match Store.open_db path with
            | Error _ -> ()
            | Ok (store, _) ->
                Store.close store;
                Alcotest.fail "opened a database inside a plain file"));
    case "buffered durability journals and recovers too" (fun () ->
        with_tmpdir (fun dir ->
            let config = Config.with_durability Config.Buffered Config.revised in
            let store, session = open_ok ~config dir in
            ignore (run_ok session "CREATE (:A)");
            Store.close store;
            let store2, session2 = open_ok dir in
            Alcotest.(check int) "recovered" 1
              (Graph.node_count (Session.graph session2));
            Store.close store2));
    case "legacy-semantics statements replay under legacy semantics" (fun () ->
        with_tmpdir (fun dir ->
            (* order-sensitive legacy SET: replay must use the recorded
               mode/order, not the session default *)
            let config = Config.with_order Config.Reverse Config.cypher9 in
            let store, session = open_ok ~config dir in
            ignore (run_ok session "CREATE (:A {k: 1}), (:A {k: 2})");
            ignore
              (run_ok session "MATCH (a:A), (b:A) SET a.k = b.k");
            let live = Session.graph session in
            Store.close store;
            let store2, session2 = open_ok dir in
            Alcotest.check graph_iso_testable "legacy replay agrees" live
              (Session.graph session2);
            Store.close store2));
  ]

let suite = wal_tests @ snapshot_tests @ session_journal_tests @ store_tests
