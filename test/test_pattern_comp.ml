(** Pattern comprehensions: [[(a)-[:T]->(b) WHERE p | e]]. *)

open Test_util
module Config = Cypher_core.Config

let g =
  graph_of
    "CREATE (u:User {name: 'Bob'}),\n\
     (p1:Product {name: 'laptop', price: 900}),\n\
     (p2:Product {name: 'mouse', price: 20}),\n\
     (p3:Product {name: 'desk', price: 150})\n\
     WITH u, p1, p2, p3\n\
     CREATE (u)-[:ORDERED]->(p1), (u)-[:ORDERED]->(p2), (u)-[:ORDERED]->(p3)"

let suite =
  [
    case "collects mapped values over embeddings" (fun () ->
        let t =
          run_table g
            "MATCH (u:User) RETURN [(u)-[:ORDERED]->(p) | p.name] AS items"
        in
        match first_cell t with
        | Cypher_graph.Value.List items ->
            Alcotest.(check (list value_testable))
              "sorted items"
              [ vstr "desk"; vstr "laptop"; vstr "mouse" ]
              (List.sort Cypher_graph.Value.compare_total items)
        | v -> Alcotest.failf "expected a list, got %s" (Cypher_graph.Value.to_string v));
    case "WHERE filters embeddings" (fun () ->
        let t =
          run_table g
            "MATCH (u:User) RETURN [(u)-[:ORDERED]->(p) WHERE p.price > 100 \
             | p.name] AS pricey"
        in
        match first_cell t with
        | Cypher_graph.Value.List items ->
            Alcotest.(check int) "two" 2 (List.length items)
        | _ -> Alcotest.fail "expected a list");
    case "empty result when nothing matches" (fun () ->
        let t =
          run_table g
            "MATCH (u:User) RETURN [(u)-[:RETURNED]->(p) | p.name] AS none"
        in
        check_value "empty" (vlist []) (first_cell t));
    case "combines with list functions" (fun () ->
        let t =
          run_table g
            "MATCH (u:User) RETURN size([(u)-[:ORDERED]->(p) | p]) AS n,\n\
             reduce(total = 0, x IN [(u)-[:ORDERED]->(p) | p.price] | total + x) AS spend"
        in
        let row = List.hd (Cypher_table.Table.rows t) in
        check_value "count" (vint 3) (Cypher_table.Record.find row "n");
        check_value "spend" (vint 1070) (Cypher_table.Record.find row "spend"));
    case "backtracking keeps plain bracketed lists working" (fun () ->
        check_value "parenthesised expr in list" (vlist [ vint 3; vint 4 ])
          (first_cell (run_table Cypher_graph.Graph.empty "RETURN [(1 + 2), 4] AS l")));
    case "round-trips through the pretty-printer" (fun () ->
        let src =
          "MATCH (u) RETURN [(u)-[:T]->(b) WHERE b.x > 1 | b.name] AS xs"
        in
        match Cypher_parser.Parser.parse_string src with
        | Error e ->
            Alcotest.failf "parse: %s" (Cypher_parser.Parser.error_to_string e)
        | Ok q -> (
            let printed = Cypher_ast.Pretty.query_to_string q in
            match Cypher_parser.Parser.parse_string printed with
            | Ok q' when q = q' -> ()
            | Ok _ -> Alcotest.failf "round-trip changed: %s" printed
            | Error e ->
                Alcotest.failf "reparse: %s"
                  (Cypher_parser.Parser.error_to_string e)));
  ]
