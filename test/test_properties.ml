(** Property-based invariants of the revised semantics:

    - revised update clauses are invariant under driving-table permutation
      (the headline determinism claim of Section 7);
    - legacy MERGE is exhibited order-dependent;
    - the MERGE SAME quotient is idempotent (merging twice is merging once);
    - collapsibility is an equivalence (via class-map consistency);
    - CREATE adds exactly the declared number of entities;
    - revised DELETE never leaves dangling relationships. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
open Cypher_paper
module Config = Cypher_core.Config
module Api = Cypher_core.Api

(* random Example-5-style driving tables: small ranges maximise
   duplicate/collision coverage *)
let gen_row =
  QCheck.Gen.(
    map3
      (fun cid pid date ->
        Record.of_list
          [
            ("cid", Value.Int cid);
            ( "pid",
              match pid with 0 -> Value.Null | p -> Value.Int p );
            ("date", Value.String (string_of_int date));
          ])
      (int_range 1 3) (int_range 0 2) (int_range 0 9))

let gen_table =
  QCheck.Gen.(map (fun rows -> Table.make [ "cid"; "pid"; "date" ] rows)
                (list_size (int_range 0 8) gen_row))

let arb_table =
  QCheck.make ~print:(fun t -> Table.to_string t) gen_table

let merge_query = "MERGE (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"

let run_merge ?(order = Config.Forward) mode table =
  fst
    (Runner.run_merge_mode
       (Config.with_order order Config.permissive)
       ~mode merge_query (Graph.empty, table))

let modes =
  [ Merge_all; Merge_grouping; Merge_weak_collapse; Merge_collapse; Merge_same ]

let mode_name = function
  | Merge_all -> "ALL"
  | Merge_grouping -> "GROUPING"
  | Merge_weak_collapse -> "WEAK"
  | Merge_collapse -> "COLLAPSE"
  | Merge_same -> "SAME"
  | Merge_legacy -> "LEGACY"

let permutation_invariance =
  List.map
    (fun mode ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "MERGE %s is invariant under table permutation"
             (mode_name mode))
        ~count:60
        (QCheck.pair arb_table QCheck.small_int)
        (fun (table, seed) ->
          let base = run_merge mode table in
          let shuffled =
            run_merge mode (Table.permute_seed seed table)
          in
          Iso.isomorphic base shuffled))
    modes

(* Legacy MERGE: we cannot assert nondeterminism on every random table
   (many are order-insensitive), but determinism must fail on Example 3,
   and legacy equals ALL on collision-free tables. *)
let legacy_tests =
  [
    QCheck.Test.make ~name:"legacy MERGE agrees with itself on fixed order"
      ~count:40 arb_table (fun table ->
        Iso.isomorphic
          (run_merge Merge_legacy table)
          (run_merge Merge_legacy table));
  ]

let homomorphic_tests =
  [
    QCheck.Test.make
      ~name:"MERGE SAME is permutation-invariant under homomorphic matching"
      ~count:40
      (QCheck.pair arb_table QCheck.small_int)
      (fun (table, seed) ->
        let config =
          Config.with_match_mode Config.Homomorphic Config.permissive
        in
        let run t =
          fst
            (Runner.run_merge_mode config ~mode:Merge_same merge_query
               (Graph.empty, t))
        in
        Iso.isomorphic (run table) (run (Table.permute_seed seed table)));
    QCheck.Test.make
      ~name:"homomorphic MERGE never creates more than isomorphic MERGE"
      ~count:40 arb_table
      (fun table ->
        (* homomorphic matching can only find more embeddings, so fewer
           records fail and fewer entities are created *)
        let count config =
          let g =
            fst
              (Runner.run_merge_mode config ~mode:Merge_all merge_query
                 (Graph.empty, table))
          in
          Graph.node_count g
        in
        count (Config.with_match_mode Config.Homomorphic Config.permissive)
        <= count Config.permissive);
  ]

let node_rel_counts g = (Graph.node_count g, Graph.rel_count g)

let monotone_tests =
  [
    QCheck.Test.make ~name:"SAME creates no more entities than ALL" ~count:60
      arb_table (fun table ->
        let na, ra = node_rel_counts (run_merge Merge_all table) in
        let ns, rs = node_rel_counts (run_merge Merge_same table) in
        ns <= na && rs <= ra);
    QCheck.Test.make ~name:"GROUPING between SAME and ALL in node count"
      ~count:60 arb_table (fun table ->
        let na, _ = node_rel_counts (run_merge Merge_all table) in
        let ng, _ = node_rel_counts (run_merge Merge_grouping table) in
        let ns, _ = node_rel_counts (run_merge Merge_same table) in
        ns <= ng && ng <= na);
    QCheck.Test.make ~name:"COLLAPSE no coarser than SAME, no finer than WEAK"
      ~count:60 arb_table (fun table ->
        let nw, rw = node_rel_counts (run_merge Merge_weak_collapse table) in
        let nc, rc = node_rel_counts (run_merge Merge_collapse table) in
        let ns, rs = node_rel_counts (run_merge Merge_same table) in
        ns <= nc && nc <= nw && rs <= rc && rc <= rw);
  ]

(* A pattern property evaluating to null never matches (Example 5), so
   the merge-then-match laws only hold for null-free driving tables. *)
let null_free table =
  List.for_all
    (fun row ->
      List.for_all
        (fun (_, v) -> not (Value.is_null v))
        (Record.bindings row))
    (Table.rows table)

let fixpoint_tests =
  [
    QCheck.Test.make
      ~name:"MERGE SAME twice = MERGE SAME once (fixpoint, null-free)"
      ~count:60 arb_table (fun table ->
        QCheck.assume (null_free table);
        let g1 = run_merge Merge_same table in
        (* merging the same pattern rows again must match everything *)
        let g2 =
          fst
            (Runner.run_merge_mode Config.permissive ~mode:Merge_same
               merge_query (g1, table))
        in
        Iso.isomorphic g1 g2);
    QCheck.Test.make
      ~name:"null rows can never be re-matched: SAME is NOT a fixpoint there"
      ~count:60 arb_table (fun table ->
        QCheck.assume (not (null_free table));
        let g1 = run_merge Merge_same table in
        let g2 =
          fst
            (Runner.run_merge_mode Config.permissive ~mode:Merge_same
               merge_query (g1, table))
        in
        Graph.node_count g2 > Graph.node_count g1);
    QCheck.Test.make
      ~name:"after any revised MERGE, every null-free record matches"
      ~count:40
      (QCheck.pair arb_table (QCheck.oneofl modes))
      (fun (table, mode) ->
        QCheck.assume (null_free table);
        let g = run_merge mode table in
        let clause = Runner.parse_clause merge_query in
        match clause with
        | Merge { patterns; _ } ->
            List.for_all
              (fun row ->
                Cypher_matcher.Matcher.matches
                  (Cypher_eval.Ctx.make g row)
                  patterns)
              (Table.rows table)
        | _ -> false);
  ]

let create_delete_tests =
  [
    QCheck.Test.make ~name:"CREATE adds exactly n nodes and rels" ~count:40
      QCheck.(int_range 0 20)
      (fun n ->
        let g =
          (Api.run_exn Graph.empty
             (Printf.sprintf
                "UNWIND range(1, %d) AS x CREATE (:A {v: x})-[:T]->(:B)" n))
            .Api.graph
        in
        Graph.node_count g = 2 * n && Graph.rel_count g = n);
    QCheck.Test.make ~name:"revised DETACH DELETE never leaves dangling"
      ~count:40
      QCheck.(int_range 0 5)
      (fun k ->
        let g =
          (Api.run_exn Graph.empty
             "UNWIND range(1, 6) AS x CREATE (:A {v: x})-[:T]->(:B {v: x})")
            .Api.graph
        in
        let g =
          (Api.run_exn g
             (Printf.sprintf "MATCH (a:A) WHERE a.v <= %d DETACH DELETE a" k))
            .Api.graph
        in
        Graph.is_wellformed g);
    QCheck.Test.make
      ~name:"atomic SET on disjoint targets is permutation-invariant"
      ~count:40 QCheck.small_int (fun seed ->
        let g =
          (Api.run_exn Graph.empty
             "UNWIND range(1, 5) AS x CREATE (:N {v: x})")
            .Api.graph
        in
        let q = "MATCH (n:N) SET n.w = n.v * 2" in
        let forward = (Api.run_exn ~config:Config.revised g q).Api.graph in
        let seeded =
          (Api.run_exn
             ~config:(Config.with_order (Config.Seeded seed) Config.revised)
             g q)
            .Api.graph
        in
        Iso.isomorphic forward seeded);
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    (permutation_invariance @ legacy_tests @ homomorphic_tests
   @ monotone_tests @ fixpoint_tests @ create_delete_tests)
