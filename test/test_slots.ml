(** The slot-compiled row pipeline: {!Cypher_table.Slots} layout
    compilation, array-row {!Cypher_table.Record} semantics against the
    map representation, and query-level byte-identity of
    [Config.rows = `Slots] against the record default on the scope
    shapes that stress a fixed layout — shadowing through WITH,
    OPTIONAL MATCH null padding, FOREACH's nested scope. *)

open Cypher_graph
open Cypher_table
module Config = Cypher_core.Config
module Api = Cypher_core.Api

(* ------------------------------------------------------------------ *)
(* Slots layouts                                                      *)
(* ------------------------------------------------------------------ *)

let slots_tests =
  [
    Test_util.case "of_names dedups to first occurrence" (fun () ->
        let tab = Slots.of_names [ "a"; "b"; "a"; "c"; "b" ] in
        Alcotest.(check int) "width" 3 (Slots.width tab);
        Alcotest.(check (list string))
          "names in slot order" [ "a"; "b"; "c" ] (Slots.names tab);
        Alcotest.(check int) "a" 0 (Slots.index tab "a");
        Alcotest.(check int) "b" 1 (Slots.index tab "b");
        Alcotest.(check int) "c" 2 (Slots.index tab "c");
        Alcotest.(check int) "unknown" (-1) (Slots.index tab "zzz"));
    Test_util.case "extend appends and is memoized" (fun () ->
        let tab = Slots.of_names [ "a"; "b" ] in
        let tab' = Slots.extend tab "c" in
        Alcotest.(check int) "new slot at the end" 2 (Slots.index tab' "c");
        Alcotest.(check int) "old slots stable" 0 (Slots.index tab' "a");
        Alcotest.(check int) "base unchanged" (-1) (Slots.index tab "c");
        Alcotest.(check bool)
          "same extension, same table" true
          (Slots.extend tab "c" == tab'));
  ]

(* ------------------------------------------------------------------ *)
(* Array rows vs map rows                                             *)
(* ------------------------------------------------------------------ *)

let bindings = [ ("x", Value.Int 1); ("y", Value.String "s") ]

let record_tests =
  [
    Test_util.case "seeded row observes exactly like the map row" (fun () ->
        let m = Record.of_list bindings in
        let a = Record.seed (Slots.of_names [ "x"; "y"; "z" ]) m in
        Alcotest.(check bool) "equal" true (Record.equal m a);
        Alcotest.(check (list string))
          "keys ascend, absent slot invisible" [ "x"; "y" ] (Record.keys a);
        Alcotest.(check bool) "unbound layout name reads as absent" true
          (Record.find_opt a "z" = None);
        Alcotest.(check bool) "find pads with null" true
          (Record.find a "z" = Value.Null));
    Test_util.case "slot_bind: store, idempotent rebind, conflict" (fun () ->
        let tab = Slots.of_names [ "x"; "y" ] in
        let r = Record.seed tab (Record.of_list [ ("x", Value.Int 1) ]) in
        let i = Slots.index tab "y" in
        (match Record.slot_bind r i (Value.Int 7) with
        | None -> Alcotest.fail "empty slot must bind"
        | Some r' -> (
            Alcotest.(check bool) "bound" true
              (Record.find_opt r' "y" = Some (Value.Int 7));
            Alcotest.(check bool) "base row untouched" true
              (Record.find_opt r "y" = None);
            match Record.slot_bind r' i (Value.Int 7) with
            | Some r'' ->
                Alcotest.(check bool) "equal rebind is the same row" true
                  (r'' == r')
            | None -> Alcotest.fail "equal rebind must succeed"));
        Alcotest.(check bool) "conflicting rebind fails" true
          (Record.slot_bind
             (Record.seed tab (Record.of_list bindings))
             0 (Value.Int 99)
          = None));
    Test_util.case "bind outside the layout extends it" (fun () ->
        let r = Record.seed (Slots.of_names [ "x" ]) (Record.of_list bindings) in
        let r' = Record.bind r "w" (Value.Bool true) in
        Alcotest.(check bool) "new binding visible" true
          (Record.find_opt r' "w" = Some (Value.Bool true));
        Alcotest.(check (list string)) "keys" [ "w"; "x" ] (Record.keys r'));
    Test_util.case "compile_find probes slot rows, falls back on maps"
      (fun () ->
        let tab = Slots.of_names [ "x"; "y" ] in
        let a = Record.seed tab (Record.of_list bindings) in
        let m = Record.of_list [ ("x", Value.Int 42) ] in
        let find = Record.compile_find a "x" in
        Alcotest.(check bool) "same-layout row" true
          (find a = Some (Value.Int 1));
        Alcotest.(check bool) "map row falls back" true
          (find m = Some (Value.Int 42));
        let find_z = Record.compile_find a "zzz" in
        Alcotest.(check bool) "name outside the layout" true (find_z a = None));
  ]

(* ------------------------------------------------------------------ *)
(* Query-level byte-identity: `Slots vs `Records                      *)
(* ------------------------------------------------------------------ *)

let setup =
  [
    "CREATE (:A {id: 1, x: 10})-[:R]->(:B {id: 2, x: 20})";
    "CREATE (:A {id: 3, x: 30})-[:R]->(:B {id: 4, x: 40})";
    "CREATE (:C {id: 5})";
  ]

let scope_queries =
  [
    (* natural-order expansion (the inverted-enumeration fast path on
       the compact backend): row order must be indistinguishable *)
    "MATCH (a:A)-[r:R]->(b:B) RETURN a.id AS aid, b.id AS bid";
    "MATCH (a)-[r]-(b) RETURN a.id AS aid, b.id AS bid";
    (* WITH renaming and shadowing: the layout changes at each clause *)
    "MATCH (a:A) WITH a.id AS n WITH n AS m, n * 2 AS n RETURN m, n";
    "MATCH (a:A) WITH a.x AS x MATCH (b:B) WHERE b.x > x RETURN x, b.id AS \
     bid";
    (* OPTIONAL MATCH pads pattern variables with nulls in-layout *)
    "MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(z:Missing) RETURN a.id AS aid, z";
    "OPTIONAL MATCH (c:C)-[:R]->(z) RETURN c.id AS cid, z";
    (* UNWIND drives the slot row through expansion and filtering *)
    "UNWIND [3, 1, 2] AS i WITH i WHERE i > 1 RETURN i ORDER BY i";
    "MATCH (a:A) UNWIND [1, 2] AS k RETURN a.id AS aid, k";
  ]

let update_queries =
  [
    (* FOREACH opens a nested scope over the driving row *)
    "MATCH (a:A) FOREACH (i IN [1, 2] | CREATE (:T {k: i, src: a.id}))";
    "MATCH (a:A)-[:R]->(b:B) SET b.seen = a.id RETURN count(*) AS n";
  ]

let run config g src =
  match Api.run_string ~config g src with
  | Ok o -> (o.Api.graph, o.Api.table)
  | Error e ->
      Alcotest.failf "query failed: %s" (Cypher_core.Errors.to_string e)

let build config = List.fold_left (fun g src -> fst (run config g src)) Graph.empty setup

let byte_identity_checks =
  List.concat_map
    (fun (blabel, backend) ->
      let base = Config.with_backend backend Config.revised in
      List.map
        (fun src ->
          Test_util.case
            (Printf.sprintf "slots = records bytes (%s): %s" blabel src)
            (fun () ->
              let run_rows rows =
                let config = Config.with_rows rows base in
                run config (build config) src
              in
              let rg, rt = run_rows `Records in
              let sg, st = run_rows `Slots in
              Alcotest.(check string) "table bytes" (Table.to_string rt)
                (Table.to_string st);
              Alcotest.(check string) "graph bytes" (Graph.to_string rg)
                (Graph.to_string sg)))
        (scope_queries @ update_queries))
    [ ("persistent", `Persistent); ("compact", `Compact) ]

let suite =
  slots_tests @ record_tests @ byte_identity_checks
